file(REMOVE_RECURSE
  "libseal_core.a"
)
