file(REMOVE_RECURSE
  "CMakeFiles/seal_core.dir/audit_log.cc.o"
  "CMakeFiles/seal_core.dir/audit_log.cc.o.d"
  "CMakeFiles/seal_core.dir/libseal.cc.o"
  "CMakeFiles/seal_core.dir/libseal.cc.o.d"
  "CMakeFiles/seal_core.dir/log_merge.cc.o"
  "CMakeFiles/seal_core.dir/log_merge.cc.o.d"
  "CMakeFiles/seal_core.dir/logger.cc.o"
  "CMakeFiles/seal_core.dir/logger.cc.o.d"
  "libseal_core.a"
  "libseal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
