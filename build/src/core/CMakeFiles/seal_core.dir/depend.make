# Empty dependencies file for seal_core.
# This may be replaced when dependencies are built.
