# Empty compiler generated dependencies file for seal_lthread.
# This may be replaced when dependencies are built.
