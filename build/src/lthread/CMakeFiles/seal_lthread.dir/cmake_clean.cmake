file(REMOVE_RECURSE
  "CMakeFiles/seal_lthread.dir/lthread.cc.o"
  "CMakeFiles/seal_lthread.dir/lthread.cc.o.d"
  "libseal_lthread.a"
  "libseal_lthread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_lthread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
