file(REMOVE_RECURSE
  "libseal_lthread.a"
)
