# Empty dependencies file for seal_tls.
# This may be replaced when dependencies are built.
