file(REMOVE_RECURSE
  "CMakeFiles/seal_tls.dir/connection.cc.o"
  "CMakeFiles/seal_tls.dir/connection.cc.o.d"
  "CMakeFiles/seal_tls.dir/record.cc.o"
  "CMakeFiles/seal_tls.dir/record.cc.o.d"
  "CMakeFiles/seal_tls.dir/x509.cc.o"
  "CMakeFiles/seal_tls.dir/x509.cc.o.d"
  "libseal_tls.a"
  "libseal_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
