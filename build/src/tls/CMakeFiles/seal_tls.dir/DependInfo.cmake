
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/connection.cc" "src/tls/CMakeFiles/seal_tls.dir/connection.cc.o" "gcc" "src/tls/CMakeFiles/seal_tls.dir/connection.cc.o.d"
  "/root/repo/src/tls/record.cc" "src/tls/CMakeFiles/seal_tls.dir/record.cc.o" "gcc" "src/tls/CMakeFiles/seal_tls.dir/record.cc.o.d"
  "/root/repo/src/tls/x509.cc" "src/tls/CMakeFiles/seal_tls.dir/x509.cc.o" "gcc" "src/tls/CMakeFiles/seal_tls.dir/x509.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/seal_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/seal_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
