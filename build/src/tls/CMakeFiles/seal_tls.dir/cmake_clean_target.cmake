file(REMOVE_RECURSE
  "libseal_tls.a"
)
