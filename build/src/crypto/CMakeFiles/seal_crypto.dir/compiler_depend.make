# Empty compiler generated dependencies file for seal_crypto.
# This may be replaced when dependencies are built.
