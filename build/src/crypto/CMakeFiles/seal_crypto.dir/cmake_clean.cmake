file(REMOVE_RECURSE
  "CMakeFiles/seal_crypto.dir/aes.cc.o"
  "CMakeFiles/seal_crypto.dir/aes.cc.o.d"
  "CMakeFiles/seal_crypto.dir/bignum.cc.o"
  "CMakeFiles/seal_crypto.dir/bignum.cc.o.d"
  "CMakeFiles/seal_crypto.dir/drbg.cc.o"
  "CMakeFiles/seal_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/seal_crypto.dir/ecdsa.cc.o"
  "CMakeFiles/seal_crypto.dir/ecdsa.cc.o.d"
  "CMakeFiles/seal_crypto.dir/gcm.cc.o"
  "CMakeFiles/seal_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/seal_crypto.dir/hmac.cc.o"
  "CMakeFiles/seal_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/seal_crypto.dir/p256.cc.o"
  "CMakeFiles/seal_crypto.dir/p256.cc.o.d"
  "CMakeFiles/seal_crypto.dir/sha256.cc.o"
  "CMakeFiles/seal_crypto.dir/sha256.cc.o.d"
  "libseal_crypto.a"
  "libseal_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
