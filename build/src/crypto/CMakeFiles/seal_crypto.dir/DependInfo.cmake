
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/seal_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/bignum.cc" "src/crypto/CMakeFiles/seal_crypto.dir/bignum.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/bignum.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/crypto/CMakeFiles/seal_crypto.dir/drbg.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/drbg.cc.o.d"
  "/root/repo/src/crypto/ecdsa.cc" "src/crypto/CMakeFiles/seal_crypto.dir/ecdsa.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/ecdsa.cc.o.d"
  "/root/repo/src/crypto/gcm.cc" "src/crypto/CMakeFiles/seal_crypto.dir/gcm.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/gcm.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/seal_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/p256.cc" "src/crypto/CMakeFiles/seal_crypto.dir/p256.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/p256.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/seal_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/seal_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
