file(REMOVE_RECURSE
  "libseal_crypto.a"
)
