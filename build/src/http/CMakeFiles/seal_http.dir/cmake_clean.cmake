file(REMOVE_RECURSE
  "CMakeFiles/seal_http.dir/http.cc.o"
  "CMakeFiles/seal_http.dir/http.cc.o.d"
  "libseal_http.a"
  "libseal_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
