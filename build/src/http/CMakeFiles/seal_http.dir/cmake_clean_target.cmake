file(REMOVE_RECURSE
  "libseal_http.a"
)
