# Empty dependencies file for seal_http.
# This may be replaced when dependencies are built.
