file(REMOVE_RECURSE
  "CMakeFiles/seal_sgx.dir/attestation.cc.o"
  "CMakeFiles/seal_sgx.dir/attestation.cc.o.d"
  "CMakeFiles/seal_sgx.dir/counter.cc.o"
  "CMakeFiles/seal_sgx.dir/counter.cc.o.d"
  "CMakeFiles/seal_sgx.dir/enclave.cc.o"
  "CMakeFiles/seal_sgx.dir/enclave.cc.o.d"
  "CMakeFiles/seal_sgx.dir/sealing.cc.o"
  "CMakeFiles/seal_sgx.dir/sealing.cc.o.d"
  "libseal_sgx.a"
  "libseal_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
