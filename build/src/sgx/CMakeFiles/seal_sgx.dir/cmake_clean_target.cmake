file(REMOVE_RECURSE
  "libseal_sgx.a"
)
