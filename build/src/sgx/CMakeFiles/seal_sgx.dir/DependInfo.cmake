
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/attestation.cc" "src/sgx/CMakeFiles/seal_sgx.dir/attestation.cc.o" "gcc" "src/sgx/CMakeFiles/seal_sgx.dir/attestation.cc.o.d"
  "/root/repo/src/sgx/counter.cc" "src/sgx/CMakeFiles/seal_sgx.dir/counter.cc.o" "gcc" "src/sgx/CMakeFiles/seal_sgx.dir/counter.cc.o.d"
  "/root/repo/src/sgx/enclave.cc" "src/sgx/CMakeFiles/seal_sgx.dir/enclave.cc.o" "gcc" "src/sgx/CMakeFiles/seal_sgx.dir/enclave.cc.o.d"
  "/root/repo/src/sgx/sealing.cc" "src/sgx/CMakeFiles/seal_sgx.dir/sealing.cc.o" "gcc" "src/sgx/CMakeFiles/seal_sgx.dir/sealing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seal_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/seal_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
