# Empty compiler generated dependencies file for seal_sgx.
# This may be replaced when dependencies are built.
