# Empty dependencies file for seal_asyncall.
# This may be replaced when dependencies are built.
