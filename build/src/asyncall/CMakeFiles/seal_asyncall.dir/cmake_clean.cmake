file(REMOVE_RECURSE
  "CMakeFiles/seal_asyncall.dir/asyncall.cc.o"
  "CMakeFiles/seal_asyncall.dir/asyncall.cc.o.d"
  "libseal_asyncall.a"
  "libseal_asyncall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_asyncall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
