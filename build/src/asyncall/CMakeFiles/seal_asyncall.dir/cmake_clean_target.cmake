file(REMOVE_RECURSE
  "libseal_asyncall.a"
)
