# Empty dependencies file for seal_net.
# This may be replaced when dependencies are built.
