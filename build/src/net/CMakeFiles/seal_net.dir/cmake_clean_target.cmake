file(REMOVE_RECURSE
  "libseal_net.a"
)
