file(REMOVE_RECURSE
  "CMakeFiles/seal_net.dir/net.cc.o"
  "CMakeFiles/seal_net.dir/net.cc.o.d"
  "libseal_net.a"
  "libseal_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
