file(REMOVE_RECURSE
  "CMakeFiles/seal_rote.dir/rote.cc.o"
  "CMakeFiles/seal_rote.dir/rote.cc.o.d"
  "libseal_rote.a"
  "libseal_rote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_rote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
