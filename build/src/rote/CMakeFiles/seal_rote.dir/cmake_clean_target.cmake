file(REMOVE_RECURSE
  "libseal_rote.a"
)
