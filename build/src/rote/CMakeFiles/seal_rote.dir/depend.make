# Empty dependencies file for seal_rote.
# This may be replaced when dependencies are built.
