# Empty dependencies file for seal_services.
# This may be replaced when dependencies are built.
