file(REMOVE_RECURSE
  "libseal_services.a"
)
