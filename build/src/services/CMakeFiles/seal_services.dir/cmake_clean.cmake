file(REMOVE_RECURSE
  "CMakeFiles/seal_services.dir/dropbox_service.cc.o"
  "CMakeFiles/seal_services.dir/dropbox_service.cc.o.d"
  "CMakeFiles/seal_services.dir/git_service.cc.o"
  "CMakeFiles/seal_services.dir/git_service.cc.o.d"
  "CMakeFiles/seal_services.dir/http_server.cc.o"
  "CMakeFiles/seal_services.dir/http_server.cc.o.d"
  "CMakeFiles/seal_services.dir/https_client.cc.o"
  "CMakeFiles/seal_services.dir/https_client.cc.o.d"
  "CMakeFiles/seal_services.dir/messaging_service.cc.o"
  "CMakeFiles/seal_services.dir/messaging_service.cc.o.d"
  "CMakeFiles/seal_services.dir/owncloud_service.cc.o"
  "CMakeFiles/seal_services.dir/owncloud_service.cc.o.d"
  "CMakeFiles/seal_services.dir/proxy.cc.o"
  "CMakeFiles/seal_services.dir/proxy.cc.o.d"
  "CMakeFiles/seal_services.dir/static_content.cc.o"
  "CMakeFiles/seal_services.dir/static_content.cc.o.d"
  "CMakeFiles/seal_services.dir/transport.cc.o"
  "CMakeFiles/seal_services.dir/transport.cc.o.d"
  "libseal_services.a"
  "libseal_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
