# Empty compiler generated dependencies file for seal_ssm.
# This may be replaced when dependencies are built.
