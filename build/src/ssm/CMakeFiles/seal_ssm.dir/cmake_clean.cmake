file(REMOVE_RECURSE
  "CMakeFiles/seal_ssm.dir/dropbox_ssm.cc.o"
  "CMakeFiles/seal_ssm.dir/dropbox_ssm.cc.o.d"
  "CMakeFiles/seal_ssm.dir/git_ssm.cc.o"
  "CMakeFiles/seal_ssm.dir/git_ssm.cc.o.d"
  "CMakeFiles/seal_ssm.dir/messaging_ssm.cc.o"
  "CMakeFiles/seal_ssm.dir/messaging_ssm.cc.o.d"
  "CMakeFiles/seal_ssm.dir/owncloud_ssm.cc.o"
  "CMakeFiles/seal_ssm.dir/owncloud_ssm.cc.o.d"
  "libseal_ssm.a"
  "libseal_ssm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_ssm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
