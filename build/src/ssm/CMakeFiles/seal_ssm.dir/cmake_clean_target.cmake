file(REMOVE_RECURSE
  "libseal_ssm.a"
)
