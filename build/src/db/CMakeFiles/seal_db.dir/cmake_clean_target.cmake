file(REMOVE_RECURSE
  "libseal_db.a"
)
