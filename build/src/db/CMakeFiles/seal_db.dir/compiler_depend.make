# Empty compiler generated dependencies file for seal_db.
# This may be replaced when dependencies are built.
