file(REMOVE_RECURSE
  "CMakeFiles/seal_db.dir/database.cc.o"
  "CMakeFiles/seal_db.dir/database.cc.o.d"
  "CMakeFiles/seal_db.dir/executor.cc.o"
  "CMakeFiles/seal_db.dir/executor.cc.o.d"
  "CMakeFiles/seal_db.dir/parser.cc.o"
  "CMakeFiles/seal_db.dir/parser.cc.o.d"
  "CMakeFiles/seal_db.dir/tokenizer.cc.o"
  "CMakeFiles/seal_db.dir/tokenizer.cc.o.d"
  "CMakeFiles/seal_db.dir/value.cc.o"
  "CMakeFiles/seal_db.dir/value.cc.o.d"
  "libseal_db.a"
  "libseal_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
