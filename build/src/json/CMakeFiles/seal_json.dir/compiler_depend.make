# Empty compiler generated dependencies file for seal_json.
# This may be replaced when dependencies are built.
