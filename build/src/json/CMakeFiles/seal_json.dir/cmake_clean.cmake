file(REMOVE_RECURSE
  "CMakeFiles/seal_json.dir/json.cc.o"
  "CMakeFiles/seal_json.dir/json.cc.o.d"
  "libseal_json.a"
  "libseal_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
