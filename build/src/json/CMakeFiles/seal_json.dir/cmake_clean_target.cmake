file(REMOVE_RECURSE
  "libseal_json.a"
)
