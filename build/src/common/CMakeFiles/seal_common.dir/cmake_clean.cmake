file(REMOVE_RECURSE
  "CMakeFiles/seal_common.dir/bytes.cc.o"
  "CMakeFiles/seal_common.dir/bytes.cc.o.d"
  "CMakeFiles/seal_common.dir/clock.cc.o"
  "CMakeFiles/seal_common.dir/clock.cc.o.d"
  "CMakeFiles/seal_common.dir/log.cc.o"
  "CMakeFiles/seal_common.dir/log.cc.o.d"
  "libseal_common.a"
  "libseal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
