# Empty compiler generated dependencies file for seal_common.
# This may be replaced when dependencies are built.
