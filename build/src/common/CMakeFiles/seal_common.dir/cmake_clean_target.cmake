file(REMOVE_RECURSE
  "libseal_common.a"
)
