# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/lthread_test[1]_include.cmake")
include("/root/repo/build/tests/asyncall_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/rote_test[1]_include.cmake")
include("/root/repo/build/tests/tls_test[1]_include.cmake")
include("/root/repo/build/tests/audit_log_test[1]_include.cmake")
include("/root/repo/build/tests/ssm_test[1]_include.cmake")
include("/root/repo/build/tests/libseal_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/logger_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/log_merge_test[1]_include.cmake")
include("/root/repo/build/tests/messaging_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/db_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/db_index_test[1]_include.cmake")
