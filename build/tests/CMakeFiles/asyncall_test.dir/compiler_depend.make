# Empty compiler generated dependencies file for asyncall_test.
# This may be replaced when dependencies are built.
