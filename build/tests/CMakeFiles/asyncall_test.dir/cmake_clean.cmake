file(REMOVE_RECURSE
  "CMakeFiles/asyncall_test.dir/asyncall_test.cc.o"
  "CMakeFiles/asyncall_test.dir/asyncall_test.cc.o.d"
  "asyncall_test"
  "asyncall_test.pdb"
  "asyncall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asyncall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
