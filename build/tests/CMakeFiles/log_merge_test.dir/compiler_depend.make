# Empty compiler generated dependencies file for log_merge_test.
# This may be replaced when dependencies are built.
