file(REMOVE_RECURSE
  "CMakeFiles/log_merge_test.dir/log_merge_test.cc.o"
  "CMakeFiles/log_merge_test.dir/log_merge_test.cc.o.d"
  "log_merge_test"
  "log_merge_test.pdb"
  "log_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
