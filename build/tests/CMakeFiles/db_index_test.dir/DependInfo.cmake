
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db_index_test.cc" "tests/CMakeFiles/db_index_test.dir/db_index_test.cc.o" "gcc" "tests/CMakeFiles/db_index_test.dir/db_index_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ssm/CMakeFiles/seal_ssm.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/seal_services.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/seal_db.dir/DependInfo.cmake"
  "/root/repo/build/src/rote/CMakeFiles/seal_rote.dir/DependInfo.cmake"
  "/root/repo/build/src/asyncall/CMakeFiles/seal_asyncall.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/seal_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/lthread/CMakeFiles/seal_lthread.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/seal_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/seal_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/seal_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/seal_net.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/seal_json.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
