file(REMOVE_RECURSE
  "CMakeFiles/db_index_test.dir/db_index_test.cc.o"
  "CMakeFiles/db_index_test.dir/db_index_test.cc.o.d"
  "db_index_test"
  "db_index_test.pdb"
  "db_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
