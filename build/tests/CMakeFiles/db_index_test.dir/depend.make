# Empty dependencies file for db_index_test.
# This may be replaced when dependencies are built.
