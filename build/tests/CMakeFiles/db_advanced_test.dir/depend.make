# Empty dependencies file for db_advanced_test.
# This may be replaced when dependencies are built.
