file(REMOVE_RECURSE
  "CMakeFiles/db_advanced_test.dir/db_advanced_test.cc.o"
  "CMakeFiles/db_advanced_test.dir/db_advanced_test.cc.o.d"
  "db_advanced_test"
  "db_advanced_test.pdb"
  "db_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
