# Empty compiler generated dependencies file for lthread_test.
# This may be replaced when dependencies are built.
