file(REMOVE_RECURSE
  "CMakeFiles/lthread_test.dir/lthread_test.cc.o"
  "CMakeFiles/lthread_test.dir/lthread_test.cc.o.d"
  "lthread_test"
  "lthread_test.pdb"
  "lthread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
