file(REMOVE_RECURSE
  "CMakeFiles/ssm_test.dir/ssm_test.cc.o"
  "CMakeFiles/ssm_test.dir/ssm_test.cc.o.d"
  "ssm_test"
  "ssm_test.pdb"
  "ssm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
