# Empty dependencies file for libseal_test.
# This may be replaced when dependencies are built.
