file(REMOVE_RECURSE
  "CMakeFiles/libseal_test.dir/libseal_test.cc.o"
  "CMakeFiles/libseal_test.dir/libseal_test.cc.o.d"
  "libseal_test"
  "libseal_test.pdb"
  "libseal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libseal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
