# Empty compiler generated dependencies file for rote_test.
# This may be replaced when dependencies are built.
