file(REMOVE_RECURSE
  "CMakeFiles/rote_test.dir/rote_test.cc.o"
  "CMakeFiles/rote_test.dir/rote_test.cc.o.d"
  "rote_test"
  "rote_test.pdb"
  "rote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
