# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dropbox_proxy_audit.
