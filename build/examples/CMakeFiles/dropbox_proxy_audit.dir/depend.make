# Empty dependencies file for dropbox_proxy_audit.
# This may be replaced when dependencies are built.
