file(REMOVE_RECURSE
  "CMakeFiles/dropbox_proxy_audit.dir/dropbox_proxy_audit.cpp.o"
  "CMakeFiles/dropbox_proxy_audit.dir/dropbox_proxy_audit.cpp.o.d"
  "dropbox_proxy_audit"
  "dropbox_proxy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dropbox_proxy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
