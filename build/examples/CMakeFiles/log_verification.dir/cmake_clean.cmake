file(REMOVE_RECURSE
  "CMakeFiles/log_verification.dir/log_verification.cpp.o"
  "CMakeFiles/log_verification.dir/log_verification.cpp.o.d"
  "log_verification"
  "log_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
