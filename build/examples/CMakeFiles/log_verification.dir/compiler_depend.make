# Empty compiler generated dependencies file for log_verification.
# This may be replaced when dependencies are built.
