file(REMOVE_RECURSE
  "CMakeFiles/git_attack_demo.dir/git_attack_demo.cpp.o"
  "CMakeFiles/git_attack_demo.dir/git_attack_demo.cpp.o.d"
  "git_attack_demo"
  "git_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/git_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
