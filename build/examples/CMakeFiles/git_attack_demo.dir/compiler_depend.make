# Empty compiler generated dependencies file for git_attack_demo.
# This may be replaced when dependencies are built.
