file(REMOVE_RECURSE
  "CMakeFiles/multi_instance_merge.dir/multi_instance_merge.cpp.o"
  "CMakeFiles/multi_instance_merge.dir/multi_instance_merge.cpp.o.d"
  "multi_instance_merge"
  "multi_instance_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_instance_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
