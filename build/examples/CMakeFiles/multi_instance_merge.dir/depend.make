# Empty dependencies file for multi_instance_merge.
# This may be replaced when dependencies are built.
