# Empty dependencies file for bench_fig5c_dropbox.
# This may be replaced when dependencies are built.
