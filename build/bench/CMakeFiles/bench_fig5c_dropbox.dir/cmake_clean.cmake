file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_dropbox.dir/bench_fig5c_dropbox.cc.o"
  "CMakeFiles/bench_fig5c_dropbox.dir/bench_fig5c_dropbox.cc.o.d"
  "bench_fig5c_dropbox"
  "bench_fig5c_dropbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_dropbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
