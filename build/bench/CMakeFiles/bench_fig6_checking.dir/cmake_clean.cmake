file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_checking.dir/bench_fig6_checking.cc.o"
  "CMakeFiles/bench_fig6_checking.dir/bench_fig6_checking.cc.o.d"
  "bench_fig6_checking"
  "bench_fig6_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
