# Empty dependencies file for bench_fig6_checking.
# This may be replaced when dependencies are built.
