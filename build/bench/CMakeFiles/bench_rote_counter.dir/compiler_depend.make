# Empty compiler generated dependencies file for bench_rote_counter.
# This may be replaced when dependencies are built.
