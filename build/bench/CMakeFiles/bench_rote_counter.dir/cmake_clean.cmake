file(REMOVE_RECURSE
  "CMakeFiles/bench_rote_counter.dir/bench_rote_counter.cc.o"
  "CMakeFiles/bench_rote_counter.dir/bench_rote_counter.cc.o.d"
  "bench_rote_counter"
  "bench_rote_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rote_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
