# Empty dependencies file for bench_fig7c_scalability.
# This may be replaced when dependencies are built.
