file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_lthreads.dir/bench_tab4_lthreads.cc.o"
  "CMakeFiles/bench_tab4_lthreads.dir/bench_tab4_lthreads.cc.o.d"
  "bench_tab4_lthreads"
  "bench_tab4_lthreads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_lthreads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
