file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_squid.dir/bench_fig7b_squid.cc.o"
  "CMakeFiles/bench_fig7b_squid.dir/bench_fig7b_squid.cc.o.d"
  "bench_fig7b_squid"
  "bench_fig7b_squid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_squid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
