file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_owncloud.dir/bench_fig5b_owncloud.cc.o"
  "CMakeFiles/bench_fig5b_owncloud.dir/bench_fig5b_owncloud.cc.o.d"
  "bench_fig5b_owncloud"
  "bench_fig5b_owncloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_owncloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
