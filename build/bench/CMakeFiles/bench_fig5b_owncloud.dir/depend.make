# Empty dependencies file for bench_fig5b_owncloud.
# This may be replaced when dependencies are built.
