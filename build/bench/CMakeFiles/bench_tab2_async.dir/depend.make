# Empty dependencies file for bench_tab2_async.
# This may be replaced when dependencies are built.
