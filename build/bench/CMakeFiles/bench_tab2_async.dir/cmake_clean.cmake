file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_async.dir/bench_tab2_async.cc.o"
  "CMakeFiles/bench_tab2_async.dir/bench_tab2_async.cc.o.d"
  "bench_tab2_async"
  "bench_tab2_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
