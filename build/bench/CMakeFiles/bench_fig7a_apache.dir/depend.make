# Empty dependencies file for bench_fig7a_apache.
# This may be replaced when dependencies are built.
