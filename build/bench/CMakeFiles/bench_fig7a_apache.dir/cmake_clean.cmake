file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_apache.dir/bench_fig7a_apache.cc.o"
  "CMakeFiles/bench_fig7a_apache.dir/bench_fig7a_apache.cc.o.d"
  "bench_fig7a_apache"
  "bench_fig7a_apache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_apache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
