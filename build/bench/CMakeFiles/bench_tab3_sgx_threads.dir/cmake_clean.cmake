file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_sgx_threads.dir/bench_tab3_sgx_threads.cc.o"
  "CMakeFiles/bench_tab3_sgx_threads.dir/bench_tab3_sgx_threads.cc.o.d"
  "bench_tab3_sgx_threads"
  "bench_tab3_sgx_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_sgx_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
