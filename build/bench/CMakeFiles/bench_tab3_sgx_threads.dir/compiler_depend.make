# Empty compiler generated dependencies file for bench_tab3_sgx_threads.
# This may be replaced when dependencies are built.
