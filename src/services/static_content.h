// Static-content handler for the Apache throughput experiments (§6.6):
// GET /content?size=N returns N bytes.
#ifndef SRC_SERVICES_STATIC_CONTENT_H_
#define SRC_SERVICES_STATIC_CONTENT_H_

#include "src/http/http.h"

namespace seal::services {

// Parses "?size=N" from the target; defaults to 0.
http::HttpResponse ServeStaticContent(const http::HttpRequest& request);

// Builds the matching request.
http::HttpRequest MakeContentRequest(size_t size, bool keep_alive = false);

}  // namespace seal::services

#endif  // SRC_SERVICES_STATIC_CONTENT_H_
