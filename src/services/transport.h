// TLS transport abstraction for the simulated servers: the same HttpServer
// binary links against either a plain TLS stack ("LibreSSL", the paper's
// native baseline) or LibSEAL, mirroring how Apache/Squid pick their TLS
// library at link time.
#ifndef SRC_SERVICES_TRANSPORT_H_
#define SRC_SERVICES_TRANSPORT_H_

#include <memory>

#include "src/core/libseal.h"
#include "src/net/net.h"
#include "src/tls/tls.h"

namespace seal::services {

// One accepted TLS connection, server side.
class ServerConnection {
 public:
  virtual ~ServerConnection() = default;
  virtual int Handshake() = 0;                       // 1 ok, -1 error
  virtual int Read(uint8_t* buf, int len) = 0;       // >0, 0 eof, -1 error
  virtual int Write(const uint8_t* buf, int len) = 0;
  virtual void Close() = 0;
  // The TLS session id after a successful handshake (empty before it, or
  // for transports without one). Stable across resumption — a resumed
  // session reports the id of the original full handshake — which is what
  // lets ShardedTransport keep reconnects shard-affine.
  virtual Bytes session_id() const { return {}; }
};

class ServerTransport {
 public:
  virtual ~ServerTransport() = default;
  virtual std::unique_ptr<ServerConnection> Wrap(net::StreamPtr stream) = 0;
};

// Plain TLS (the native baseline). Owns a session cache so clients that
// reconnect get abbreviated handshakes; pass a config with `session_cache`
// already set to override (or disable with a null-capacity cache).
class PlainTransport : public ServerTransport {
 public:
  explicit PlainTransport(tls::TlsConfig config) : config_(std::move(config)) {
    if (config_.session_cache == nullptr) {
      config_.session_cache = &session_cache_;
    }
  }
  std::unique_ptr<ServerConnection> Wrap(net::StreamPtr stream) override;

 private:
  tls::TlsSessionCache session_cache_;
  tls::TlsConfig config_;
};

// LibSEAL (TLS in the enclave, optionally with auditing).
class LibSealTransport : public ServerTransport {
 public:
  explicit LibSealTransport(core::LibSealRuntime* runtime) : runtime_(runtime) {}
  std::unique_ptr<ServerConnection> Wrap(net::StreamPtr stream) override;

 private:
  core::LibSealRuntime* runtime_;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_TRANSPORT_H_
