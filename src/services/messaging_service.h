// Simulated instant-messaging service (the XMPP-style scenario of §2.2:
// "Faults or bugs may compromise message integrity, e.g. causing messages
// to be dropped, modified or delivered to the wrong recipients").
//
// Protocol:
//   POST /msg/send {"from","to","id","body"}     queue a message
//   GET  /msg/inbox?user=U ->
//        {"messages":[{"from","id","body"},...]} deliver & drain U's queue
#ifndef SRC_SERVICES_MESSAGING_SERVICE_H_
#define SRC_SERVICES_MESSAGING_SERVICE_H_

#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "src/http/http.h"

namespace seal::services {

class MessagingService {
 public:
  enum class Attack {
    kNone,
    kDropMessage,    // silently lose one queued message
    kModifyMessage,  // alter a message body before delivery
    kDuplicate,      // deliver one message twice
  };

  http::HttpResponse Handle(const http::HttpRequest& request);
  void set_attack(Attack attack) { attack_ = attack; }

 private:
  struct Message {
    std::string from;
    std::string id;
    std::string body;
  };

  std::mutex mutex_;
  std::map<std::string, std::deque<Message>> queues_;
  Attack attack_ = Attack::kNone;
};

http::HttpRequest MakeSendMessage(const std::string& from, const std::string& to,
                                  const std::string& id, const std::string& body);
http::HttpRequest MakeInboxPoll(const std::string& user, bool libseal_check = false);

}  // namespace seal::services

#endif  // SRC_SERVICES_MESSAGING_SERVICE_H_
