// HTTPS forward proxy: the Squid stand-in (§6.4 Dropbox deployment, §6.6
// Squid experiments). Terminates the client's TLS connection with either
// plain TLS or LibSEAL, opens a second TLS connection to the origin, and
// relays complete HTTP messages in both directions -- so a LibSEAL-linked
// proxy audits every request/response pair crossing it. Serves connections
// on a bounded blocking worker pool or, with Options::event_driven, on the
// reactor (both legs of a proxied connection then cooperate on one task).
#ifndef SRC_SERVICES_PROXY_H_
#define SRC_SERVICES_PROXY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/net/net.h"
#include "src/services/reactor.h"
#include "src/services/transport.h"
#include "src/services/worker_pool.h"
#include "src/tls/tls.h"

namespace seal::services {

class ProxyServer {
 public:
  struct Options {
    std::string listen_address;
    std::string upstream_address;
    // One-way latency of the upstream link (76 ms to Dropbox, §6.4).
    int64_t upstream_latency_nanos = 0;
    // TLS client configuration for the upstream leg.
    tls::TlsConfig upstream_tls;
    // When set, the upstream leg ALSO runs through LibSEAL (as in the
    // paper, where the whole Squid process links against one TLS library
    // and both connections' protocol code executes inside the enclave).
    // The runtime's TlsConfig then governs the upstream handshake too
    // (its trusted_roots / verify_peer apply); `upstream_tls` is unused.
    core::LibSealRuntime* upstream_runtime = nullptr;
    // Blocking mode: connection-serving worker threads, the hard bound on
    // concurrent proxied connections (excess accepted connections queue).
    size_t worker_threads = 16;
    // Event-driven mode: see HttpServer::Options.
    bool event_driven = false;
    size_t reactor_threads = 2;
    size_t reactor_task_stack_size = 128 * 1024;
  };

  ProxyServer(net::Network* network, Options options, ServerTransport* transport);
  ~ProxyServer();

  Status Start();
  void Stop();

  uint64_t requests_proxied() const { return requests_proxied_.load(std::memory_order_relaxed); }

  // Live connection-serving threads; stays at the configured bound no
  // matter how many connections have been accepted.
  size_t worker_thread_count() const {
    return reactor_ != nullptr ? options_.reactor_threads : pool_.worker_count();
  }

 private:
  void AcceptLoop();
  void ServeConnection(net::StreamPtr stream);
  // Live-connection registry (both legs): Stop() aborts registered streams
  // so no worker/task stays parked in a downstream OR upstream read.
  bool RegisterConnection(net::Stream* stream);
  void DeregisterConnection(net::Stream* stream);
  void AbortLiveConnections();

  net::Network* network_;
  Options options_;
  ServerTransport* transport_;

  std::shared_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  ConnectionWorkerPool pool_;
  std::unique_ptr<Reactor> reactor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_proxied_{0};

  std::mutex conns_mutex_;
  std::set<net::Stream*> live_conns_;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_PROXY_H_
