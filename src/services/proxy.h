// HTTPS forward proxy: the Squid stand-in (§6.4 Dropbox deployment, §6.6
// Squid experiments). Terminates the client's TLS connection with either
// plain TLS or LibSEAL, opens a second TLS connection to the origin, and
// relays complete HTTP messages in both directions -- so a LibSEAL-linked
// proxy audits every request/response pair crossing it.
#ifndef SRC_SERVICES_PROXY_H_
#define SRC_SERVICES_PROXY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/net/net.h"
#include "src/services/transport.h"
#include "src/services/worker_pool.h"
#include "src/tls/tls.h"

namespace seal::services {

class ProxyServer {
 public:
  struct Options {
    std::string listen_address;
    std::string upstream_address;
    // One-way latency of the upstream link (76 ms to Dropbox, §6.4).
    int64_t upstream_latency_nanos = 0;
    // TLS client configuration for the upstream leg.
    tls::TlsConfig upstream_tls;
    // When set, the upstream leg ALSO runs through LibSEAL (as in the
    // paper, where the whole Squid process links against one TLS library
    // and both connections' protocol code executes inside the enclave).
    // The runtime's TlsConfig then governs the upstream handshake too
    // (its trusted_roots / verify_peer apply); `upstream_tls` is unused.
    core::LibSealRuntime* upstream_runtime = nullptr;
    // Connection-serving worker threads: the hard bound on concurrent
    // proxied connections (excess accepted connections queue).
    size_t worker_threads = 16;
  };

  ProxyServer(net::Network* network, Options options, ServerTransport* transport);
  ~ProxyServer();

  Status Start();
  void Stop();

  uint64_t requests_proxied() const { return requests_proxied_.load(std::memory_order_relaxed); }

  // Live connection-serving threads; stays at Options::worker_threads no
  // matter how many connections have been accepted.
  size_t worker_thread_count() const { return pool_.worker_count(); }

 private:
  void AcceptLoop();
  void ServeConnection(net::StreamPtr stream);

  net::Network* network_;
  Options options_;
  ServerTransport* transport_;

  std::shared_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  ConnectionWorkerPool pool_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_proxied_{0};
};

}  // namespace seal::services

#endif  // SRC_SERVICES_PROXY_H_
