// Shard-affine connection routing for a core::ShardSet (ROADMAP item 2).
//
// A ShardedTransport fronts N per-shard LibSealTransports behind the
// ordinary ServerTransport interface, so HttpServer/ProxyServer (blocking
// pool or reactor) need no changes: Wrap() returns a connection whose
// Handshake() first PEEKS at the client's initial bytes, picks a shard,
// pushes the untouched bytes back (net::Pipe::Unread) and then runs the
// real handshake on the chosen shard's enclave.
//
// Routing policy — why the session id, not the connection id: connection
// ids are per-accept and carry no client identity, so hashing them cannot
// keep a RECONNECTING client on its shard. The TLS session id can — a
// resuming client offers its old id in the ClientHello, in plaintext, and
// the server-side session cache holding that session's master secret is
// enclave-resident PER SHARD, so landing the resumption on any other shard
// silently degrades it to a full handshake. The id itself cannot be
// shard-tagged (both sides derive it independently from the master
// secret), so the router LEARNS the session->shard map as handshakes
// complete, exactly like a session-aware L4 balancer: offered id known →
// original shard; unknown → stable hash of the id; no id offered (fresh
// client) → round-robin. Everything the router touches is already
// plaintext on the wire, so the map leaks nothing. See DESIGN.md §3i.
#ifndef SRC_SERVICES_SHARDED_TRANSPORT_H_
#define SRC_SERVICES_SHARDED_TRANSPORT_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/core/shard.h"
#include "src/services/transport.h"

namespace seal::services {

// The learned session->shard map. Sharded-mutex buckets: every handshake
// does one Learn and every resumption one Lookup, concurrently across
// acceptor threads.
class ShardRouter {
 public:
  void Learn(BytesView session_id, uint32_t shard);
  std::optional<uint32_t> Lookup(BytesView session_id) const;
  size_t size() const;

 private:
  struct alignas(64) Bucket {
    mutable std::mutex mutex;
    std::map<Bytes, uint32_t> sessions;
  };
  static constexpr size_t kBuckets = 16;
  static size_t BucketFor(BytesView session_id);
  std::array<Bucket, kBuckets> buckets_;
};

class ShardedTransport : public ServerTransport {
 public:
  // `shards` must outlive the transport and be Init()ed.
  explicit ShardedTransport(core::ShardSet* shards);

  std::unique_ptr<ServerConnection> Wrap(net::StreamPtr stream) override;

  ShardRouter& router() { return router_; }
  core::ShardSet& shards() { return *shards_; }

  // The shard a ClientHello offering `session_id` would be routed to right
  // now (learned map first, stable hash otherwise). Exposed for tests.
  uint32_t RouteFor(BytesView session_id) const;

 private:
  friend class ShardedConnection;
  uint32_t NextRoundRobin();

  core::ShardSet* shards_;
  std::vector<std::unique_ptr<LibSealTransport>> transports_;
  ShardRouter router_;
  std::atomic<uint64_t> round_robin_{0};
};

// Parses the session id a TLS ClientHello offers out of `prefix` (raw
// record-layer bytes from the start of a connection). Returns nullopt when
// the prefix is not a complete-enough ClientHello; an empty Bytes when the
// hello offers no session (a fresh client). Exposed for testing.
std::optional<Bytes> ParseClientHelloSessionId(BytesView prefix);

}  // namespace seal::services

#endif  // SRC_SERVICES_SHARDED_TRANSPORT_H_
