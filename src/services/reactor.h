// Reactor: the event-driven connection core (ROADMAP item 1).
//
// The paper's §4.3 argument — OS threads are expensive under SGX, so run
// many user-level lthreads per enclave thread — applies on the untrusted
// side too: a blocking worker pool caps concurrency at pool size and wedges
// shutdown behind any worker parked in a read. The reactor multiplexes ALL
// accepted connections onto a small fixed set of OS threads ("shards"),
// each owning one lthread::Scheduler with one cooperative task per
// connection. A shared net::Poller (the epoll stand-in) watches every
// connection's pipes; a task that would block parks with
// lthread::Scheduler::Block() and is resumed via the scheduler's
// cross-thread wakeup path when the poller reports readiness.
//
// Layering trick: instead of threading would-block returns up through the
// TLS engine, accepted streams are wrapped in a CooperativeStream whose
// blocking Read/Write suspend the CURRENT TASK (TryRead/TryWrite + arm
// poller + Block) rather than the OS thread. The TLS handshake, record
// layer and HTTP framer run unchanged on top — would-block propagates as a
// context switch at the byte-transport boundary, exactly how the paper
// routes enclave blocking through asyncall rather than through every
// caller's signature.
#ifndef SRC_SERVICES_REACTOR_H_
#define SRC_SERVICES_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/lthread/lthread.h"
#include "src/net/net.h"
#include "src/net/poller.h"

namespace seal::services {

class Reactor {
 public:
  struct Options {
    // Shard (OS thread) count. Small and fixed by design; connections
    // scale per shard, not per thread.
    size_t threads = 2;
    // Per-connection task stacks. Smaller than lthread's default: 20k+
    // parked connections at 256 KiB each would be untenable.
    size_t task_stack_size = 128 * 1024;
    // Label for per-shard metrics: reactor_tasks{thread="N"}.
    std::string name = "reactor";
  };

  explicit Reactor(Options options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void Start();
  // Wakes every connection task (their pending reads return EOF), runs them
  // to completion, joins the shards, and stops the poller. Safe to call
  // twice. Streams handed to Serve but not yet adopted are aborted.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Hands an accepted connection to a shard. `serve` runs on a cooperative
  // task; the stream it receives suspends the task instead of the OS
  // thread on blocking I/O. After Stop() the stream is aborted and `serve`
  // never runs.
  void Serve(net::StreamPtr stream, std::function<void(net::StreamPtr)> serve);

  // Wraps `stream` (e.g. a proxy's upstream leg or a LibSEAL bio stream)
  // so its blocking calls cooperate with the current reactor task. Must be
  // called from inside a `serve` callback; from anywhere else the stream
  // is returned unwrapped (stays blocking).
  net::StreamPtr MakeCooperative(net::StreamPtr stream);

  // Live connection tasks across all shards (tests).
  size_t live_connections() const;

  net::Poller* poller() { return &poller_; }

 private:
  friend class CooperativeStream;
  struct Shard;
  struct ConnCtx;
  struct Pending;

  void ShardLoop(Shard* shard);
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  Options options_;
  net::Poller poller_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> next_shard_{0};
};

}  // namespace seal::services

#endif  // SRC_SERVICES_REACTOR_H_
