// Simulated Dropbox metadata service plus the attack injector for
// blocklist corruption and file-list omission (§6.1, §6.2). The real
// Dropbox servers are unreachable from the testbed, so this re-implements
// the metadata protocol the paper audits through the Squid proxy.
//
// Protocol:
//   POST /commit_batch {"account","host","commits":[{file,blocklist,size}]}
//        size = -1 deletes the file.
//   GET  /list?account=A -> {"files":[{file,blocklist,size}]}
#ifndef SRC_SERVICES_DROPBOX_SERVICE_H_
#define SRC_SERVICES_DROPBOX_SERVICE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/http/http.h"

namespace seal::services {

class DropboxService {
 public:
  enum class Attack {
    kNone,
    kCorruptBlocklist,  // list responses carry a wrong blocklist
    kOmitFile,          // list responses silently drop one live file
  };

  http::HttpResponse Handle(const http::HttpRequest& request);
  void set_attack(Attack attack) { attack_ = attack; }

 private:
  struct FileMeta {
    std::string blocklist;
    int64_t size = 0;
  };

  std::mutex mutex_;
  std::map<std::string, std::map<std::string, FileMeta>> accounts_;
  Attack attack_ = Attack::kNone;
};

// Client-side message builders (the Drago et al. benchmark shape: create
// and delete text/binary files, §6.4).
struct DropboxCommit {
  std::string file;
  std::string blocklist;  // hex digest list
  int64_t size = 0;       // -1 = delete
};
http::HttpRequest MakeCommitBatch(const std::string& account, const std::string& host,
                                  const std::vector<DropboxCommit>& commits);
http::HttpRequest MakeListRequest(const std::string& account, bool libseal_check = false);

// File-churn workload: creates, updates and deletes files with 4 MB-block
// blocklists, interleaving list polls.
class DropboxWorkload {
 public:
  DropboxWorkload(std::string account, uint64_t seed);
  http::HttpRequest Next();

 private:
  std::string account_;
  SplitMix64 rng_;
  uint64_t file_counter_ = 0;
  std::vector<std::string> live_files_;
  uint64_t op_counter_ = 0;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_DROPBOX_SERVICE_H_
