#include "src/services/worker_pool.h"

#include <algorithm>
#include <utility>

#include "src/obs/obs.h"

namespace seal::services {

namespace {
obs::Gauge& QueueDepthGauge(const std::string& pool_name) {
  return obs::Registry::Global().GetGauge("server_pool_queue_depth{pool=\"" + pool_name +
                                          "\"}");
}
}  // namespace

ConnectionWorkerPool::ConnectionWorkerPool(Options options) : options_(std::move(options)) {
  options_.workers = std::max<size_t>(1, options_.workers);
}

ConnectionWorkerPool::~ConnectionWorkerPool() { Stop(); }

void ConnectionWorkerPool::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_ || stopping_) {
    return;
  }
  started_ = true;
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ConnectionWorkerPool::Stop() {
  std::vector<std::thread> workers;
  std::deque<std::function<void()>> dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
    workers.swap(workers_);
    dropped.swap(queue_);
    QueueDepthGauge(options_.name).Set(0);
  }
  cv_.notify_all();
  for (std::thread& t : workers) {
    t.join();
  }
  // `dropped` destructs here, closing any streams the tasks captured.
}

void ConnectionWorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      return;
    }
    queue_.push_back(std::move(task));
    QueueDepthGauge(options_.name).Set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

size_t ConnectionWorkerPool::worker_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return workers_.size();
}

size_t ConnectionWorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ConnectionWorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge(options_.name).Set(static_cast<int64_t>(queue_.size()));
    }
    task();
  }
}

}  // namespace seal::services
