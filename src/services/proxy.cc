#include "src/services/proxy.h"

#include <functional>

#include "src/http/http.h"

namespace seal::services {

ProxyServer::ProxyServer(net::Network* network, Options options, ServerTransport* transport)
    : network_(network),
      options_(std::move(options)),
      transport_(transport),
      pool_(ConnectionWorkerPool::Options{options_.worker_threads, "proxy"}) {}

ProxyServer::~ProxyServer() { Stop(); }

Status ProxyServer::Start() {
  auto listener = network_->Listen(options_.listen_address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  running_.store(true, std::memory_order_release);
  if (options_.event_driven) {
    reactor_ = std::make_unique<Reactor>(Reactor::Options{
        options_.reactor_threads, options_.reactor_task_stack_size, "reactor"});
    reactor_->Start();
  } else {
    pool_.Start();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ProxyServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_->Shutdown();
  network_->Unlisten(options_.listen_address);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Unblock workers/tasks parked in a read on either leg of an idle
  // proxied connection; without this Stop() hangs behind any idle client.
  AbortLiveConnections();
  if (reactor_ != nullptr) {
    reactor_->Stop();
    reactor_.reset();
  } else {
    pool_.Stop();
  }
}

bool ProxyServer::RegisterConnection(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    return false;
  }
  live_conns_.insert(stream);
  return true;
}

void ProxyServer::DeregisterConnection(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  live_conns_.erase(stream);
}

void ProxyServer::AbortLiveConnections() {
  // Abort under the registry lock: a stream present in the set cannot be
  // destroyed concurrently (deregistration takes the same lock and happens
  // before the stream dies).
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (net::Stream* stream : live_conns_) {
    stream->Abort();
  }
}

void ProxyServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::StreamPtr stream = listener_->Accept();
    if (stream == nullptr) {
      return;
    }
    if (reactor_ != nullptr) {
      reactor_->Serve(std::move(stream),
                      [this](net::StreamPtr s) { ServeConnection(std::move(s)); });
    } else {
      // shared_ptr because std::function requires a copyable callable.
      auto s = std::make_shared<net::StreamPtr>(std::move(stream));
      pool_.Submit([this, s] { ServeConnection(std::move(*s)); });
    }
  }
}

void ProxyServer::ServeConnection(net::StreamPtr stream) {
  net::Stream* raw_downstream = stream.get();
  if (!RegisterConnection(raw_downstream)) {
    stream->Abort();
    return;
  }
  std::unique_ptr<ServerConnection> downstream = transport_->Wrap(std::move(stream));
  if (downstream->Handshake() != 1) {
    DeregisterConnection(raw_downstream);
    return;
  }
  // Second TLS leg to the origin (this is what makes Squid slower than
  // Apache in Fig. 7b: two handshakes, double en-/decryption).
  auto dialed = network_->Dial(options_.upstream_address, options_.upstream_latency_nanos);
  if (!dialed.ok()) {
    downstream->Close();
    DeregisterConnection(raw_downstream);
    return;
  }
  net::StreamPtr upstream_stream = std::move(*dialed);
  if (reactor_ != nullptr) {
    // On a reactor task the upstream leg must cooperate too: a blocking
    // upstream read would park the whole shard thread.
    upstream_stream = reactor_->MakeCooperative(std::move(upstream_stream));
  }
  net::Stream* raw_upstream = upstream_stream.get();
  if (!RegisterConnection(raw_upstream)) {
    upstream_stream->Abort();
    downstream->Close();
    DeregisterConnection(raw_downstream);
    return;
  }

  // The upstream leg runs either through LibSEAL (the paper's deployment:
  // one TLS library for the whole proxy) or through plain TLS.
  std::function<size_t(uint8_t*, size_t)> upstream_read;
  std::function<bool(const std::string&)> upstream_write;
  std::function<void()> upstream_close;

  std::unique_ptr<tls::StreamBio> plain_bio;
  std::unique_ptr<tls::TlsConnection> plain_upstream;
  core::LibSealSsl* seal_upstream = nullptr;
  bool upstream_ok = true;

  if (options_.upstream_runtime != nullptr) {
    seal_upstream =
        options_.upstream_runtime->SslNew(upstream_stream.get(), tls::Role::kClient);
    if (seal_upstream == nullptr ||
        options_.upstream_runtime->SslHandshake(seal_upstream) != 1) {
      if (seal_upstream != nullptr) {
        options_.upstream_runtime->SslFree(seal_upstream);
        seal_upstream = nullptr;
      }
      upstream_ok = false;
    } else {
      core::LibSealRuntime* runtime = options_.upstream_runtime;
      core::LibSealSsl* ssl = seal_upstream;
      upstream_read = [runtime, ssl](uint8_t* buf, size_t max) {
        int n = runtime->SslRead(ssl, buf, static_cast<int>(max));
        return n <= 0 ? size_t{0} : static_cast<size_t>(n);
      };
      upstream_write = [runtime, ssl](const std::string& data) {
        return runtime->SslWrite(ssl, reinterpret_cast<const uint8_t*>(data.data()),
                                 static_cast<int>(data.size())) >= 0;
      };
      upstream_close = [runtime, ssl] { runtime->SslShutdown(ssl); };
    }
  } else {
    plain_bio = std::make_unique<tls::StreamBio>(upstream_stream.get());
    plain_upstream = std::make_unique<tls::TlsConnection>(plain_bio.get(),
                                                          &options_.upstream_tls,
                                                          tls::Role::kClient);
    if (!plain_upstream->Handshake().ok()) {
      upstream_ok = false;
    } else {
      tls::TlsConnection* conn = plain_upstream.get();
      upstream_read = [conn](uint8_t* buf, size_t max) {
        auto n = conn->Read(buf, max);
        return n.ok() ? *n : size_t{0};
      };
      upstream_write = [conn](const std::string& data) { return conn->Write(data).ok(); };
      upstream_close = [conn] { conn->Close(); };
    }
  }

  if (upstream_ok) {
    for (;;) {
      auto request = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
        int n = downstream->Read(buf, static_cast<int>(max));
        return n <= 0 ? size_t{0} : static_cast<size_t>(n);
      });
      if (!request.ok()) {
        break;
      }
      if (!upstream_write(*request)) {
        break;
      }
      auto response = http::ReadHttpMessage(upstream_read);
      if (!response.ok()) {
        break;
      }
      if (downstream->Write(reinterpret_cast<const uint8_t*>(response->data()),
                            static_cast<int>(response->size())) < 0) {
        break;
      }
      requests_proxied_.fetch_add(1, std::memory_order_relaxed);
    }
    upstream_close();
  }
  if (seal_upstream != nullptr) {
    options_.upstream_runtime->SslFree(seal_upstream);
  }
  downstream->Close();
  // Deregister both legs before their streams die (upstream_stream at
  // scope exit, downstream inside `downstream`'s destructor).
  DeregisterConnection(raw_upstream);
  DeregisterConnection(raw_downstream);
}

}  // namespace seal::services
