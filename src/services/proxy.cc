#include "src/services/proxy.h"

#include <functional>

#include "src/http/http.h"

namespace seal::services {

ProxyServer::ProxyServer(net::Network* network, Options options, ServerTransport* transport)
    : network_(network),
      options_(std::move(options)),
      transport_(transport),
      pool_(ConnectionWorkerPool::Options{options_.worker_threads, "proxy"}) {}

ProxyServer::~ProxyServer() { Stop(); }

Status ProxyServer::Start() {
  auto listener = network_->Listen(options_.listen_address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  running_.store(true, std::memory_order_release);
  pool_.Start();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ProxyServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_->Shutdown();
  network_->Unlisten(options_.listen_address);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  pool_.Stop();
}

void ProxyServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::StreamPtr stream = listener_->Accept();
    if (stream == nullptr) {
      return;
    }
    // shared_ptr because std::function requires a copyable callable.
    auto s = std::make_shared<net::StreamPtr>(std::move(stream));
    pool_.Submit([this, s] { ServeConnection(std::move(*s)); });
  }
}

void ProxyServer::ServeConnection(net::StreamPtr stream) {
  std::unique_ptr<ServerConnection> downstream = transport_->Wrap(std::move(stream));
  if (downstream->Handshake() != 1) {
    return;
  }
  // Second TLS leg to the origin (this is what makes Squid slower than
  // Apache in Fig. 7b: two handshakes, double en-/decryption).
  auto upstream_stream =
      network_->Dial(options_.upstream_address, options_.upstream_latency_nanos);
  if (!upstream_stream.ok()) {
    downstream->Close();
    return;
  }

  // The upstream leg runs either through LibSEAL (the paper's deployment:
  // one TLS library for the whole proxy) or through plain TLS.
  std::function<size_t(uint8_t*, size_t)> upstream_read;
  std::function<bool(const std::string&)> upstream_write;
  std::function<void()> upstream_close;

  std::unique_ptr<tls::StreamBio> plain_bio;
  std::unique_ptr<tls::TlsConnection> plain_upstream;
  core::LibSealSsl* seal_upstream = nullptr;

  if (options_.upstream_runtime != nullptr) {
    seal_upstream =
        options_.upstream_runtime->SslNew(upstream_stream->get(), tls::Role::kClient);
    if (seal_upstream == nullptr ||
        options_.upstream_runtime->SslHandshake(seal_upstream) != 1) {
      if (seal_upstream != nullptr) {
        options_.upstream_runtime->SslFree(seal_upstream);
      }
      downstream->Close();
      return;
    }
    core::LibSealRuntime* runtime = options_.upstream_runtime;
    upstream_read = [runtime, seal_upstream](uint8_t* buf, size_t max) {
      int n = runtime->SslRead(seal_upstream, buf, static_cast<int>(max));
      return n <= 0 ? size_t{0} : static_cast<size_t>(n);
    };
    upstream_write = [runtime, seal_upstream](const std::string& data) {
      return runtime->SslWrite(seal_upstream, reinterpret_cast<const uint8_t*>(data.data()),
                               static_cast<int>(data.size())) >= 0;
    };
    upstream_close = [runtime, seal_upstream] { runtime->SslShutdown(seal_upstream); };
  } else {
    plain_bio = std::make_unique<tls::StreamBio>(upstream_stream->get());
    plain_upstream = std::make_unique<tls::TlsConnection>(plain_bio.get(),
                                                          &options_.upstream_tls,
                                                          tls::Role::kClient);
    if (!plain_upstream->Handshake().ok()) {
      downstream->Close();
      return;
    }
    tls::TlsConnection* conn = plain_upstream.get();
    upstream_read = [conn](uint8_t* buf, size_t max) {
      auto n = conn->Read(buf, max);
      return n.ok() ? *n : size_t{0};
    };
    upstream_write = [conn](const std::string& data) { return conn->Write(data).ok(); };
    upstream_close = [conn] { conn->Close(); };
  }

  for (;;) {
    auto request = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
      int n = downstream->Read(buf, static_cast<int>(max));
      return n <= 0 ? size_t{0} : static_cast<size_t>(n);
    });
    if (!request.ok()) {
      break;
    }
    if (!upstream_write(*request)) {
      break;
    }
    auto response = http::ReadHttpMessage(upstream_read);
    if (!response.ok()) {
      break;
    }
    if (downstream->Write(reinterpret_cast<const uint8_t*>(response->data()),
                          static_cast<int>(response->size())) < 0) {
      break;
    }
    requests_proxied_.fetch_add(1, std::memory_order_relaxed);
  }
  upstream_close();
  if (seal_upstream != nullptr) {
    options_.upstream_runtime->SslFree(seal_upstream);
  }
  downstream->Close();
}

}  // namespace seal::services
