// Simulated Git hosting service (smart-HTTP shape) plus a client/workload
// generator and the attack injector for the §6.2 experiments.
//
// Protocol:
//   POST /<repo>/git-receive-pack   body: "UPDATE <branch> <cid>\n" |
//                                         "DELETE <branch>\n" lines
//   GET  /<repo>/info/refs          response body: "REF <branch> <cid>\n"
#ifndef SRC_SERVICES_GIT_SERVICE_H_
#define SRC_SERVICES_GIT_SERVICE_H_

#include <map>
#include <mutex>
#include <string>

#include "src/common/rng.h"
#include "src/http/http.h"

namespace seal::services {

// The Git backend: authoritative ref store with injectable misbehaviour
// (the integrity violations of Torres-Arias et al. the paper detects).
class GitBackend {
 public:
  enum class Attack {
    kNone,
    kRollback,       // advertise a previous commit for one branch
    kTeleport,       // advertise a commit belonging to another branch
    kRefDeletion,    // silently omit a branch from advertisements
  };

  http::HttpResponse Handle(const http::HttpRequest& request);

  void set_attack(Attack attack) { attack_ = attack; }

  // Direct inspection for tests.
  std::map<std::string, std::string> Refs(const std::string& repo);

 private:
  struct Repo {
    std::map<std::string, std::string> refs;              // branch -> cid
    std::map<std::string, std::string> previous_refs;     // branch -> prior cid
  };

  std::mutex mutex_;
  std::map<std::string, Repo> repos_;
  Attack attack_ = Attack::kNone;
};

// Client-side helpers producing protocol messages.
http::HttpRequest MakeGitPush(const std::string& repo,
                              const std::map<std::string, std::string>& updates,
                              const std::vector<std::string>& deletions = {});
http::HttpRequest MakeGitFetch(const std::string& repo, bool libseal_check = false);

// Parses an advertisement body into branch -> cid.
std::map<std::string, std::string> ParseAdvertisement(const std::string& body);

// Deterministic commit-history replay workload (the §6.4 experiment
// replays the first few hundred commits of real repositories; we generate
// an equivalent synthetic history: a stream of pushes with periodic
// fetches across a configurable number of branches).
class GitWorkload {
 public:
  GitWorkload(std::string repo, int branches, uint64_t seed);

  // Returns the i-th request of the replay (pushes with a fetch every
  // `fetch_every` operations).
  http::HttpRequest Next();

 private:
  std::string repo_;
  int branches_;
  SplitMix64 rng_;
  uint64_t commit_counter_ = 0;
  uint64_t op_counter_ = 0;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_GIT_SERVICE_H_
