#include "src/services/static_content.h"

namespace seal::services {

http::HttpResponse ServeStaticContent(const http::HttpRequest& request) {
  size_t size = 0;
  size_t pos = request.target.find("size=");
  if (pos != std::string::npos) {
    size = std::strtoul(request.target.c_str() + pos + 5, nullptr, 10);
  }
  http::HttpResponse rsp;
  rsp.SetHeader("Content-Type", "application/octet-stream");
  rsp.body.assign(size, 'x');
  return rsp;
}

http::HttpRequest MakeContentRequest(size_t size, bool keep_alive) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/content?size=" + std::to_string(size);
  if (!keep_alive) {
    req.SetHeader("Connection", "close");
  }
  return req;
}

}  // namespace seal::services
