#include "src/services/messaging_service.h"

#include "src/json/json.h"

namespace seal::services {

namespace {

http::HttpResponse JsonResponse(const json::JsonValue& value, int status = 200) {
  http::HttpResponse rsp;
  rsp.status = status;
  rsp.reason = status == 200 ? "OK" : "Bad Request";
  rsp.SetHeader("Content-Type", "application/json");
  rsp.body = value.Dump();
  return rsp;
}

}  // namespace

http::HttpResponse MessagingService::Handle(const http::HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);

  if (request.method == "POST" && request.target == "/msg/send") {
    auto body = json::Parse(request.body);
    if (!body.ok()) {
      return JsonResponse(json::Obj({{"error", "bad json"}}), 400);
    }
    Message message;
    message.from = body->Get("from").AsString();
    message.id = body->Get("id").AsString();
    message.body = body->Get("body").AsString();
    queues_[body->Get("to").AsString()].push_back(std::move(message));
    return JsonResponse(json::Obj({{"ok", true}}));
  }

  if (request.method == "GET" && request.target.rfind("/msg/inbox", 0) == 0) {
    std::string user;
    size_t q = request.target.find("user=");
    if (q != std::string::npos) {
      size_t end = request.target.find('&', q);
      user = request.target.substr(q + 5,
                                   end == std::string::npos ? std::string::npos : end - q - 5);
    }
    std::deque<Message>& queue = queues_[user];
    json::JsonArray delivered;
    bool attacked = false;
    for (const Message& message : queue) {
      std::string body = message.body;
      if (attack_ == Attack::kDropMessage && !attacked) {
        attacked = true;  // this message is silently lost
        continue;
      }
      if (attack_ == Attack::kModifyMessage && !attacked) {
        body += " [rewritten]";
        attacked = true;
      }
      delivered.push_back(
          json::Obj({{"from", message.from}, {"id", message.id}, {"body", body}}));
      if (attack_ == Attack::kDuplicate && !attacked) {
        delivered.push_back(
            json::Obj({{"from", message.from}, {"id", message.id}, {"body", body}}));
        attacked = true;
      }
    }
    queue.clear();
    return JsonResponse(json::Obj({{"messages", json::JsonValue(std::move(delivered))}}));
  }

  http::HttpResponse rsp;
  rsp.status = 404;
  rsp.reason = "Not Found";
  return rsp;
}

http::HttpRequest MakeSendMessage(const std::string& from, const std::string& to,
                                  const std::string& id, const std::string& body) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/msg/send";
  req.SetHeader("Content-Type", "application/json");
  req.body = json::Obj({{"from", from}, {"to", to}, {"id", id}, {"body", body}}).Dump();
  return req;
}

http::HttpRequest MakeInboxPoll(const std::string& user, bool libseal_check) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/msg/inbox?user=" + user;
  if (libseal_check) {
    req.SetHeader("Libseal-Check", "1");
  }
  return req;
}

}  // namespace seal::services
