#include "src/services/owncloud_service.h"

#include "src/json/json.h"

namespace seal::services {

namespace {

http::HttpResponse JsonResponse(const json::JsonValue& value, int status = 200) {
  http::HttpResponse rsp;
  rsp.status = status;
  rsp.reason = status == 200 ? "OK" : "Bad Request";
  rsp.SetHeader("Content-Type", "application/json");
  rsp.body = value.Dump();
  return rsp;
}

std::string QueryParam(const std::string& target, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = target.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = target.find('&', start);
  return target.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

}  // namespace

http::HttpResponse OwnCloudService::Handle(const http::HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);

  if (request.method == "POST" && request.target == "/docs/sync") {
    auto body = json::Parse(request.body);
    if (!body.ok()) {
      return JsonResponse(json::Obj({{"error", "bad json"}}), 400);
    }
    std::string doc_name = body->Get("doc").AsString();
    Document& doc = docs_[doc_name];
    if (doc.session == 0) {
      doc.session = next_session_++;
    }
    Update update;
    update.client = body->Get("client").AsString();
    update.seq = body->Get("seq").AsInt();
    update.text = body->Get("text").AsString();
    doc.updates.push_back(update);
    // The response confirms the session the update was applied to; the SSM
    // logs this value.
    return JsonResponse(json::Obj({{"ok", true}, {"session", doc.session}}));
  }

  if (request.method == "POST" && request.target == "/docs/snapshot") {
    auto body = json::Parse(request.body);
    if (!body.ok()) {
      return JsonResponse(json::Obj({{"error", "bad json"}}), 400);
    }
    std::string doc_name = body->Get("doc").AsString();
    Document& doc = docs_[doc_name];
    if (doc.session == 0) {
      doc.session = next_session_++;
    }
    doc.previous_snapshot = doc.snapshot;
    doc.snapshot = body->Get("content").AsString();
    return JsonResponse(json::Obj({{"ok", true}, {"session", doc.session}}));
  }

  if (request.method == "GET" && request.target.rfind("/docs/join", 0) == 0) {
    std::string doc_name = QueryParam(request.target, "doc");
    Document& doc = docs_[doc_name];
    if (doc.session == 0) {
      doc.session = next_session_++;
    }
    std::string snapshot = doc.snapshot;
    std::vector<Update> updates = doc.updates;
    switch (attack_) {
      case Attack::kNone:
        break;
      case Attack::kDropUpdate:
        if (!updates.empty()) {
          updates.erase(updates.begin());  // a lost edit
        }
        break;
      case Attack::kStaleSnapshot:
        snapshot = doc.previous_snapshot;
        break;
    }
    json::JsonArray served;
    for (const Update& u : updates) {
      served.push_back(json::Obj({{"client", u.client}, {"seq", u.seq}, {"text", u.text}}));
    }
    return JsonResponse(json::Obj({{"session", doc.session},
                                   {"snapshot", snapshot},
                                   {"updates", json::JsonValue(std::move(served))}}));
  }

  http::HttpResponse rsp;
  rsp.status = 404;
  rsp.reason = "Not Found";
  return rsp;
}

http::HttpRequest MakeOwnCloudSync(const std::string& doc, int64_t session,
                                   const std::string& client, int64_t seq,
                                   const std::string& text) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/docs/sync";
  req.SetHeader("Content-Type", "application/json");
  req.body = json::Obj({{"doc", doc}, {"session", session}, {"client", client}, {"seq", seq},
                        {"text", text}})
                 .Dump();
  return req;
}

http::HttpRequest MakeOwnCloudSnapshot(const std::string& doc, int64_t session,
                                       const std::string& client, const std::string& content) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/docs/snapshot";
  req.SetHeader("Content-Type", "application/json");
  req.body =
      json::Obj({{"doc", doc}, {"session", session}, {"client", client}, {"content", content}})
          .Dump();
  return req;
}

http::HttpRequest MakeOwnCloudJoin(const std::string& doc, const std::string& client,
                                   bool libseal_check) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/docs/join?doc=" + doc + "&client=" + client;
  if (libseal_check) {
    req.SetHeader("Libseal-Check", "1");
  }
  return req;
}

OwnCloudWorkload::OwnCloudWorkload(int documents, int clients, uint64_t seed)
    : documents_(documents), clients_(clients), rng_(seed) {}

http::HttpRequest OwnCloudWorkload::Next() {
  std::string doc = "doc-" + std::to_string(rng_.Below(static_cast<uint64_t>(documents_)));
  std::string client = "client-" + std::to_string(rng_.Below(static_cast<uint64_t>(clients_)));
  uint64_t kind = rng_.Below(100);
  if (kind < 70) {
    // Single-character edit (the common case in §6.4).
    return MakeOwnCloudSync(doc, 0, client, ++seq_, std::string(1, 'a' + char(rng_.Below(26))));
  }
  if (kind < 85) {
    // Whole-paragraph edit.
    return MakeOwnCloudSync(doc, 0, client, ++seq_, rng_.Ident(200));
  }
  if (kind < 95) {
    return MakeOwnCloudJoin(doc, client);
  }
  return MakeOwnCloudSnapshot(doc, 0, client, rng_.Ident(100));
}

}  // namespace seal::services
