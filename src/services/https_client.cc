#include "src/services/https_client.h"

namespace seal::services {

void ClientSessionStore::Remember(const std::string& address, tls::TlsSession session) {
  if (!session.valid()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_[address] = std::move(session);
}

tls::TlsSession ClientSessionStore::Lookup(const std::string& address) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(address);
  return it == sessions_.end() ? tls::TlsSession{} : it->second;
}

void ClientSessionStore::Forget(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.erase(address);
}

Result<std::unique_ptr<HttpsClient>> HttpsClient::Connect(net::Network* network,
                                                          const std::string& address,
                                                          const tls::TlsConfig& config,
                                                          int64_t latency_nanos,
                                                          int64_t bandwidth_bytes_per_sec,
                                                          ClientSessionStore* sessions) {
  auto stream = network->Dial(address, latency_nanos, bandwidth_bytes_per_sec);
  if (!stream.ok()) {
    return stream.status();
  }
  auto client = std::unique_ptr<HttpsClient>(new HttpsClient());
  client->stream_ = std::move(*stream);
  client->bio_ = std::make_unique<tls::StreamBio>(client->stream_.get());
  client->tls_ =
      std::make_unique<tls::TlsConnection>(client->bio_.get(), &config, tls::Role::kClient);
  if (sessions != nullptr) {
    client->tls_->OfferSession(sessions->Lookup(address));
  }
  SEAL_RETURN_IF_ERROR(client->tls_->Handshake());
  if (sessions != nullptr) {
    // Full or abbreviated, the completed handshake's session is the one to
    // re-offer next time (a full handshake means the old one is stale).
    sessions->Remember(address, client->tls_->ExportSession());
  }
  return client;
}

Result<http::HttpResponse> HttpsClient::RoundTrip(const http::HttpRequest& request) {
  std::string wire = request.Serialize();
  SEAL_RETURN_IF_ERROR(tls_->Write(wire));
  auto raw = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
    auto n = tls_->Read(buf, max);
    return n.ok() ? *n : size_t{0};
  });
  if (!raw.ok()) {
    return raw.status();
  }
  return http::ParseResponse(*raw);
}

void HttpsClient::Close() {
  if (tls_ != nullptr) {
    tls_->Close();
  }
}

Result<http::HttpResponse> OneShotRequest(net::Network* network, const std::string& address,
                                          const tls::TlsConfig& config,
                                          const http::HttpRequest& request,
                                          int64_t latency_nanos,
                                          int64_t bandwidth_bytes_per_sec,
                                          ClientSessionStore* sessions) {
  auto client = HttpsClient::Connect(network, address, config, latency_nanos,
                                     bandwidth_bytes_per_sec, sessions);
  if (!client.ok()) {
    return client.status();
  }
  auto response = (*client)->RoundTrip(request);
  (*client)->Close();
  return response;
}

}  // namespace seal::services
