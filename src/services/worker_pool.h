// Bounded worker pool for serving accepted connections. Replaces the old
// thread-per-connection scheme in HttpServer/ProxyServer, which grew one
// std::thread per connection ever accepted and only reaped them at Stop():
// a long-lived server leaked threads without bound. The pool spawns a fixed
// number of workers once; accepted connections queue and are served as
// workers free up.
#ifndef SRC_SERVICES_WORKER_POOL_H_
#define SRC_SERVICES_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace seal::services {

class ConnectionWorkerPool {
 public:
  struct Options {
    // Fixed worker count; the hard ceiling on connection concurrency.
    size_t workers = 16;
    // Label for the queue-depth gauge: server_pool_queue_depth{pool="..."}.
    std::string name = "server";
  };

  explicit ConnectionWorkerPool(Options options);
  ~ConnectionWorkerPool();

  ConnectionWorkerPool(const ConnectionWorkerPool&) = delete;
  ConnectionWorkerPool& operator=(const ConnectionWorkerPool&) = delete;

  // Spawns the workers. Submit before Start is allowed; tasks queue.
  void Start();
  // Joins all workers. Queued tasks that never started are dropped (their
  // closures are destroyed, which closes any captured streams).
  void Stop();

  // Enqueues a connection-serving task. No-op after Stop.
  void Submit(std::function<void()> task);

  // Number of live worker threads (the regression tests assert this stays
  // at the configured bound no matter how many connections were served).
  size_t worker_count() const;
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_WORKER_POOL_H_
