#include "src/services/sharded_transport.h"

#include <algorithm>

namespace seal::services {

namespace {

// ClientHello prologue offsets (see src/tls/connection.cc): record header
// type(1)=22 || version(2) || length(2), then the handshake message
// type(1)=1 || length(3) || random(32) || sid_len(1) || sid.
constexpr size_t kRecordHeaderSize = 5;
constexpr size_t kHelloFixedSize = kRecordHeaderSize + 4 + 32 + 1;  // through sid_len
constexpr uint8_t kHandshakeRecord = 22;
constexpr uint8_t kClientHelloMsg = 1;
constexpr size_t kMaxSessionIdSize = 32;

// FNV-1a over the session id: the stable fallback route for ids the
// router has not learned.
uint64_t HashSessionId(BytesView sid) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : sid) {
    h = (h ^ b) * 1099511628211ull;
  }
  return h;
}

}  // namespace

std::optional<Bytes> ParseClientHelloSessionId(BytesView prefix) {
  if (prefix.size() < kHelloFixedSize) {
    return std::nullopt;
  }
  if (prefix[0] != kHandshakeRecord || prefix[kRecordHeaderSize] != kClientHelloMsg) {
    return std::nullopt;
  }
  size_t sid_len = prefix[kHelloFixedSize - 1];
  if (sid_len > kMaxSessionIdSize || prefix.size() < kHelloFixedSize + sid_len) {
    return std::nullopt;
  }
  return Bytes(prefix.begin() + static_cast<ptrdiff_t>(kHelloFixedSize),
               prefix.begin() + static_cast<ptrdiff_t>(kHelloFixedSize + sid_len));
}

size_t ShardRouter::BucketFor(BytesView session_id) {
  return session_id.empty() ? 0 : session_id[0] % kBuckets;
}

void ShardRouter::Learn(BytesView session_id, uint32_t shard) {
  if (session_id.empty()) {
    return;
  }
  Bucket& bucket = buckets_[BucketFor(session_id)];
  std::lock_guard<std::mutex> lock(bucket.mutex);
  bucket.sessions[Bytes(session_id.begin(), session_id.end())] = shard;
}

std::optional<uint32_t> ShardRouter::Lookup(BytesView session_id) const {
  if (session_id.empty()) {
    return std::nullopt;
  }
  const Bucket& bucket = buckets_[BucketFor(session_id)];
  std::lock_guard<std::mutex> lock(bucket.mutex);
  auto it = bucket.sessions.find(Bytes(session_id.begin(), session_id.end()));
  if (it == bucket.sessions.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t ShardRouter::size() const {
  size_t total = 0;
  for (const Bucket& bucket : buckets_) {
    std::lock_guard<std::mutex> lock(bucket.mutex);
    total += bucket.sessions.size();
  }
  return total;
}

// Defers the shard choice to Handshake(): peek the ClientHello, route,
// unread, then delegate every ServerConnection operation to the chosen
// shard's real connection. Namespace-scope (not anonymous) so the friend
// declaration in ShardedTransport reaches it.
class ShardedConnection : public ServerConnection {
 public:
  ShardedConnection(ShardedTransport* transport, net::StreamPtr stream)
      : transport_(transport), stream_(std::move(stream)) {}

  int Handshake() override {
    if (inner_ != nullptr) {
      return -1;  // handshake already ran
    }
    uint32_t shard = ChooseShard();
    inner_ = transport_->transports_[shard]->Wrap(std::move(stream_));
    int rc = inner_->Handshake();
    if (rc == 1) {
      // Learn the (possibly fresh) session id so the NEXT connection
      // offering it resumes on this shard, where the enclave-resident
      // session cache holds the master secret.
      transport_->router_.Learn(inner_->session_id(), shard);
    }
    return rc;
  }

  int Read(uint8_t* buf, int len) override {
    return inner_ == nullptr ? -1 : inner_->Read(buf, len);
  }
  int Write(const uint8_t* buf, int len) override {
    return inner_ == nullptr ? -1 : inner_->Write(buf, len);
  }
  void Close() override {
    if (inner_ != nullptr) {
      inner_->Close();
    }
  }
  Bytes session_id() const override {
    return inner_ == nullptr ? Bytes{} : inner_->session_id();
  }

 private:
  // Reads the ClientHello prologue (blocking — cooperative-safe: in
  // reactor mode Stream::Read suspends the lthread), routes on the offered
  // session id, and pushes every consumed byte back so the shard's TLS
  // engine sees an untouched stream.
  uint32_t ChooseShard() {
    Bytes consumed;
    auto read_to = [&](size_t want) {
      uint8_t buf[512];
      while (consumed.size() < want) {
        size_t n = stream_->Read(buf, std::min(sizeof(buf), want - consumed.size()));
        if (n == 0) {
          return false;  // EOF mid-prologue
        }
        consumed.insert(consumed.end(), buf, buf + n);
      }
      return true;
    };
    std::optional<Bytes> sid;
    if (read_to(kHelloFixedSize) && consumed[0] == kHandshakeRecord) {
      size_t sid_len = consumed[kHelloFixedSize - 1];
      if (sid_len <= kMaxSessionIdSize && read_to(kHelloFixedSize + sid_len)) {
        sid = ParseClientHelloSessionId(consumed);
      }
    }
    if (!consumed.empty()) {
      stream_->read_pipe()->Unread(consumed);
    }
    if (!sid.has_value() || sid->empty()) {
      // Not parseable as TLS (the shard's handshake will reject it with
      // the same error an un-sharded server would give), or a fresh
      // client with nothing to resume: spread the load.
      return transport_->NextRoundRobin();
    }
    return transport_->RouteFor(*sid);
  }

  ShardedTransport* transport_;
  net::StreamPtr stream_;
  std::unique_ptr<ServerConnection> inner_;
};

ShardedTransport::ShardedTransport(core::ShardSet* shards) : shards_(shards) {
  transports_.reserve(shards_->shard_count());
  for (size_t k = 0; k < shards_->shard_count(); ++k) {
    transports_.push_back(std::make_unique<LibSealTransport>(&shards_->shard(k)));
  }
}

std::unique_ptr<ServerConnection> ShardedTransport::Wrap(net::StreamPtr stream) {
  return std::make_unique<ShardedConnection>(this, std::move(stream));
}

uint32_t ShardedTransport::RouteFor(BytesView session_id) const {
  auto learned = router_.Lookup(session_id);
  if (learned.has_value() && *learned < transports_.size()) {
    return *learned;
  }
  return core::ShardSet::ShardFor(HashSessionId(session_id), transports_.size());
}

uint32_t ShardedTransport::NextRoundRobin() {
  return static_cast<uint32_t>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                               transports_.size());
}

}  // namespace seal::services
