#include "src/services/dropbox_service.h"

#include "src/json/json.h"

namespace seal::services {

namespace {

http::HttpResponse JsonResponse(const json::JsonValue& value, int status = 200) {
  http::HttpResponse rsp;
  rsp.status = status;
  rsp.reason = status == 200 ? "OK" : "Bad Request";
  rsp.SetHeader("Content-Type", "application/json");
  rsp.body = value.Dump();
  return rsp;
}

std::string QueryParam(const std::string& target, const std::string& key) {
  std::string needle = key + "=";
  size_t pos = target.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = target.find('&', start);
  return target.substr(start, end == std::string::npos ? std::string::npos : end - start);
}

}  // namespace

http::HttpResponse DropboxService::Handle(const http::HttpRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);

  if (request.method == "POST" && request.target == "/commit_batch") {
    auto body = json::Parse(request.body);
    if (!body.ok()) {
      return JsonResponse(json::Obj({{"error", "bad json"}}), 400);
    }
    std::string account = body->Get("account").AsString();
    auto& files = accounts_[account];
    for (const json::JsonValue& commit : body->Get("commits").AsArray()) {
      std::string file = commit.Get("file").AsString();
      int64_t size = commit.Get("size").AsInt();
      if (size < 0) {
        files.erase(file);
      } else {
        files[file] = FileMeta{commit.Get("blocklist").AsString(), size};
      }
    }
    return JsonResponse(json::Obj({{"ok", true}}));
  }

  if (request.method == "GET" && request.target.rfind("/list", 0) == 0) {
    std::string account = QueryParam(request.target, "account");
    auto& files = accounts_[account];
    json::JsonArray listed;
    bool omitted = false;
    bool corrupted = false;
    for (const auto& [file, meta] : files) {
      if (attack_ == Attack::kOmitFile && !omitted) {
        omitted = true;  // silently drop the first live file
        continue;
      }
      std::string blocklist = meta.blocklist;
      if (attack_ == Attack::kCorruptBlocklist && !corrupted) {
        blocklist = "deadbeef" + blocklist;  // metadata corruption
        corrupted = true;
      }
      listed.push_back(json::Obj(
          {{"file", file}, {"blocklist", blocklist}, {"size", meta.size}}));
    }
    return JsonResponse(
        json::Obj({{"host", "dropbox-sim"}, {"files", json::JsonValue(std::move(listed))}}));
  }

  http::HttpResponse rsp;
  rsp.status = 404;
  rsp.reason = "Not Found";
  return rsp;
}

http::HttpRequest MakeCommitBatch(const std::string& account, const std::string& host,
                                  const std::vector<DropboxCommit>& commits) {
  json::JsonArray commit_array;
  for (const DropboxCommit& commit : commits) {
    commit_array.push_back(json::Obj(
        {{"file", commit.file}, {"blocklist", commit.blocklist}, {"size", commit.size}}));
  }
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/commit_batch";
  req.SetHeader("Content-Type", "application/json");
  req.body = json::Obj({{"account", account},
                        {"host", host},
                        {"commits", json::JsonValue(std::move(commit_array))}})
                 .Dump();
  return req;
}

http::HttpRequest MakeListRequest(const std::string& account, bool libseal_check) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/list?account=" + account;
  if (libseal_check) {
    req.SetHeader("Libseal-Check", "1");
  }
  return req;
}

DropboxWorkload::DropboxWorkload(std::string account, uint64_t seed)
    : account_(std::move(account)), rng_(seed) {}

http::HttpRequest DropboxWorkload::Next() {
  ++op_counter_;
  if (op_counter_ % 4 == 0) {
    return MakeListRequest(account_);
  }
  uint64_t kind = rng_.Below(100);
  if (kind < 70 || live_files_.empty()) {
    // Create or update a file: blocklist of 1-4 "4 MB block" hashes.
    std::string file = (kind < 50 || live_files_.empty())
                           ? "file-" + std::to_string(++file_counter_) + ".bin"
                           : live_files_[rng_.Below(live_files_.size())];
    int blocks = 1 + static_cast<int>(rng_.Below(4));
    std::string blocklist;
    for (int i = 0; i < blocks; ++i) {
      blocklist += rng_.Ident(16);
    }
    if (std::find(live_files_.begin(), live_files_.end(), file) == live_files_.end()) {
      live_files_.push_back(file);
    }
    return MakeCommitBatch(account_, "host-1",
                           {DropboxCommit{file, blocklist, blocks * 4 * 1024 * 1024}});
  }
  // Delete a live file.
  size_t index = rng_.Below(live_files_.size());
  std::string file = live_files_[index];
  live_files_.erase(live_files_.begin() + static_cast<ptrdiff_t>(index));
  return MakeCommitBatch(account_, "host-1", {DropboxCommit{file, "", -1}});
}

}  // namespace seal::services
