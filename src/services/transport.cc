#include "src/services/transport.h"

namespace seal::services {

namespace {

class PlainConnection : public ServerConnection {
 public:
  PlainConnection(net::StreamPtr stream, const tls::TlsConfig* config)
      : stream_(std::move(stream)),
        bio_(stream_.get()),
        tls_(&bio_, config, tls::Role::kServer) {}

  int Handshake() override { return tls_.Handshake().ok() ? 1 : -1; }

  int Read(uint8_t* buf, int len) override {
    auto n = tls_.Read(buf, static_cast<size_t>(len));
    return n.ok() ? static_cast<int>(*n) : -1;
  }

  int Write(const uint8_t* buf, int len) override {
    return tls_.Write(BytesView(buf, static_cast<size_t>(len))).ok() ? len : -1;
  }

  void Close() override { tls_.Close(); }

  Bytes session_id() const override { return tls_.session_id(); }

 private:
  net::StreamPtr stream_;
  tls::StreamBio bio_;
  tls::TlsConnection tls_;
};

class LibSealConnection : public ServerConnection {
 public:
  LibSealConnection(net::StreamPtr stream, core::LibSealRuntime* runtime)
      : stream_(std::move(stream)), runtime_(runtime) {
    ssl_ = runtime_->SslNew(stream_.get(), tls::Role::kServer);
  }

  ~LibSealConnection() override {
    if (ssl_ != nullptr) {
      runtime_->SslFree(ssl_);
    }
  }

  int Handshake() override {
    return ssl_ == nullptr ? -1 : runtime_->SslHandshake(ssl_);
  }

  int Read(uint8_t* buf, int len) override {
    return ssl_ == nullptr ? -1 : runtime_->SslRead(ssl_, buf, len);
  }

  int Write(const uint8_t* buf, int len) override {
    return ssl_ == nullptr ? -1 : runtime_->SslWrite(ssl_, buf, len);
  }

  void Close() override {
    if (ssl_ != nullptr) {
      runtime_->SslShutdown(ssl_);
    }
  }

  Bytes session_id() const override {
    if (ssl_ == nullptr || ssl_->session_id_len == 0) {
      return {};
    }
    // From the sanitised shadow (synced at the handshake ecall): the id is
    // plaintext on the wire, so exposing it outside leaks nothing.
    return Bytes(ssl_->session_id, ssl_->session_id + ssl_->session_id_len);
  }

 private:
  net::StreamPtr stream_;
  core::LibSealRuntime* runtime_;
  core::LibSealSsl* ssl_;
};

}  // namespace

std::unique_ptr<ServerConnection> PlainTransport::Wrap(net::StreamPtr stream) {
  return std::make_unique<PlainConnection>(std::move(stream), &config_);
}

std::unique_ptr<ServerConnection> LibSealTransport::Wrap(net::StreamPtr stream) {
  return std::make_unique<LibSealConnection>(std::move(stream), runtime_);
}

}  // namespace seal::services
