// Simulated ownCloud Documents service: collaborative document sessions
// with JSON synchronisation messages, plus the attack injector for lost
// edits and stale snapshots (§6.1, §6.2).
//
// Protocol:
//   POST /docs/sync      {"doc","session","client","seq","text"}
//   POST /docs/snapshot  {"doc","session","client","content"}
//   GET  /docs/join?doc=D&client=C ->
//        {"session":N,"snapshot":S,"updates":[{"client","seq","text"},...]}
#ifndef SRC_SERVICES_OWNCLOUD_SERVICE_H_
#define SRC_SERVICES_OWNCLOUD_SERVICE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/http/http.h"

namespace seal::services {

class OwnCloudService {
 public:
  enum class Attack {
    kNone,
    kDropUpdate,     // serve joins with one update missing (lost edit)
    kStaleSnapshot,  // serve an outdated snapshot
  };

  http::HttpResponse Handle(const http::HttpRequest& request);
  void set_attack(Attack attack) { attack_ = attack; }

  // Allocates a fresh globally-unique session for a document (clients call
  // this implicitly by joining a doc with no live session).
  struct Update {
    std::string client;
    int64_t seq;
    std::string text;
  };

 private:
  struct Document {
    int64_t session = 0;
    std::string snapshot;
    std::string previous_snapshot;
    std::vector<Update> updates;  // of the current session
  };

  std::mutex mutex_;
  std::map<std::string, Document> docs_;
  int64_t next_session_ = 1;
  Attack attack_ = Attack::kNone;
};

// Client-side message builders.
http::HttpRequest MakeOwnCloudSync(const std::string& doc, int64_t session,
                                   const std::string& client, int64_t seq,
                                   const std::string& text);
http::HttpRequest MakeOwnCloudSnapshot(const std::string& doc, int64_t session,
                                       const std::string& client, const std::string& content);
http::HttpRequest MakeOwnCloudJoin(const std::string& doc, const std::string& client,
                                   bool libseal_check = false);

// Workload: a population of clients editing documents (single characters
// and whole paragraphs, per §6.4), with periodic joins and snapshots.
class OwnCloudWorkload {
 public:
  OwnCloudWorkload(int documents, int clients, uint64_t seed);
  http::HttpRequest Next();

 private:
  int documents_;
  int clients_;
  SplitMix64 rng_;
  int64_t seq_ = 0;
  std::map<std::string, int64_t> session_by_doc_;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_OWNCLOUD_SERVICE_H_
