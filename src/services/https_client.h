// A simple HTTPS client (the libcurl stand-in used by all workloads).
#ifndef SRC_SERVICES_HTTPS_CLIENT_H_
#define SRC_SERVICES_HTTPS_CLIENT_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/http/http.h"
#include "src/net/net.h"
#include "src/tls/tls.h"

namespace seal::services {

class HttpsClient {
 public:
  // Connects and performs the TLS handshake. `latency_nanos` sets the
  // one-way link latency (76 ms to "Dropbox" in §6.4).
  // NOTE: `config` must outlive the client (the TLS engine keeps a
  // pointer to it).
  static Result<std::unique_ptr<HttpsClient>> Connect(net::Network* network,
                                                      const std::string& address,
                                                      const tls::TlsConfig& config,
                                                      int64_t latency_nanos = 0,
                                                      int64_t bandwidth_bytes_per_sec = 0);

  // Sends one request and reads the full response (keep-alive).
  Result<http::HttpResponse> RoundTrip(const http::HttpRequest& request);

  void Close();

  const tls::TlsConnection& tls() const { return *tls_; }

 private:
  HttpsClient() = default;

  net::StreamPtr stream_;
  std::unique_ptr<tls::StreamBio> bio_;
  std::unique_ptr<tls::TlsConnection> tls_;
};

// Convenience: one-shot request over a fresh connection (the
// "non-persistent connections" mode of §6.6).
Result<http::HttpResponse> OneShotRequest(net::Network* network, const std::string& address,
                                          const tls::TlsConfig& config,
                                          const http::HttpRequest& request,
                                          int64_t latency_nanos = 0,
                                          int64_t bandwidth_bytes_per_sec = 0);

}  // namespace seal::services

#endif  // SRC_SERVICES_HTTPS_CLIENT_H_
