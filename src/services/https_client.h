// A simple HTTPS client (the libcurl stand-in used by all workloads).
#ifndef SRC_SERVICES_HTTPS_CLIENT_H_
#define SRC_SERVICES_HTTPS_CLIENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/http/http.h"
#include "src/net/net.h"
#include "src/tls/tls.h"

namespace seal::services {

// Remembers the last TLS session per endpoint so reconnecting clients can
// offer it and take the abbreviated handshake (the libcurl session-cache
// analogue). Thread-safe; share one store across a client fleet.
class ClientSessionStore {
 public:
  void Remember(const std::string& address, tls::TlsSession session);
  // Last session for `address`, or an invalid (empty) session.
  tls::TlsSession Lookup(const std::string& address) const;
  // Drops the endpoint's session (e.g. after the server declined it).
  void Forget(const std::string& address);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::string, tls::TlsSession> sessions_;
};

class HttpsClient {
 public:
  // Connects and performs the TLS handshake. `latency_nanos` sets the
  // one-way link latency (76 ms to "Dropbox" in §6.4). When `sessions` is
  // given, the client offers the endpoint's remembered session (abbreviated
  // handshake if the server still caches it) and remembers the session this
  // handshake establishes.
  // NOTE: `config` must outlive the client (the TLS engine keeps a
  // pointer to it).
  static Result<std::unique_ptr<HttpsClient>> Connect(net::Network* network,
                                                      const std::string& address,
                                                      const tls::TlsConfig& config,
                                                      int64_t latency_nanos = 0,
                                                      int64_t bandwidth_bytes_per_sec = 0,
                                                      ClientSessionStore* sessions = nullptr);

  // Sends one request and reads the full response (keep-alive).
  Result<http::HttpResponse> RoundTrip(const http::HttpRequest& request);

  void Close();

  const tls::TlsConnection& tls() const { return *tls_; }

 private:
  HttpsClient() = default;

  net::StreamPtr stream_;
  std::unique_ptr<tls::StreamBio> bio_;
  std::unique_ptr<tls::TlsConnection> tls_;
};

// Convenience: one-shot request over a fresh connection (the
// "non-persistent connections" mode of §6.6).
Result<http::HttpResponse> OneShotRequest(net::Network* network, const std::string& address,
                                          const tls::TlsConfig& config,
                                          const http::HttpRequest& request,
                                          int64_t latency_nanos = 0,
                                          int64_t bandwidth_bytes_per_sec = 0,
                                          ClientSessionStore* sessions = nullptr);

}  // namespace seal::services

#endif  // SRC_SERVICES_HTTPS_CLIENT_H_
