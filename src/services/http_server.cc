#include "src/services/http_server.h"

#include "src/common/clock.h"

namespace seal::services {

HttpServer::HttpServer(net::Network* network, Options options, ServerTransport* transport,
                       HttpHandler handler)
    : network_(network),
      options_(std::move(options)),
      transport_(transport),
      handler_(std::move(handler)),
      pool_(ConnectionWorkerPool::Options{options_.worker_threads, "http_server"}) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  auto listener = network_->Listen(options_.address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  running_.store(true, std::memory_order_release);
  pool_.Start();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_->Shutdown();
  network_->Unlisten(options_.address);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  pool_.Stop();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::StreamPtr stream = listener_->Accept();
    if (stream == nullptr) {
      return;  // shut down
    }
    // shared_ptr because std::function requires a copyable callable.
    auto s = std::make_shared<net::StreamPtr>(std::move(stream));
    pool_.Submit([this, s] { ServeConnection(std::move(*s)); });
  }
}

void HttpServer::ServeConnection(net::StreamPtr stream) {
  std::unique_ptr<ServerConnection> conn = transport_->Wrap(std::move(stream));
  if (conn->Handshake() != 1) {
    return;
  }
  for (;;) {
    auto raw = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
      int n = conn->Read(buf, static_cast<int>(max));
      return n <= 0 ? size_t{0} : static_cast<size_t>(n);
    });
    if (!raw.ok()) {
      break;  // client closed or garbage
    }
    auto request = http::ParseRequest(*raw);
    if (!request.ok()) {
      break;
    }
    if (options_.per_request_compute_nanos > 0) {
      // CPU time, not wall time: concurrent requests on a loaded machine
      // must not double-count the simulated application work.
      SpinCpuNanos(options_.per_request_compute_nanos);
    }
    http::HttpResponse response = handler_(*request);
    // Count before writing: a client that already has the response must
    // observe the request as served.
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    std::string wire = response.Serialize();
    if (conn->Write(reinterpret_cast<const uint8_t*>(wire.data()),
                    static_cast<int>(wire.size())) < 0) {
      break;
    }
    const std::string* connection_header = request->GetHeader("Connection");
    if (connection_header != nullptr && *connection_header == "close") {
      break;
    }
  }
  conn->Close();
}

}  // namespace seal::services
