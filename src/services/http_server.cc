#include "src/services/http_server.h"

#include "src/common/clock.h"

namespace seal::services {

HttpServer::HttpServer(net::Network* network, Options options, ServerTransport* transport,
                       HttpHandler handler)
    : network_(network),
      options_(std::move(options)),
      transport_(transport),
      handler_(std::move(handler)),
      pool_(ConnectionWorkerPool::Options{options_.worker_threads, "http_server"}) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start() {
  auto listener = network_->Listen(options_.address);
  if (!listener.ok()) {
    return listener.status();
  }
  listener_ = *listener;
  running_.store(true, std::memory_order_release);
  if (options_.event_driven) {
    reactor_ = std::make_unique<Reactor>(Reactor::Options{
        options_.reactor_threads, options_.reactor_task_stack_size, "reactor"});
    reactor_->Start();
  } else {
    pool_.Start();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  listener_->Shutdown();
  network_->Unlisten(options_.address);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Unwedge workers/tasks parked in a read on an idle keep-alive
  // connection BEFORE joining them: their next read returns EOF and the
  // serve loop exits. Without this, Stop() hangs behind any idle client.
  AbortLiveConnections();
  if (reactor_ != nullptr) {
    reactor_->Stop();
    reactor_.reset();
  } else {
    pool_.Stop();
  }
}

bool HttpServer::RegisterConnection(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  if (!running_.load(std::memory_order_acquire)) {
    return false;  // Stop already swept the registry; don't serve
  }
  live_conns_.insert(stream);
  return true;
}

void HttpServer::DeregisterConnection(net::Stream* stream) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  live_conns_.erase(stream);
}

void HttpServer::AbortLiveConnections() {
  // Abort under the registry lock: a stream present in the set cannot be
  // destroyed concurrently, because its server deregisters (same lock)
  // before destroying it.
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (net::Stream* stream : live_conns_) {
    stream->Abort();
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    net::StreamPtr stream = listener_->Accept();
    if (stream == nullptr) {
      return;  // shut down
    }
    if (reactor_ != nullptr) {
      reactor_->Serve(std::move(stream),
                      [this](net::StreamPtr s) { ServeConnection(std::move(s)); });
    } else {
      // shared_ptr because std::function requires a copyable callable.
      auto s = std::make_shared<net::StreamPtr>(std::move(stream));
      pool_.Submit([this, s] { ServeConnection(std::move(*s)); });
    }
  }
}

void HttpServer::ServeConnection(net::StreamPtr stream) {
  net::Stream* raw = stream.get();
  if (!RegisterConnection(raw)) {
    stream->Abort();
    return;
  }
  std::unique_ptr<ServerConnection> conn = transport_->Wrap(std::move(stream));
  if (conn->Handshake() == 1) {
    for (;;) {
      auto rawmsg = http::ReadHttpMessage([&](uint8_t* buf, size_t max) {
        int n = conn->Read(buf, static_cast<int>(max));
        return n <= 0 ? size_t{0} : static_cast<size_t>(n);
      });
      if (!rawmsg.ok()) {
        break;  // client closed or garbage
      }
      auto request = http::ParseRequest(*rawmsg);
      if (!request.ok()) {
        break;
      }
      if (options_.per_request_compute_nanos > 0) {
        // CPU time, not wall time: concurrent requests on a loaded machine
        // must not double-count the simulated application work.
        SpinCpuNanos(options_.per_request_compute_nanos);
      }
      http::HttpResponse response = handler_(*request);
      // Count before writing: a client that already has the response must
      // observe the request as served.
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      std::string wire = response.Serialize();
      if (conn->Write(reinterpret_cast<const uint8_t*>(wire.data()),
                      static_cast<int>(wire.size())) < 0) {
        break;
      }
      if (http::RequestsConnectionClose(*request)) {
        break;
      }
    }
    conn->Close();
  }
  // Deregister before the stream dies (conn owns it): after this line
  // Stop() can no longer see the pointer, so it never aborts freed pipes.
  DeregisterConnection(raw);
}

}  // namespace seal::services
