#include "src/services/git_service.h"

#include <sstream>

namespace seal::services {

namespace {

std::string RepoFromTarget(const std::string& target) {
  size_t start = target.find('/');
  if (start == std::string::npos) {
    return "";
  }
  size_t end = target.find('/', start + 1);
  if (end == std::string::npos) {
    end = target.find('?', start + 1);
  }
  if (end == std::string::npos) {
    end = target.size();
  }
  return target.substr(start + 1, end - start - 1);
}

http::HttpResponse NotFoundResponse() {
  http::HttpResponse rsp;
  rsp.status = 404;
  rsp.reason = "Not Found";
  return rsp;
}

}  // namespace

http::HttpResponse GitBackend::Handle(const http::HttpRequest& request) {
  std::string repo_name = RepoFromTarget(request.target);
  if (repo_name.empty()) {
    return NotFoundResponse();
  }
  std::lock_guard<std::mutex> lock(mutex_);

  if (request.method == "POST" &&
      request.target.find("git-receive-pack") != std::string::npos) {
    Repo& repo = repos_[repo_name];
    std::istringstream body(request.body);
    std::string op, branch, cid;
    while (body >> op) {
      if (op == "UPDATE" && body >> branch >> cid) {
        auto it = repo.refs.find(branch);
        if (it != repo.refs.end()) {
          repo.previous_refs[branch] = it->second;
        }
        repo.refs[branch] = cid;
      } else if (op == "DELETE" && body >> branch) {
        auto it = repo.refs.find(branch);
        if (it != repo.refs.end()) {
          repo.previous_refs[branch] = it->second;
          repo.refs.erase(it);
        }
      } else {
        break;
      }
    }
    http::HttpResponse rsp;
    rsp.body = "ok";
    return rsp;
  }

  if (request.method == "GET" && request.target.find("info/refs") != std::string::npos) {
    auto it = repos_.find(repo_name);
    if (it == repos_.end()) {
      return NotFoundResponse();
    }
    // Build the advertisement, applying any configured attack.
    std::map<std::string, std::string> advertised = it->second.refs;
    switch (attack_) {
      case Attack::kNone:
        break;
      case Attack::kRollback: {
        // Serve the previous commit for the first branch that has one.
        for (auto& [branch, cid] : advertised) {
          auto prev = it->second.previous_refs.find(branch);
          if (prev != it->second.previous_refs.end() && prev->second != cid) {
            cid = prev->second;
            break;
          }
        }
        break;
      }
      case Attack::kTeleport: {
        // Point the first branch at a commit from a DIFFERENT branch.
        if (advertised.size() >= 2) {
          auto first = advertised.begin();
          auto second = std::next(first);
          first->second = second->second;
        }
        break;
      }
      case Attack::kRefDeletion: {
        if (!advertised.empty()) {
          advertised.erase(advertised.begin());
        }
        break;
      }
    }
    http::HttpResponse rsp;
    std::string body;
    for (const auto& [branch, cid] : advertised) {
      body += "REF " + branch + " " + cid + "\n";
    }
    rsp.body = std::move(body);
    return rsp;
  }
  return NotFoundResponse();
}

std::map<std::string, std::string> GitBackend::Refs(const std::string& repo) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = repos_.find(repo);
  return it == repos_.end() ? std::map<std::string, std::string>{} : it->second.refs;
}

http::HttpRequest MakeGitPush(const std::string& repo,
                              const std::map<std::string, std::string>& updates,
                              const std::vector<std::string>& deletions) {
  http::HttpRequest req;
  req.method = "POST";
  req.target = "/" + repo + "/git-receive-pack";
  std::string body;
  for (const auto& [branch, cid] : updates) {
    body += "UPDATE " + branch + " " + cid + "\n";
  }
  for (const std::string& branch : deletions) {
    body += "DELETE " + branch + "\n";
  }
  req.body = std::move(body);
  return req;
}

http::HttpRequest MakeGitFetch(const std::string& repo, bool libseal_check) {
  http::HttpRequest req;
  req.method = "GET";
  req.target = "/" + repo + "/info/refs?service=git-upload-pack";
  if (libseal_check) {
    req.SetHeader("Libseal-Check", "1");
  }
  return req;
}

std::map<std::string, std::string> ParseAdvertisement(const std::string& body) {
  std::map<std::string, std::string> refs;
  std::istringstream in(body);
  std::string tag, branch, cid;
  while (in >> tag >> branch >> cid) {
    if (tag == "REF") {
      refs[branch] = cid;
    }
  }
  return refs;
}

GitWorkload::GitWorkload(std::string repo, int branches, uint64_t seed)
    : repo_(std::move(repo)), branches_(branches), rng_(seed) {}

http::HttpRequest GitWorkload::Next() {
  ++op_counter_;
  if (op_counter_ % 5 == 0) {
    return MakeGitFetch(repo_);
  }
  std::string branch = "branch-" + std::to_string(rng_.Below(static_cast<uint64_t>(branches_)));
  std::string cid = "c" + std::to_string(++commit_counter_) + "-" + rng_.Ident(8);
  return MakeGitPush(repo_, {{branch, cid}});
}

}  // namespace seal::services
