// A multi-threaded HTTPS server, the stand-in for Apache in the paper's
// evaluation: keep-alive, handler-based dispatch, and two connection
// models — a bounded blocking worker pool (thread per active connection)
// or the event-driven reactor (Options::event_driven), which multiplexes
// every connection onto a few lthread-scheduler threads.
#ifndef SRC_SERVICES_HTTP_SERVER_H_
#define SRC_SERVICES_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/http/http.h"
#include "src/net/net.h"
#include "src/services/reactor.h"
#include "src/services/transport.h"
#include "src/services/worker_pool.h"

namespace seal::services {

using HttpHandler = std::function<http::HttpResponse(const http::HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::string address;
    // Simulated per-request server-side compute (models the PHP engine
    // bottleneck in the ownCloud deployment, §6.4).
    int64_t per_request_compute_nanos = 0;
    // Blocking mode: connection-serving worker threads, the hard bound on
    // concurrent connections (excess accepted connections queue).
    size_t worker_threads = 16;
    // Event-driven mode: serve all connections on `reactor_threads`
    // lthread schedulers, one cooperative task per connection. Concurrency
    // is then bounded by memory (task stacks), not by thread count.
    bool event_driven = false;
    size_t reactor_threads = 2;
    size_t reactor_task_stack_size = 128 * 1024;
  };

  HttpServer(net::Network* network, Options options, ServerTransport* transport,
             HttpHandler handler);
  ~HttpServer();

  Status Start();
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(std::memory_order_relaxed); }

  // Live connection-serving threads; stays at the configured bound no
  // matter how many connections have been accepted.
  size_t worker_thread_count() const {
    return reactor_ != nullptr ? options_.reactor_threads : pool_.worker_count();
  }

 private:
  void AcceptLoop();
  void ServeConnection(net::StreamPtr stream);
  // Live-connection registry: lets Stop() abort streams that workers (or
  // reactor tasks) are parked in, so shutdown never wedges behind an idle
  // keep-alive connection.
  bool RegisterConnection(net::Stream* stream);
  void DeregisterConnection(net::Stream* stream);
  void AbortLiveConnections();

  net::Network* network_;
  Options options_;
  ServerTransport* transport_;
  HttpHandler handler_;

  std::shared_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  ConnectionWorkerPool pool_;
  std::unique_ptr<Reactor> reactor_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::mutex conns_mutex_;
  std::set<net::Stream*> live_conns_;
};

}  // namespace seal::services

#endif  // SRC_SERVICES_HTTP_SERVER_H_
