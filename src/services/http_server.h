// A multi-threaded HTTPS server, the stand-in for Apache in the paper's
// evaluation: bounded worker pool, keep-alive, handler-based dispatch.
#ifndef SRC_SERVICES_HTTP_SERVER_H_
#define SRC_SERVICES_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/common/status.h"
#include "src/http/http.h"
#include "src/net/net.h"
#include "src/services/transport.h"
#include "src/services/worker_pool.h"

namespace seal::services {

using HttpHandler = std::function<http::HttpResponse(const http::HttpRequest&)>;

class HttpServer {
 public:
  struct Options {
    std::string address;
    // Simulated per-request server-side compute (models the PHP engine
    // bottleneck in the ownCloud deployment, §6.4).
    int64_t per_request_compute_nanos = 0;
    // Connection-serving worker threads: the hard bound on concurrent
    // connections (excess accepted connections queue).
    size_t worker_threads = 16;
  };

  HttpServer(net::Network* network, Options options, ServerTransport* transport,
             HttpHandler handler);
  ~HttpServer();

  Status Start();
  void Stop();

  uint64_t requests_served() const { return requests_served_.load(std::memory_order_relaxed); }

  // Live connection-serving threads; stays at Options::worker_threads no
  // matter how many connections have been accepted.
  size_t worker_thread_count() const { return pool_.worker_count(); }

 private:
  void AcceptLoop();
  void ServeConnection(net::StreamPtr stream);

  net::Network* network_;
  Options options_;
  ServerTransport* transport_;
  HttpHandler handler_;

  std::shared_ptr<net::Listener> listener_;
  std::thread accept_thread_;
  ConnectionWorkerPool pool_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
};

}  // namespace seal::services

#endif  // SRC_SERVICES_HTTP_SERVER_H_
