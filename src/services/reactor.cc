#include "src/services/reactor.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::services {

// What Serve hands to a shard. shared_ptr because std::function (the task
// body) must be copyable.
struct Reactor::Pending {
  net::StreamPtr stream;
  std::function<void(net::StreamPtr)> serve;
};

// Per-connection context: the bridge between poller callbacks (any thread)
// and the connection's lthread task. Owned by its shard's registry; the
// task erases it as its LAST act before finishing, so anyone who finds a
// ConnCtx in the registry (under the shard mutex) holds a task that cannot
// have finished yet — Wake is then safe.
struct Reactor::ConnCtx {
  Shard* shard = nullptr;
  lthread::Task* task = nullptr;
  uint64_t id = 0;

  void Wake();  // defined after Shard (uses its scheduler)
};

struct Reactor::Shard {
  Reactor* reactor = nullptr;
  size_t index = 0;
  lthread::Scheduler scheduler;
  std::thread thread;

  std::mutex mutex;  // guards incoming and conns
  std::deque<std::shared_ptr<Pending>> incoming;
  std::map<uint64_t, std::unique_ptr<ConnCtx>> conns;
  uint64_t next_conn_id = 1;
};

void Reactor::ConnCtx::Wake() {
  SEAL_OBS_COUNTER("reactor_wakeups_total").Increment();
  shard->scheduler.MakeRunnableFromAnyThread(task);
}

// A stream whose blocking surface suspends the current lthread task
// (poller-armed Block) instead of the OS thread. Everything above the byte
// transport — TLS handshake, record layer, HTTP framing — runs unchanged.
class CooperativeStream : public net::Stream {
 public:
  CooperativeStream(net::StreamPtr inner, Reactor* reactor, Reactor::ConnCtx* ctx)
      : reactor_(reactor), ctx_(ctx) {
    AdoptPipes(std::move(inner));
  }

  // Unwatch before the pipes (and then the ConnCtx) can die: on return the
  // poller callbacks capturing ctx_ provably never fire again.
  ~CooperativeStream() override {
    if (has_read_watch_) {
      reactor_->poller_.Unwatch(read_watch_);
    }
    if (has_write_watch_) {
      reactor_->poller_.Unwatch(write_watch_);
    }
  }

  size_t Read(uint8_t* buf, size_t max) override {
    for (;;) {
      int64_t n = TryRead(buf, max);
      if (n >= 0) {
        return static_cast<size_t>(n);
      }
      if (reactor_->stopping()) {
        return 0;  // forced EOF: shutdown unblocks every parked connection
      }
      ArmRead();
      lthread::Scheduler::Block();
    }
  }

  void Write(BytesView data) override {
    while (!data.empty()) {
      int64_t n = TryWrite(data);
      if (n > 0) {
        data = data.subspan(static_cast<size_t>(n));
        continue;
      }
      if (reactor_->stopping()) {
        return;  // drop the rest; the peer is being torn down anyway
      }
      ArmWrite();
      lthread::Scheduler::Block();
    }
  }

 private:
  // One-shot arm (epoll-oneshot style): first use creates the watch, later
  // uses re-arm it. A pipe that is already ready fires the wake before
  // Block() runs; the scheduler's wake token makes that race benign.
  void ArmRead() {
    if (!has_read_watch_) {
      Reactor::ConnCtx* ctx = ctx_;
      read_watch_ =
          reactor_->poller_.Watch(read_pipe(), net::Poller::Interest::kRead, [ctx] { ctx->Wake(); });
      has_read_watch_ = true;
    } else {
      reactor_->poller_.Rearm(read_watch_);
    }
  }

  void ArmWrite() {
    if (!has_write_watch_) {
      Reactor::ConnCtx* ctx = ctx_;
      write_watch_ = reactor_->poller_.Watch(write_pipe(), net::Poller::Interest::kWrite,
                                             [ctx] { ctx->Wake(); });
      has_write_watch_ = true;
    } else {
      reactor_->poller_.Rearm(write_watch_);
    }
  }

  Reactor* reactor_;
  Reactor::ConnCtx* ctx_;
  uint64_t read_watch_ = 0;
  uint64_t write_watch_ = 0;
  bool has_read_watch_ = false;
  bool has_write_watch_ = false;
};

Reactor::Reactor(Options options) : options_(std::move(options)) {}

Reactor::~Reactor() { Stop(); }

void Reactor::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stopping_.store(false, std::memory_order_release);
  for (size_t i = 0; i < std::max<size_t>(1, options_.threads); ++i) {
    shards_.push_back(std::make_unique<Shard>());
    Shard* shard = shards_.back().get();
    shard->reactor = this;
    shard->index = i;
    shard->thread = std::thread([this, shard] { ShardLoop(shard); });
  }
}

void Reactor::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      // Wake under the shard mutex: a ConnCtx found here cannot reach its
      // task-finish line (which needs this mutex to erase itself) while we
      // hold it, so the Task* is alive for the wake.
      std::lock_guard<std::mutex> lock(shard->mutex);
      for (auto& [id, ctx] : shard->conns) {
        ctx->Wake();
      }
    }
    shard->scheduler.Notify();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) {
      shard->thread.join();
    }
  }
  // All tasks (and their streams/watches) are gone; the poller can stop.
  poller_.Stop();
  // Streams that raced Stop() into an incoming queue were never adopted:
  // abort them so their dialers observe EOF.
  for (auto& shard : shards_) {
    for (auto& p : shard->incoming) {
      p->stream->Abort();
    }
    shard->incoming.clear();
  }
  shards_.clear();
}

void Reactor::Serve(net::StreamPtr stream, std::function<void(net::StreamPtr)> serve) {
  if (!running() || stopping()) {
    stream->Abort();
    return;
  }
  Shard* shard =
      shards_[next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size()].get();
  auto pending = std::make_shared<Pending>();
  pending->stream = std::move(stream);
  pending->serve = std::move(serve);
  {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->incoming.push_back(std::move(pending));
  }
  shard->scheduler.Notify();
}

net::StreamPtr Reactor::MakeCooperative(net::StreamPtr stream) {
  lthread::Task* task = lthread::Scheduler::Current();
  if (task == nullptr || task->user_data() == nullptr) {
    return stream;  // not on a reactor task: stays blocking
  }
  auto* ctx = static_cast<ConnCtx*>(task->user_data());
  return std::make_unique<CooperativeStream>(std::move(stream), this, ctx);
}

size_t Reactor::live_connections() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->conns.size();
  }
  return total;
}

void Reactor::ShardLoop(Shard* shard) {
  obs::Gauge& tasks_gauge = obs::Registry::Global().GetGauge(
      options_.name + "_tasks{thread=\"" + std::to_string(shard->index) + "\"}");
  for (;;) {
    // Adopt connections handed over by Serve().
    std::deque<std::shared_ptr<Pending>> incoming;
    {
      std::lock_guard<std::mutex> lock(shard->mutex);
      incoming.swap(shard->incoming);
    }
    for (auto& pending : incoming) {
      if (stopping()) {
        pending->stream->Abort();
        continue;
      }
      uint64_t id = shard->next_conn_id++;
      auto ctx = std::make_unique<ConnCtx>();
      ctx->shard = shard;
      ctx->id = id;
      ConnCtx* c = ctx.get();
      Reactor* reactor = this;
      std::shared_ptr<Pending> p = std::move(pending);
      c->task = shard->scheduler.Spawn(
          [reactor, shard, c, p]() mutable {
            {
              auto coop = std::make_unique<CooperativeStream>(std::move(p->stream), reactor, c);
              p->serve(std::move(coop));
              p.reset();
            }
            // The stream (and its poller watches) are gone. Deregister as
            // the LAST act before finishing: after the erase nothing can
            // wake this task, and Stop's under-the-mutex walk can never
            // hold a Task* that has already finished.
            std::lock_guard<std::mutex> lock(shard->mutex);
            shard->conns.erase(c->id);  // destroys the ConnCtx
          },
          options_.task_stack_size);
      c->task->set_user_data(c);
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->conns.emplace(id, std::move(ctx));
      }
    }

    int64_t t0 = NowNanos();
    bool progressed = shard->scheduler.RunOnce();
    if (progressed) {
      SEAL_OBS_HISTOGRAM("reactor_loop_nanos")
          .Observe(static_cast<uint64_t>(std::max<int64_t>(0, NowNanos() - t0)));
    }
    tasks_gauge.Set(static_cast<int64_t>(shard->scheduler.live_tasks()));
    SEAL_OBS_GAUGE("reactor_ready_queue_depth")
        .Set(static_cast<int64_t>(shard->scheduler.ready_depth()));

    if (stopping() && shard->scheduler.live_tasks() == 0) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      if (shard->incoming.empty()) {
        break;  // drained: every task ran to completion
      }
      continue;
    }
    if (!progressed) {
      {
        std::lock_guard<std::mutex> lock(shard->mutex);
        if (!shard->incoming.empty()) {
          continue;
        }
      }
      // Nothing runnable and nothing new: park until a poller wakeup,
      // Serve(), or Stop() notifies.
      shard->scheduler.WaitForWork();
    }
  }
}

}  // namespace seal::services
