#include "src/obs/obs.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace seal::obs {

namespace internal {

std::atomic<bool> g_enabled{true};

size_t ThisThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) {
    s.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::SetMax(int64_t v) {
  if (!Enabled()) {
    return;
  }
  int64_t cur = value_.load(std::memory_order_relaxed);
  while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    s.sum.store(0, std::memory_order_relaxed);
  }
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << index) - 1;
}

void Histogram::CollectBuckets(std::array<uint64_t, kHistogramBuckets>* out) const {
  out->fill(0);
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      (*out)[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
}

uint64_t HistogramSnapshot::ApproxPercentile(double p) const {
  if (count == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count));
  target = std::max<uint64_t>(1, std::min(target, count));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(kHistogramBuckets - 1);
}

uint64_t Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

int64_t Snapshot::gauge(const std::string& name) const {
  auto it = gauges.find(name);
  return it == gauges.end() ? 0 : it->second;
}

const HistogramSnapshot* Snapshot::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

uint64_t Snapshot::CounterFamilyTotal(const std::string& family) const {
  uint64_t total = 0;
  auto exact = counters.find(family);
  if (exact != counters.end()) {
    total += exact->second;
  }
  // The labelled variants sort contiguously from "family{", but NOT right
  // after the bare name: an unrelated "family_suffix" counter lands between
  // them ('_' < '{'), so scan from the brace, not from the family.
  const std::string open = family + "{";
  for (auto it = counters.lower_bound(open); it != counters.end(); ++it) {
    if (it->first.compare(0, open.size(), open) != 0) {
      break;
    }
    total += it->second;
  }
  return total;
}

namespace {

// `name` up to the label block, for # TYPE grouping.
std::string_view FamilyOf(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? std::string_view(name)
                                    : std::string_view(name).substr(0, brace);
}

void AppendTypeLine(std::string* out, std::string_view* last_family,
                    const std::string& name, const char* type) {
  std::string_view family = FamilyOf(name);
  if (family != *last_family) {
    out->append("# TYPE ");
    out->append(family);
    out->push_back(' ');
    out->append(type);
    out->push_back('\n');
    *last_family = family;
  }
}

}  // namespace

std::string Snapshot::ToPrometheusText() const {
  std::string out;
  char line[160];
  std::string_view last_family;
  for (const auto& [name, value] : counters) {
    AppendTypeLine(&out, &last_family, name, "counter");
    std::snprintf(line, sizeof(line), "%s %" PRIu64 "\n", name.c_str(), value);
    out.append(line);
  }
  last_family = {};
  for (const auto& [name, value] : gauges) {
    AppendTypeLine(&out, &last_family, name, "gauge");
    std::snprintf(line, sizeof(line), "%s %" PRId64 "\n", name.c_str(), value);
    out.append(line);
  }
  last_family = {};
  for (const auto& [name, hist] : histograms) {
    AppendTypeLine(&out, &last_family, name, "histogram");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (hist.buckets[i] == 0) {
        continue;  // elide empty buckets: log2 histograms are sparse
      }
      cumulative += hist.buckets[i];
      if (i >= 64) {
        std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                      name.c_str(), cumulative);
      } else {
        std::snprintf(line, sizeof(line), "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                      name.c_str(), Histogram::BucketUpperBound(i), cumulative);
      }
      out.append(line);
    }
    std::snprintf(line, sizeof(line), "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n",
                  name.c_str(), hist.sum, name.c_str(), hist.count);
    out.append(line);
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: call sites
                                               // cache references for the
                                               // process lifetime
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

Snapshot Registry::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    hist->CollectBuckets(&h.buckets);
    for (uint64_t b : h.buckets) {
      h.count += b;
    }
    h.sum = hist->Sum();
    snap.histograms.emplace(name, h);
  }
  return snap;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, hist] : histograms_) {
    hist->Reset();
  }
}

}  // namespace seal::obs
