// seal::obs — always-on, low-overhead metrics for the LibSEAL stack.
//
// The paper's performance argument is made of counted events: 8,400-cycle
// enclave transitions (§4.2), the −31% ecall / −49% ocall reduction, the
// Fig. 6 check-interval optimum. This module makes those events observable
// at runtime instead of only through ad-hoc bench printouts.
//
// Design:
//  * Counters and Histograms are lock-free and sharded per thread: each
//    writer thread owns (round-robin) one of kShards cache-line-aligned
//    slots and updates it with a relaxed fetch_add. An increment through a
//    cached reference costs a few nanoseconds (bench_obs measures it);
//    reads sum the shards.
//  * A process-wide Registry interns metrics by name. Hot call sites cache
//    the returned reference in a function-local static (the SEAL_OBS_*
//    macros do this), so the name lookup happens once per site.
//  * Snapshot() returns a point-in-time copy of every metric; values are
//    monotone between snapshots but not cross-metric atomic (writers never
//    stall for readers). ToPrometheusText() renders the usual exposition
//    format.
//  * Metric names may carry Prometheus-style labels inline, e.g.
//    `sgx_ecall_transitions_total{ecall="ssl_read"}`; the exporter groups
//    families by the name up to the '{'.
//  * SetEnabled(false) turns every write into a single relaxed load + branch
//    so the layer can be disabled with negligible cost.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace seal::obs {

// Writer shards per metric. More shards = less contention, more memory.
inline constexpr size_t kShards = 16;

// Log2 histogram buckets: bucket 0 holds value 0, bucket i (i >= 1) holds
// values in [2^(i-1), 2^i - 1]. 65 buckets cover the full uint64_t range.
inline constexpr size_t kHistogramBuckets = 65;

namespace internal {

extern std::atomic<bool> g_enabled;

// The calling thread's shard index, assigned round-robin on first use so
// up to kShards concurrent writers never share a cache line.
size_t ThisThreadShard();

}  // namespace internal

inline bool Enabled() { return internal::g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled);

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!Enabled()) {
      return;
    }
    shards_[internal::ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Last-written value with an additional monotone-max update for high-water
// marks. Not sharded: Set() has last-writer-wins semantics.
class Gauge {
 public:
  void Set(int64_t v) {
    if (Enabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t d) {
    if (Enabled()) {
      value_.fetch_add(d, std::memory_order_relaxed);
    }
  }
  // Raises the gauge to `v` if it is below it (EPC high-water mark).
  void SetMax(int64_t v);

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed distribution (latencies in nanoseconds, counts per round).
class Histogram {
 public:
  void Observe(uint64_t value) {
    if (!Enabled()) {
      return;
    }
    Shard& s = shards_[internal::ThisThreadShard()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  void Reset();

  // floor(log2(v)) + 1; 0 for v == 0.
  static size_t BucketIndex(uint64_t value) {
    return value == 0 ? 0 : static_cast<size_t>(64 - __builtin_clzll(value));
  }
  // Largest value the bucket admits (UINT64_MAX for the top bucket).
  static uint64_t BucketUpperBound(size_t index);

  // Copies the per-bucket counts (summed over shards) into `out`.
  void CollectBuckets(std::array<uint64_t, kHistogramBuckets>* out) const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_{};
};

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Upper bound of the bucket containing the p-th percentile (p in [0,1]).
  uint64_t ApproxPercentile(double p) const;
};

// Point-in-time copy of every registered metric.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Value of the named counter/gauge, or 0 when absent.
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  // Sum over a labelled counter family: matches `family` exactly and every
  // `family{...}` variant.
  uint64_t CounterFamilyTotal(const std::string& family) const;

  // Prometheus text exposition format.
  std::string ToPrometheusText() const;
};

// Process-wide metric registry. Get* interns on first use and returns a
// reference that stays valid for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  Snapshot TakeSnapshot() const;
  std::string ExportText() const { return TakeSnapshot().ToPrometheusText(); }

  // Zeroes every metric (benches isolate runs; tests isolate cases).
  // Registered metrics stay interned, so cached references survive.
  void Reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace seal::obs

// Call-site helpers: intern once (thread-safe function-local static), then
// each use is a relaxed fetch_add on a per-thread shard.
#define SEAL_OBS_COUNTER(name)                                                        \
  ([]() -> ::seal::obs::Counter& {                                                    \
    static ::seal::obs::Counter& counter = ::seal::obs::Registry::Global().GetCounter(name); \
    return counter;                                                                   \
  }())
#define SEAL_OBS_GAUGE(name)                                                          \
  ([]() -> ::seal::obs::Gauge& {                                                      \
    static ::seal::obs::Gauge& gauge = ::seal::obs::Registry::Global().GetGauge(name); \
    return gauge;                                                                     \
  }())
#define SEAL_OBS_HISTOGRAM(name)                                                      \
  ([]() -> ::seal::obs::Histogram& {                                                  \
    static ::seal::obs::Histogram& histogram =                                        \
        ::seal::obs::Registry::Global().GetHistogram(name);                           \
    return histogram;                                                                 \
  }())

#endif  // SRC_OBS_OBS_H_
