// Multi-instance log merging (paper §3.2).
//
// When a service scales out across several LibSEAL instances (e.g. behind
// a load balancer), each instance logs the subset of client interactions
// it terminated. Invariant checking needs a single ordered view: "These
// partial logs must first be merged into a single log before invariant
// checking."
//
// Each instance's entries carry its own logical timestamps, so the merge
// (a) verifies every partial log independently (hash chain + signature +
// counter), (b) interleaves entries by (instance round, position) into a
// fresh database with globally re-assigned timestamps that preserve each
// instance's internal order, and (c) returns that database for querying.
#ifndef SRC_CORE_LOG_MERGE_H_
#define SRC_CORE_LOG_MERGE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/audit_log.h"
#include "src/core/service_module.h"
#include "src/db/database.h"

namespace seal::core {

struct PartialLog {
  std::string path;                       // persisted entries file
  crypto::EcdsaPublicKey log_public_key;  // that instance's enclave key
  const rote::RoteCounter* counter = nullptr;  // for rollback verification
  Bytes encryption_key;                   // empty if the log is plaintext
};

struct MergeResult {
  db::Database database;      // merged, ready for invariant queries
  size_t total_entries = 0;
  size_t instances = 0;
};

// One entry of a partial log, tagged with which instance produced it.
struct TaggedEntry {
  size_t instance = 0;
  LogEntry entry;
};

// The interleave + materialise core shared by offline merging and the
// runtime cross-shard checker: sorts `all` by (wall clock, instance,
// logical time), re-assigns contiguous global timestamps that preserve
// each instance's internal order, and inserts the rows into a fresh
// database carrying the SSM's schema and views. Callers provide already
// verified/trusted entries (MergeVerifiedLogs verifies the on-disk
// partials first; ShardSet snapshots in-enclave state that never left
// the trust boundary).
Result<MergeResult> MergeTaggedEntries(std::vector<TaggedEntry> all,
                                       ServiceModule& module, size_t instances);

// Verifies and merges the partial logs into one database with the given
// SSM schema. Fails if ANY partial log fails verification: a merged view
// over unverified inputs would not be evidence. Also fails if two partials
// present the same instance key for the same counter round: a duplicated
// (or forked-and-rolled-back) shard log must not be double-counted as
// evidence.
Result<MergeResult> MergeVerifiedLogs(const std::vector<PartialLog>& partials,
                                      ServiceModule& module);

}  // namespace seal::core

#endif  // SRC_CORE_LOG_MERGE_H_
