// The non-repudiable audit log (paper §5.1).
//
// Tuples live in the in-enclave relational database (seadb). Integrity is
// protected by a hash chain over all tuples plus an ECDSA signature by the
// enclave's log key; rollback of the persisted log is prevented by binding
// each flush to a fresh value of the distributed monotonic counter (ROTE).
// Trimming re-computes the hashes of the remaining entries.
#ifndef SRC_CORE_AUDIT_LOG_H_
#define SRC_CORE_AUDIT_LOG_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"
#include "src/db/database.h"
#include "src/rote/rote.h"

namespace seal::core {

enum class PersistenceMode {
  kMemory,  // LibSEAL-mem: tuples only in the in-enclave database
  kDisk,    // LibSEAL-disk: synchronous flush + counter round per pair
};

struct AuditLogOptions {
  PersistenceMode mode = PersistenceMode::kMemory;
  std::string path;  // file path for kDisk (entries file; ".sig" appended for the head)
  // Encrypt the persisted log (log privacy, §6.3). The key is derived by
  // the caller (sealing); empty = sign-only.
  Bytes encryption_key;
  rote::RoteCounter::Options counter_options;
};

// One serialised log entry, the hash-chain unit.
struct LogEntry {
  int64_t time = 0;       // per-instance logical timestamp (primary key)
  int64_t wall_nanos = 0; // wall clock at append: orders entries ACROSS
                          // instances when partial logs are merged (§3.2)
  std::string table;
  db::Row values;  // full row, including time

  Bytes Serialize() const;
  static Result<LogEntry> Deserialize(BytesView in, size_t& off);
};

class AuditLog {
 public:
  // `signing_key` is the enclave's log key (provisioned under attestation).
  AuditLog(AuditLogOptions options, crypto::EcdsaPrivateKey signing_key);
  ~AuditLog();

  // Executes schema DDL against the in-enclave database.
  Status ExecuteSchema(const std::vector<std::string>& statements);

  // Appends one tuple: inserts into the database, extends the hash chain
  // and (in kDisk mode) stages the framed — and, with a key, encrypted —
  // entry for the next flush. `wall_nanos` (0 = sample now) orders entries
  // across instances at merge time.
  Status Append(const std::string& table, db::Row values, int64_t wall_nanos = 0);

  // Writes all staged entries to the log file. A no-op in kMemory mode.
  // CommitHead flushes first, so a committed head always covers everything
  // on disk; callers only need this directly when inspecting the file
  // between commits.
  Status FlushPersisted();

  // Synchronously commits the current chain head: staged-entry flush +
  // signature + monotonic counter round + head-file write. In kDisk mode
  // the logger calls this once per drained batch.
  Status CommitHead();

  // Runs a read-only query (invariant checking).
  Result<db::QueryResult> Query(const std::string& sql);

  // Like Query, but narrows a SELECT's base-table scan to tuples with
  // time > floor (incremental invariant checking; see
  // db::Database::ExecuteWithTimeFloor for the exact conditions).
  Result<db::QueryResult> QueryWithTimeFloor(const std::string& sql, int64_t floor);

  // Runs the trimming queries, then rebuilds the hash chain over the
  // surviving entries and rewrites the persisted log. The rebuild (and the
  // counter round it costs in kDisk mode) is skipped when no query deleted
  // anything. `deleted_out` (optional) receives the number of rows removed.
  Status Trim(const std::vector<std::string>& trimming_queries,
              size_t* deleted_out = nullptr);

  // Verifies a persisted log against tampering and rollback: recomputes
  // the chain, checks the signature with `log_public_key`, and compares
  // the embedded counter against the ROTE cluster. Returns the number of
  // verified entries.
  static Result<size_t> VerifyLogFile(const std::string& path,
                                      const crypto::EcdsaPublicKey& log_public_key,
                                      const rote::RoteCounter& counter,
                                      const Bytes& encryption_key = {});

  // Reads (and decrypts) the entries of a persisted log WITHOUT verifying
  // the chain; callers that need evidence must run VerifyLogFile first
  // (log merging does).
  static Result<std::vector<LogEntry>> ReadVerifiedEntries(const std::string& path,
                                                           const Bytes& encryption_key = {});

  db::Database& database() { return db_; }
  const Bytes& chain_head() const { return chain_head_; }
  size_t entry_count() const { return entries_logged_; }
  rote::RoteCounter& counter() { return *counter_; }
  uint64_t persisted_bytes() const { return persisted_bytes_; }

 private:
  Status PersistEntry(const LogEntry& entry);
  Status RewritePersistedLog();
  Bytes ExtendChain(const Bytes& head, const LogEntry& entry) const;
  // nonce || ciphertext || tag with a key configured, the plain serialised
  // entry otherwise.
  Bytes EncodeRecord(BytesView plain);
  void AppendFramedRecord(Bytes& out, const LogEntry& entry);

  AuditLogOptions options_;
  crypto::EcdsaPrivateKey signing_key_;
  db::Database db_;
  std::unique_ptr<rote::RoteCounter> counter_;
  // Cached cipher context + nonce source (null/unused without a key): one
  // key schedule + GHASH table for the log's lifetime instead of one per
  // record.
  std::unique_ptr<crypto::Aes128Gcm> cipher_;
  std::unique_ptr<crypto::GcmNonceSequence> nonce_seq_;

  Bytes chain_head_;  // SHA-256 of the chain so far
  size_t entries_logged_ = 0;
  uint64_t persisted_bytes_ = 0;
  // Framed records appended since the last flush (kDisk mode).
  Bytes pending_persist_;
  // Kept for chain recomputation on trim: the serialised entries in order.
  std::vector<LogEntry> entries_;
};

}  // namespace seal::core

#endif  // SRC_CORE_AUDIT_LOG_H_
