// The non-repudiable audit log (paper §5.1).
//
// Tuples live in the in-enclave relational database (seadb). Integrity is
// protected by a hash chain over all tuples plus an ECDSA signature by the
// enclave's log key; rollback of the persisted log is prevented by binding
// each flush to a fresh value of the distributed monotonic counter (ROTE).
// Trimming re-computes the hashes of the remaining entries.
//
// Durable lifecycle (ROADMAP item 3): with `segment_bytes > 0` the log is
// written as fixed-size segments with chained headers instead of one
// ever-growing file; closed segments are fsynced and immutable. Periodic
// sealed snapshots (`snapshot_interval_bytes`) make restart O(tail):
// Recover() loads the newest valid snapshot and replays only the segments
// past it. With `archive_trimmed`, Trim moves deleted rows into compressed
// sealed archive segments so the full history stays auditable offline.
#ifndef SRC_CORE_AUDIT_LOG_H_
#define SRC_CORE_AUDIT_LOG_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/log_segment.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/gcm.h"
#include "src/crypto/sha256.h"
#include "src/db/database.h"
#include "src/rote/rote.h"

namespace seal::core {

enum class PersistenceMode {
  kMemory,  // LibSEAL-mem: tuples only in the in-enclave database
  kDisk,    // LibSEAL-disk: synchronous flush + counter round per pair
};

struct AuditLogOptions {
  PersistenceMode mode = PersistenceMode::kMemory;
  std::string path;  // file path for kDisk (entries file; ".sig" appended for the head)
  // Encrypt the persisted log (log privacy, §6.3). The key is derived by
  // the caller (sealing); empty = sign-only.
  Bytes encryption_key;
  rote::RoteCounter::Options counter_options;

  // --- durable lifecycle ---
  // 0 = legacy single-file layout. >0 = segmented: records go into
  // `<path>.segNNNNNN` files rolled once a segment reaches this many bytes.
  uint64_t segment_bytes = 0;
  // Resume from on-disk state instead of starting fresh: the constructor
  // leaves prior files alone and Recover() (called after ExecuteSchema)
  // restores the database, chain and counters from the newest valid
  // snapshot plus the tail segments. With false, construction removes any
  // stale lifecycle files at `path` (the pre-recovery behaviour).
  bool recover = false;
  // Write a sealed snapshot after every N committed bytes (and after every
  // trim rewrite). 0 disables automatic snapshots; WriteSnapshot() still
  // works. Snapshots bound recovery replay to the post-snapshot tail.
  uint64_t snapshot_interval_bytes = 0;
  // Trim moves deleted rows into `<path>.archNNNNNN` (compressed, sealed)
  // instead of discarding them.
  bool archive_trimmed = false;
  // Identity under which snapshots and archives are sealed. Null = fall
  // back to `encryption_key` (or plaintext for sign-only logs).
  const sgx::Enclave* sealing_enclave = nullptr;
  sgx::SealPolicy seal_policy = sgx::SealPolicy::kMrSigner;
  // Fsync data files on flush and head/snapshot files on commit. Off only
  // for benchmarks that isolate CPU cost from storage latency.
  bool fsync = true;
};

class AuditLog {
 public:
  // What Recover() found and did, for logging/metrics and the logger's
  // ticket restoration.
  struct RecoveryInfo {
    bool had_state = false;        // any prior lifecycle file existed
    bool snapshot_loaded = false;  // restart skipped the pre-snapshot log
    size_t snapshot_entries = 0;
    size_t replayed_entries = 0;   // decrypted + re-chained from segments
    size_t discarded_records = 0;  // torn tail records dropped
    bool head_missing = false;     // .sig absent or torn; chain self-verified
    int64_t max_ticket = 0;        // highest logical time recovered
    int64_t recovery_nanos = 0;
  };

  // `signing_key` is the enclave's log key (provisioned under attestation).
  AuditLog(AuditLogOptions options, crypto::EcdsaPrivateKey signing_key);
  ~AuditLog();

  // Executes schema DDL against the in-enclave database.
  Status ExecuteSchema(const std::vector<std::string>& statements);

  // Restores the log from disk (kDisk with `options.recover`): loads the
  // newest valid snapshot, replays the tail segments through the hash
  // chain into the database, discards a torn tail record, verifies the
  // chain against the last committed head and re-commits. Must run after
  // ExecuteSchema and before the first Append. A fresh path recovers to an
  // empty log. No-op in kMemory mode.
  Status Recover(RecoveryInfo* info = nullptr);

  // Appends one tuple: inserts into the database, extends the hash chain
  // and (in kDisk mode) stages the framed — and, with a key, encrypted —
  // entry for the next flush. `wall_nanos` (0 = sample now) orders entries
  // across instances at merge time.
  Status Append(const std::string& table, db::Row values, int64_t wall_nanos = 0);

  // Writes all staged entries to the log file. A no-op in kMemory mode.
  // CommitHead flushes first, so a committed head always covers everything
  // on disk; callers only need this directly when inspecting the file
  // between commits.
  Status FlushPersisted();

  // Synchronously commits the current chain head: staged-entry flush +
  // signature + monotonic counter round + atomic head-file replace. In
  // kDisk mode the logger calls this once per drained batch.
  Status CommitHead();

  // Writes a sealed snapshot of the current committed state (database
  // image as framed entries + chain head + replay resume point). Called
  // automatically per `snapshot_interval_bytes`; exposed for tests and
  // benchmarks.
  Status WriteSnapshot();

  // Runs a read-only query (invariant checking).
  Result<db::QueryResult> Query(const std::string& sql);

  // Like Query, but narrows a SELECT's base-table scan to tuples with
  // time > floor (incremental invariant checking; see
  // db::Database::ExecuteWithTimeFloor for the exact conditions).
  Result<db::QueryResult> QueryWithTimeFloor(const std::string& sql, int64_t floor);

  // Runs the trimming queries, then rebuilds the hash chain over the
  // surviving entries and rewrites the persisted log. The rebuild (and the
  // counter round it costs in kDisk mode) is skipped when no query deleted
  // anything. With `archive_trimmed`, the deleted entries are first moved
  // into a sealed archive segment. `deleted_out` / `archived_out`
  // (optional) receive the number of rows removed / archived.
  Status Trim(const std::vector<std::string>& trimming_queries,
              size_t* deleted_out = nullptr, size_t* archived_out = nullptr);

  // What the signed head of a verified log claimed. Merging uses this to
  // detect two partials presenting the same (instance, counter round) —
  // a duplicated or forked shard log.
  struct VerifiedHeadInfo {
    uint64_t counter_value = 0;  // ROTE round the head was bound to
    uint64_t entry_count = 0;
    Bytes chain_head;
  };

  // Verifies a persisted log against tampering and rollback: recomputes
  // the chain (across all segments, checking each segment header's
  // continuity in the segmented layout), checks the signature with
  // `log_public_key`, and compares the embedded counter against the ROTE
  // cluster. Returns the number of verified entries; `head_out` (optional)
  // receives what the verified head claimed.
  static Result<size_t> VerifyLogFile(const std::string& path,
                                      const crypto::EcdsaPublicKey& log_public_key,
                                      const rote::RoteCounter& counter,
                                      const Bytes& encryption_key = {},
                                      VerifiedHeadInfo* head_out = nullptr);

  // Reads (and decrypts) the entries of a persisted log WITHOUT verifying
  // the chain; callers that need evidence must run VerifyLogFile first
  // (log merging does).
  static Result<std::vector<LogEntry>> ReadVerifiedEntries(const std::string& path,
                                                           const Bytes& encryption_key = {});

  // Reads the trim archives of `path` in archive order (oldest first).
  // Sealed archives additionally need the sealing identity.
  static Result<std::vector<LogEntry>> ReadArchivedEntries(
      const std::string& path, const Bytes& encryption_key = {},
      const sgx::Enclave* sealing_enclave = nullptr,
      sgx::SealPolicy seal_policy = sgx::SealPolicy::kMrSigner);

  // The complete pre-trim history: archived entries + live entries, merged
  // by logical time. Offline auditors run VerifyLogFile first (the hot log
  // carries the signed head; archives are sealed/authenticated payloads).
  static Result<std::vector<LogEntry>> ReadFullHistory(
      const std::string& path, const Bytes& encryption_key = {},
      const sgx::Enclave* sealing_enclave = nullptr,
      sgx::SealPolicy seal_policy = sgx::SealPolicy::kMrSigner);

  db::Database& database() { return db_; }
  const db::Database& database() const { return db_; }
  const Bytes& chain_head() const { return chain_head_; }
  size_t entry_count() const { return entries_logged_; }
  // The live (post-trim) entries in append order. The cross-shard checker
  // snapshots this under the logger's drain lock for its consistent cut.
  const std::vector<LogEntry>& entries() const { return entries_; }
  uint64_t last_counter_value() const { return last_counter_value_; }
  rote::RoteCounter& counter() { return *counter_; }
  uint64_t persisted_bytes() const { return persisted_bytes_; }
  const AuditLogOptions& options() const { return options_; }
  uint32_t segment_count() const { return segment_count_; }
  uint32_t archive_count() const { return next_archive_index_; }

 private:
  struct StagedFrame {
    int64_t ticket = 0;
    size_t size = 0;      // frame bytes (length prefix + record)
    Bytes head_after;     // chain head after this entry
  };

  Status PersistEntry(const LogEntry& entry);
  Status RewritePersistedLog();
  Bytes ExtendChain(const Bytes& head, const LogEntry& entry) const;
  // nonce || ciphertext || tag with a key configured, the plain serialised
  // entry otherwise.
  Bytes EncodeRecord(BytesView plain);
  void AppendFramedRecord(Bytes& out, const LogEntry& entry);
  void StageEntry(const LogEntry& entry);
  SealContext MakeSealContext() const;
  // Segment-aware flush: opens/rolls/closes segments at record
  // boundaries. `frames` carries the per-record tickets and chain heads
  // matching `batch`.
  Status FlushSegmented(BytesView batch, const std::vector<StagedFrame>& frames);
  Status OpenSegment(const Bytes& prev_head, int64_t first_ticket);
  Status CloseActiveSegment();
  Status MaybeSnapshot();
  // Scans segments (or the legacy file) from the snapshot's resume point,
  // decrypting and re-chaining records. Returns recovered entries without
  // touching member state so a failed snapshot plan can fall back to a
  // full replay.
  struct ReplayResult;
  Result<ReplayResult> ScanPersisted(const SnapshotState* snapshot) const;

  AuditLogOptions options_;
  crypto::EcdsaPrivateKey signing_key_;
  db::Database db_;
  std::unique_ptr<rote::RoteCounter> counter_;
  // Cached cipher context + nonce source (null/unused without a key): one
  // key schedule + GHASH table for the log's lifetime instead of one per
  // record.
  std::unique_ptr<crypto::Aes128Gcm> cipher_;
  std::unique_ptr<crypto::GcmNonceSequence> nonce_seq_;

  Bytes chain_head_;  // SHA-256 of the chain so far
  size_t entries_logged_ = 0;
  uint64_t persisted_bytes_ = 0;
  // Framed records appended since the last flush (kDisk mode), plus the
  // per-record metadata the segment roller needs (ticket boundaries and
  // the chain head after each record).
  Bytes pending_persist_;
  std::vector<StagedFrame> pending_frames_;
  // Kept for chain recomputation on trim: the serialised entries in order.
  std::vector<LogEntry> entries_;

  // --- segmented-layout state ---
  uint32_t active_segment_ = 0;
  uint32_t segment_count_ = 0;           // segments existing on disk
  uint64_t active_segment_file_bytes_ = 0;  // includes the header
  bool active_segment_open_ = false;
  Bytes active_prev_head_;   // chain head before the active segment's first record
  int64_t active_first_ticket_ = 0;
  int64_t active_last_ticket_ = 0;
  Bytes last_flushed_head_;  // chain head after the last flushed record
  uint64_t rewrite_epoch_ = 0;
  uint64_t last_counter_value_ = 0;
  uint64_t bytes_since_snapshot_ = 0;
  uint32_t next_archive_index_ = 0;
  int64_t max_ticket_ = 0;
  bool recovered_ = false;
};

}  // namespace seal::core

#endif  // SRC_CORE_AUDIT_LOG_H_
