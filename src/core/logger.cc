#include "src/core/logger.h"

#include <chrono>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::core {

namespace {

// Batch cap: under sustained load the sequencer hands off to a successor
// instead of growing one batch (and its waiters' latency) without bound.
constexpr size_t kMaxBatchPairs = 256;

}  // namespace

AuditLogger::AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
                         LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key)
    : module_(std::move(module)),
      log_(std::move(log_options), std::move(signing_key)),
      options_(logger_options) {
  if (options_.shard_index >= 0) {
    // Resolved once: the SEAL_OBS macros cache through function-local
    // statics, which cannot carry a per-shard label.
    shard_appends_ = &obs::Registry::Global().GetCounter(
        "shard_appends_total{shard=\"" + std::to_string(options_.shard_index) + "\"}");
  }
}

AuditLogger::~AuditLogger() {
  if (engine_ != nullptr) {
    engine_->Stop();
  }
}

Status AuditLogger::Init() {
  {
    db::Tuning tuning = log_.database().tuning();
    tuning.use_vectorized = options_.vectorized_checking;
    log_.database().set_tuning(tuning);
  }
  SEAL_RETURN_IF_ERROR(log_.ExecuteSchema(module_->Schema()));
  SEAL_RETURN_IF_ERROR(log_.ExecuteSchema(module_->Views()));
  std::lock_guard<std::mutex> lock(drain_mutex_);
  if (log_.options().recover) {
    SEAL_RETURN_IF_ERROR(log_.Recover(&recovery_info_));
    // Tickets resume past everything recovered: the sequencer must never
    // hand out a logical time the restored log already contains.
    next_time_.store(recovery_info_.max_ticket + 1, std::memory_order_relaxed);
    next_drain_time_ = recovery_info_.max_ticket + 1;
  }
  EnsureEngineLocked();
  return Status::Ok();
}

void AuditLogger::EnsureEngineLocked() {
  if (engine_ != nullptr) {
    return;
  }
  CheckerEngine::Options opts;
  opts.async = options_.async_checking;
  opts.parallelism = options_.check_parallelism > 0 ? options_.check_parallelism : 1;
  opts.incremental_checking = options_.incremental_checking;
  opts.enclave = options_.enclave;
  opts.on_report = [this](const CheckReport& report) { PublishReport(report); };
  engine_ = std::make_unique<CheckerEngine>(
      &log_, module_->Invariants(), std::move(opts),
      [this](CheckReport* report) { return TrimForRound(report); });
  engine_->Start();
}

void AuditLogger::PublishReport(const CheckReport& report) {
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    last_report_ = report;
  }
  if (options_.on_report) {
    options_.on_report(report);
  }
}

Result<std::optional<CheckReport>> AuditLogger::OnPair(uint64_t conn_id, std::string_view request,
                                                       std::string_view response,
                                                       bool force_check) {
  const int64_t t0 = NowNanos();
  PendingPair op;
  op.time = next_time_.fetch_add(1, std::memory_order_relaxed);
  op.force_check = force_check;
  // Parse outside any lock: SSMs are stateless, so only the ticket above
  // needs to be ordered.
  module_->Log(request, response, op.time, &op.tuples);

  Shard& shard = shards_[conn_id % kAppendShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.staged.empty()) {
      SEAL_OBS_COUNTER("logger_shard_contention_total").Increment();
    }
    shard.staged.push_back(&op);
  }

  // Group commit: either become the sequencer and drain (which, with no
  // contention, processes exactly our own pair), or wait for the running
  // sequencer to drain us. The timeout covers the window where the
  // sequencer finished collecting just before we staged: someone must
  // re-attempt the drain, and 200µs bounds how long a gap in the ticket
  // sequence (a thread between ticket and stage) can hold everyone up.
  for (;;) {
    if (drain_mutex_.try_lock()) {
      DrainStagedLocked();
      drain_mutex_.unlock();
    }
    std::unique_lock<std::mutex> lk(op.m);
    if (op.cv.wait_for(lk, std::chrono::microseconds(200), [&] { return op.done; })) {
      break;
    }
  }

  SEAL_OBS_HISTOGRAM("logger_append_nanos").Observe(static_cast<uint64_t>(NowNanos() - t0));
  if (!op.status.ok()) {
    return op.status;
  }
  if (op.round != nullptr) {
    // Forced-check rendezvous: block until the round covering this pair
    // completes. No logger lock is held here, so appends keep flowing.
    SEAL_RETURN_IF_ERROR(op.round->Wait());
    return std::optional<CheckReport>(op.round->report);
  }
  return std::move(op.report);
}

void AuditLogger::DrainStagedLocked() {
  std::vector<PendingPair*> drained;
  for (;;) {
    bool collected = false;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.staged.empty()) {
        continue;
      }
      collected = true;
      for (PendingPair* op : shard.staged) {
        reorder_.emplace(op->time, op);
      }
      shard.staged.clear();
    }
    bool processed = false;
    for (auto it = reorder_.find(next_drain_time_);
         it != reorder_.end() && drained.size() < kMaxBatchPairs;
         it = reorder_.find(next_drain_time_)) {
      PendingPair* op = it->second;
      reorder_.erase(it);
      ++next_drain_time_;
      ProcessPairLocked(op);
      drained.push_back(op);
      processed = true;
    }
    // Keep sweeping while pairs arrive: a stage racing the collection above
    // would otherwise wait a full timeout round. Stop on a quiet sweep, a
    // ticket gap, or a full batch.
    if ((!collected && !processed) || drained.size() >= kMaxBatchPairs) {
      break;
    }
  }
  if (drained.empty()) {
    return;
  }
  // One head commit covers the whole batch (any check along the way
  // already committed its prefix).
  (void)CommitIfDirtyLocked();
  SEAL_OBS_COUNTER("logger_batches_total").Increment();
  SEAL_OBS_HISTOGRAM("logger_batch_pairs").Observe(drained.size());
  for (PendingPair* op : drained) {
    // Waiters re-check `done` under op->m and may destroy the pair the
    // moment we release it, so the notify must happen under the lock.
    std::lock_guard<std::mutex> lk(op->m);
    op->done = true;
    op->cv.notify_all();
  }
}

Status AuditLogger::CommitIfDirtyLocked() {
  if (!dirty_since_commit_) {
    return Status::Ok();
  }
  Status status = log_.CommitHead();
  if (!status.ok()) {
    for (PendingPair* op : uncommitted_) {
      if (op->status.ok()) {
        op->status = status;
      }
    }
  }
  dirty_since_commit_ = false;
  uncommitted_.clear();
  return status;
}

void AuditLogger::ProcessPairLocked(PendingPair* op) {
  for (LogTuple& tuple : op->tuples) {
    db::Row row;
    row.push_back(db::Value(op->time));
    for (db::Value& v : tuple.values) {
      row.push_back(std::move(v));
    }
    Status s = log_.Append(tuple.table, std::move(row));
    if (!s.ok()) {
      op->status = s;
      return;
    }
  }
  pairs_logged_.fetch_add(1, std::memory_order_relaxed);
  SEAL_OBS_COUNTER("logger_pairs_total").Increment();
  SEAL_OBS_COUNTER("logger_tuples_total").Add(op->tuples.size());
  if (shard_appends_ != nullptr) {
    shard_appends_->Add(op->tuples.size());
  }
  if (!op->tuples.empty()) {
    // Only pairs that actually appended tuples advance the check interval:
    // unparseable or uninteresting traffic adds nothing worth re-checking.
    ++pairs_since_check_;
    dirty_since_commit_ = true;
    uncommitted_.push_back(op);
  }

  const bool interval_check =
      options_.check_interval > 0 &&
      pairs_since_check_ >= static_cast<int64_t>(options_.check_interval);
  if (!interval_check && !op->force_check) {
    return;
  }
  TriggerChecksLocked(op, interval_check);
}

void AuditLogger::TriggerChecksLocked(PendingPair* op, bool interval_check) {
  EnsureEngineLocked();
  const int64_t stall_start = NowNanos();
  const bool async = options_.async_checking;

  bool forced = false;
  if (op->force_check && !interval_check) {
    // A forced check can ride a pending round for free: the round has not
    // started, so refreshing its snapshot makes it cover this pair too —
    // one evaluation, one budget charge (for whoever created the round).
    if (async) {
      std::shared_ptr<CheckRound> attach = engine_->TryAttach(op->time);
      if (attach != nullptr) {
        SEAL_OBS_COUNTER("logger_forced_coalesced_total").Increment();
        op->round = std::move(attach);
        SEAL_OBS_HISTOGRAM("logger_check_stall_nanos")
            .Observe(static_cast<uint64_t>(NowNanos() - stall_start));
        return;
      }
    }
    // Rate-limit client-triggered checks (§6.3). A demand landing on an
    // interval boundary is satisfied by the interval check for free and
    // leaves the forced budget untouched.
    forced = options_.forced_check_min_gap == 0 || last_forced_check_pair_ < 0 ||
             pairs_logged_.load(std::memory_order_relaxed) - last_forced_check_pair_ >=
                 static_cast<int64_t>(options_.forced_check_min_gap);
    if (!forced) {
      return;  // over budget, and nothing in flight to attach to
    }
  }
  if (forced) {
    last_forced_check_pair_ = pairs_logged_.load(std::memory_order_relaxed);
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"forced\"}").Increment();
  } else {
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"interval\"}").Increment();
  }
  pairs_since_check_ = 0;

  // Bind the head to everything appended so far before producing evidence.
  Status commit_status = CommitIfDirtyLocked();
  if (!commit_status.ok()) {
    op->status = commit_status;
    return;
  }
  // Every tuple with time < next_drain_time_ has been drained into the
  // database; later tickets may still be in flight, so this round covers
  // (and may advance watermarks up to) exactly this horizon.
  const int64_t horizon = next_drain_time_ - 1;
  const CheckerEngine::Trigger trigger =
      forced ? CheckerEngine::Trigger::kForced : CheckerEngine::Trigger::kInterval;

  if (async) {
    std::shared_ptr<CheckRound> round = engine_->Enqueue(trigger, /*want_trim=*/true, horizon);
    if (op->force_check) {
      op->round = std::move(round);  // rendezvous in OnPair, off this lock
    }
    SEAL_OBS_HISTOGRAM("logger_check_stall_nanos")
        .Observe(static_cast<uint64_t>(NowNanos() - stall_start));
    return;
  }

  // Synchronous mode: the round runs here, on the sequencer, under
  // drain_mutex_ — the baseline the async engine is measured against.
  CheckReport report;
  Status check_status = engine_->RunInline(trigger, horizon, &report);
  if (!check_status.ok()) {
    op->status = check_status;
    return;
  }
  Status trim_status = TrimLockedInner(&report);
  if (!trim_status.ok()) {
    op->status = trim_status;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(report_mutex_);
    last_report_ = report;  // refresh with trim_nanos filled in
  }
  SEAL_OBS_HISTOGRAM("logger_check_stall_nanos")
      .Observe(static_cast<uint64_t>(NowNanos() - stall_start));
  op->report = std::move(report);
}

Status AuditLogger::TrimLockedInner(CheckReport* report) {
  const int64_t trim_start = NowNanos();
  size_t deleted = 0;
  size_t archived = 0;
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries(), &deleted, &archived));
  if (deleted > 0 && engine_ != nullptr) {
    // Rows left the log, so the deltas past the watermarks no longer
    // describe it: the next check scans whatever survived in full.
    engine_->OnTrimmed();
  }
  const int64_t trim_nanos = NowNanos() - trim_start;
  if (report != nullptr) {
    report->trim_nanos = trim_nanos;
    report->trimmed_rows = deleted;
    report->archived_rows = archived;
  }
  SEAL_OBS_COUNTER("logger_trims_total").Increment();
  SEAL_OBS_COUNTER("logger_trimmed_rows_total").Add(deleted);
  SEAL_OBS_HISTOGRAM("logger_trim_nanos").Observe(static_cast<uint64_t>(trim_nanos));
  return Status::Ok();
}

Status AuditLogger::TrimForRound(CheckReport* report) {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  return TrimLockedInner(report);
}

Result<AuditLogger::CommittedHead> AuditLogger::CommitAndSnapshotHead(
    std::vector<LogEntry>* entries_out) {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  DrainStagedLocked();
  SEAL_RETURN_IF_ERROR(CommitIfDirtyLocked());
  CommittedHead head;
  head.chain_head = log_.chain_head();
  head.counter_value = log_.last_counter_value();
  head.entry_count = log_.entry_count();
  head.max_ticket = next_drain_time_ - 1;
  if (entries_out != nullptr) {
    // Same critical section as the commit: the copy IS the state the head
    // signs, which is what makes the cross-shard cut consistent.
    *entries_out = log_.entries();
  }
  return head;
}

Result<CheckReport> AuditLogger::CheckInvariants() {
  std::shared_ptr<CheckRound> round;
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    DrainStagedLocked();  // fold any in-flight pairs in before the scan
    EnsureEngineLocked();
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"manual\"}").Increment();
    const int64_t horizon = next_drain_time_ - 1;
    if (!options_.async_checking) {
      CheckReport report;
      SEAL_RETURN_IF_ERROR(
          engine_->RunInline(CheckerEngine::Trigger::kManual, horizon, &report));
      return report;
    }
    round = engine_->Enqueue(CheckerEngine::Trigger::kManual, /*want_trim=*/false, horizon);
  }
  // Wait off the drain lock: appenders keep flowing while the round runs.
  SEAL_RETURN_IF_ERROR(round->Wait());
  return round->report;
}

Status AuditLogger::Trim() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  DrainStagedLocked();
  size_t deleted = 0;
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries(), &deleted));
  if (deleted > 0 && engine_ != nullptr) {
    engine_->OnTrimmed();
  }
  return Status::Ok();
}

void AuditLogger::WaitForChecks() {
  if (engine_ != nullptr) {
    engine_->WaitIdle();
  }
}

int64_t AuditLogger::watermark_for_testing(size_t invariant_index) const {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  return engine_ != nullptr ? engine_->watermark_for_testing(invariant_index) : -1;
}

}  // namespace seal::core
