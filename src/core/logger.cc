#include "src/core/logger.h"

#include "src/common/clock.h"

namespace seal::core {

std::string CheckReport::Summary() const {
  if (violations.empty()) {
    return "ok " + std::to_string(invariants_checked) + " invariants";
  }
  std::string s = "VIOLATION";
  for (const Violation& v : violations) {
    s += " " + v.invariant + "(" + std::to_string(v.rows.rows.size()) + ")";
  }
  return s;
}

AuditLogger::AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
                         LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key)
    : module_(std::move(module)),
      log_(std::move(log_options), std::move(signing_key)),
      options_(logger_options) {}

Status AuditLogger::Init() {
  SEAL_RETURN_IF_ERROR(log_.ExecuteSchema(module_->Schema()));
  return log_.ExecuteSchema(module_->Views());
}

Result<std::optional<CheckReport>> AuditLogger::OnPair(std::string_view request,
                                                       std::string_view response,
                                                       bool force_check) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t time = next_time_++;
  std::vector<LogTuple> tuples;
  module_->Log(request, response, time, &tuples);
  for (LogTuple& tuple : tuples) {
    db::Row row;
    row.push_back(db::Value(time));
    for (db::Value& v : tuple.values) {
      row.push_back(std::move(v));
    }
    SEAL_RETURN_IF_ERROR(log_.Append(tuple.table, std::move(row)));
  }
  ++pairs_logged_;
  ++pairs_since_check_;
  if (!tuples.empty()) {
    SEAL_RETURN_IF_ERROR(log_.CommitHead());
  }

  bool interval_check =
      options_.check_interval > 0 && pairs_since_check_ >= static_cast<int64_t>(options_.check_interval);
  if (force_check && options_.forced_check_min_gap > 0) {
    // Rate-limit client-triggered checks (§6.3).
    if (pairs_since_forced_check_ >= 0 &&
        pairs_logged_ - pairs_since_forced_check_ < static_cast<int64_t>(options_.forced_check_min_gap)) {
      force_check = false;
    }
  }
  if (!interval_check && !force_check) {
    return std::optional<CheckReport>();
  }
  if (force_check) {
    pairs_since_forced_check_ = pairs_logged_;
  }
  pairs_since_check_ = 0;

  CheckReport report;
  int64_t check_start = NowNanos();
  for (const Invariant& invariant : module_->Invariants()) {
    auto result = log_.Query(invariant.query);
    if (!result.ok()) {
      return result.status();
    }
    ++report.invariants_checked;
    if (!result->rows.empty()) {
      report.violations.push_back(CheckReport::Violation{invariant.name, std::move(*result)});
    }
  }
  report.check_nanos = NowNanos() - check_start;
  int64_t trim_start = NowNanos();
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries()));
  report.trim_nanos = NowNanos() - trim_start;
  last_report_ = report;
  return std::optional<CheckReport>(std::move(report));
}

Result<CheckReport> AuditLogger::CheckInvariants() {
  std::lock_guard<std::mutex> lock(mutex_);
  CheckReport report;
  int64_t start = NowNanos();
  for (const Invariant& invariant : module_->Invariants()) {
    auto result = log_.Query(invariant.query);
    if (!result.ok()) {
      return result.status();
    }
    ++report.invariants_checked;
    if (!result->rows.empty()) {
      report.violations.push_back(CheckReport::Violation{invariant.name, std::move(*result)});
    }
  }
  report.check_nanos = NowNanos() - start;
  last_report_ = report;
  return report;
}

Status AuditLogger::Trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_.Trim(module_->TrimmingQueries());
}

}  // namespace seal::core
