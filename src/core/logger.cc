#include "src/core/logger.h"

#include <algorithm>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::core {

std::string CheckReport::Summary() const {
  if (violations.empty()) {
    return "ok " + std::to_string(invariants_checked) + " invariants";
  }
  std::string s = "VIOLATION";
  for (const Violation& v : violations) {
    s += " " + v.invariant + "(" + std::to_string(v.rows.rows.size()) + ")";
  }
  return s;
}

AuditLogger::AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
                         LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key)
    : module_(std::move(module)),
      log_(std::move(log_options), std::move(signing_key)),
      options_(logger_options) {}

Status AuditLogger::Init() {
  SEAL_RETURN_IF_ERROR(log_.ExecuteSchema(module_->Schema()));
  return log_.ExecuteSchema(module_->Views());
}

Result<std::optional<CheckReport>> AuditLogger::OnPair(std::string_view request,
                                                       std::string_view response,
                                                       bool force_check) {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t time = next_time_++;
  std::vector<LogTuple> tuples;
  module_->Log(request, response, time, &tuples);
  for (LogTuple& tuple : tuples) {
    db::Row row;
    row.push_back(db::Value(time));
    for (db::Value& v : tuple.values) {
      row.push_back(std::move(v));
    }
    SEAL_RETURN_IF_ERROR(log_.Append(tuple.table, std::move(row)));
  }
  ++pairs_logged_;
  SEAL_OBS_COUNTER("logger_pairs_total").Increment();
  SEAL_OBS_COUNTER("logger_tuples_total").Add(tuples.size());
  if (!tuples.empty()) {
    // Only pairs that actually appended tuples advance the check interval:
    // unparseable or uninteresting traffic adds nothing worth re-checking.
    ++pairs_since_check_;
    SEAL_RETURN_IF_ERROR(log_.CommitHead());
  }

  bool interval_check =
      options_.check_interval > 0 && pairs_since_check_ >= static_cast<int64_t>(options_.check_interval);
  bool forced = false;
  if (force_check && !interval_check) {
    // Rate-limit client-triggered checks (§6.3). A demand landing on an
    // interval boundary is satisfied by the interval check for free and
    // leaves the forced budget untouched.
    forced = options_.forced_check_min_gap == 0 || last_forced_check_pair_ < 0 ||
             pairs_logged_ - last_forced_check_pair_ >=
                 static_cast<int64_t>(options_.forced_check_min_gap);
  }
  if (!interval_check && !forced) {
    return std::optional<CheckReport>();
  }
  if (forced) {
    last_forced_check_pair_ = pairs_logged_;
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"forced\"}").Increment();
  } else {
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"interval\"}").Increment();
  }
  pairs_since_check_ = 0;

  CheckReport report;
  SEAL_RETURN_IF_ERROR(RunChecksLocked(&report));
  int64_t trim_start = NowNanos();
  size_t deleted = 0;
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries(), &deleted));
  if (deleted > 0) {
    // Rows left the log, so the deltas past the watermarks no longer
    // describe it: the next check scans whatever survived in full.
    ResetWatermarksLocked();
  }
  report.trim_nanos = NowNanos() - trim_start;
  SEAL_OBS_COUNTER("logger_trims_total").Increment();
  SEAL_OBS_COUNTER("logger_trimmed_rows_total").Add(deleted);
  SEAL_OBS_HISTOGRAM("logger_trim_nanos").Observe(static_cast<uint64_t>(report.trim_nanos));
  last_report_ = report;
  return std::optional<CheckReport>(std::move(report));
}

void AuditLogger::EnsureInvariantsLocked() {
  if (invariants_loaded_) {
    return;
  }
  invariants_ = module_->Invariants();
  watermarks_.assign(invariants_.size(), -1);
  invariants_loaded_ = true;
}

void AuditLogger::ResetWatermarksLocked() {
  for (int64_t& w : watermarks_) {
    if (w >= 0) {
      SEAL_OBS_COUNTER("logger_watermark_resets_total").Increment();
    }
    w = -1;
  }
}

Status AuditLogger::RunChecksLocked(CheckReport* report) {
  EnsureInvariantsLocked();
  int64_t check_start = NowNanos();
  // No logged tuple carries a time newer than this; a clean check covers
  // everything up to it.
  const int64_t horizon = next_time_ - 1;
  for (size_t i = 0; i < invariants_.size(); ++i) {
    const Invariant& invariant = invariants_[i];
    const bool incremental =
        options_.incremental_checking && invariant.monotone && watermarks_[i] >= 0;
    auto result = incremental ? log_.QueryWithTimeFloor(invariant.query, watermarks_[i])
                              : log_.Query(invariant.query);
    if (!result.ok()) {
      return result.status();
    }
    ++report->invariants_checked;
    SEAL_OBS_COUNTER("logger_invariant_evaluations_total").Increment();
    if (incremental) {
      SEAL_OBS_COUNTER("logger_incremental_evaluations_total").Increment();
    }
    if (result->rows.empty()) {
      if (invariant.monotone) {
        watermarks_[i] = horizon;
        SEAL_OBS_COUNTER("logger_watermark_advances_total").Increment();
      }
    } else {
      // A violating monotone invariant keeps its watermark where it is: the
      // offending rows must stay visible to subsequent checks.
      if (invariant.monotone) {
        SEAL_OBS_COUNTER("logger_watermark_freezes_total").Increment();
      }
      SEAL_OBS_COUNTER("logger_violations_found_total").Add(result->rows.size());
      report->violations.push_back(CheckReport::Violation{invariant.name, std::move(*result)});
    }
  }
  report->check_nanos = NowNanos() - check_start;
  SEAL_OBS_HISTOGRAM("logger_check_nanos").Observe(static_cast<uint64_t>(report->check_nanos));
  return Status::Ok();
}

Result<CheckReport> AuditLogger::CheckInvariants() {
  std::lock_guard<std::mutex> lock(mutex_);
  SEAL_OBS_COUNTER("logger_checks_total{trigger=\"manual\"}").Increment();
  CheckReport report;
  SEAL_RETURN_IF_ERROR(RunChecksLocked(&report));
  last_report_ = report;
  return report;
}

Status AuditLogger::Trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t deleted = 0;
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries(), &deleted));
  if (deleted > 0) {
    ResetWatermarksLocked();
  }
  return Status::Ok();
}

int64_t AuditLogger::watermark_for_testing(size_t invariant_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invariant_index < watermarks_.size() ? watermarks_[invariant_index] : -1;
}

}  // namespace seal::core
