#include "src/core/logger.h"

#include <chrono>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::core {

namespace {

// Batch cap: under sustained load the sequencer hands off to a successor
// instead of growing one batch (and its waiters' latency) without bound.
constexpr size_t kMaxBatchPairs = 256;

}  // namespace

std::string CheckReport::Summary() const {
  if (violations.empty()) {
    return "ok " + std::to_string(invariants_checked) + " invariants";
  }
  std::string s = "VIOLATION";
  for (const Violation& v : violations) {
    s += " " + v.invariant + "(" + std::to_string(v.rows.rows.size()) + ")";
  }
  return s;
}

AuditLogger::AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
                         LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key)
    : module_(std::move(module)),
      log_(std::move(log_options), std::move(signing_key)),
      options_(logger_options) {}

AuditLogger::~AuditLogger() = default;

Status AuditLogger::Init() {
  SEAL_RETURN_IF_ERROR(log_.ExecuteSchema(module_->Schema()));
  return log_.ExecuteSchema(module_->Views());
}

Result<std::optional<CheckReport>> AuditLogger::OnPair(uint64_t conn_id, std::string_view request,
                                                       std::string_view response,
                                                       bool force_check) {
  const int64_t t0 = NowNanos();
  PendingPair op;
  op.time = next_time_.fetch_add(1, std::memory_order_relaxed);
  op.force_check = force_check;
  // Parse outside any lock: SSMs are stateless, so only the ticket above
  // needs to be ordered.
  module_->Log(request, response, op.time, &op.tuples);

  Shard& shard = shards_[conn_id % kAppendShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!shard.staged.empty()) {
      SEAL_OBS_COUNTER("logger_shard_contention_total").Increment();
    }
    shard.staged.push_back(&op);
  }

  // Group commit: either become the sequencer and drain (which, with no
  // contention, processes exactly our own pair), or wait for the running
  // sequencer to drain us. The timeout covers the window where the
  // sequencer finished collecting just before we staged: someone must
  // re-attempt the drain, and 200µs bounds how long a gap in the ticket
  // sequence (a thread between ticket and stage) can hold everyone up.
  for (;;) {
    if (drain_mutex_.try_lock()) {
      DrainStagedLocked();
      drain_mutex_.unlock();
    }
    std::unique_lock<std::mutex> lk(op.m);
    if (op.cv.wait_for(lk, std::chrono::microseconds(200), [&] { return op.done; })) {
      break;
    }
  }

  SEAL_OBS_HISTOGRAM("logger_append_nanos").Observe(static_cast<uint64_t>(NowNanos() - t0));
  if (!op.status.ok()) {
    return op.status;
  }
  return std::move(op.report);
}

void AuditLogger::DrainStagedLocked() {
  std::vector<PendingPair*> drained;
  for (;;) {
    bool collected = false;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.staged.empty()) {
        continue;
      }
      collected = true;
      for (PendingPair* op : shard.staged) {
        reorder_.emplace(op->time, op);
      }
      shard.staged.clear();
    }
    bool processed = false;
    for (auto it = reorder_.find(next_drain_time_);
         it != reorder_.end() && drained.size() < kMaxBatchPairs;
         it = reorder_.find(next_drain_time_)) {
      PendingPair* op = it->second;
      reorder_.erase(it);
      ++next_drain_time_;
      ProcessPairLocked(op);
      drained.push_back(op);
      processed = true;
    }
    // Keep sweeping while pairs arrive: a stage racing the collection above
    // would otherwise wait a full timeout round. Stop on a quiet sweep, a
    // ticket gap, or a full batch.
    if ((!collected && !processed) || drained.size() >= kMaxBatchPairs) {
      break;
    }
  }
  if (drained.empty()) {
    return;
  }
  // One head commit covers the whole batch (any check along the way
  // already committed its prefix).
  (void)CommitIfDirtyLocked();
  SEAL_OBS_COUNTER("logger_batches_total").Increment();
  SEAL_OBS_HISTOGRAM("logger_batch_pairs").Observe(drained.size());
  for (PendingPair* op : drained) {
    // Waiters re-check `done` under op->m and may destroy the pair the
    // moment we release it, so the notify must happen under the lock.
    std::lock_guard<std::mutex> lk(op->m);
    op->done = true;
    op->cv.notify_all();
  }
}

Status AuditLogger::CommitIfDirtyLocked() {
  if (!dirty_since_commit_) {
    return Status::Ok();
  }
  Status status = log_.CommitHead();
  if (!status.ok()) {
    for (PendingPair* op : uncommitted_) {
      if (op->status.ok()) {
        op->status = status;
      }
    }
  }
  dirty_since_commit_ = false;
  uncommitted_.clear();
  return status;
}

void AuditLogger::ProcessPairLocked(PendingPair* op) {
  for (LogTuple& tuple : op->tuples) {
    db::Row row;
    row.push_back(db::Value(op->time));
    for (db::Value& v : tuple.values) {
      row.push_back(std::move(v));
    }
    Status s = log_.Append(tuple.table, std::move(row));
    if (!s.ok()) {
      op->status = s;
      return;
    }
  }
  pairs_logged_.fetch_add(1, std::memory_order_relaxed);
  SEAL_OBS_COUNTER("logger_pairs_total").Increment();
  SEAL_OBS_COUNTER("logger_tuples_total").Add(op->tuples.size());
  if (!op->tuples.empty()) {
    // Only pairs that actually appended tuples advance the check interval:
    // unparseable or uninteresting traffic adds nothing worth re-checking.
    ++pairs_since_check_;
    dirty_since_commit_ = true;
    uncommitted_.push_back(op);
  }

  bool interval_check = options_.check_interval > 0 &&
                        pairs_since_check_ >= static_cast<int64_t>(options_.check_interval);
  bool forced = false;
  if (op->force_check && !interval_check) {
    // Rate-limit client-triggered checks (§6.3). A demand landing on an
    // interval boundary is satisfied by the interval check for free and
    // leaves the forced budget untouched.
    forced = options_.forced_check_min_gap == 0 || last_forced_check_pair_ < 0 ||
             pairs_logged_.load(std::memory_order_relaxed) - last_forced_check_pair_ >=
                 static_cast<int64_t>(options_.forced_check_min_gap);
  }
  if (!interval_check && !forced) {
    return;
  }
  if (forced) {
    last_forced_check_pair_ = pairs_logged_.load(std::memory_order_relaxed);
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"forced\"}").Increment();
  } else {
    SEAL_OBS_COUNTER("logger_checks_total{trigger=\"interval\"}").Increment();
  }
  pairs_since_check_ = 0;

  // Bind the head to everything appended so far before producing evidence.
  Status commit_status = CommitIfDirtyLocked();
  if (!commit_status.ok()) {
    op->status = commit_status;
    return;
  }
  CheckReport report;
  Status check_status = RunChecksLocked(&report);
  if (!check_status.ok()) {
    op->status = check_status;
    return;
  }
  int64_t trim_start = NowNanos();
  size_t deleted = 0;
  Status trim_status = log_.Trim(module_->TrimmingQueries(), &deleted);
  if (!trim_status.ok()) {
    op->status = trim_status;
    return;
  }
  if (deleted > 0) {
    // Rows left the log, so the deltas past the watermarks no longer
    // describe it: the next check scans whatever survived in full.
    ResetWatermarksLocked();
  }
  report.trim_nanos = NowNanos() - trim_start;
  SEAL_OBS_COUNTER("logger_trims_total").Increment();
  SEAL_OBS_COUNTER("logger_trimmed_rows_total").Add(deleted);
  SEAL_OBS_HISTOGRAM("logger_trim_nanos").Observe(static_cast<uint64_t>(report.trim_nanos));
  last_report_ = report;
  op->report = std::move(report);
}

void AuditLogger::EnsureInvariantsLocked() {
  if (invariants_loaded_) {
    return;
  }
  invariants_ = module_->Invariants();
  watermarks_.assign(invariants_.size(), -1);
  invariants_loaded_ = true;
}

void AuditLogger::ResetWatermarksLocked() {
  for (int64_t& w : watermarks_) {
    if (w >= 0) {
      SEAL_OBS_COUNTER("logger_watermark_resets_total").Increment();
    }
    w = -1;
  }
}

Status AuditLogger::RunChecksLocked(CheckReport* report) {
  EnsureInvariantsLocked();
  int64_t check_start = NowNanos();
  // Every tuple with time < next_drain_time_ has been drained into the
  // database; later tickets may still be in flight, so a clean check may
  // only advance watermarks up to here.
  const int64_t horizon = next_drain_time_ - 1;
  for (size_t i = 0; i < invariants_.size(); ++i) {
    const Invariant& invariant = invariants_[i];
    const bool incremental =
        options_.incremental_checking && invariant.monotone && watermarks_[i] >= 0;
    auto result = incremental ? log_.QueryWithTimeFloor(invariant.query, watermarks_[i])
                              : log_.Query(invariant.query);
    if (!result.ok()) {
      return result.status();
    }
    ++report->invariants_checked;
    SEAL_OBS_COUNTER("logger_invariant_evaluations_total").Increment();
    if (incremental) {
      SEAL_OBS_COUNTER("logger_incremental_evaluations_total").Increment();
    }
    if (result->rows.empty()) {
      if (invariant.monotone) {
        watermarks_[i] = horizon;
        SEAL_OBS_COUNTER("logger_watermark_advances_total").Increment();
      }
    } else {
      // A violating monotone invariant keeps its watermark where it is: the
      // offending rows must stay visible to subsequent checks.
      if (invariant.monotone) {
        SEAL_OBS_COUNTER("logger_watermark_freezes_total").Increment();
      }
      SEAL_OBS_COUNTER("logger_violations_found_total").Add(result->rows.size());
      report->violations.push_back(CheckReport::Violation{invariant.name, std::move(*result)});
    }
  }
  report->check_nanos = NowNanos() - check_start;
  SEAL_OBS_HISTOGRAM("logger_check_nanos").Observe(static_cast<uint64_t>(report->check_nanos));
  return Status::Ok();
}

Result<CheckReport> AuditLogger::CheckInvariants() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  DrainStagedLocked();  // fold any in-flight pairs in before the scan
  SEAL_OBS_COUNTER("logger_checks_total{trigger=\"manual\"}").Increment();
  CheckReport report;
  SEAL_RETURN_IF_ERROR(RunChecksLocked(&report));
  last_report_ = report;
  return report;
}

Status AuditLogger::Trim() {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  DrainStagedLocked();
  size_t deleted = 0;
  SEAL_RETURN_IF_ERROR(log_.Trim(module_->TrimmingQueries(), &deleted));
  if (deleted > 0) {
    ResetWatermarksLocked();
  }
  return Status::Ok();
}

int64_t AuditLogger::watermark_for_testing(size_t invariant_index) const {
  std::lock_guard<std::mutex> lock(drain_mutex_);
  return invariant_index < watermarks_.size() ? watermarks_[invariant_index] : -1;
}

}  // namespace seal::core
