// Durable on-disk lifecycle of the audit log (ROADMAP item 3): file
// helpers that actually reach the platter (fsync on data files and their
// directory, atomic replace-by-rename for head/snapshot files), the log
// entry wire codec, the segmented-log layout (`<base>.segNNNNNN` files
// with chained headers), compressed sealed trim archives
// (`<base>.archNNNNNN`) and sealed seadb snapshots (`<base>.snap`).
//
// Snapshot and archive payloads are protected by, in order of preference:
// the enclave-identity-derived sealing key (src/sgx/sealing.h, MRSIGNER by
// default so sealed logs move across machines, §6.3), the log's symmetric
// encryption key, or nothing (sign-only logs on a trusted disk).
#ifndef SRC_CORE_LOG_SEGMENT_H_
#define SRC_CORE_LOG_SEGMENT_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/db/value.h"
#include "src/sgx/sealing.h"

namespace seal::core {

// One serialised log entry, the hash-chain unit.
struct LogEntry {
  int64_t time = 0;       // per-instance logical timestamp (primary key)
  int64_t wall_nanos = 0; // wall clock at append: orders entries ACROSS
                          // instances when partial logs are merged (§3.2)
  std::string table;
  db::Row values;  // full row, including time

  Bytes Serialize() const;
  // Strict: validates value payloads (digits-only integers, fully-consumed
  // reals, length-checked text) and fails on truncation at any boundary.
  static Result<LogEntry> Deserialize(BytesView in, size_t& off);
};

// --- durable file helpers -------------------------------------------------

// Writes (or appends) and fsyncs the file; with `create` also fsyncs the
// containing directory so the new directory entry survives a crash.
Status DurableWriteFile(const std::string& path, BytesView data, bool append, bool sync);

// Crash-atomic replace: writes `<path>.tmp`, fsyncs it, renames over
// `path` and fsyncs the directory. A reader sees either the old or the
// new complete file, never a torn mixture.
Status AtomicWriteFile(const std::string& path, BytesView data, bool sync);

Result<Bytes> ReadFileBytes(const std::string& path);
Result<uint64_t> FileSizeBytes(const std::string& path);
bool FileExists(const std::string& path);
void RemoveFileIfExists(const std::string& path);
// Truncates `path` to `size` bytes (discarding a torn tail record).
Status TruncateFile(const std::string& path, uint64_t size);
Status FsyncParentDir(const std::string& path);

// --- layout ---------------------------------------------------------------

std::string SegmentFilePath(const std::string& base, uint32_t index);
std::string ArchiveFilePath(const std::string& base, uint32_t index);
std::string SnapshotFilePath(const std::string& base);
std::string HeadFilePath(const std::string& base);

// Sorted indices of existing `<base>.seg*` / `<base>.arch*` files.
std::vector<uint32_t> ListSegmentFiles(const std::string& base);
std::vector<uint32_t> ListArchiveFiles(const std::string& base);

// Removes every lifecycle file of `base` (entries file, head, snapshot,
// segments, archives). Used when a log is opened without recovery.
void RemoveLogFiles(const std::string& base);

// --- segment header -------------------------------------------------------

inline constexpr size_t kSegmentHeaderSize = 88;

struct SegmentHeader {
  uint32_t version = 1;
  uint32_t index = 0;
  uint32_t closed = 0;          // 1 once rolled; the file is then immutable
  uint64_t rewrite_epoch = 0;   // bumped by every trim rewrite
  Bytes prev_head;              // chain head before this segment's first record
  int64_t first_ticket = 0;
  int64_t last_ticket = 0;      // filled at close
  uint64_t counter_value = 0;   // last committed ROTE value at creation

  Bytes Encode() const;
  static Result<SegmentHeader> Decode(BytesView in);
};

// Rewrites the header at the front of an existing segment file (close).
Status UpdateSegmentHeader(const std::string& path, const SegmentHeader& header, bool sync);

// --- sealed blobs (snapshots + archives) ----------------------------------

// How a snapshot/archive payload is protected on disk.
enum class BlobProtection : uint32_t {
  kPlain = 0,
  kKey = 1,     // AES-GCM under the log encryption key
  kSealed = 2,  // enclave-identity sealing (src/sgx/sealing.h)
};

struct SealContext {
  const Bytes* encryption_key = nullptr;      // may be null/empty
  const sgx::Enclave* enclave = nullptr;      // preferred when set
  sgx::SealPolicy policy = sgx::SealPolicy::kMrSigner;
};

// --- trim archives --------------------------------------------------------

Status WriteArchiveFile(const std::string& path, uint32_t index,
                        const std::vector<LogEntry>& entries, const SealContext& ctx, bool sync);
Result<std::vector<LogEntry>> ReadArchiveFile(const std::string& path, const SealContext& ctx);

// --- sealed snapshots -----------------------------------------------------

struct SnapshotState {
  uint64_t rewrite_epoch = 0;
  Bytes chain_head;           // chain head over `entries`
  uint64_t persisted_bytes = 0;
  uint32_t resume_segment = 0;  // replay resumes at this segment...
  uint64_t resume_offset = 0;   // ...at this byte offset (file offset)
  uint64_t counter_value = 0;
  int64_t max_ticket = 0;
  std::vector<LogEntry> entries;
};

Status WriteSnapshotFile(const std::string& path, const SnapshotState& snapshot,
                         const SealContext& ctx, bool sync);
Result<SnapshotState> ReadSnapshotFile(const std::string& path, const SealContext& ctx);

}  // namespace seal::core

#endif  // SRC_CORE_LOG_SEGMENT_H_
