#include "src/core/log_merge.h"

#include <algorithm>
#include <map>

namespace seal::core {

Result<MergeResult> MergeTaggedEntries(std::vector<TaggedEntry> all,
                                       ServiceModule& module, size_t instances) {
  // Interleave by wall clock (ties broken by instance, then logical time):
  // per-instance logical clocks are NOT comparable across instances, but
  // every entry carries the wall time of its append.
  std::stable_sort(all.begin(), all.end(), [](const TaggedEntry& a, const TaggedEntry& b) {
    if (a.entry.wall_nanos != b.entry.wall_nanos) {
      return a.entry.wall_nanos < b.entry.wall_nanos;
    }
    if (a.instance != b.instance) {
      return a.instance < b.instance;
    }
    return a.entry.time < b.entry.time;
  });

  // Materialise into a fresh database with re-assigned global times.
  MergeResult result;
  result.instances = instances;
  for (const std::string& sql : module.Schema()) {
    auto r = result.database.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
  }
  for (const std::string& sql : module.Views()) {
    auto r = result.database.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
  }
  int64_t global_time = 0;
  int64_t last_original = -1;
  size_t last_instance = 0;
  for (TaggedEntry& tagged : all) {
    // Entries from the same (instance, original time) share a pair and
    // keep sharing a global timestamp.
    if (tagged.entry.time != last_original || tagged.instance != last_instance) {
      ++global_time;
      last_original = tagged.entry.time;
      last_instance = tagged.instance;
    }
    db::Row row = std::move(tagged.entry.values);
    if (row.empty()) {
      return DataLoss("log entry with no columns");
    }
    row[0] = db::Value(global_time);
    SEAL_RETURN_IF_ERROR(result.database.InsertRow(tagged.entry.table, std::move(row)));
    ++result.total_entries;
  }
  return result;
}

Result<MergeResult> MergeVerifiedLogs(const std::vector<PartialLog>& partials,
                                      ServiceModule& module) {
  std::vector<TaggedEntry> all;
  // Instance key -> (first index, counter round of that partial's head).
  // Each enclave instance contributes at most one partial per merge; two
  // partials under the same log key are a duplicated (same round) or
  // forked (different round) copy of one shard's log, and interleaving
  // either would double-count its entries as evidence.
  std::map<Bytes, std::pair<size_t, uint64_t>> seen;
  for (size_t i = 0; i < partials.size(); ++i) {
    const PartialLog& partial = partials[i];
    if (partial.counter == nullptr) {
      return InvalidArgument("partial log without counter for rollback verification");
    }
    // Independently verify the partial log; a merge over unverified
    // inputs would not constitute evidence.
    AuditLog::VerifiedHeadInfo head;
    auto verified = AuditLog::VerifyLogFile(partial.path, partial.log_public_key,
                                            *partial.counter, partial.encryption_key, &head);
    if (!verified.ok()) {
      return Status(verified.status().code(),
                    "instance " + std::to_string(i) + ": " + verified.status().message());
    }
    auto [it, inserted] =
        seen.emplace(partial.log_public_key.Encode(), std::make_pair(i, head.counter_value));
    if (!inserted) {
      const auto& [first_index, first_round] = it->second;
      return PermissionDenied(
          "duplicate partial log: instances " + std::to_string(first_index) + " and " +
          std::to_string(i) + " share a log key (counter rounds " +
          std::to_string(first_round) + " and " + std::to_string(head.counter_value) +
          "); a shard's log may only be merged once");
    }
    auto entries =
        AuditLog::ReadVerifiedEntries(partial.path, partial.encryption_key);
    if (!entries.ok()) {
      return entries.status();
    }
    for (LogEntry& entry : *entries) {
      all.push_back(TaggedEntry{i, std::move(entry)});
    }
  }
  return MergeTaggedEntries(std::move(all), module, partials.size());
}

}  // namespace seal::core
