#include "src/core/libseal.h"

#include <algorithm>
#include <cctype>

#include "src/crypto/sha256.h"
#include "src/http/http.h"
#include "src/lthread/lthread.h"

namespace seal::core {

namespace {

// Marshalling structures for the enclave interface.
struct NewArgs {
  LibSealSsl* outside;
  int role;
  uint64_t conn_id;
  bool ok;
};

struct ConnArgs {
  uint64_t conn_id;
  LibSealSsl* outside;
  uint8_t* buf;
  size_t len;
  int64_t result;  // bytes or -1
};

struct BioArgs {
  LibSealSsl* outside;
  const uint8_t* wbuf;
  uint8_t* rbuf;
  size_t len;
  size_t result;
  bool ok;
};

struct InfoCbArgs {
  const LibSealSsl* ssl;
  int event;
  int bytes;
  // The saved outside callback address, passed back out through the
  // trampoline exactly as in the paper's listing (§4.1).
  SslInfoCallback callback;
};

struct ExDataArgs {
  uint64_t conn_id;
  int index;
  void* data;
};

bool CaseInsensitiveContains(const std::string& haystack, std::string_view needle) {
  auto it = std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                        [](char a, char b) {
                          return std::tolower(static_cast<unsigned char>(a)) ==
                                 std::tolower(static_cast<unsigned char>(b));
                        });
  return it != haystack.end();
}

}  // namespace

std::optional<size_t> ContentLengthFromHeaders(std::string_view headers) {
  constexpr std::string_view kName = "content-length:";
  size_t content_length = 0;
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    std::string_view line =
        headers.substr(pos, (eol == std::string_view::npos ? headers.size() : eol) - pos);
    pos = eol == std::string_view::npos ? headers.size() : eol + 2;
    if (line.size() < kName.size()) {
      continue;
    }
    bool is_content_length = true;
    for (size_t i = 0; i < kName.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(line[i])) != kName[i]) {
        is_content_length = false;
        break;
      }
    }
    if (!is_content_length) {
      continue;
    }
    std::string_view value = line.substr(kName.size());
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
      value.remove_suffix(1);
    }
    // Strict digits-only parse: strtoul-style tolerance of trailing
    // garbage, signs or silent overflow would let a hostile peer desync
    // the framing from what the application sees.
    if (value.empty()) {
      return std::nullopt;
    }
    uint64_t parsed = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      if (parsed > (kAuditBufferCap - (c - '0')) / 10) {
        return std::nullopt;  // would exceed the cap (or overflow)
      }
      parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
    }
    content_length = parsed;  // last occurrence wins
  }
  return content_length;
}

std::optional<std::string> TryExtractHttpMessage(std::string& buffer) {
  size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return std::nullopt;
  }
  auto content_length = ContentLengthFromHeaders(std::string_view(buffer).substr(0, header_end));
  if (!content_length.has_value()) {
    return std::nullopt;
  }
  size_t total = header_end + 4 + *content_length;
  if (buffer.size() < total) {
    return std::nullopt;
  }
  std::string message = buffer.substr(0, total);
  buffer.erase(0, total);
  return message;
}

std::optional<std::string> HttpMessageBuffer::TryExtract() {
  if (poisoned_) {
    return std::nullopt;
  }
  if (!framed_) {
    // Resume the terminator search where the last one stopped; back up
    // three bytes in case the "\r\n\r\n" straddles the old chunk boundary.
    size_t from = scan_offset_ > 3 ? scan_offset_ - 3 : 0;
    size_t header_end = buffer_.find("\r\n\r\n", from);
    if (header_end == std::string::npos) {
      scan_offset_ = buffer_.size();
      return std::nullopt;
    }
    auto content_length =
        ContentLengthFromHeaders(std::string_view(buffer_).substr(0, header_end));
    if (!content_length.has_value()) {
      poisoned_ = true;
      return std::nullopt;
    }
    total_ = header_end + 4 + *content_length;
    framed_ = true;
  }
  if (buffer_.size() < total_) {
    return std::nullopt;
  }
  std::string message = buffer_.substr(0, total_);
  buffer_.erase(0, total_);
  framed_ = false;
  scan_offset_ = 0;
  total_ = 0;
  return message;
}

void HttpMessageBuffer::Clear() {
  buffer_.clear();
  scan_offset_ = 0;
  total_ = 0;
  framed_ = false;
  poisoned_ = false;
}

// ---------------------------------------------------------------------------
// Trusted (in-enclave) state.
// ---------------------------------------------------------------------------

// BIO whose transport operations leave the enclave via ocalls: the I/O
// stream itself stays outside (Fig. 2).
class OcallBio : public tls::Bio {
 public:
  OcallBio(LibSealRuntime* runtime, LibSealSsl* outside, int ocall_read, int ocall_write,
           int ocall_close, Status (*do_ocall)(LibSealRuntime*, int, void*))
      : runtime_(runtime),
        outside_(outside),
        ocall_read_(ocall_read),
        ocall_write_(ocall_write),
        ocall_close_(ocall_close),
        do_ocall_(do_ocall) {}

  size_t Read(uint8_t* buf, size_t max) override {
    BioArgs args{outside_, nullptr, buf, max, 0, false};
    if (!do_ocall_(runtime_, ocall_read_, &args).ok()) {
      return 0;
    }
    return args.result;
  }

  bool Write(BytesView data) override {
    BioArgs args{outside_, data.data(), nullptr, data.size(), 0, false};
    if (!do_ocall_(runtime_, ocall_write_, &args).ok()) {
      return false;
    }
    return args.ok;
  }

  void Close() override {
    BioArgs args{outside_, nullptr, nullptr, 0, 0, false};
    (void)do_ocall_(runtime_, ocall_close_, &args);
  }

 private:
  LibSealRuntime* runtime_;
  LibSealSsl* outside_;
  int ocall_read_;
  int ocall_write_;
  int ocall_close_;
  Status (*do_ocall_)(LibSealRuntime*, int, void*);
};

struct LibSealRuntime::TrustedConn {
  std::unique_ptr<OcallBio> bio;
  std::unique_ptr<tls::TlsConnection> tls;
  LibSealSsl* outside = nullptr;
  tls::Role role = tls::Role::kServer;

  // Auditing accumulators (server-role connections only).
  HttpMessageBuffer request_buffer;
  HttpMessageBuffer response_buffer;
  std::deque<std::string> pending_requests;
  bool check_requested = false;
};

struct LibSealRuntime::EnclaveState {
  tls::TlsConfig tls_config;  // provisioned private key lives here, inside
  // Enclave-resident session cache: cached master secrets never cross the
  // enclave boundary, so resumption leaks nothing the live keys don't.
  tls::TlsSessionCache session_cache;
  crypto::EcdsaPrivateKey log_key;

  std::mutex mutex;
  uint64_t next_conn_id = 1;
  std::map<uint64_t, std::unique_ptr<TrustedConn>> conns;
  // The shadow association map (§4.1): outside pointer -> trusted state.
  std::map<const LibSealSsl*, uint64_t> shadow_map;

  TrustedConn* Find(uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = conns.find(id);
    return it == conns.end() ? nullptr : it->second.get();
  }
};

// ---------------------------------------------------------------------------
// Runtime.
// ---------------------------------------------------------------------------

LibSealRuntime::LibSealRuntime(LibSealOptions options, std::unique_ptr<ServiceModule> module)
    : options_(std::move(options)), pending_module_(std::move(module)) {}

LibSealRuntime::~LibSealRuntime() { Shutdown(); }

Status LibSealRuntime::DoEcall(int id, void* data) {
  if (async_ != nullptr && async_->running()) {
    return async_->AsyncEcall(id, data);
  }
  return enclave_->Ecall(id, data);
}

Status LibSealRuntime::DoOcallFromInside(LibSealRuntime* runtime, int id, void* data) {
  // On an enclave-worker lthread task the asynchronous protocol applies;
  // everywhere else (plain threads in synchronous mode, and application
  // lthread tasks such as reactor connections — which also have a current
  // scheduler but no slot binding) the hardware-transition path is used.
  if (asyncall::AsyncCallRuntime::OnEnclaveWorkerThread()) {
    return asyncall::AsyncCallRuntime::AsyncOcall(id, data);
  }
  return runtime->enclave_->Ocall(id, data);
}

void LibSealRuntime::SimulateUnoptimisedOcalls(int count) {
  for (int i = 0; i < count; ++i) {
    BioArgs args{nullptr, nullptr, nullptr, 0, 0, false};
    (void)DoOcallFromInside(this, ocall_alloc_, &args);
  }
}

void LibSealRuntime::RegisterInterface() {
  // --- ocalls: run OUTSIDE the enclave ---
  ocall_bio_read_ = enclave_->RegisterOcall("bio_read", [](void* data) {
    auto* args = static_cast<BioArgs*>(data);
    args->result = args->outside->stream->Read(args->rbuf, args->len);
  });
  ocall_bio_write_ = enclave_->RegisterOcall("bio_write", [](void* data) {
    auto* args = static_cast<BioArgs*>(data);
    args->outside->stream->Write(BytesView(args->wbuf, args->len));
    args->ok = true;
  });
  ocall_bio_close_ = enclave_->RegisterOcall("bio_close", [](void* data) {
    auto* args = static_cast<BioArgs*>(data);
    args->outside->stream->Close();
  });
  ocall_info_cb_ = enclave_->RegisterOcall("info_callback", [](void* data) {
    auto* args = static_cast<InfoCbArgs*>(data);
    // Step 4 of the secure-callback protocol: the trampoline retrieved the
    // saved outside address and we now invoke it, outside the enclave,
    // with the sanitised shadow structure.
    args->callback(args->ssl, args->event, args->bytes);
  });
  ocall_alloc_ = enclave_->RegisterOcall("allocator", [](void* data) {
    // Stand-in for the malloc/free/pthread/random ocalls that the memory
    // pool and in-enclave locks/RNG eliminate (§4.2). Cost only.
    (void)data;
  });

  // --- ecalls: run INSIDE the enclave ---
  ecall_new_ = enclave_->RegisterEcall("ssl_new", [this](void* data) {
    auto* args = static_cast<NewArgs*>(data);
    auto conn = std::make_unique<TrustedConn>();
    conn->outside = args->outside;
    conn->role = args->role == 0 ? tls::Role::kServer : tls::Role::kClient;
    conn->bio = std::make_unique<OcallBio>(this, args->outside, ocall_bio_read_,
                                           ocall_bio_write_, ocall_bio_close_,
                                           &LibSealRuntime::DoOcallFromInside);
    conn->tls = std::make_unique<tls::TlsConnection>(conn->bio.get(), &state_->tls_config,
                                                     conn->role);
    if (info_callback_ != nullptr) {
      // Secure callback (§4.1): the enclave saves the outside address and
      // installs a trampoline that ocalls back out.
      LibSealSsl* outside = args->outside;
      SslInfoCallback saved_address = info_callback_;
      LibSealRuntime* runtime = this;
      conn->tls->set_info_callback([outside, saved_address, runtime](tls::InfoEvent event,
                                                                     int bytes) {
        InfoCbArgs cb_args{outside, static_cast<int>(event), bytes, saved_address};
        (void)DoOcallFromInside(runtime, runtime->ocall_info_cb_, &cb_args);
      });
    }
    std::lock_guard<std::mutex> lock(state_->mutex);
    uint64_t id = state_->next_conn_id++;
    state_->shadow_map[args->outside] = id;
    state_->conns[id] = std::move(conn);
    enclave_->TrackAlloc(options_.per_connection_epc_bytes);
    args->conn_id = id;
    args->ok = true;
  });

  ecall_handshake_ = enclave_->RegisterEcall("ssl_handshake", [this](void* data) {
    auto* args = static_cast<ConnArgs*>(data);
    TrustedConn* conn = state_->Find(args->conn_id);
    if (conn == nullptr) {
      args->result = -1;
      return;
    }
    if (!options_.reductions.in_enclave_locks_rng) {
      // A naive port would leave the enclave for locks and randomness
      // throughout the handshake.
      SimulateUnoptimisedOcalls(8);
    }
    Status status = conn->tls->Handshake();
    // Synchronise the sanitised shadow structure (§4.1).
    conn->outside->handshake_done = status.ok() ? 1 : 0;
    if (status.ok()) {
      // The session id is plaintext on the wire, so copying it to the
      // shadow leaks nothing; shard routers need it for affinity.
      const Bytes& sid = conn->tls->session_id();
      size_t n = std::min(sid.size(), sizeof(conn->outside->session_id));
      std::copy(sid.begin(), sid.begin() + static_cast<ptrdiff_t>(n),
                conn->outside->session_id);
      conn->outside->session_id_len = n;
    }
    args->result = status.ok() ? 1 : -1;
  });

  ecall_read_ = enclave_->RegisterEcall("ssl_read", [this](void* data) {
    auto* args = static_cast<ConnArgs*>(data);
    TrustedConn* conn = state_->Find(args->conn_id);
    if (conn == nullptr) {
      args->result = -1;
      return;
    }
    if (!options_.reductions.outside_memory_pool) {
      SimulateUnoptimisedOcalls(2);  // malloc + free of the record buffer
    }
    auto n = conn->tls->Read(args->buf, args->len);
    if (!n.ok()) {
      args->result = -1;
      return;
    }
    args->result = static_cast<int64_t>(*n);
    conn->outside->bytes_read += *n;
    // Auditing: observe the decrypted request stream (§5.1).
    if (logger_ != nullptr && conn->role == tls::Role::kServer && *n > 0) {
      conn->request_buffer.Append(reinterpret_cast<char*>(args->buf), *n);
      while (auto message = conn->request_buffer.TryExtract()) {
        if (CaseInsensitiveContains(*message, "libseal-check:")) {
          conn->check_requested = true;
        }
        conn->pending_requests.push_back(std::move(*message));
      }
      if (conn->request_buffer.poisoned() || conn->request_buffer.size() > kAuditBufferCap) {
        conn->request_buffer.Clear();  // non-HTTP traffic: stop accumulating
      }
    }
  });

  ecall_write_ = enclave_->RegisterEcall("ssl_write", [this](void* data) {
    auto* args = static_cast<ConnArgs*>(data);
    TrustedConn* conn = state_->Find(args->conn_id);
    if (conn == nullptr) {
      args->result = -1;
      return;
    }
    if (!options_.reductions.outside_memory_pool) {
      SimulateUnoptimisedOcalls(2);
    }
    if (logger_ == nullptr || conn->role != tls::Role::kServer) {
      Status status = conn->tls->Write(BytesView(args->buf, args->len));
      args->result = status.ok() ? static_cast<int64_t>(args->len) : -1;
      if (status.ok()) {
        conn->outside->bytes_written += args->len;
      }
      return;
    }
    // Audited path: hold response bytes until a complete message is
    // available, log the pair, optionally attach the in-band check result,
    // then encrypt and send.
    conn->response_buffer.Append(reinterpret_cast<char*>(args->buf), args->len);
    args->result = static_cast<int64_t>(args->len);
    conn->outside->bytes_written += args->len;
    while (auto message = conn->response_buffer.TryExtract()) {
      std::string request;
      if (!conn->pending_requests.empty()) {
        request = std::move(conn->pending_requests.front());
        conn->pending_requests.pop_front();
      }
      bool force_check = conn->check_requested;
      conn->check_requested = false;
      auto report = logger_->OnPair(args->conn_id, request, *message, force_check);
      if (!report.ok()) {
        args->result = -1;
        return;
      }
      std::string wire_message = std::move(*message);
      if (force_check) {
        // In-band result notification (§5.2): rewrite the response with a
        // Libseal-Check-Result header.
        std::optional<CheckReport> fallback;
        if (!report->has_value()) {
          fallback = logger_->last_report();
        }
        std::string summary = report->has_value()
                                  ? (*report)->Summary()
                                  : (fallback.has_value() ? fallback->Summary()
                                                          : "no check performed");
        auto parsed = http::ParseResponse(wire_message);
        if (parsed.ok()) {
          parsed->SetHeader("Libseal-Check-Result", summary);
          wire_message = parsed->Serialize();
        }
      }
      Status status = conn->tls->Write(wire_message);
      if (!status.ok()) {
        args->result = -1;
        return;
      }
    }
    if (conn->response_buffer.poisoned() || conn->response_buffer.size() > kAuditBufferCap) {
      // Non-HTTP response stream (or an unframeable Content-Length): fall
      // back to pass-through so the client still gets the bytes.
      std::string_view held = conn->response_buffer.view();
      Status status = conn->tls->Write(
          BytesView(reinterpret_cast<const uint8_t*>(held.data()), held.size()));
      conn->response_buffer.Clear();
      if (!status.ok()) {
        args->result = -1;
      }
    }
  });

  ecall_shutdown_ = enclave_->RegisterEcall("ssl_shutdown", [this](void* data) {
    auto* args = static_cast<ConnArgs*>(data);
    TrustedConn* conn = state_->Find(args->conn_id);
    if (conn != nullptr) {
      conn->tls->Close();
    }
  });

  ecall_free_ = enclave_->RegisterEcall("ssl_free", [this](void* data) {
    auto* args = static_cast<ConnArgs*>(data);
    std::lock_guard<std::mutex> lock(state_->mutex);
    auto it = state_->conns.find(args->conn_id);
    if (it != state_->conns.end()) {
      state_->shadow_map.erase(it->second->outside);
      state_->conns.erase(it);
      enclave_->TrackFree(options_.per_connection_epc_bytes);
    }
  });

  ecall_ex_data_ = enclave_->RegisterEcall("ssl_ex_data", [](void* data) {
    // Only exercised when the ex_data-outside reduction is DISABLED: the
    // naive port keeps application data inside, paying a transition per
    // access. The data itself still round-trips through the args.
    (void)data;
  });
}

Status LibSealRuntime::Init() {
  if (initialised_) {
    return Status::Ok();
  }
  Bytes identity = ToBytes("libseal-enclave-v1:");
  if (pending_module_ != nullptr) {
    Append(identity, pending_module_->name());
  }
  if (!options_.instance_tag.empty()) {
    // Shard instances of the same module get distinct measurements, hence
    // distinct log/sealing keys (see LibSealOptions::instance_tag).
    Append(identity, ":");
    Append(identity, options_.instance_tag);
  }
  enclave_ = std::make_unique<sgx::Enclave>(options_.enclave, identity, "libseal-authority");
  state_ = std::make_unique<EnclaveState>();
  state_->tls_config = options_.tls;
  if (state_->tls_config.session_cache == nullptr) {
    state_->tls_config.session_cache = &state_->session_cache;
  }
  // The log signing key is derived inside the enclave from its sealing
  // identity: only this enclave (authority) can produce valid log entries.
  Bytes key_seed = ToBytes("libseal-log-key:");
  Append(key_seed, BytesView(enclave_->measurement().data(), enclave_->measurement().size()));
  state_->log_key = crypto::EcdsaPrivateKey::FromSeed(key_seed);

  RegisterInterface();

  if (pending_module_ != nullptr) {
    // The checker thread's CPU time is charged as in-enclave execution,
    // like the asyncall workers'.
    LoggerOptions logger_options = options_.logger;
    logger_options.enclave = enclave_.get();
    AuditLogOptions log_options = options_.audit_log;
    if (log_options.sealing_enclave == nullptr) {
      // Snapshots and trim archives seal under this enclave's identity
      // (MRSIGNER by default, so sealed logs survive an enclave upgrade).
      log_options.sealing_enclave = enclave_.get();
    }
    logger_ = std::make_unique<AuditLogger>(std::move(pending_module_), std::move(log_options),
                                            std::move(logger_options), state_->log_key);
    SEAL_RETURN_IF_ERROR(logger_->Init());
  }
  if (options_.use_async_calls) {
    async_ = std::make_unique<asyncall::AsyncCallRuntime>(enclave_.get(), options_.async);
    async_->Start();
  }
  initialised_ = true;
  return Status::Ok();
}

void LibSealRuntime::Shutdown() {
  if (async_ != nullptr) {
    async_->Stop();
  }
  initialised_ = false;
}

LibSealSsl* LibSealRuntime::SslNew(net::Stream* stream, tls::Role role) {
  auto* ssl = new LibSealSsl();
  ssl->runtime = this;
  ssl->stream = stream;
  NewArgs args{ssl, role == tls::Role::kServer ? 0 : 1, 0, false};
  if (!DoEcall(ecall_new_, &args).ok() || !args.ok) {
    delete ssl;
    return nullptr;
  }
  ssl->conn_id = args.conn_id;
  return ssl;
}

int LibSealRuntime::SslHandshake(LibSealSsl* ssl) {
  ConnArgs args{ssl->conn_id, ssl, nullptr, 0, -1};
  if (!DoEcall(ecall_handshake_, &args).ok()) {
    return -1;
  }
  return static_cast<int>(args.result);
}

int LibSealRuntime::SslRead(LibSealSsl* ssl, uint8_t* buf, int len) {
  ConnArgs args{ssl->conn_id, ssl, buf, static_cast<size_t>(len), -1};
  if (!DoEcall(ecall_read_, &args).ok()) {
    return -1;
  }
  return static_cast<int>(args.result);
}

int LibSealRuntime::SslWrite(LibSealSsl* ssl, const uint8_t* buf, int len) {
  ConnArgs args{ssl->conn_id, ssl, const_cast<uint8_t*>(buf), static_cast<size_t>(len), -1};
  if (!DoEcall(ecall_write_, &args).ok()) {
    return -1;
  }
  return static_cast<int>(args.result);
}

void LibSealRuntime::SslShutdown(LibSealSsl* ssl) {
  ConnArgs args{ssl->conn_id, ssl, nullptr, 0, 0};
  (void)DoEcall(ecall_shutdown_, &args);
}

void LibSealRuntime::SslFree(LibSealSsl* ssl) {
  if (ssl == nullptr) {
    return;
  }
  ConnArgs args{ssl->conn_id, ssl, nullptr, 0, 0};
  (void)DoEcall(ecall_free_, &args);
  delete ssl;
}

int LibSealRuntime::SslSetExData(LibSealSsl* ssl, int index, void* data) {
  if (index < 0 || index >= LibSealSsl::kMaxExData) {
    return 0;
  }
  if (!options_.reductions.ex_data_outside) {
    ExDataArgs args{ssl->conn_id, index, data};
    (void)DoEcall(ecall_ex_data_, &args);  // the naive port's transition
  }
  ssl->ex_data[index] = data;
  return 1;
}

void* LibSealRuntime::SslGetExData(LibSealSsl* ssl, int index) {
  if (index < 0 || index >= LibSealSsl::kMaxExData) {
    return nullptr;
  }
  if (!options_.reductions.ex_data_outside) {
    ExDataArgs args{ssl->conn_id, index, nullptr};
    (void)DoEcall(ecall_ex_data_, &args);
  }
  return ssl->ex_data[index];
}

Result<sgx::Quote> LibSealRuntime::AttestationQuote(const sgx::QuotingEnclave& qe) const {
  if (!initialised_) {
    return FailedPrecondition("runtime not initialised");
  }
  if (!state_->tls_config.certificate.has_value()) {
    return FailedPrecondition("no TLS certificate provisioned");
  }
  crypto::Sha256Digest cert_hash =
      crypto::Sha256::Hash(state_->tls_config.certificate->Encode());
  return qe.GenerateQuote(*enclave_, BytesView(cert_hash.data(), cert_hash.size()));
}

const crypto::EcdsaPublicKey& LibSealRuntime::log_public_key() const {
  return state_->log_key.public_key();
}

}  // namespace seal::core
