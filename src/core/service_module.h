// Service-specific module (SSM) interface (paper §5.1).
//
// An SSM supplies the relational schema of the audit log, parses each
// request/response pair to extract the tuples worth logging, and provides
// the invariant and trimming queries. The paper sizes these at 250-400
// lines each; ours live in src/ssm/.
#ifndef SRC_CORE_SERVICE_MODULE_H_
#define SRC_CORE_SERVICE_MODULE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/db/value.h"

namespace seal::core {

// One tuple destined for the audit log. The logical timestamp column is
// appended by the logger, not the SSM.
struct LogTuple {
  std::string table;
  std::vector<db::Value> values;  // all columns except the leading `time`
};

// A named integrity invariant: `query` returns the VIOLATING entries (the
// negation of the invariant), so an empty result means the invariant holds.
//
// `monotone` declares that the query's outer (violating) rows are reported
// with a `time` column taken from a base tuple, and that once the invariant
// held over a log prefix, any later violation must involve an outer tuple
// appended after that prefix. The logger exploits this for incremental
// checking: after a clean check at watermark W it re-evaluates the query
// restricted to outer rows with time > W. Invariants whose violations can
// consist purely of old rows (e.g. duplicate detection, where the newer
// copy of a pair may already have been checked) must leave this false.
struct Invariant {
  std::string name;
  std::string query;
  bool monotone = false;
};

class ServiceModule {
 public:
  virtual ~ServiceModule() = default;

  virtual std::string name() const = 0;

  // DDL executed at enclave initialisation, in order: tables then views.
  // Every table's first column must be `time` (the logical timestamp).
  virtual std::vector<std::string> Schema() const = 0;
  virtual std::vector<std::string> Views() const { return {}; }

  // Integrity invariants (soundness/completeness, §5.2).
  virtual std::vector<Invariant> Invariants() const = 0;

  // Trimming queries (§5.1) removing entries no longer needed.
  virtual std::vector<std::string> TrimmingQueries() const = 0;

  // Parses one request/response pair and appends zero or more tuples to
  // `out`. `time` is the logical timestamp the logger will use, available
  // to SSMs that need to correlate within the pair.
  virtual void Log(std::string_view request, std::string_view response, int64_t time,
                   std::vector<LogTuple>* out) = 0;
};

}  // namespace seal::core

#endif  // SRC_CORE_SERVICE_MODULE_H_
