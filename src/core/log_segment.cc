#include "src/core/log_segment.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/compress.h"
#include "src/crypto/drbg.h"
#include "src/crypto/gcm.h"

namespace seal::core {

namespace {

constexpr char kSegmentMagic[8] = {'S', 'E', 'A', 'L', 'S', 'E', 'G', '1'};
constexpr char kArchiveMagic[8] = {'S', 'E', 'A', 'L', 'A', 'R', 'C', '1'};
constexpr char kSnapshotMagic[8] = {'S', 'E', 'A', 'L', 'S', 'N', 'P', '1'};
constexpr size_t kArchiveHeaderSize = 8 + 4 + 4 + 4 + 4 + 8 + 8;
constexpr size_t kSnapshotHeaderSize = 8 + 4 + 4;
// Decompression allocation cap for sealed payloads (well above any log the
// in-enclave database could hold).
constexpr size_t kMaxBlobRawSize = size_t{1} << 33;

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string IndexedPath(const std::string& base, const char* infix, uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06u", index);
  return base + infix + buf;
}

// Existing `<base><infix>NNN...` files, as sorted indices.
std::vector<uint32_t> ListIndexedFiles(const std::string& base, const char* infix) {
  std::vector<uint32_t> indices;
  const std::string prefix = BaseName(base) + infix;
  DIR* dir = ::opendir(ParentDir(base).c_str());
  if (dir == nullptr) {
    return indices;
  }
  while (struct dirent* ent = ::readdir(dir)) {
    const std::string name = ent->d_name;
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const char* digits = name.c_str() + prefix.size();
    uint32_t index = 0;
    auto [end, ec] = std::from_chars(digits, name.c_str() + name.size(), index);
    if (ec == std::errc() && end == name.c_str() + name.size()) {
      indices.push_back(index);
    }
  }
  ::closedir(dir);
  std::sort(indices.begin(), indices.end());
  return indices;
}

Status FsyncStream(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    return Unavailable("fsync failed for " + path);
  }
  return Status::Ok();
}

// Protects a plain payload per the context's preference order; reports
// which protection was applied so the reader can demand the same one.
Bytes ProtectBlob(const SealContext& ctx, BytesView plain, BytesView aad,
                  BlobProtection* used) {
  if (ctx.enclave != nullptr) {
    *used = BlobProtection::kSealed;
    return sgx::SealData(*ctx.enclave, ctx.policy, plain, aad);
  }
  if (ctx.encryption_key != nullptr && !ctx.encryption_key->empty()) {
    *used = BlobProtection::kKey;
    crypto::Aes128Gcm gcm(*ctx.encryption_key);
    Bytes nonce = crypto::ProcessDrbg().Generate(crypto::kGcmNonceSize);
    Bytes out = nonce;
    Append(out, gcm.Seal(nonce, aad, plain));
    return out;
  }
  *used = BlobProtection::kPlain;
  return Bytes(plain.begin(), plain.end());
}

Result<Bytes> OpenBlob(const SealContext& ctx, BlobProtection protection, BytesView blob,
                       BytesView aad) {
  switch (protection) {
    case BlobProtection::kSealed:
      if (ctx.enclave == nullptr) {
        return PermissionDenied("blob is enclave-sealed but no enclave identity given");
      }
      return sgx::UnsealData(*ctx.enclave, ctx.policy, blob, aad);
    case BlobProtection::kKey: {
      if (ctx.encryption_key == nullptr || ctx.encryption_key->empty()) {
        return PermissionDenied("blob is key-encrypted but no key given");
      }
      if (blob.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
        return DataLoss("encrypted blob too short");
      }
      crypto::Aes128Gcm gcm(*ctx.encryption_key);
      auto opened = gcm.Open(blob.subspan(0, crypto::kGcmNonceSize), aad,
                             blob.subspan(crypto::kGcmNonceSize));
      if (!opened.has_value()) {
        return PermissionDenied("blob decryption failed");
      }
      return *opened;
    }
    case BlobProtection::kPlain:
      return Bytes(blob.begin(), blob.end());
  }
  return DataLoss("unknown blob protection");
}

void AppendFramedPlain(Bytes& out, const LogEntry& entry) {
  Bytes wire = entry.Serialize();
  AppendBe32(out, static_cast<uint32_t>(wire.size()));
  Append(out, wire);
}

Result<std::vector<LogEntry>> ParseFramedEntries(BytesView in, size_t expected_count) {
  std::vector<LogEntry> entries;
  size_t off = 0;
  while (off < in.size()) {
    if (in.size() - off < 4) {
      return DataLoss("truncated entry frame");
    }
    const uint32_t len = LoadBe32(in.data() + off);
    off += 4;
    if (len > in.size() - off) {
      return DataLoss("truncated entry body");
    }
    size_t entry_off = 0;
    auto entry = LogEntry::Deserialize(in.subspan(off, len), entry_off);
    if (!entry.ok()) {
      return entry.status();
    }
    if (entry_off != len) {
      return DataLoss("trailing bytes in entry frame");
    }
    off += len;
    entries.push_back(std::move(*entry));
  }
  if (entries.size() != expected_count) {
    return DataLoss("entry count mismatch in framed payload");
  }
  return entries;
}

}  // namespace

// --- LogEntry wire codec --------------------------------------------------

Bytes LogEntry::Serialize() const {
  Bytes out;
  AppendBe64(out, static_cast<uint64_t>(time));
  AppendBe64(out, static_cast<uint64_t>(wall_nanos));
  AppendBe32(out, static_cast<uint32_t>(table.size()));
  Append(out, table);
  AppendBe32(out, static_cast<uint32_t>(values.size()));
  for (const db::Value& v : values) {
    std::string s = v.Serialize();
    AppendBe32(out, static_cast<uint32_t>(s.size()));
    Append(out, s);
  }
  return out;
}

Result<LogEntry> LogEntry::Deserialize(BytesView in, size_t& off) {
  LogEntry entry;
  if (off > in.size() || in.size() - off < 20) {
    return DataLoss("log entry truncated");
  }
  entry.time = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  entry.wall_nanos = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  const uint32_t table_len = LoadBe32(in.data() + off);
  off += 4;
  if (table_len > in.size() - off || in.size() - off - table_len < 4) {
    return DataLoss("log entry truncated in table name");
  }
  entry.table.assign(reinterpret_cast<const char*>(in.data() + off), table_len);
  off += table_len;
  const uint32_t nvalues = LoadBe32(in.data() + off);
  off += 4;
  // Each value needs at least a 4-byte length and a 1-byte tag; a count
  // that cannot fit in the remaining bytes is hostile, not truncated data.
  if (nvalues > (in.size() - off) / 5) {
    return DataLoss("log entry declares more values than the frame holds");
  }
  entry.values.reserve(nvalues);
  for (uint32_t i = 0; i < nvalues; ++i) {
    if (in.size() - off < 4) {
      return DataLoss("log entry truncated in value length");
    }
    const uint32_t len = LoadBe32(in.data() + off);
    off += 4;
    if (len == 0) {
      return DataLoss("zero-length value");
    }
    if (len > in.size() - off) {
      return DataLoss("log entry truncated in value");
    }
    std::string s(reinterpret_cast<const char*>(in.data() + off), len);
    off += len;
    // Value::Serialize format: N | I<int> | R<real> | T<len>:<text>.
    switch (s[0]) {
      case 'N':
        if (s.size() != 1) {
          return DataLoss("malformed null value");
        }
        entry.values.push_back(db::Value::Null());
        break;
      case 'I': {
        int64_t v = 0;
        auto [end, ec] = std::from_chars(s.data() + 1, s.data() + s.size(), v);
        if (ec != std::errc() || end != s.data() + s.size()) {
          return DataLoss("malformed integer value");
        }
        entry.values.push_back(db::Value(v));
        break;
      }
      case 'R': {
        char* end = nullptr;
        const double v = std::strtod(s.c_str() + 1, &end);
        if (s.size() < 2 || end != s.c_str() + s.size()) {
          return DataLoss("malformed real value");
        }
        entry.values.push_back(db::Value(v));
        break;
      }
      case 'T': {
        const size_t colon = s.find(':');
        if (colon == std::string::npos) {
          return DataLoss("malformed text value");
        }
        size_t text_len = 0;
        auto [end, ec] = std::from_chars(s.data() + 1, s.data() + colon, text_len);
        if (ec != std::errc() || end != s.data() + colon ||
            text_len != s.size() - colon - 1) {
          return DataLoss("text value length mismatch");
        }
        entry.values.push_back(db::Value(s.substr(colon + 1)));
        break;
      }
      default:
        return DataLoss("unknown value tag");
    }
  }
  return entry;
}

// --- durable file helpers -------------------------------------------------

Status DurableWriteFile(const std::string& path, BytesView data, bool append, bool sync) {
  const bool existed = FileExists(path);
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Unavailable("cannot open " + path);
  }
  const size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  Status synced = sync ? FsyncStream(f, path) : Status::Ok();
  std::fclose(f);
  if (written != data.size()) {
    return DataLoss("short write to " + path);
  }
  if (!synced.ok()) {
    return synced;
  }
  if (sync && !existed) {
    return FsyncParentDir(path);
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, BytesView data, bool sync) {
  const std::string tmp = path + ".tmp";
  SEAL_RETURN_IF_ERROR(DurableWriteFile(tmp, data, /*append=*/false, sync));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    RemoveFileIfExists(tmp);
    return Unavailable("cannot rename " + tmp + " over " + path);
  }
  if (sync) {
    return FsyncParentDir(path);
  }
  return Status::Ok();
}

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  Bytes data;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return NotFound("cannot stat " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void RemoveFileIfExists(const std::string& path) { (void)std::remove(path.c_str()); }

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Unavailable("cannot truncate " + path);
  }
  return Status::Ok();
}

Status FsyncParentDir(const std::string& path) {
  const int fd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    // Some filesystems refuse O_RDONLY on directories; degrade gracefully
    // rather than failing the write that already reached the file.
    return Status::Ok();
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Unavailable("directory fsync failed for " + path);
  }
  return Status::Ok();
}

// --- layout ---------------------------------------------------------------

std::string SegmentFilePath(const std::string& base, uint32_t index) {
  return IndexedPath(base, ".seg", index);
}

std::string ArchiveFilePath(const std::string& base, uint32_t index) {
  return IndexedPath(base, ".arch", index);
}

std::string SnapshotFilePath(const std::string& base) { return base + ".snap"; }

std::string HeadFilePath(const std::string& base) { return base + ".sig"; }

std::vector<uint32_t> ListSegmentFiles(const std::string& base) {
  return ListIndexedFiles(base, ".seg");
}

std::vector<uint32_t> ListArchiveFiles(const std::string& base) {
  return ListIndexedFiles(base, ".arch");
}

void RemoveLogFiles(const std::string& base) {
  RemoveFileIfExists(base);
  RemoveFileIfExists(HeadFilePath(base));
  RemoveFileIfExists(HeadFilePath(base) + ".tmp");
  RemoveFileIfExists(SnapshotFilePath(base));
  RemoveFileIfExists(SnapshotFilePath(base) + ".tmp");
  for (uint32_t index : ListSegmentFiles(base)) {
    RemoveFileIfExists(SegmentFilePath(base, index));
  }
  for (uint32_t index : ListArchiveFiles(base)) {
    RemoveFileIfExists(ArchiveFilePath(base, index));
  }
}

// --- segment header -------------------------------------------------------

Bytes SegmentHeader::Encode() const {
  Bytes out;
  out.insert(out.end(), kSegmentMagic, kSegmentMagic + sizeof(kSegmentMagic));
  AppendBe32(out, version);
  AppendBe32(out, index);
  AppendBe32(out, closed);
  AppendBe32(out, 0);  // reserved
  AppendBe64(out, rewrite_epoch);
  Bytes head = prev_head;
  head.resize(32, 0);
  Append(out, head);
  AppendBe64(out, static_cast<uint64_t>(first_ticket));
  AppendBe64(out, static_cast<uint64_t>(last_ticket));
  AppendBe64(out, counter_value);
  return out;
}

Result<SegmentHeader> SegmentHeader::Decode(BytesView in) {
  if (in.size() < kSegmentHeaderSize) {
    return DataLoss("segment header truncated");
  }
  if (std::memcmp(in.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return DataLoss("bad segment magic");
  }
  SegmentHeader header;
  size_t off = 8;
  header.version = LoadBe32(in.data() + off);
  off += 4;
  if (header.version != 1) {
    return DataLoss("unsupported segment version");
  }
  header.index = LoadBe32(in.data() + off);
  off += 4;
  header.closed = LoadBe32(in.data() + off);
  off += 8;  // closed + reserved
  header.rewrite_epoch = LoadBe64(in.data() + off);
  off += 8;
  header.prev_head.assign(in.begin() + static_cast<ptrdiff_t>(off),
                          in.begin() + static_cast<ptrdiff_t>(off + 32));
  off += 32;
  header.first_ticket = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  header.last_ticket = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  header.counter_value = LoadBe64(in.data() + off);
  return header;
}

Status UpdateSegmentHeader(const std::string& path, const SegmentHeader& header, bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  if (f == nullptr) {
    return Unavailable("cannot reopen segment " + path);
  }
  Bytes wire = header.Encode();
  const size_t written = std::fwrite(wire.data(), 1, wire.size(), f);
  Status synced = sync ? FsyncStream(f, path) : Status::Ok();
  std::fclose(f);
  if (written != wire.size()) {
    return DataLoss("short header rewrite in " + path);
  }
  return synced;
}

// --- trim archives --------------------------------------------------------

Status WriteArchiveFile(const std::string& path, uint32_t index,
                        const std::vector<LogEntry>& entries, const SealContext& ctx,
                        bool sync) {
  Bytes framed;
  for (const LogEntry& entry : entries) {
    AppendFramedPlain(framed, entry);
  }
  const Bytes compressed = LzCompress(framed);
  Bytes header;
  header.insert(header.end(), kArchiveMagic, kArchiveMagic + sizeof(kArchiveMagic));
  AppendBe32(header, 1);  // version
  AppendBe32(header, index);
  BlobProtection used = BlobProtection::kPlain;
  // The protection tag participates in the AAD via the header, so we must
  // know it before sealing: probe with a dry run of the preference order.
  if (ctx.enclave != nullptr) {
    used = BlobProtection::kSealed;
  } else if (ctx.encryption_key != nullptr && !ctx.encryption_key->empty()) {
    used = BlobProtection::kKey;
  }
  AppendBe32(header, static_cast<uint32_t>(used));
  AppendBe32(header, 0);  // reserved
  AppendBe64(header, entries.size());
  AppendBe64(header, framed.size());
  BlobProtection applied = BlobProtection::kPlain;
  Bytes blob = ProtectBlob(ctx, compressed, header, &applied);
  Bytes out = header;
  Append(out, blob);
  return DurableWriteFile(path, out, /*append=*/false, sync);
}

Result<std::vector<LogEntry>> ReadArchiveFile(const std::string& path, const SealContext& ctx) {
  auto data = ReadFileBytes(path);
  if (!data.ok()) {
    return data.status();
  }
  if (data->size() < kArchiveHeaderSize) {
    return DataLoss("archive file truncated");
  }
  if (std::memcmp(data->data(), kArchiveMagic, sizeof(kArchiveMagic)) != 0) {
    return DataLoss("bad archive magic");
  }
  size_t off = 8;
  const uint32_t version = LoadBe32(data->data() + off);
  off += 4;
  if (version != 1) {
    return DataLoss("unsupported archive version");
  }
  off += 4;  // index (informational; the filename is authoritative)
  const uint32_t protection = LoadBe32(data->data() + off);
  off += 8;  // protection + reserved
  const uint64_t entry_count = LoadBe64(data->data() + off);
  off += 8;
  const uint64_t raw_size = LoadBe64(data->data() + off);
  off += 8;
  if (protection > static_cast<uint32_t>(BlobProtection::kSealed)) {
    return DataLoss("unknown archive protection");
  }
  BytesView aad = BytesView(*data).subspan(0, kArchiveHeaderSize);
  auto compressed = OpenBlob(ctx, static_cast<BlobProtection>(protection),
                             BytesView(*data).subspan(off), aad);
  if (!compressed.ok()) {
    return compressed.status();
  }
  auto framed = LzDecompress(*compressed, kMaxBlobRawSize);
  if (!framed.ok()) {
    return framed.status();
  }
  if (framed->size() != raw_size) {
    return DataLoss("archive payload size mismatch");
  }
  return ParseFramedEntries(*framed, entry_count);
}

// --- sealed snapshots -----------------------------------------------------

Status WriteSnapshotFile(const std::string& path, const SnapshotState& snapshot,
                         const SealContext& ctx, bool sync) {
  Bytes payload;
  AppendBe32(payload, 1);  // payload version
  AppendBe64(payload, snapshot.rewrite_epoch);
  Bytes head = snapshot.chain_head;
  head.resize(32, 0);
  Append(payload, head);
  AppendBe64(payload, snapshot.persisted_bytes);
  AppendBe32(payload, snapshot.resume_segment);
  AppendBe64(payload, snapshot.resume_offset);
  AppendBe64(payload, snapshot.counter_value);
  AppendBe64(payload, static_cast<uint64_t>(snapshot.max_ticket));
  AppendBe32(payload, static_cast<uint32_t>(snapshot.entries.size()));
  for (const LogEntry& entry : snapshot.entries) {
    AppendFramedPlain(payload, entry);
  }
  const Bytes compressed = LzCompress(payload);
  Bytes header;
  header.insert(header.end(), kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic));
  AppendBe32(header, 1);  // file version
  BlobProtection used = BlobProtection::kPlain;
  if (ctx.enclave != nullptr) {
    used = BlobProtection::kSealed;
  } else if (ctx.encryption_key != nullptr && !ctx.encryption_key->empty()) {
    used = BlobProtection::kKey;
  }
  AppendBe32(header, static_cast<uint32_t>(used));
  BlobProtection applied = BlobProtection::kPlain;
  Bytes blob = ProtectBlob(ctx, compressed, header, &applied);
  Bytes out = header;
  Append(out, blob);
  return AtomicWriteFile(path, out, sync);
}

Result<SnapshotState> ReadSnapshotFile(const std::string& path, const SealContext& ctx) {
  auto data = ReadFileBytes(path);
  if (!data.ok()) {
    return data.status();
  }
  if (data->size() < kSnapshotHeaderSize) {
    return DataLoss("snapshot file truncated");
  }
  if (std::memcmp(data->data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return DataLoss("bad snapshot magic");
  }
  const uint32_t version = LoadBe32(data->data() + 8);
  if (version != 1) {
    return DataLoss("unsupported snapshot version");
  }
  const uint32_t protection = LoadBe32(data->data() + 12);
  if (protection > static_cast<uint32_t>(BlobProtection::kSealed)) {
    return DataLoss("unknown snapshot protection");
  }
  BytesView aad = BytesView(*data).subspan(0, kSnapshotHeaderSize);
  auto compressed = OpenBlob(ctx, static_cast<BlobProtection>(protection),
                             BytesView(*data).subspan(kSnapshotHeaderSize), aad);
  if (!compressed.ok()) {
    return compressed.status();
  }
  auto payload = LzDecompress(*compressed, kMaxBlobRawSize);
  if (!payload.ok()) {
    return payload.status();
  }
  const Bytes& p = *payload;
  if (p.size() < 4 + 8 + 32 + 8 + 4 + 8 + 8 + 8 + 4) {
    return DataLoss("snapshot payload truncated");
  }
  size_t off = 0;
  if (LoadBe32(p.data()) != 1) {
    return DataLoss("unsupported snapshot payload version");
  }
  off += 4;
  SnapshotState snapshot;
  snapshot.rewrite_epoch = LoadBe64(p.data() + off);
  off += 8;
  snapshot.chain_head.assign(p.begin() + static_cast<ptrdiff_t>(off),
                             p.begin() + static_cast<ptrdiff_t>(off + 32));
  off += 32;
  snapshot.persisted_bytes = LoadBe64(p.data() + off);
  off += 8;
  snapshot.resume_segment = LoadBe32(p.data() + off);
  off += 4;
  snapshot.resume_offset = LoadBe64(p.data() + off);
  off += 8;
  snapshot.counter_value = LoadBe64(p.data() + off);
  off += 8;
  snapshot.max_ticket = static_cast<int64_t>(LoadBe64(p.data() + off));
  off += 8;
  const uint32_t nentries = LoadBe32(p.data() + off);
  off += 4;
  auto entries = ParseFramedEntries(BytesView(p).subspan(off), nentries);
  if (!entries.ok()) {
    return entries.status();
  }
  snapshot.entries = std::move(*entries);
  return snapshot;
}

}  // namespace seal::core
