// Asynchronous invariant-checking engine (paper §5, §6.6).
//
// LibSEAL checks invariants "periodically, e.g., based on time or log
// size" precisely so checking stays off the request path. This engine
// realises that: the sequencer's drain step only captures a database
// snapshot and enqueues a trigger (O(1)); a dedicated checker thread —
// accounted as in-enclave execution like the asyncall workers — evaluates
// the invariants against the pinned snapshot, optionally fanned out across
// a small bounded helper pool, and publishes a CheckReport. Appenders keep
// inserting past the snapshot watermark the whole time.
//
// Round life cycle and coalescing: at most one PENDING and one RUNNING
// round exist. Enqueueing while a round is pending merges into it (the
// snapshot and horizon are refreshed, so the pending round covers every
// pair logged up to the latest trigger); a forced check that finds a
// pending round attaches to it without spending the forced-check budget —
// one evaluation, one charge. Completion is a future-style handshake:
// holders of the round block in CheckRound::Wait().
//
// Watermark soundness across trims: a clean monotone invariant's watermark
// only advances to the round's horizon if the database's trim epoch still
// matches the snapshot's at completion; any interleaved trim resets the
// watermarks (via OnTrimmed) and wins.
#ifndef SRC_CORE_CHECKER_H_
#define SRC_CORE_CHECKER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/core/audit_log.h"
#include "src/core/service_module.h"
#include "src/db/database.h"

namespace seal::sgx {
class Enclave;
}  // namespace seal::sgx

namespace seal::core {

// Outcome of one invariant-checking round.
struct CheckReport {
  struct Violation {
    std::string invariant;
    db::QueryResult rows;  // the offending log entries
  };
  // Per-invariant coverage of this round, for round-tiling assertions:
  // the scan covered logical times (floor, covered]; floor == -1 means a
  // full scan from the beginning of the log.
  struct Coverage {
    std::string invariant;
    int64_t floor = -1;
    int64_t covered = -1;
  };
  std::vector<Violation> violations;
  size_t invariants_checked = 0;
  int64_t check_nanos = 0;
  int64_t trim_nanos = 0;
  // Rows the round's trim removed from the hot log, and how many of those
  // went into a sealed archive segment (AuditLogOptions::archive_trimmed).
  size_t trimmed_rows = 0;
  size_t archived_rows = 0;
  // Every pair with logical time <= covered_time had been drained into the
  // database when this round's snapshot was captured.
  int64_t covered_time = 0;
  std::vector<Coverage> coverage;

  bool clean() const { return violations.empty(); }
  // Compact form for the Libseal-Check-Result response header.
  std::string Summary() const;
};

// One checking round: trigger metadata, the pinned snapshot to evaluate
// against, and the future-style completion handshake. While the round is
// pending its snapshot/horizon may be refreshed (under the engine mutex);
// once running, the checker thread owns them.
struct CheckRound {
  enum class Trigger { kInterval, kForced, kManual };

  Trigger trigger = Trigger::kInterval;
  bool want_trim = false;
  int64_t horizon = 0;  // highest logical time the snapshot covers
  db::Snapshot snapshot;

  // Blocks until the round completes (or the engine stops); returns the
  // round's status. `report` is valid after a successful Wait().
  Status Wait();

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  Status status;
  CheckReport report;
};

// The engine. Owns the invariant list, the per-invariant incremental
// watermarks and the prepared-plan cache; runs rounds either on its
// dedicated checker thread (async) or inline on the caller (sync mode,
// used by deterministic tests and as the benchmark baseline).
class CheckerEngine {
 public:
  using Trigger = CheckRound::Trigger;

  struct Options {
    bool async = true;
    // Invariants evaluated concurrently within one round (1 = just the
    // checker thread; N > 1 adds N-1 persistent helper threads).
    size_t parallelism = 1;
    bool incremental_checking = true;
    // When set, checker/helper CPU time is charged as in-enclave execution
    // (like the asyncall workers).
    sgx::Enclave* enclave = nullptr;
    // Observer invoked once per completed round, before waiters wake.
    std::function<void(const CheckReport&)> on_report;
  };

  // Runs the trimming step of a round on the checker thread. Must do its
  // own locking (the logger takes its drain mutex); called with no engine
  // lock held. Fills the report's trim_nanos.
  using TrimFn = std::function<Status(CheckReport*)>;

  CheckerEngine(AuditLog* log, std::vector<Invariant> invariants, Options options,
                TrimFn trim_fn);
  ~CheckerEngine();

  CheckerEngine(const CheckerEngine&) = delete;
  CheckerEngine& operator=(const CheckerEngine&) = delete;

  // Spawns the checker (and helper) threads in async mode; no-op in sync.
  void Start();
  // Fails the pending round with Unavailable, finishes the running one,
  // joins all threads. Idempotent.
  void Stop();

  // Requests a round covering logical times up to `horizon`. Merges into
  // the pending round if one exists (refreshing its snapshot + horizon).
  // The caller must hold the lock that serialises database writers — the
  // snapshot is captured here. Async mode only.
  std::shared_ptr<CheckRound> Enqueue(Trigger trigger, bool want_trim, int64_t horizon);

  // Returns the pending round, refreshed to cover `need_horizon`, or
  // nullptr when there is nothing to attach to (a RUNNING round never
  // qualifies: its snapshot predates the caller's pair). Same locking
  // contract as Enqueue. Used by forced-check coalescing.
  std::shared_ptr<CheckRound> TryAttach(int64_t need_horizon);

  // Evaluates one round synchronously on the calling thread against live
  // table state (no snapshot, no helpers). The caller must hold the
  // writer lock. Does NOT trim. Sync-mode path.
  Status RunInline(Trigger trigger, int64_t horizon, CheckReport* out);

  // A trim removed rows: every watermark resets to "full scan".
  void OnTrimmed();

  // Blocks until no round is pending or running.
  void WaitIdle();

  // Holds back the checker thread from starting pending rounds, letting
  // tests pile up triggers and observe coalescing.
  void PauseForTesting(bool paused);

  size_t invariant_count() const { return invariants_.size(); }
  uint64_t rounds_completed() const {
    return rounds_completed_.load(std::memory_order_acquire);
  }
  int64_t watermark_for_testing(size_t invariant_index) const;
  size_t plan_cache_size() const { return plan_cache_.size(); }

 private:
  // Work-stealing state for one round's parallel evaluation. Helpers keep
  // the task alive via shared_ptr; slots are claimed with `next` and
  // completion is signalled when `remaining` hits zero.
  struct EvalTask {
    const db::Snapshot* snap = nullptr;
    std::vector<int64_t> floors;  // per invariant; -1 = full scan
    std::vector<std::optional<Result<db::QueryResult>>> results;
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining{0};
  };

  void ThreadMain();
  void HelperMain();
  void RunRound(CheckRound& round);
  // Evaluates all invariants into round.report (violations in declaration
  // order regardless of parallelism) and advances watermarks.
  Status EvaluateRound(CheckRound& round, const db::Snapshot* snap, bool parallel);
  void RunTaskSlice(EvalTask& task);
  Result<db::QueryResult> EvaluateInvariant(size_t i, int64_t floor,
                                            const db::Snapshot* snap);
  void CompleteRound(const std::shared_ptr<CheckRound>& round, Status status);
  void UpdateQueueDepthLocked();

  AuditLog* log_;
  const std::vector<Invariant> invariants_;
  Options options_;
  TrimFn trim_fn_;

  db::PlanCache plan_cache_;

  // Watermarks: highest logical time each invariant's last clean check
  // covered; -1 = next check scans the full log.
  mutable std::mutex wm_mutex_;
  std::vector<int64_t> watermarks_;

  // Round queue + helper task handoff.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // checker thread: pending round / stop
  std::condition_variable task_cv_;   // helpers: new task / stop
  std::condition_variable done_cv_;   // round's task slices all finished
  std::condition_variable idle_cv_;   // WaitIdle
  std::shared_ptr<CheckRound> pending_;
  std::shared_ptr<CheckRound> running_;
  std::shared_ptr<EvalTask> task_;
  uint64_t task_gen_ = 0;
  bool paused_ = false;
  bool stop_ = false;
  bool started_ = false;

  std::atomic<uint64_t> rounds_completed_{0};

  std::thread worker_;
  std::vector<std::thread> helpers_;
};

}  // namespace seal::core

#endif  // SRC_CORE_CHECKER_H_
