// The LibSEAL logger: feeds request/response pairs through the service-
// specific module into the audit log, runs invariant checks (periodically
// or on client demand via the Libseal-Check header) and trims the log.
#ifndef SRC_CORE_LOGGER_H_
#define SRC_CORE_LOGGER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/audit_log.h"
#include "src/core/service_module.h"

namespace seal::core {

// Outcome of one invariant-checking round.
struct CheckReport {
  struct Violation {
    std::string invariant;
    db::QueryResult rows;  // the offending log entries
  };
  std::vector<Violation> violations;
  size_t invariants_checked = 0;
  int64_t check_nanos = 0;
  int64_t trim_nanos = 0;

  bool clean() const { return violations.empty(); }
  // Compact form for the Libseal-Check-Result response header.
  std::string Summary() const;
};

struct LoggerOptions {
  // Run checking + trimming automatically every N request/response pairs
  // (Fig. 6 sweeps this; the paper finds 25 optimal for Git, 75 for
  // ownCloud, 100 for Dropbox). 0 disables automatic checks. Pairs that
  // contribute no tuples to the log do not count towards the interval.
  size_t check_interval = 25;
  // Rate limit for client-triggered checks (§6.3 denial-of-service): at
  // most one forced check per this many pairs. 0 = no limit. A forced
  // check that coincides with an interval check does not consume the
  // forced budget (the check would have run anyway).
  size_t forced_check_min_gap = 0;
  // Incremental checking: an invariant declared monotone is re-evaluated
  // only over tuples appended since its last clean check (per-invariant
  // time watermark). Falls back to full scans after any trim that removed
  // rows. Benchmarks flip this off to measure full-scan checking.
  bool incremental_checking = true;
};

class AuditLogger {
 public:
  AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
              LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key);

  // Creates the SSM's schema. Must be called once before pairs flow.
  Status Init();

  // Processes one request/response pair: parse, log, persist, and --- when
  // the interval elapses or `force_check` is set --- check and trim.
  // Returns the check report if a check ran this round.
  Result<std::optional<CheckReport>> OnPair(std::string_view request, std::string_view response,
                                            bool force_check);

  // Runs all invariants immediately (no trim).
  Result<CheckReport> CheckInvariants();

  // Runs the SSM's trimming queries and rebuilds the hash chain.
  Status Trim();

  AuditLog& log() { return log_; }
  ServiceModule& module() { return *module_; }
  int64_t pairs_logged() const { return pairs_logged_; }
  const std::optional<CheckReport>& last_report() const { return last_report_; }

  // The incremental watermark of the i-th invariant (in Invariants()
  // order): the highest logical time its last clean check covered, or -1
  // when the next check must scan the full log.
  int64_t watermark_for_testing(size_t invariant_index) const;

 private:
  // Loads and caches the SSM's invariant list (watermarks are per cached
  // entry). Caller holds mutex_.
  void EnsureInvariantsLocked();
  // Evaluates all invariants into `report`, incrementally where allowed,
  // and advances watermarks of clean monotone invariants. Caller holds
  // mutex_.
  Status RunChecksLocked(CheckReport* report);
  // Resets every watermark to "full scan". Caller holds mutex_.
  void ResetWatermarksLocked();

  std::unique_ptr<ServiceModule> module_;
  AuditLog log_;
  LoggerOptions options_;

  mutable std::mutex mutex_;
  int64_t next_time_ = 1;
  int64_t pairs_logged_ = 0;
  int64_t pairs_since_check_ = 0;
  // pairs_logged_ at the moment the forced-check budget was last spent, or
  // -1 if it never was. An absolute count, not a delta.
  int64_t last_forced_check_pair_ = -1;
  bool invariants_loaded_ = false;
  std::vector<Invariant> invariants_;
  std::vector<int64_t> watermarks_;  // parallel to invariants_; -1 = full scan
  std::optional<CheckReport> last_report_;
};

}  // namespace seal::core

#endif  // SRC_CORE_LOGGER_H_
