// The LibSEAL logger: feeds request/response pairs through the service-
// specific module into the audit log, runs invariant checks (periodically
// or on client demand via the Libseal-Check header) and trims the log.
#ifndef SRC_CORE_LOGGER_H_
#define SRC_CORE_LOGGER_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/audit_log.h"
#include "src/core/service_module.h"

namespace seal::core {

// Outcome of one invariant-checking round.
struct CheckReport {
  struct Violation {
    std::string invariant;
    db::QueryResult rows;  // the offending log entries
  };
  std::vector<Violation> violations;
  size_t invariants_checked = 0;
  int64_t check_nanos = 0;
  int64_t trim_nanos = 0;

  bool clean() const { return violations.empty(); }
  // Compact form for the Libseal-Check-Result response header.
  std::string Summary() const;
};

struct LoggerOptions {
  // Run checking + trimming automatically every N request/response pairs
  // (Fig. 6 sweeps this; the paper finds 25 optimal for Git, 75 for
  // ownCloud, 100 for Dropbox). 0 disables automatic checks.
  size_t check_interval = 25;
  // Rate limit for client-triggered checks (§6.3 denial-of-service): at
  // most one forced check per this many pairs. 0 = no limit.
  size_t forced_check_min_gap = 0;
};

class AuditLogger {
 public:
  AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
              LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key);

  // Creates the SSM's schema. Must be called once before pairs flow.
  Status Init();

  // Processes one request/response pair: parse, log, persist, and --- when
  // the interval elapses or `force_check` is set --- check and trim.
  // Returns the check report if a check ran this round.
  Result<std::optional<CheckReport>> OnPair(std::string_view request, std::string_view response,
                                            bool force_check);

  // Runs all invariants immediately (no trim).
  Result<CheckReport> CheckInvariants();

  // Runs the SSM's trimming queries and rebuilds the hash chain.
  Status Trim();

  AuditLog& log() { return log_; }
  ServiceModule& module() { return *module_; }
  int64_t pairs_logged() const { return pairs_logged_; }
  const std::optional<CheckReport>& last_report() const { return last_report_; }

 private:
  std::unique_ptr<ServiceModule> module_;
  AuditLog log_;
  LoggerOptions options_;

  std::mutex mutex_;
  int64_t next_time_ = 1;
  int64_t pairs_logged_ = 0;
  int64_t pairs_since_check_ = 0;
  int64_t pairs_since_forced_check_ = -1;
  std::optional<CheckReport> last_report_;
};

}  // namespace seal::core

#endif  // SRC_CORE_LOGGER_H_
