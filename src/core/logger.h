// The LibSEAL logger: feeds request/response pairs through the service-
// specific module into the audit log, runs invariant checks (periodically
// or on client demand via the Libseal-Check header) and trims the log.
//
// Concurrency model (§6.3 scalability): OnPair parses the pair OUTSIDE any
// lock (SSMs are stateless), stamps it with a logical-time ticket and
// stages it in one of kAppendShards intake shards keyed by connection id.
// Whichever thread wins `drain_mutex_` becomes the sequencer: it sweeps
// the shards, replays staged pairs in strict ticket order into the hash
// chain + seadb, fires any triggered checks from the drain step, and
// commits the head once per batch (group commit). Every other thread just
// waits for its own pair to be drained, so OnPair keeps its synchronous
// contract — when it returns in kDisk mode, the entry is flushed, counted
// and signed — without a global lock on the parse or persist work.
#ifndef SRC_CORE_LOGGER_H_
#define SRC_CORE_LOGGER_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/audit_log.h"
#include "src/core/checker.h"
#include "src/core/service_module.h"

namespace seal::sgx {
class Enclave;
}  // namespace seal::sgx

namespace seal::obs {
class Counter;
}  // namespace seal::obs

namespace seal::core {

// Intake shards for OnPair staging. Connection ids hash onto shards, so
// concurrent connections rarely contend on the same staging lock.
inline constexpr size_t kAppendShards = 8;

struct LoggerOptions {
  // Run checking + trimming automatically every N request/response pairs
  // (Fig. 6 sweeps this; the paper finds 25 optimal for Git, 75 for
  // ownCloud, 100 for Dropbox). 0 disables automatic checks. Pairs that
  // contribute no tuples to the log do not count towards the interval.
  size_t check_interval = 25;
  // Rate limit for client-triggered checks (§6.3 denial-of-service): at
  // most one forced check per this many pairs. 0 = no limit. A forced
  // check that coincides with an interval check does not consume the
  // forced budget (the check would have run anyway).
  size_t forced_check_min_gap = 0;
  // Incremental checking: an invariant declared monotone is re-evaluated
  // only over tuples appended since its last clean check (per-invariant
  // time watermark). Falls back to full scans after any trim that removed
  // rows. Benchmarks flip this off to measure full-scan checking.
  bool incremental_checking = true;
  // Run check rounds on the dedicated checker thread against database
  // snapshots: the drain step only enqueues a trigger (O(1)) and appenders
  // never stall on invariant evaluation. Forced checks still block their
  // own OnPair until the covering round completes (§6.3 response-header
  // semantics). When false, rounds run inline on the sequencer under the
  // drain lock (deterministic tests, benchmark baseline) and OnPair
  // returns the report of an interval check it triggered.
  bool async_checking = true;
  // Invariants evaluated concurrently within one async round. Clamped to
  // hardware_concurrency at Start (oversubscribing check workers degrades
  // round latency rather than improving it).
  size_t check_parallelism = 1;
  // Route invariant SELECTs through the batch-at-a-time columnar engine
  // (db::Tuning::use_vectorized). Off = legacy row-at-a-time interpreter;
  // results are byte-identical either way.
  bool vectorized_checking = true;
  // When set, checker-thread CPU time is charged as in-enclave execution.
  sgx::Enclave* enclave = nullptr;
  // Observer invoked once per completed check round (any trigger), from
  // the thread that ran the round, before waiters wake.
  std::function<void(const CheckReport&)> on_report;
  // Which ShardSet shard this logger serves (-1 = unsharded). Only labels
  // the per-shard metrics (`shard_appends_total{shard="N"}`).
  int shard_index = -1;
};

class AuditLogger {
 public:
  AuditLogger(std::unique_ptr<ServiceModule> module, AuditLogOptions log_options,
              LoggerOptions logger_options, crypto::EcdsaPrivateKey signing_key);
  ~AuditLogger();

  // Creates the SSM's schema. Must be called once before pairs flow.
  Status Init();

  // Processes one request/response pair: parse, log, persist, and --- when
  // the interval elapses or `force_check` is set --- check and trim.
  // `conn_id` selects the intake shard; pairs from one connection stay
  // ordered because each caller processes its connection's pairs
  // sequentially.
  //
  // Reports: a forced pair always blocks until a round covering it
  // completes and returns that round's report. An interval-triggered pair
  // returns the report only in synchronous mode (async rounds complete in
  // the background; observe them via last_report()/on_report).
  Result<std::optional<CheckReport>> OnPair(uint64_t conn_id, std::string_view request,
                                            std::string_view response, bool force_check);
  Result<std::optional<CheckReport>> OnPair(std::string_view request, std::string_view response,
                                            bool force_check) {
    return OnPair(0, request, response, force_check);
  }

  // Runs all invariants immediately (no trim). In async mode the round is
  // enqueued and this call waits for it WITHOUT holding the drain lock, so
  // manual checks no longer freeze appenders.
  Result<CheckReport> CheckInvariants();

  // One shard's contribution to an epoch anchor: its committed head and,
  // when `entries_out` is set, a snapshot of the live entries taken in the
  // SAME critical section — the per-shard half of a consistent cross-shard
  // cut (no entry can land between the head commit and the copy).
  struct CommittedHead {
    Bytes chain_head;
    uint64_t counter_value = 0;  // ROTE round the head is bound to (0 in kMemory)
    uint64_t entry_count = 0;
    int64_t max_ticket = 0;  // highest logical time drained into the log
  };

  // Drains everything staged, commits the head if any tuple landed since
  // the last commit, and returns the committed state. ShardSet calls this
  // on every shard at each epoch boundary.
  Result<CommittedHead> CommitAndSnapshotHead(std::vector<LogEntry>* entries_out = nullptr);

  // Runs the SSM's trimming queries and rebuilds the hash chain.
  Status Trim();

  // Blocks until no check round is pending or running. No-op in sync mode.
  void WaitForChecks();

  AuditLog& log() { return log_; }
  ServiceModule& module() { return *module_; }
  int64_t pairs_logged() const { return pairs_logged_.load(std::memory_order_relaxed); }
  // The report of the most recently completed round, by value: async
  // rounds overwrite it concurrently with readers.
  std::optional<CheckReport> last_report() const {
    std::lock_guard<std::mutex> lock(report_mutex_);
    return last_report_;
  }

  // The engine running check rounds (valid after Init). Exposed for tests
  // (PauseForTesting, rounds_completed).
  CheckerEngine* checker() { return engine_.get(); }

  // What Init()'s recovery pass found (meaningful only with
  // AuditLogOptions::recover).
  const AuditLog::RecoveryInfo& recovery_info() const { return recovery_info_; }

  // The incremental watermark of the i-th invariant (in Invariants()
  // order): the highest logical time its last clean check covered, or -1
  // when the next check must scan the full log.
  int64_t watermark_for_testing(size_t invariant_index) const;

 private:
  // One staged request/response pair, owned by the OnPair frame that
  // created it; the sequencer only touches it between collection and the
  // done handshake.
  struct PendingPair {
    int64_t time = 0;  // the logical-time ticket, also the drain order
    std::vector<LogTuple> tuples;
    bool force_check = false;

    // Filled by the sequencer.
    Status status;
    std::optional<CheckReport> report;
    // The async round this pair must rendezvous with (forced checks, and
    // forced-riding-interval). OnPair waits on it after the drain
    // handshake, outside every logger lock.
    std::shared_ptr<CheckRound> round;

    std::mutex m;
    std::condition_variable cv;
    bool done = false;
  };

  struct alignas(64) Shard {
    std::mutex mutex;
    std::vector<PendingPair*> staged;
  };

  // Sweeps all shards and replays staged pairs in ticket order; fires
  // triggered checks and the per-batch commit. Caller holds drain_mutex_.
  void DrainStagedLocked();
  // Appends one pair and evaluates its check triggers. Caller holds
  // drain_mutex_.
  void ProcessPairLocked(PendingPair* op);
  // Flushes + commits the head if any tuple landed since the last commit,
  // propagating a failure into every affected pair. Caller holds
  // drain_mutex_.
  Status CommitIfDirtyLocked();
  // Builds + starts the checker engine on first use. Caller holds
  // drain_mutex_.
  void EnsureEngineLocked();
  // Evaluates `op`'s check trigger: enqueues/attaches an async round or
  // runs the round inline (sync mode). Caller holds drain_mutex_.
  void TriggerChecksLocked(PendingPair* op, bool interval_check);
  // Trimming: runs the SSM's queries and resets watermarks when rows left
  // the log. TrimLockedInner requires drain_mutex_; TrimForRound is the
  // checker thread's entry and takes it.
  Status TrimLockedInner(CheckReport* report);
  Status TrimForRound(CheckReport* report);
  // Publishes a completed round's report (engine on_report callback).
  void PublishReport(const CheckReport& report);

  std::unique_ptr<ServiceModule> module_;
  AuditLog log_;
  LoggerOptions options_;

  std::atomic<int64_t> next_time_{1};
  AuditLog::RecoveryInfo recovery_info_;
  std::atomic<int64_t> pairs_logged_{0};
  std::array<Shard, kAppendShards> shards_;

  // The sequencer's critical section: the audit log, the check state and
  // the reorder buffer below.
  mutable std::mutex drain_mutex_;
  // Collected-but-not-yet-processed pairs, keyed by ticket. Pairs are
  // replayed strictly in ticket order; a gap means some thread holds a
  // ticket it has not staged yet, and the drain stops until that thread's
  // own drain attempt (or a later sequencer) fills it.
  std::map<int64_t, PendingPair*> reorder_;
  int64_t next_drain_time_ = 1;
  bool dirty_since_commit_ = false;
  // Pairs appended since the last successful commit; a commit failure is
  // reported to all of them.
  std::vector<PendingPair*> uncommitted_;
  int64_t pairs_since_check_ = 0;
  // pairs_logged_ at the moment the forced-check budget was last spent, or
  // -1 if it never was. An absolute count, not a delta.
  int64_t last_forced_check_pair_ = -1;

  // The checking engine (created lazily under drain_mutex_; owns the
  // invariants, watermarks and prepared-plan cache).
  std::unique_ptr<CheckerEngine> engine_;

  mutable std::mutex report_mutex_;
  std::optional<CheckReport> last_report_;

  // Per-shard append counter, resolved once at construction (the SEAL_OBS
  // macros cache via function-local statics, which cannot carry a dynamic
  // shard label). Null when unsharded.
  obs::Counter* shard_appends_ = nullptr;
};

}  // namespace seal::core

#endif  // SRC_CORE_LOGGER_H_
