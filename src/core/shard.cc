#include "src/core/shard.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <thread>

#include "src/common/clock.h"
#include "src/core/log_segment.h"
#include "src/obs/obs.h"

namespace seal::core {

namespace {

constexpr uint8_t kEpochMagic[8] = {'S', 'E', 'A', 'L', 'E', 'P', 'O', '1'};
constexpr size_t kSignatureSize = 64;

}  // namespace

Bytes EpochRecord::Serialize() const {
  Bytes out;
  Append(out, BytesView(kEpochMagic, sizeof(kEpochMagic)));
  AppendBe64(out, epoch);
  AppendBe64(out, static_cast<uint64_t>(wall_nanos));
  AppendBe32(out, static_cast<uint32_t>(heads.size()));
  for (const ShardHeadInfo& head : heads) {
    AppendBe32(out, head.shard);
    AppendBe32(out, static_cast<uint32_t>(head.chain_head.size()));
    Append(out, head.chain_head);
    AppendBe64(out, head.counter_value);
    AppendBe64(out, head.entry_count);
  }
  return out;
}

Result<EpochRecord> EpochRecord::Deserialize(BytesView in) {
  size_t off = 0;
  auto need = [&](size_t n) { return in.size() - off >= n; };
  if (!need(sizeof(kEpochMagic)) ||
      !std::equal(kEpochMagic, kEpochMagic + sizeof(kEpochMagic), in.data())) {
    return DataLoss("not an epoch record");
  }
  off += sizeof(kEpochMagic);
  if (!need(8 + 8 + 4)) {
    return DataLoss("truncated epoch record header");
  }
  EpochRecord rec;
  rec.epoch = LoadBe64(in.data() + off);
  off += 8;
  rec.wall_nanos = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  uint32_t count = LoadBe32(in.data() + off);
  off += 4;
  rec.heads.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!need(4 + 4)) {
      return DataLoss("truncated epoch record head");
    }
    ShardHeadInfo head;
    head.shard = LoadBe32(in.data() + off);
    off += 4;
    uint32_t chain_len = LoadBe32(in.data() + off);
    off += 4;
    if (chain_len > 64 || !need(chain_len + 8 + 8)) {
      return DataLoss("truncated epoch record head");
    }
    head.chain_head.assign(in.begin() + static_cast<ptrdiff_t>(off),
                           in.begin() + static_cast<ptrdiff_t>(off + chain_len));
    off += chain_len;
    head.counter_value = LoadBe64(in.data() + off);
    off += 8;
    head.entry_count = LoadBe64(in.data() + off);
    off += 8;
    rec.heads.push_back(std::move(head));
  }
  if (off != in.size()) {
    return DataLoss("trailing bytes in epoch record");
  }
  return rec;
}

Result<EpochRecord> ShardSet::ReadEpochRecord(const std::string& path,
                                              const crypto::EcdsaPublicKey& anchor_key) {
  auto data = ReadFileBytes(path);
  if (!data.ok()) {
    return data.status();
  }
  if (data->size() <= kSignatureSize) {
    return DataLoss("epoch record too short");
  }
  BytesView payload(*data);
  BytesView sig_bytes = payload.subspan(data->size() - kSignatureSize, kSignatureSize);
  payload = payload.subspan(0, data->size() - kSignatureSize);
  auto sig = crypto::EcdsaSignature::Decode(sig_bytes);
  if (!sig.has_value()) {
    return DataLoss("malformed epoch record signature");
  }
  if (!anchor_key.Verify(payload, *sig)) {
    return PermissionDenied("epoch record signature invalid: tampered or forged anchor");
  }
  return EpochRecord::Deserialize(payload);
}

ShardSet::ShardSet(ShardSetOptions options,
                   std::function<std::unique_ptr<ServiceModule>()> module_factory)
    : options_(std::move(options)), module_factory_(std::move(module_factory)) {}

ShardSet::~ShardSet() { Shutdown(); }

uint32_t ShardSet::ShardFor(uint64_t route_key, size_t shard_count) {
  if (shard_count == 0) {
    return 0;
  }
  // splitmix64 finalizer: adjacent connection/session ids must spread
  // across shards, and the map must be stable for a given shard count
  // (routing affinity depends on it).
  uint64_t z = route_key + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b5ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % shard_count);
}

Status ShardSet::Init() {
  if (initialised_) {
    return Status::Ok();
  }
  if (options_.shards == 0) {
    return InvalidArgument("shard set needs at least one shard");
  }
  if (module_factory_ == nullptr) {
    return InvalidArgument("shard set needs a service module factory");
  }
  merged_module_ = module_factory_();
  runtimes_.reserve(options_.shards);
  for (size_t k = 0; k < options_.shards; ++k) {
    LibSealOptions opts = options_.libseal;
    std::string tag = "shard" + std::to_string(k);
    opts.instance_tag =
        opts.instance_tag.empty() ? tag : opts.instance_tag + ":" + tag;
    if (!opts.audit_log.path.empty()) {
      opts.audit_log.path += ".shard" + std::to_string(k);
    }
    opts.logger.shard_index = static_cast<int>(k);
    auto runtime = std::make_unique<LibSealRuntime>(std::move(opts), module_factory_());
    SEAL_RETURN_IF_ERROR(runtime->Init());
    if (runtime->logger() == nullptr) {
      return InvalidArgument("shard runtime came up without a logger");
    }
    runtimes_.push_back(std::move(runtime));
  }

  // The anchor key derives from the concatenated shard measurements: the
  // signed record pins WHICH enclaves' heads it anchors, so a record from
  // a different shard-set membership fails verification outright.
  Bytes seed = ToBytes("libseal-epoch-anchor:");
  for (auto& runtime : runtimes_) {
    const auto& m = runtime->enclave().measurement();
    Append(seed, BytesView(m.data(), m.size()));
  }
  anchor_key_ = crypto::EcdsaPrivateKey::FromSeed(seed);
  anchor_public_key_ = anchor_key_.public_key();

  epoch_path_ = options_.epoch_path;
  if (epoch_path_.empty() && !options_.libseal.audit_log.path.empty() &&
      options_.libseal.audit_log.mode == PersistenceMode::kDisk) {
    epoch_path_ = options_.libseal.audit_log.path + ".epoch";
  }
  epoch_counter_ = std::make_unique<rote::RoteCounter>(options_.epoch_counter);

  if (options_.recover) {
    SEAL_RETURN_IF_ERROR(VerifyRecoveredAgainstRecord());
  }
  initialised_ = true;
  // Anchor the initial (or recovered) state: like AuditLog::Recover's
  // head re-commit, recovery ends by re-anchoring under the fresh epoch
  // counter rather than comparing against the old cluster's round.
  auto anchored = AnchorEpoch();
  if (!anchored.ok()) {
    initialised_ = false;
    return anchored.status();
  }
  return Status::Ok();
}

Status ShardSet::VerifyRecoveredAgainstRecord() {
  if (epoch_path_.empty() || !FileExists(epoch_path_)) {
    return Status::Ok();  // nothing was ever anchored
  }
  auto rec = ReadEpochRecord(epoch_path_, anchor_public_key_);
  if (!rec.ok()) {
    return rec.status();
  }
  if (rec->heads.size() != runtimes_.size()) {
    return PermissionDenied("epoch record anchors " + std::to_string(rec->heads.size()) +
                            " shards but the set has " + std::to_string(runtimes_.size()));
  }
  for (const ShardHeadInfo& head : rec->heads) {
    if (head.shard >= runtimes_.size()) {
      return PermissionDenied("epoch record names unknown shard " +
                              std::to_string(head.shard));
    }
    AuditLog& log = runtimes_[head.shard]->logger()->log();
    const std::string label = "shard " + std::to_string(head.shard);
    if (log.entry_count() < head.entry_count) {
      // The epoch record only exists once every head in it became durable
      // (phase 1 strictly precedes phase 2), so a shard BEHIND its
      // anchored head can only mean that shard's log was individually
      // rolled back or truncated.
      return PermissionDenied(
          label + " rolled back past anchored epoch " + std::to_string(rec->epoch) + ": " +
          std::to_string(log.entry_count()) + " entries recovered, " +
          std::to_string(head.entry_count) + " anchored");
    }
    if (log.entry_count() == head.entry_count &&
        !ConstantTimeEqual(log.chain_head(), head.chain_head)) {
      return PermissionDenied(label + " chain head does not match anchored epoch " +
                              std::to_string(rec->epoch) + ": log entries modified");
    }
    // Ahead of the anchor = the crash hit between head commits and the
    // epoch-record write; the recovered state is consistent and the
    // re-anchor below advances the record to it.
  }
  last_anchored_epoch_ = rec->epoch;
  return Status::Ok();
}

size_t ShardSet::ScatterParallelism() const {
  size_t par = options_.crossshard_parallelism;
  if (par == 0) {
    par = runtimes_.size();
  }
  return std::max<size_t>(1, std::min(par, runtimes_.size()));
}

Status ShardSet::CommitAllHeads(std::vector<ShardHeadInfo>* heads,
                                std::vector<std::vector<LogEntry>>* entries) {
  const size_t n = runtimes_.size();
  heads->assign(n, ShardHeadInfo{});
  if (entries != nullptr) {
    entries->assign(n, {});
  }
  std::vector<Status> statuses(n);
  std::atomic<size_t> next{0};
  auto work = [&] {
    for (size_t k = next.fetch_add(1); k < n; k = next.fetch_add(1)) {
      std::vector<LogEntry>* out = entries != nullptr ? &(*entries)[k] : nullptr;
      auto committed = runtimes_[k]->logger()->CommitAndSnapshotHead(out);
      if (!committed.ok()) {
        statuses[k] = committed.status();
        continue;
      }
      ShardHeadInfo& head = (*heads)[k];
      head.shard = static_cast<uint32_t>(k);
      head.chain_head = committed->chain_head;
      head.counter_value = committed->counter_value;
      head.entry_count = committed->entry_count;
    }
  };
  const size_t par = ScatterParallelism();
  std::vector<std::thread> threads;
  threads.reserve(par - 1);
  for (size_t i = 1; i < par; ++i) {
    threads.emplace_back(work);
  }
  work();
  for (std::thread& t : threads) {
    t.join();
  }
  for (Status& s : statuses) {
    SEAL_RETURN_IF_ERROR(s);
  }
  return Status::Ok();
}

Result<EpochRecord> ShardSet::CommitEpochRecord(std::vector<ShardHeadInfo> heads) {
  auto round = epoch_counter_->Increment();
  if (!round.ok()) {
    return round.status();
  }
  EpochRecord rec;
  rec.epoch = *round;
  rec.wall_nanos = NowNanos();
  rec.heads = std::move(heads);
  if (!epoch_path_.empty()) {
    Bytes file = rec.Serialize();
    crypto::EcdsaSignature sig = anchor_key_.Sign(file);
    Append(file, sig.Encode());
    SEAL_RETURN_IF_ERROR(AtomicWriteFile(epoch_path_, file, options_.libseal.audit_log.fsync));
  }
  last_anchored_epoch_ = rec.epoch;
  SEAL_OBS_COUNTER("epoch_anchors_total").Increment();
  return rec;
}

Result<EpochRecord> ShardSet::AnchorEpoch() {
  std::vector<ShardHeadInfo> heads;
  SEAL_RETURN_IF_ERROR(CommitAllHeads(&heads, nullptr));
  if (crash_after_head_commit_for_testing) {
    return Unavailable("crash injected between per-shard head commit and epoch record");
  }
  return CommitEpochRecord(std::move(heads));
}

Result<std::optional<CheckReport>> ShardSet::OnPair(uint64_t route_key,
                                                    std::string_view request,
                                                    std::string_view response,
                                                    bool force_check) {
  AuditLogger* logger = runtimes_[ShardFor(route_key)]->logger();
  return logger->OnPair(route_key, request, response, force_check);
}

Result<CrossShardReport> ShardSet::CheckCrossShard() {
  const int64_t t0 = NowNanos();
  // Scatter: every shard's head commit and entry snapshot happen in ONE
  // critical section per shard (CommitAndSnapshotHead), so the cut is a
  // vector of signed per-shard prefixes — and anchoring it gives the cut
  // a durable epoch identity.
  std::vector<ShardHeadInfo> heads;
  std::vector<std::vector<LogEntry>> cut;
  SEAL_RETURN_IF_ERROR(CommitAllHeads(&heads, &cut));
  if (crash_after_head_commit_for_testing) {
    return Unavailable("crash injected between per-shard head commit and epoch record");
  }
  auto anchored = CommitEpochRecord(std::move(heads));
  if (!anchored.ok()) {
    return anchored.status();
  }
  CrossShardReport out;
  out.epoch = anchored->epoch;
  out.shards = runtimes_.size();
  out.scatter_nanos = NowNanos() - t0;

  // Gather: the log_merge interleave (wall-clock order, ties by shard then
  // logical time, re-assigned global timestamps) over the cut.
  const int64_t t1 = NowNanos();
  size_t total = 0;
  for (const auto& shard_entries : cut) {
    total += shard_entries.size();
  }
  std::vector<TaggedEntry> all;
  all.reserve(total);
  for (size_t k = 0; k < cut.size(); ++k) {
    for (LogEntry& entry : cut[k]) {
      all.push_back(TaggedEntry{k, std::move(entry)});
    }
  }
  cut.clear();
  auto merged = MergeTaggedEntries(std::move(all), *merged_module_, runtimes_.size());
  if (!merged.ok()) {
    return merged.status();
  }
  out.merged_entries = merged->total_entries;
  out.merge_nanos = NowNanos() - t1;
  {
    // The merged database is freshly built; honour the same engine choice
    // as the per-shard check rounds.
    db::Tuning tuning = merged->database.tuning();
    tuning.use_vectorized = options_.libseal.logger.vectorized_checking;
    merged->database.set_tuning(tuning);
  }

  // Evaluate the SSM's invariants against a pinned snapshot of the merged
  // database, in parallel (Database::ExecuteSnapshot is a const read).
  // Per-shard partial evaluation would be unsound for cross-shard
  // invariants — the merged view is the truth.
  const int64_t t2 = NowNanos();
  const std::vector<Invariant> invariants = merged_module_->Invariants();
  const db::Snapshot snap = merged->database.CaptureSnapshot();
  std::vector<std::optional<Result<db::QueryResult>>> results(invariants.size());
  std::atomic<size_t> next{0};
  auto eval = [&] {
    for (size_t i = next.fetch_add(1); i < invariants.size(); i = next.fetch_add(1)) {
      results[i] = merged->database.ExecuteSnapshot(invariants[i].query, snap);
    }
  };
  const size_t par = std::max<size_t>(
      1, std::min(ScatterParallelism(), invariants.empty() ? 1 : invariants.size()));
  std::vector<std::thread> threads;
  threads.reserve(par - 1);
  for (size_t i = 1; i < par; ++i) {
    threads.emplace_back(eval);
  }
  eval();
  for (std::thread& t : threads) {
    t.join();
  }
  out.report.invariants_checked = invariants.size();
  for (size_t i = 0; i < invariants.size(); ++i) {
    if (!results[i]->ok()) {
      return results[i]->status();
    }
    if (!(*results[i])->empty()) {
      out.report.violations.push_back(CheckReport::Violation{
          invariants[i].name, std::move(**results[i])});
    }
  }
  out.eval_nanos = NowNanos() - t2;
  out.report.check_nanos = out.eval_nanos;
  SEAL_OBS_HISTOGRAM("crossshard_check_nanos")
      .Observe(static_cast<uint64_t>(NowNanos() - t0));
  return out;
}

void ShardSet::Shutdown() {
  for (auto& runtime : runtimes_) {
    runtime->Shutdown();
  }
}

}  // namespace seal::core
