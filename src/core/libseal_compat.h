// OpenSSL/LibreSSL-compatible function-style API over LibSealRuntime
// (paper §4.1: "LibSEAL provides the same API as OpenSSL and LibreSSL",
// so services like Apache and Squid link against it unchanged).
//
// The SSL_CTX analogue carries the runtime; SSL is the outside shadow
// structure. Names carry a Libseal prefix to avoid clashing with a real
// OpenSSL in the same process; a deployment would alias them.
#ifndef SRC_CORE_LIBSEAL_COMPAT_H_
#define SRC_CORE_LIBSEAL_COMPAT_H_

#include "src/core/libseal.h"

namespace seal::core::compat {

using SSL_CTX = LibSealRuntime;
using SSL = LibSealSsl;

// SSL_CTX_new / SSL_CTX_free: the runtime is the context. The caller owns
// configuration; Init() must have been called.
inline SSL* SSL_new(SSL_CTX* ctx, net::Stream* stream) {
  return ctx->SslNew(stream, tls::Role::kServer);
}

inline int SSL_accept(SSL* ssl) { return ssl->runtime->SslHandshake(ssl); }

inline int SSL_read(SSL* ssl, void* buf, int num) {
  return ssl->runtime->SslRead(ssl, static_cast<uint8_t*>(buf), num);
}

inline int SSL_write(SSL* ssl, const void* buf, int num) {
  return ssl->runtime->SslWrite(ssl, static_cast<const uint8_t*>(buf), num);
}

inline int SSL_shutdown(SSL* ssl) {
  ssl->runtime->SslShutdown(ssl);
  return 1;
}

inline void SSL_free(SSL* ssl) {
  if (ssl != nullptr) {
    ssl->runtime->SslFree(ssl);
  }
}

inline int SSL_set_ex_data(SSL* ssl, int idx, void* data) {
  return ssl->runtime->SslSetExData(ssl, idx, data);
}

inline void* SSL_get_ex_data(const SSL* ssl, int idx) {
  return ssl->runtime->SslGetExData(const_cast<SSL*>(ssl), idx);
}

inline void SSL_CTX_set_info_callback(SSL_CTX* ctx, SslInfoCallback cb) {
  ctx->SetInfoCallback(cb);
}

// Applications (Apache, Squid) read sanitised connection state straight
// from the shadow structure, shadowing making that safe (§4.1).
inline int SSL_is_init_finished(const SSL* ssl) { return ssl->handshake_done; }

}  // namespace seal::core::compat

#endif  // SRC_CORE_LIBSEAL_COMPAT_H_
