#include "src/core/checker.h"

#include "src/common/clock.h"
#include "src/common/log.h"
#include "src/obs/obs.h"
#include "src/sgx/enclave.h"

namespace seal::core {

namespace {

void CountRound(CheckRound::Trigger trigger) {
  switch (trigger) {
    case CheckRound::Trigger::kInterval:
      SEAL_OBS_COUNTER("logger_check_rounds_total{trigger=\"interval\"}").Increment();
      break;
    case CheckRound::Trigger::kForced:
      SEAL_OBS_COUNTER("logger_check_rounds_total{trigger=\"forced\"}").Increment();
      break;
    case CheckRound::Trigger::kManual:
      SEAL_OBS_COUNTER("logger_check_rounds_total{trigger=\"manual\"}").Increment();
      break;
  }
}

}  // namespace

std::string CheckReport::Summary() const {
  if (violations.empty()) {
    return "ok " + std::to_string(invariants_checked) + " invariants";
  }
  std::string s = "VIOLATION";
  for (const Violation& v : violations) {
    s += " " + v.invariant + "(" + std::to_string(v.rows.rows.size()) + ")";
  }
  return s;
}

Status CheckRound::Wait() {
  std::unique_lock<std::mutex> lk(m);
  cv.wait(lk, [&] { return done; });
  return status;
}

CheckerEngine::CheckerEngine(AuditLog* log, std::vector<Invariant> invariants,
                             Options options, TrimFn trim_fn)
    : log_(log),
      invariants_(std::move(invariants)),
      options_(std::move(options)),
      trim_fn_(std::move(trim_fn)) {
  watermarks_.assign(invariants_.size(), -1);
}

CheckerEngine::~CheckerEngine() { Stop(); }

void CheckerEngine::Start() {
  if (!options_.async) {
    return;
  }
  std::lock_guard<std::mutex> lk(mutex_);
  if (started_ || stop_) {
    return;
  }
  started_ = true;
  // Oversubscribing check workers past the physical core count only adds
  // context-switch overhead to round latency (the workers are CPU-bound
  // invariant evaluations), so clamp. hardware_concurrency() may report 0
  // on exotic platforms; treat that as "unknown" and don't clamp.
  const size_t hw = std::thread::hardware_concurrency();
  if (hw > 0 && options_.parallelism > hw) {
    SEAL_LOG(kWarn) << "check_parallelism " << options_.parallelism << " exceeds hardware concurrency "
                    << hw << "; clamping";
    options_.parallelism = hw;
  }
  if (options_.parallelism == 0) {
    options_.parallelism = 1;
  }
  SEAL_OBS_GAUGE("checker_effective_parallelism").Set(static_cast<double>(options_.parallelism));
  // Helpers before the worker: the worker reads helpers_ unlocked when
  // deciding whether to fan a round out.
  for (size_t i = 1; i < options_.parallelism; ++i) {
    helpers_.emplace_back([this] { HelperMain(); });
  }
  worker_ = std::thread([this] { ThreadMain(); });
}

void CheckerEngine::Stop() {
  std::shared_ptr<CheckRound> orphaned;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stop_) {
      return;
    }
    stop_ = true;
    orphaned = std::move(pending_);
    UpdateQueueDepthLocked();
    work_cv_.notify_all();
    task_cv_.notify_all();
    idle_cv_.notify_all();
  }
  if (worker_.joinable()) {
    worker_.join();
  }
  for (std::thread& h : helpers_) {
    if (h.joinable()) {
      h.join();
    }
  }
  helpers_.clear();
  if (orphaned != nullptr) {
    CompleteRound(orphaned, Unavailable("checker engine stopped"));
  }
}

void CheckerEngine::UpdateQueueDepthLocked() {
  SEAL_OBS_GAUGE("logger_check_queue_depth")
      .Set((pending_ != nullptr ? 1 : 0) + (running_ != nullptr ? 1 : 0));
}

std::shared_ptr<CheckRound> CheckerEngine::Enqueue(Trigger trigger, bool want_trim,
                                                   int64_t horizon) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (stop_) {
    auto dead = std::make_shared<CheckRound>();
    dead->trigger = trigger;
    dead->status = Unavailable("checker engine stopped");
    dead->done = true;
    return dead;
  }
  if (pending_ != nullptr) {
    // Merge: one round will cover both triggers. The refreshed snapshot
    // covers every pair drained so far (the caller holds the writer lock,
    // so this is a pair boundary).
    pending_->snapshot = log_->database().CaptureSnapshot();
    if (horizon > pending_->horizon) {
      pending_->horizon = horizon;
    }
    pending_->want_trim = pending_->want_trim || want_trim;
    SEAL_OBS_COUNTER("logger_check_rounds_coalesced_total").Increment();
    return pending_;
  }
  auto round = std::make_shared<CheckRound>();
  round->trigger = trigger;
  round->want_trim = want_trim;
  round->horizon = horizon;
  round->snapshot = log_->database().CaptureSnapshot();
  pending_ = round;
  UpdateQueueDepthLocked();
  work_cv_.notify_one();
  return round;
}

std::shared_ptr<CheckRound> CheckerEngine::TryAttach(int64_t need_horizon) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (pending_ == nullptr || stop_) {
    // A running round never qualifies: its snapshot was captured before
    // the caller's pair was drained, so it cannot cover need_horizon.
    return nullptr;
  }
  pending_->snapshot = log_->database().CaptureSnapshot();
  if (need_horizon > pending_->horizon) {
    pending_->horizon = need_horizon;
  }
  return pending_;
}

Status CheckerEngine::RunInline(Trigger trigger, int64_t horizon, CheckReport* out) {
  CheckRound round;
  round.trigger = trigger;
  round.horizon = horizon;
  SEAL_RETURN_IF_ERROR(EvaluateRound(round, /*snap=*/nullptr, /*parallel=*/false));
  CountRound(trigger);
  rounds_completed_.fetch_add(1, std::memory_order_release);
  if (options_.on_report) {
    options_.on_report(round.report);
  }
  *out = std::move(round.report);
  return Status::Ok();
}

void CheckerEngine::OnTrimmed() {
  std::lock_guard<std::mutex> lk(wm_mutex_);
  for (int64_t& w : watermarks_) {
    if (w >= 0) {
      SEAL_OBS_COUNTER("logger_watermark_resets_total").Increment();
    }
    w = -1;
  }
}

void CheckerEngine::WaitIdle() {
  std::unique_lock<std::mutex> lk(mutex_);
  idle_cv_.wait(lk, [&] { return stop_ || (pending_ == nullptr && running_ == nullptr); });
}

void CheckerEngine::PauseForTesting(bool paused) {
  std::lock_guard<std::mutex> lk(mutex_);
  paused_ = paused;
  work_cv_.notify_all();
}

int64_t CheckerEngine::watermark_for_testing(size_t invariant_index) const {
  std::lock_guard<std::mutex> lk(wm_mutex_);
  return invariant_index < watermarks_.size() ? watermarks_[invariant_index] : -1;
}

void CheckerEngine::ThreadMain() {
  for (;;) {
    std::shared_ptr<CheckRound> round;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      work_cv_.wait(lk, [&] { return stop_ || (pending_ != nullptr && !paused_); });
      if (stop_) {
        return;
      }
      round = std::move(pending_);
      running_ = round;
      UpdateQueueDepthLocked();
    }
    RunRound(*round);
    CountRound(round->trigger);
    rounds_completed_.fetch_add(1, std::memory_order_release);
    if (round->status.ok() && options_.on_report) {
      options_.on_report(round->report);
    }
    CompleteRound(round, round->status);
    {
      std::lock_guard<std::mutex> lk(mutex_);
      running_ = nullptr;
      UpdateQueueDepthLocked();
      idle_cv_.notify_all();
    }
  }
}

void CheckerEngine::RunRound(CheckRound& round) {
  sgx::ScopedExecutionCharge charge(options_.enclave);
  Status s = EvaluateRound(round, &round.snapshot, /*parallel=*/true);
  if (s.ok() && round.want_trim && trim_fn_) {
    s = trim_fn_(&round.report);
  }
  round.status = s;
}

Status CheckerEngine::EvaluateRound(CheckRound& round, const db::Snapshot* snap,
                                    bool parallel) {
  const int64_t check_start = NowNanos();
  const size_t n = invariants_.size();
  auto task = std::make_shared<EvalTask>();
  task->snap = snap;
  task->floors.assign(n, -1);
  task->results.resize(n);
  task->remaining.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wm_mutex_);
    for (size_t i = 0; i < n; ++i) {
      if (options_.incremental_checking && invariants_[i].monotone && watermarks_[i] >= 0) {
        task->floors[i] = watermarks_[i];
      }
    }
  }

  if (parallel && !helpers_.empty() && n > 1) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      task_ = task;
      ++task_gen_;
      task_cv_.notify_all();
    }
    RunTaskSlice(*task);
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return task->remaining.load(std::memory_order_acquire) == 0; });
    task_ = nullptr;
  } else {
    RunTaskSlice(*task);
  }

  CheckReport& report = round.report;
  report.covered_time = round.horizon;
  std::vector<char> advance(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const Invariant& invariant = invariants_[i];
    Result<db::QueryResult>& result = *task->results[i];
    if (!result.ok()) {
      return result.status();
    }
    ++report.invariants_checked;
    SEAL_OBS_COUNTER("logger_invariant_evaluations_total").Increment();
    if (task->floors[i] >= 0) {
      SEAL_OBS_COUNTER("logger_incremental_evaluations_total").Increment();
    }
    CheckReport::Coverage cov;
    cov.invariant = invariant.name;
    cov.floor = task->floors[i];
    if (result->rows.empty()) {
      cov.covered = round.horizon;
      if (invariant.monotone) {
        advance[i] = 1;
        SEAL_OBS_COUNTER("logger_watermark_advances_total").Increment();
      }
    } else {
      // A violating monotone invariant keeps its watermark where it is:
      // the offending rows must stay visible to subsequent checks.
      cov.covered = task->floors[i];
      if (invariant.monotone) {
        SEAL_OBS_COUNTER("logger_watermark_freezes_total").Increment();
      }
      SEAL_OBS_COUNTER("logger_violations_found_total").Add(result->rows.size());
      report.violations.push_back(
          CheckReport::Violation{invariant.name, std::move(*result)});
    }
    report.coverage.push_back(std::move(cov));
  }
  {
    std::lock_guard<std::mutex> lk(wm_mutex_);
    // A trim interleaved with this round invalidates its coverage: the
    // reset (OnTrimmed, same lock) wins and the watermarks stay at -1.
    // Snapshot-free (inline) rounds run under the writer lock, where no
    // trim can interleave.
    const bool epoch_ok =
        snap == nullptr || log_->database().trim_epoch() == snap->trim_epoch;
    if (epoch_ok) {
      for (size_t i = 0; i < n; ++i) {
        if (advance[i]) {
          watermarks_[i] = round.horizon;
        }
      }
    }
  }
  report.check_nanos = NowNanos() - check_start;
  SEAL_OBS_HISTOGRAM("logger_check_nanos").Observe(static_cast<uint64_t>(report.check_nanos));
  return Status::Ok();
}

void CheckerEngine::RunTaskSlice(EvalTask& task) {
  for (;;) {
    const size_t i = task.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= task.floors.size()) {
      return;
    }
    task.results[i] = EvaluateInvariant(i, task.floors[i], task.snap);
    if (task.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(mutex_);
      done_cv_.notify_all();
    }
  }
}

Result<db::QueryResult> CheckerEngine::EvaluateInvariant(size_t i, int64_t floor,
                                                         const db::Snapshot* snap) {
  const Invariant& invariant = invariants_[i];
  std::optional<int64_t> f;
  if (floor >= 0) {
    f = floor;
  }
  return plan_cache_.Execute(log_->database(), invariant.query, f, snap);
}

void CheckerEngine::HelperMain() {
  uint64_t seen_gen = 0;
  for (;;) {
    std::shared_ptr<EvalTask> task;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      task_cv_.wait(lk, [&] { return stop_ || (task_ != nullptr && task_gen_ != seen_gen); });
      if (stop_) {
        return;
      }
      seen_gen = task_gen_;
      task = task_;
    }
    sgx::ScopedExecutionCharge charge(options_.enclave);
    RunTaskSlice(*task);
  }
}

void CheckerEngine::CompleteRound(const std::shared_ptr<CheckRound>& round, Status status) {
  std::lock_guard<std::mutex> lk(round->m);
  round->status = std::move(status);
  round->done = true;
  round->cv.notify_all();
}

}  // namespace seal::core
