#include "src/core/audit_log.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "src/common/clock.h"

namespace seal::core {

namespace {

// File helpers (plain stdio keeps this dependency-free).
Status WriteFile(const std::string& path, BytesView data, bool append) {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) {
    return Unavailable("cannot open " + path);
  }
  size_t written = data.empty() ? 0 : std::fwrite(data.data(), 1, data.size(), f);
  // Synchronous flush: the paper persists the log after each pair.
  std::fflush(f);
  std::fclose(f);
  if (written != data.size()) {
    return DataLoss("short write to " + path);
  }
  return Status::Ok();
}

Result<Bytes> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return NotFound("cannot open " + path);
  }
  Bytes data;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

std::string SigPath(const std::string& path) { return path + ".sig"; }

// Decrypts one framed record. `cipher` is the per-file cached context, or
// null for a sign-only log.
Result<Bytes> MaybeDecrypt(const crypto::Aes128Gcm* cipher, BytesView wire) {
  if (cipher == nullptr) {
    return Bytes(wire.begin(), wire.end());
  }
  if (wire.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
    return DataLoss("encrypted log record too short");
  }
  Bytes plain(wire.size() - crypto::kGcmNonceSize - crypto::kGcmTagSize);
  if (!cipher->OpenInto(wire.subspan(0, crypto::kGcmNonceSize), {},
                        wire.subspan(crypto::kGcmNonceSize), plain.data())) {
    return PermissionDenied("log record decryption failed");
  }
  return plain;
}

}  // namespace

Bytes LogEntry::Serialize() const {
  Bytes out;
  AppendBe64(out, static_cast<uint64_t>(time));
  AppendBe64(out, static_cast<uint64_t>(wall_nanos));
  AppendBe32(out, static_cast<uint32_t>(table.size()));
  Append(out, table);
  AppendBe32(out, static_cast<uint32_t>(values.size()));
  for (const db::Value& v : values) {
    std::string s = v.Serialize();
    AppendBe32(out, static_cast<uint32_t>(s.size()));
    Append(out, s);
  }
  return out;
}

Result<LogEntry> LogEntry::Deserialize(BytesView in, size_t& off) {
  LogEntry entry;
  if (off + 20 > in.size()) {
    return DataLoss("log entry truncated");
  }
  entry.time = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  entry.wall_nanos = static_cast<int64_t>(LoadBe64(in.data() + off));
  off += 8;
  uint32_t table_len = LoadBe32(in.data() + off);
  off += 4;
  if (off + table_len + 4 > in.size()) {
    return DataLoss("log entry truncated in table name");
  }
  entry.table.assign(reinterpret_cast<const char*>(in.data() + off), table_len);
  off += table_len;
  uint32_t nvalues = LoadBe32(in.data() + off);
  off += 4;
  for (uint32_t i = 0; i < nvalues; ++i) {
    if (off + 4 > in.size()) {
      return DataLoss("log entry truncated in value length");
    }
    uint32_t len = LoadBe32(in.data() + off);
    off += 4;
    if (off + len > in.size() || len == 0) {
      return DataLoss("log entry truncated in value");
    }
    std::string s(reinterpret_cast<const char*>(in.data() + off), len);
    off += len;
    // Value::Serialize format: N | I<int> | R<real> | T<len>:<text>.
    switch (s[0]) {
      case 'N':
        entry.values.push_back(db::Value::Null());
        break;
      case 'I':
        entry.values.push_back(db::Value(static_cast<int64_t>(std::strtoll(s.c_str() + 1, nullptr, 10))));
        break;
      case 'R':
        entry.values.push_back(db::Value(std::strtod(s.c_str() + 1, nullptr)));
        break;
      case 'T': {
        size_t colon = s.find(':');
        if (colon == std::string::npos) {
          return DataLoss("malformed text value");
        }
        entry.values.push_back(db::Value(s.substr(colon + 1)));
        break;
      }
      default:
        return DataLoss("unknown value tag");
    }
  }
  return entry;
}

AuditLog::AuditLog(AuditLogOptions options, crypto::EcdsaPrivateKey signing_key)
    : options_(std::move(options)),
      signing_key_(std::move(signing_key)),
      counter_(std::make_unique<rote::RoteCounter>(options_.counter_options)),
      chain_head_(crypto::kSha256DigestSize, 0) {
  if (!options_.encryption_key.empty()) {
    cipher_ = std::make_unique<crypto::Aes128Gcm>(options_.encryption_key);
    nonce_seq_ = std::make_unique<crypto::GcmNonceSequence>();
  }
  if (options_.mode == PersistenceMode::kDisk && !options_.path.empty()) {
    // Truncate any stale log from a previous run.
    (void)WriteFile(options_.path, {}, /*append=*/false);
  }
}

AuditLog::~AuditLog() { (void)FlushPersisted(); }

Status AuditLog::ExecuteSchema(const std::vector<std::string>& statements) {
  for (const std::string& sql : statements) {
    auto r = db_.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
  }
  return Status::Ok();
}

Bytes AuditLog::ExtendChain(const Bytes& head, const LogEntry& entry) const {
  crypto::Sha256 h;
  h.Update(head);
  h.Update(entry.Serialize());
  crypto::Sha256Digest d = h.Finish();
  return Bytes(d.begin(), d.end());
}

Status AuditLog::Append(const std::string& table, db::Row values, int64_t wall_nanos) {
  if (values.empty() || !values[0].is_int()) {
    return InvalidArgument("first column of every audit tuple must be the integer time");
  }
  LogEntry entry;
  entry.time = values[0].AsInt();
  entry.wall_nanos = wall_nanos != 0 ? wall_nanos : NowNanos();
  entry.table = table;
  entry.values = values;
  SEAL_RETURN_IF_ERROR(db_.InsertRow(table, std::move(values)));
  chain_head_ = ExtendChain(chain_head_, entry);
  ++entries_logged_;
  if (options_.mode == PersistenceMode::kDisk) {
    SEAL_RETURN_IF_ERROR(PersistEntry(entry));
  }
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Bytes AuditLog::EncodeRecord(BytesView plain) {
  if (cipher_ == nullptr) {
    return Bytes(plain.begin(), plain.end());
  }
  Bytes out(crypto::kGcmNonceSize + plain.size() + crypto::kGcmTagSize);
  nonce_seq_->Next(out.data());
  cipher_->SealInto(BytesView(out.data(), crypto::kGcmNonceSize), {}, plain,
                    out.data() + crypto::kGcmNonceSize);
  return out;
}

void AuditLog::AppendFramedRecord(Bytes& out, const LogEntry& entry) {
  Bytes record = EncodeRecord(entry.Serialize());
  AppendBe32(out, static_cast<uint32_t>(record.size()));
  seal::Append(out, record);
}

Status AuditLog::PersistEntry(const LogEntry& entry) {
  // Stage only: the write (one syscall for a whole batch) happens at
  // FlushPersisted/CommitHead, so a burst of appends costs one flush.
  size_t before = pending_persist_.size();
  AppendFramedRecord(pending_persist_, entry);
  persisted_bytes_ += pending_persist_.size() - before;
  return Status::Ok();
}

Status AuditLog::FlushPersisted() {
  if (options_.mode != PersistenceMode::kDisk || pending_persist_.empty()) {
    return Status::Ok();
  }
  Bytes batch = std::move(pending_persist_);
  pending_persist_.clear();
  return WriteFile(options_.path, batch, /*append=*/true);
}

Status AuditLog::CommitHead() {
  SEAL_RETURN_IF_ERROR(FlushPersisted());
  if (options_.mode != PersistenceMode::kDisk) {
    // Nothing persisted means nothing to roll back: the counter round is
    // only needed when the log leaves the enclave.
    return Status::Ok();
  }
  // One monotonic-counter round per commit binds this head to "now".
  auto counter_value = counter_->Increment();
  if (!counter_value.ok()) {
    return counter_value.status();
  }
  Bytes head;
  seal::Append(head, chain_head_);
  AppendBe64(head, *counter_value);
  AppendBe64(head, entries_logged_);
  crypto::EcdsaSignature sig = signing_key_.Sign(head);
  seal::Append(head, sig.Encode());
  return WriteFile(SigPath(options_.path), head, /*append=*/false);
}

Result<db::QueryResult> AuditLog::Query(const std::string& sql) { return db_.Execute(sql); }

Result<db::QueryResult> AuditLog::QueryWithTimeFloor(const std::string& sql, int64_t floor) {
  return db_.ExecuteWithTimeFloor(sql, floor);
}

Status AuditLog::Trim(const std::vector<std::string>& trimming_queries,
                      size_t* deleted_out) {
  if (deleted_out != nullptr) {
    *deleted_out = 0;
  }
  if (trimming_queries.empty()) {
    return Status::Ok();
  }
  size_t deleted = 0;
  for (const std::string& sql : trimming_queries) {
    auto r = db_.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
    deleted += r->affected;
  }
  if (deleted_out != nullptr) {
    *deleted_out = deleted;
  }
  if (deleted == 0) {
    // Nothing left the log: the chain, the persisted file and the counter
    // binding are all still valid, so the O(n) rebuild would be pure waste.
    return Status::Ok();
  }
  // Rebuild the entries and the hash chain from the surviving rows, in
  // logical-time order across all tables (§5.1: "LibSEAL recomputes the
  // hashes of the remaining log entries"). Wall clocks are recovered from
  // the pre-trim entries via (table, time).
  std::map<std::pair<std::string, int64_t>, int64_t> wall_by_key;
  for (const LogEntry& entry : entries_) {
    wall_by_key[{entry.table, entry.time}] = entry.wall_nanos;
  }
  std::vector<LogEntry> survivors;
  for (const std::string& table : db_.TableNames()) {
    const db::RowStore* rows = db_.TableRows(table);
    for (size_t r = 0; r < rows->size(); ++r) {
      const db::Row& row = (*rows)[r];
      LogEntry entry;
      entry.time = row.empty() ? 0 : row[0].AsInt();
      entry.table = table;
      auto it = wall_by_key.find({table, entry.time});
      if (it != wall_by_key.end()) {
        entry.wall_nanos = it->second;
      }
      entry.values = row;
      survivors.push_back(std::move(entry));
    }
  }
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const LogEntry& a, const LogEntry& b) { return a.time < b.time; });
  entries_ = std::move(survivors);
  chain_head_.assign(crypto::kSha256DigestSize, 0);
  for (const LogEntry& entry : entries_) {
    chain_head_ = ExtendChain(chain_head_, entry);
  }
  entries_logged_ = entries_.size();
  if (options_.mode == PersistenceMode::kDisk) {
    SEAL_RETURN_IF_ERROR(RewritePersistedLog());
    SEAL_RETURN_IF_ERROR(CommitHead());
  }
  return Status::Ok();
}

Status AuditLog::RewritePersistedLog() {
  // The rewrite replaces the whole file, so anything staged but unflushed
  // is superseded.
  pending_persist_.clear();
  Bytes all;
  for (const LogEntry& entry : entries_) {
    AppendFramedRecord(all, entry);
  }
  persisted_bytes_ = all.size();
  return WriteFile(options_.path, all, /*append=*/false);
}

Result<std::vector<LogEntry>> AuditLog::ReadVerifiedEntries(const std::string& path,
                                                            const Bytes& encryption_key) {
  auto data = ReadFile(path);
  if (!data.ok()) {
    return data.status();
  }
  std::optional<crypto::Aes128Gcm> cipher;
  if (!encryption_key.empty()) {
    cipher.emplace(encryption_key);
  }
  std::vector<LogEntry> entries;
  size_t off = 0;
  while (off < data->size()) {
    if (off + 4 > data->size()) {
      return DataLoss("truncated record frame");
    }
    uint32_t len = LoadBe32(data->data() + off);
    off += 4;
    if (off + len > data->size()) {
      return DataLoss("truncated record body");
    }
    auto plain = MaybeDecrypt(cipher ? &*cipher : nullptr, BytesView(*data).subspan(off, len));
    if (!plain.ok()) {
      return plain.status();
    }
    off += len;
    size_t entry_off = 0;
    auto entry = LogEntry::Deserialize(*plain, entry_off);
    if (!entry.ok()) {
      return entry.status();
    }
    entries.push_back(std::move(*entry));
  }
  return entries;
}

Result<size_t> AuditLog::VerifyLogFile(const std::string& path,
                                       const crypto::EcdsaPublicKey& log_public_key,
                                       const rote::RoteCounter& counter,
                                       const Bytes& encryption_key) {
  auto data = ReadFile(path);
  if (!data.ok()) {
    return data.status();
  }
  std::optional<crypto::Aes128Gcm> cipher;
  if (!encryption_key.empty()) {
    cipher.emplace(encryption_key);
  }
  Bytes head(crypto::kSha256DigestSize, 0);
  size_t off = 0;
  size_t count = 0;
  while (off < data->size()) {
    if (off + 4 > data->size()) {
      return DataLoss("truncated record frame");
    }
    uint32_t len = LoadBe32(data->data() + off);
    off += 4;
    if (off + len > data->size()) {
      return DataLoss("truncated record body");
    }
    auto plain = MaybeDecrypt(cipher ? &*cipher : nullptr, BytesView(*data).subspan(off, len));
    if (!plain.ok()) {
      return plain.status();
    }
    off += len;
    size_t entry_off = 0;
    auto entry = LogEntry::Deserialize(*plain, entry_off);
    if (!entry.ok()) {
      return entry.status();
    }
    crypto::Sha256 h;
    h.Update(head);
    h.Update(*plain);
    crypto::Sha256Digest d = h.Finish();
    head.assign(d.begin(), d.end());
    ++count;
  }

  auto sig_data = ReadFile(SigPath(path));
  if (!sig_data.ok()) {
    return sig_data.status();
  }
  if (sig_data->size() != crypto::kSha256DigestSize + 16 + 64) {
    return DataLoss("malformed log head file");
  }
  BytesView stored_head = BytesView(*sig_data).subspan(0, crypto::kSha256DigestSize);
  uint64_t stored_counter = LoadBe64(sig_data->data() + crypto::kSha256DigestSize);
  uint64_t stored_count = LoadBe64(sig_data->data() + crypto::kSha256DigestSize + 8);
  auto sig = crypto::EcdsaSignature::Decode(
      BytesView(*sig_data).subspan(crypto::kSha256DigestSize + 16, 64));
  if (!sig.has_value()) {
    return DataLoss("malformed head signature");
  }
  Bytes signed_blob(sig_data->begin(),
                    sig_data->begin() + static_cast<ptrdiff_t>(crypto::kSha256DigestSize + 16));
  if (!log_public_key.Verify(signed_blob, *sig)) {
    return PermissionDenied("log head signature invalid: tampered or forged log");
  }
  if (!ConstantTimeEqual(stored_head, head)) {
    return PermissionDenied("hash chain mismatch: log entries modified");
  }
  if (stored_count != count) {
    return PermissionDenied("entry count mismatch");
  }
  auto current = counter.Read();
  if (!current.ok()) {
    return current.status();
  }
  if (stored_counter != *current) {
    return PermissionDenied("rollback detected: counter " + std::to_string(stored_counter) +
                            " but cluster reports " + std::to_string(*current));
  }
  return count;
}

}  // namespace seal::core
