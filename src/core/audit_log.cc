#include "src/core/audit_log.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::core {

namespace {

// Decrypts one framed record. `cipher` is the per-file cached context, or
// null for a sign-only log.
Result<Bytes> MaybeDecrypt(const crypto::Aes128Gcm* cipher, BytesView wire) {
  if (cipher == nullptr) {
    return Bytes(wire.begin(), wire.end());
  }
  if (wire.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
    return DataLoss("encrypted log record too short");
  }
  Bytes plain(wire.size() - crypto::kGcmNonceSize - crypto::kGcmTagSize);
  if (!cipher->OpenInto(wire.subspan(0, crypto::kGcmNonceSize), {},
                        wire.subspan(crypto::kGcmNonceSize), plain.data())) {
    return PermissionDenied("log record decryption failed");
  }
  return plain;
}

// Stable identity of a row for matching post-trim survivors back to their
// original entries: every column's serialised form, length-prefixed so
// adjacent values cannot alias.
std::string RowIdentity(const db::Row& row) {
  std::string key;
  for (const db::Value& v : row) {
    const std::string s = v.Serialize();
    key += std::to_string(s.size());
    key += ':';
    key += s;
  }
  return key;
}

// Full verification scan shared by VerifyLogFile and ReadVerifiedEntries:
// walks either the legacy single file or the segment files (checking header
// chaining), decrypts and strictly parses every record, and recomputes the
// hash chain over the raw record bytes.
struct WholeScan {
  std::vector<LogEntry> entries;
  Bytes chain;
  size_t count = 0;
};

Result<WholeScan> ScanWholeLog(const std::string& path, const crypto::Aes128Gcm* cipher) {
  WholeScan out;
  out.chain.assign(crypto::kSha256DigestSize, 0);
  auto scan = [&](BytesView data, size_t off) -> Status {
    while (off < data.size()) {
      if (data.size() - off < 4) {
        return DataLoss("truncated record frame");
      }
      const uint32_t len = LoadBe32(data.data() + off);
      off += 4;
      if (len > data.size() - off) {
        return DataLoss("truncated record body");
      }
      auto plain = MaybeDecrypt(cipher, data.subspan(off, len));
      if (!plain.ok()) {
        return plain.status();
      }
      off += len;
      size_t entry_off = 0;
      auto entry = LogEntry::Deserialize(*plain, entry_off);
      if (!entry.ok()) {
        return entry.status();
      }
      if (entry_off != plain->size()) {
        return DataLoss("trailing bytes in log record");
      }
      crypto::Sha256 h;
      h.Update(out.chain);
      h.Update(*plain);
      crypto::Sha256Digest d = h.Finish();
      out.chain.assign(d.begin(), d.end());
      out.entries.push_back(std::move(*entry));
      ++out.count;
    }
    return Status::Ok();
  };

  const std::vector<uint32_t> segments = ListSegmentFiles(path);
  if (segments.empty()) {
    auto data = ReadFileBytes(path);
    if (!data.ok()) {
      if (FileExists(HeadFilePath(path))) {
        // A segmented log that committed a head before flushing any record
        // has no data files yet; verify the (empty) chain against the head.
        return out;
      }
      return data.status();
    }
    SEAL_RETURN_IF_ERROR(scan(*data, 0));
    return out;
  }

  bool epoch_set = false;
  uint64_t epoch = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i] != i) {
      return DataLoss("missing log segment " + std::to_string(i));
    }
    const std::string seg_path = SegmentFilePath(path, static_cast<uint32_t>(i));
    auto data = ReadFileBytes(seg_path);
    if (!data.ok()) {
      return data.status();
    }
    auto header = SegmentHeader::Decode(*data);
    if (!header.ok()) {
      return header.status();
    }
    if (header->index != i) {
      return DataLoss("segment index mismatch in " + seg_path);
    }
    if (!epoch_set) {
      epoch = header->rewrite_epoch;
      epoch_set = true;
    } else if (header->rewrite_epoch != epoch) {
      return DataLoss("segment rewrite epoch mismatch in " + seg_path);
    }
    if (i + 1 < segments.size() && header->closed == 0) {
      return PermissionDenied("non-final log segment not closed: " + seg_path);
    }
    if (!ConstantTimeEqual(header->prev_head, out.chain)) {
      return PermissionDenied("segment chain discontinuity at " + seg_path);
    }
    const size_t before = out.count;
    SEAL_RETURN_IF_ERROR(scan(*data, kSegmentHeaderSize));
    if (header->closed != 0 && out.count > before) {
      if (out.entries[before].time != header->first_ticket ||
          out.entries.back().time != header->last_ticket) {
        return PermissionDenied("segment ticket range mismatch in " + seg_path);
      }
    }
  }
  return out;
}

}  // namespace

// Staging scan result: everything Recover() needs, computed without
// touching member state so a failed snapshot plan can fall back cleanly.
struct AuditLog::ReplayResult {
  std::vector<LogEntry> entries;  // snapshot entries + replayed tail
  size_t snapshot_entries = 0;
  Bytes chain;                    // head after all entries
  std::vector<Bytes> tail_heads;  // head after each replayed (post-snapshot) entry
  uint64_t tail_bytes = 0;        // frame bytes replayed from disk
  // Torn-tail repair: truncate (or, below the header size, remove)
  // `truncate_path` to `truncate_to` bytes.
  bool truncate_pending = false;
  std::string truncate_path;
  uint64_t truncate_to = 0;
  size_t torn_records = 0;
  // Active-segment state to resume appending.
  bool any_segment = false;
  uint32_t last_segment = 0;
  uint64_t last_segment_bytes = 0;  // after torn-tail truncation
  bool last_header_valid = false;
  SegmentHeader last_header;
  uint64_t rewrite_epoch = 0;
};

AuditLog::AuditLog(AuditLogOptions options, crypto::EcdsaPrivateKey signing_key)
    : options_(std::move(options)),
      signing_key_(std::move(signing_key)),
      counter_(std::make_unique<rote::RoteCounter>(options_.counter_options)),
      chain_head_(crypto::kSha256DigestSize, 0),
      active_prev_head_(crypto::kSha256DigestSize, 0),
      last_flushed_head_(crypto::kSha256DigestSize, 0) {
  if (!options_.encryption_key.empty()) {
    cipher_ = std::make_unique<crypto::Aes128Gcm>(options_.encryption_key);
    nonce_seq_ = std::make_unique<crypto::GcmNonceSequence>();
  }
  if (options_.mode == PersistenceMode::kDisk && !options_.path.empty() && !options_.recover) {
    // Not recovering: any lifecycle files at this path are stale state from
    // a previous run.
    RemoveLogFiles(options_.path);
    if (options_.segment_bytes == 0) {
      (void)DurableWriteFile(options_.path, {}, /*append=*/false, /*sync=*/false);
    }
  }
}

AuditLog::~AuditLog() { (void)FlushPersisted(); }

Status AuditLog::ExecuteSchema(const std::vector<std::string>& statements) {
  for (const std::string& sql : statements) {
    auto r = db_.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
  }
  return Status::Ok();
}

Bytes AuditLog::ExtendChain(const Bytes& head, const LogEntry& entry) const {
  crypto::Sha256 h;
  h.Update(head);
  h.Update(entry.Serialize());
  crypto::Sha256Digest d = h.Finish();
  return Bytes(d.begin(), d.end());
}

Status AuditLog::Append(const std::string& table, db::Row values, int64_t wall_nanos) {
  if (values.empty() || !values[0].is_int()) {
    return InvalidArgument("first column of every audit tuple must be the integer time");
  }
  if (options_.mode == PersistenceMode::kDisk && options_.recover && !recovered_) {
    return FailedPrecondition("Recover() must run before the first append");
  }
  LogEntry entry;
  entry.time = values[0].AsInt();
  entry.wall_nanos = wall_nanos != 0 ? wall_nanos : NowNanos();
  entry.table = table;
  entry.values = values;
  SEAL_RETURN_IF_ERROR(db_.InsertRow(table, std::move(values)));
  chain_head_ = ExtendChain(chain_head_, entry);
  ++entries_logged_;
  max_ticket_ = std::max(max_ticket_, entry.time);
  if (options_.mode == PersistenceMode::kDisk) {
    SEAL_RETURN_IF_ERROR(PersistEntry(entry));
  }
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Bytes AuditLog::EncodeRecord(BytesView plain) {
  if (cipher_ == nullptr) {
    return Bytes(plain.begin(), plain.end());
  }
  Bytes out(crypto::kGcmNonceSize + plain.size() + crypto::kGcmTagSize);
  nonce_seq_->Next(out.data());
  cipher_->SealInto(BytesView(out.data(), crypto::kGcmNonceSize), {}, plain,
                    out.data() + crypto::kGcmNonceSize);
  return out;
}

void AuditLog::AppendFramedRecord(Bytes& out, const LogEntry& entry) {
  Bytes record = EncodeRecord(entry.Serialize());
  AppendBe32(out, static_cast<uint32_t>(record.size()));
  seal::Append(out, record);
}

void AuditLog::StageEntry(const LogEntry& entry) {
  const size_t before = pending_persist_.size();
  AppendFramedRecord(pending_persist_, entry);
  // Append() extends chain_head_ before staging, so it is the head after
  // this entry — the value the segment roller records per frame.
  pending_frames_.push_back({entry.time, pending_persist_.size() - before, chain_head_});
}

Status AuditLog::PersistEntry(const LogEntry& entry) {
  // Stage only: the write (one syscall for a whole batch) happens at
  // FlushPersisted/CommitHead, so a burst of appends costs one flush.
  const size_t before = pending_persist_.size();
  StageEntry(entry);
  persisted_bytes_ += pending_persist_.size() - before;
  return Status::Ok();
}

SealContext AuditLog::MakeSealContext() const {
  SealContext ctx;
  ctx.encryption_key = &options_.encryption_key;
  ctx.enclave = options_.sealing_enclave;
  ctx.policy = options_.seal_policy;
  return ctx;
}

Status AuditLog::OpenSegment(const Bytes& prev_head, int64_t first_ticket) {
  SegmentHeader header;
  header.index = active_segment_;
  header.rewrite_epoch = rewrite_epoch_;
  header.prev_head = prev_head;
  header.first_ticket = first_ticket;
  header.counter_value = last_counter_value_;
  SEAL_RETURN_IF_ERROR(DurableWriteFile(SegmentFilePath(options_.path, active_segment_),
                                        header.Encode(), /*append=*/false, options_.fsync));
  active_segment_open_ = true;
  active_segment_file_bytes_ = kSegmentHeaderSize;
  active_prev_head_ = prev_head;
  active_first_ticket_ = first_ticket;
  active_last_ticket_ = first_ticket;
  segment_count_ = std::max(segment_count_, active_segment_ + 1);
  SEAL_OBS_COUNTER("log_segments_total").Increment();
  return Status::Ok();
}

Status AuditLog::CloseActiveSegment() {
  SegmentHeader header;
  header.index = active_segment_;
  header.closed = 1;
  header.rewrite_epoch = rewrite_epoch_;
  header.prev_head = active_prev_head_;
  header.first_ticket = active_first_ticket_;
  header.last_ticket = active_last_ticket_;
  header.counter_value = last_counter_value_;
  SEAL_RETURN_IF_ERROR(UpdateSegmentHeader(SegmentFilePath(options_.path, active_segment_),
                                           header, options_.fsync));
  active_segment_open_ = false;
  SEAL_OBS_COUNTER("log_segment_rolls_total").Increment();
  return Status::Ok();
}

Status AuditLog::FlushSegmented(BytesView batch, const std::vector<StagedFrame>& frames) {
  // Frames are written in contiguous runs: one file append per segment
  // touched, rolling to a new segment when the active one would exceed the
  // byte budget (a segment always takes at least one record, so an
  // oversized frame gets a segment of its own).
  size_t off = 0;        // batch offset of the current frame
  size_t run_start = 0;  // batch offset of the first unwritten byte
  auto write_run = [&](size_t end) -> Status {
    if (end == run_start) {
      return Status::Ok();
    }
    SEAL_RETURN_IF_ERROR(DurableWriteFile(SegmentFilePath(options_.path, active_segment_),
                                          batch.subspan(run_start, end - run_start),
                                          /*append=*/true, options_.fsync));
    active_segment_file_bytes_ += end - run_start;
    run_start = end;
    return Status::Ok();
  };
  for (const StagedFrame& frame : frames) {
    if (!active_segment_open_) {
      SEAL_RETURN_IF_ERROR(OpenSegment(last_flushed_head_, frame.ticket));
    } else {
      const uint64_t projected = active_segment_file_bytes_ + (off - run_start);
      if (projected > kSegmentHeaderSize && projected + frame.size > options_.segment_bytes) {
        SEAL_RETURN_IF_ERROR(write_run(off));
        SEAL_RETURN_IF_ERROR(CloseActiveSegment());
        ++active_segment_;
        SEAL_RETURN_IF_ERROR(OpenSegment(last_flushed_head_, frame.ticket));
      }
    }
    off += frame.size;
    active_last_ticket_ = frame.ticket;
    last_flushed_head_ = frame.head_after;
  }
  return write_run(off);
}

Status AuditLog::FlushPersisted() {
  if (options_.mode != PersistenceMode::kDisk || pending_persist_.empty()) {
    return Status::Ok();
  }
  Bytes batch = std::move(pending_persist_);
  pending_persist_.clear();
  std::vector<StagedFrame> frames = std::move(pending_frames_);
  pending_frames_.clear();
  bytes_since_snapshot_ += batch.size();
  if (options_.segment_bytes > 0) {
    return FlushSegmented(batch, frames);
  }
  SEAL_RETURN_IF_ERROR(DurableWriteFile(options_.path, batch, /*append=*/true, options_.fsync));
  if (!frames.empty()) {
    last_flushed_head_ = frames.back().head_after;
  }
  return Status::Ok();
}

Status AuditLog::CommitHead() {
  SEAL_RETURN_IF_ERROR(FlushPersisted());
  if (options_.mode != PersistenceMode::kDisk) {
    // Nothing persisted means nothing to roll back: the counter round is
    // only needed when the log leaves the enclave.
    return Status::Ok();
  }
  // One monotonic-counter round per commit binds this head to "now".
  auto counter_value = counter_->Increment();
  if (!counter_value.ok()) {
    return counter_value.status();
  }
  last_counter_value_ = *counter_value;
  Bytes head;
  seal::Append(head, chain_head_);
  AppendBe64(head, *counter_value);
  AppendBe64(head, entries_logged_);
  crypto::EcdsaSignature sig = signing_key_.Sign(head);
  seal::Append(head, sig.Encode());
  // Atomic replace: a crash mid-commit leaves the previous complete head,
  // never a torn one (the old code rewrote the file in place).
  SEAL_RETURN_IF_ERROR(AtomicWriteFile(HeadFilePath(options_.path), head, options_.fsync));
  return MaybeSnapshot();
}

Status AuditLog::MaybeSnapshot() {
  if (options_.snapshot_interval_bytes == 0 ||
      bytes_since_snapshot_ < options_.snapshot_interval_bytes) {
    return Status::Ok();
  }
  return WriteSnapshot();
}

Status AuditLog::WriteSnapshot() {
  if (options_.mode != PersistenceMode::kDisk || options_.path.empty()) {
    return Status::Ok();
  }
  SEAL_RETURN_IF_ERROR(FlushPersisted());
  SnapshotState snapshot;
  snapshot.rewrite_epoch = rewrite_epoch_;
  snapshot.chain_head = chain_head_;
  snapshot.persisted_bytes = persisted_bytes_;
  if (options_.segment_bytes > 0) {
    snapshot.resume_segment = active_segment_;
    // Offset 0 = the segment does not exist yet; replay starts at its
    // header if it appears.
    snapshot.resume_offset = active_segment_open_ ? active_segment_file_bytes_ : 0;
  } else {
    auto size = FileSizeBytes(options_.path);
    snapshot.resume_offset = size.ok() ? *size : 0;
  }
  snapshot.counter_value = last_counter_value_;
  snapshot.max_ticket = max_ticket_;
  snapshot.entries = entries_;
  const int64_t t0 = NowNanos();
  SEAL_RETURN_IF_ERROR(WriteSnapshotFile(SnapshotFilePath(options_.path), snapshot,
                                         MakeSealContext(), options_.fsync));
  SEAL_OBS_HISTOGRAM("snapshot_seal_nanos").Observe(static_cast<uint64_t>(NowNanos() - t0));
  SEAL_OBS_COUNTER("log_snapshots_total").Increment();
  bytes_since_snapshot_ = 0;
  return Status::Ok();
}

Result<db::QueryResult> AuditLog::Query(const std::string& sql) { return db_.Execute(sql); }

Result<db::QueryResult> AuditLog::QueryWithTimeFloor(const std::string& sql, int64_t floor) {
  return db_.ExecuteWithTimeFloor(sql, floor);
}

Status AuditLog::Trim(const std::vector<std::string>& trimming_queries,
                      size_t* deleted_out, size_t* archived_out) {
  if (deleted_out != nullptr) {
    *deleted_out = 0;
  }
  if (archived_out != nullptr) {
    *archived_out = 0;
  }
  if (trimming_queries.empty()) {
    return Status::Ok();
  }
  size_t deleted = 0;
  for (const std::string& sql : trimming_queries) {
    auto r = db_.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
    deleted += r->affected;
  }
  if (deleted_out != nullptr) {
    *deleted_out = deleted;
  }
  if (deleted == 0) {
    // Nothing left the log: the chain, the persisted file and the counter
    // binding are all still valid, so the O(n) rebuild would be pure waste.
    return Status::Ok();
  }
  // Rebuild the entries and the hash chain from the surviving rows (§5.1:
  // "LibSEAL recomputes the hashes of the remaining log entries"). Each
  // surviving row is matched back to its original entry by full row
  // identity, FIFO among duplicates, so every survivor keeps its own wall
  // clock — keying by (table, time) collapsed same-time rows onto one.
  std::map<std::pair<std::string, std::string>, std::deque<size_t>> originals;
  for (size_t i = 0; i < entries_.size(); ++i) {
    originals[{entries_[i].table, RowIdentity(entries_[i].values)}].push_back(i);
  }
  std::vector<char> kept(entries_.size(), 0);
  struct Survivor {
    size_t original;
    LogEntry entry;
  };
  std::vector<Survivor> survivors;
  for (const std::string& table : db_.TableNames()) {
    const db::RowStore* rows = db_.TableRows(table);
    for (size_t r = 0; r < rows->size(); ++r) {
      const db::Row& row = (*rows)[r];
      LogEntry entry;
      entry.time = row.empty() ? 0 : row[0].AsInt();
      entry.table = table;
      entry.values = row;
      size_t original = entries_.size();
      auto it = originals.find({table, RowIdentity(row)});
      if (it != originals.end() && !it->second.empty()) {
        original = it->second.front();
        it->second.pop_front();
        kept[original] = 1;
        entry.wall_nanos = entries_[original].wall_nanos;
      }
      survivors.push_back({original, std::move(entry)});
    }
  }
  // Original append order; rows a trimming query inserted (no original)
  // sort last by time.
  std::stable_sort(survivors.begin(), survivors.end(),
                   [](const Survivor& a, const Survivor& b) {
                     if (a.original != b.original) {
                       return a.original < b.original;
                     }
                     return a.entry.time < b.entry.time;
                   });
  std::vector<LogEntry> removed;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!kept[i]) {
      removed.push_back(std::move(entries_[i]));
    }
  }
  if (options_.archive_trimmed && options_.mode == PersistenceMode::kDisk &&
      !options_.path.empty() && !removed.empty()) {
    SEAL_RETURN_IF_ERROR(WriteArchiveFile(ArchiveFilePath(options_.path, next_archive_index_),
                                          next_archive_index_, removed, MakeSealContext(),
                                          options_.fsync));
    ++next_archive_index_;
    SEAL_OBS_COUNTER("log_archives_total").Increment();
    SEAL_OBS_COUNTER("log_archived_entries_total").Add(removed.size());
    if (archived_out != nullptr) {
      *archived_out = removed.size();
    }
  }
  entries_.clear();
  entries_.reserve(survivors.size());
  for (Survivor& s : survivors) {
    entries_.push_back(std::move(s.entry));
  }
  chain_head_.assign(crypto::kSha256DigestSize, 0);
  for (const LogEntry& entry : entries_) {
    chain_head_ = ExtendChain(chain_head_, entry);
  }
  entries_logged_ = entries_.size();
  if (options_.mode == PersistenceMode::kDisk) {
    ++rewrite_epoch_;
    SEAL_RETURN_IF_ERROR(RewritePersistedLog());
    SEAL_RETURN_IF_ERROR(CommitHead());
    if (options_.snapshot_interval_bytes > 0 && bytes_since_snapshot_ > 0) {
      // Fresh snapshot so no resume pointer into the pre-trim segments
      // survives the rewrite.
      SEAL_RETURN_IF_ERROR(WriteSnapshot());
    }
  }
  return Status::Ok();
}

Status AuditLog::RewritePersistedLog() {
  // The rewrite replaces the whole persisted log, so anything staged but
  // unflushed is superseded.
  pending_persist_.clear();
  pending_frames_.clear();
  if (options_.segment_bytes == 0) {
    Bytes all;
    for (const LogEntry& entry : entries_) {
      AppendFramedRecord(all, entry);
    }
    persisted_bytes_ = all.size();
    last_flushed_head_ = chain_head_;
    return DurableWriteFile(options_.path, all, /*append=*/false, options_.fsync);
  }
  for (uint32_t index : ListSegmentFiles(options_.path)) {
    RemoveFileIfExists(SegmentFilePath(options_.path, index));
  }
  // The old snapshot's resume pointers reference deleted segments.
  RemoveFileIfExists(SnapshotFilePath(options_.path));
  active_segment_ = 0;
  active_segment_open_ = false;
  active_segment_file_bytes_ = 0;
  segment_count_ = 0;
  last_flushed_head_.assign(crypto::kSha256DigestSize, 0);
  Bytes head(crypto::kSha256DigestSize, 0);
  for (const LogEntry& entry : entries_) {
    const size_t before = pending_persist_.size();
    AppendFramedRecord(pending_persist_, entry);
    head = ExtendChain(head, entry);
    pending_frames_.push_back({entry.time, pending_persist_.size() - before, head});
  }
  persisted_bytes_ = pending_persist_.size();
  return FlushPersisted();
}

Result<AuditLog::ReplayResult> AuditLog::ScanPersisted(const SnapshotState* snapshot) const {
  ReplayResult rr;
  rr.chain.assign(crypto::kSha256DigestSize, 0);
  if (snapshot != nullptr) {
    // The snapshot's content must reproduce its claimed chain head: seals
    // make snapshots tamper-evident, but a plaintext snapshot (sign-only
    // log) is not, and the claimed head is what the committed-head check
    // later trusts.
    for (const LogEntry& entry : snapshot->entries) {
      rr.chain = ExtendChain(rr.chain, entry);
    }
    if (!ConstantTimeEqual(rr.chain, snapshot->chain_head)) {
      return DataLoss("snapshot content does not match its chain head");
    }
    rr.entries = snapshot->entries;
    rr.snapshot_entries = snapshot->entries.size();
    rr.rewrite_epoch = snapshot->rewrite_epoch;
  }
  const crypto::Aes128Gcm* cipher = cipher_.get();

  // Scans framed records from `off`. Unparseable bytes at the physical end
  // of the LAST file are a torn write (marked for truncation); anywhere
  // else they are corruption.
  auto scan_records = [&](const std::string& fpath, BytesView data, size_t off,
                          bool last_file) -> Status {
    while (off < data.size()) {
      auto torn = [&]() {
        rr.truncate_pending = true;
        rr.truncate_path = fpath;
        rr.truncate_to = off;
        rr.torn_records += 1;
      };
      if (data.size() - off < 4) {
        if (!last_file) {
          return DataLoss("log truncated mid-frame: " + fpath);
        }
        torn();
        return Status::Ok();
      }
      const uint32_t len = LoadBe32(data.data() + off);
      if (len > data.size() - off - 4) {
        if (!last_file) {
          return DataLoss("log truncated mid-record: " + fpath);
        }
        torn();
        return Status::Ok();
      }
      auto plain = MaybeDecrypt(cipher, data.subspan(off + 4, len));
      Status bad = Status::Ok();
      LogEntry entry;
      if (!plain.ok()) {
        bad = plain.status();
      } else {
        size_t entry_off = 0;
        auto parsed = LogEntry::Deserialize(*plain, entry_off);
        if (!parsed.ok()) {
          bad = parsed.status();
        } else if (entry_off != plain->size()) {
          bad = DataLoss("trailing bytes in log record: " + fpath);
        } else {
          entry = std::move(*parsed);
        }
      }
      if (!bad.ok()) {
        if (last_file && off + 4 + len == data.size()) {
          torn();
          return Status::Ok();
        }
        return bad;
      }
      crypto::Sha256 h;
      h.Update(rr.chain);
      h.Update(*plain);
      crypto::Sha256Digest d = h.Finish();
      rr.chain.assign(d.begin(), d.end());
      rr.tail_heads.push_back(rr.chain);
      rr.entries.push_back(std::move(entry));
      rr.tail_bytes += 4 + len;
      off += 4 + len;
    }
    return Status::Ok();
  };

  if (options_.segment_bytes == 0) {
    if (!FileExists(options_.path)) {
      if (snapshot != nullptr && snapshot->resume_offset > 0) {
        return DataLoss("snapshot resumes past a missing log file");
      }
      return rr;
    }
    auto data = ReadFileBytes(options_.path);
    if (!data.ok()) {
      return data.status();
    }
    const uint64_t start = snapshot != nullptr ? snapshot->resume_offset : 0;
    if (start > data->size()) {
      return DataLoss("snapshot resume offset beyond the log file");
    }
    SEAL_RETURN_IF_ERROR(
        scan_records(options_.path, *data, static_cast<size_t>(start), /*last_file=*/true));
    return rr;
  }

  const std::vector<uint32_t> segments = ListSegmentFiles(options_.path);
  if (segments.empty()) {
    if (snapshot != nullptr &&
        (snapshot->resume_segment > 0 || snapshot->resume_offset > 0)) {
      return DataLoss("snapshot resumes into missing segments");
    }
    return rr;
  }
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i] != i) {
      return DataLoss("missing log segment " + std::to_string(i));
    }
  }
  uint32_t start_segment = 0;
  if (snapshot != nullptr) {
    if (snapshot->resume_segment >= segments.size()) {
      return DataLoss("snapshot resumes past the last segment");
    }
    start_segment = snapshot->resume_segment;
  }
  bool epoch_set = snapshot != nullptr;
  for (uint32_t seg = start_segment; seg < segments.size(); ++seg) {
    const std::string seg_path = SegmentFilePath(options_.path, seg);
    const bool last_file = seg + 1 == segments.size();
    auto data = ReadFileBytes(seg_path);
    if (!data.ok()) {
      return data.status();
    }
    auto header = SegmentHeader::Decode(*data);
    if (!header.ok()) {
      if (!last_file) {
        return header.status();
      }
      // Crash between creating the file and syncing its header: the
      // segment holds no durable records; drop the whole file.
      rr.truncate_pending = true;
      rr.truncate_path = seg_path;
      rr.truncate_to = 0;
      rr.torn_records += 1;
      rr.any_segment = true;
      rr.last_segment = seg;
      rr.last_segment_bytes = 0;
      rr.last_header_valid = false;
      return rr;
    }
    if (header->index != seg) {
      return DataLoss("segment index mismatch in " + seg_path);
    }
    if (!epoch_set) {
      rr.rewrite_epoch = header->rewrite_epoch;
      epoch_set = true;
    } else if (header->rewrite_epoch != rr.rewrite_epoch) {
      return DataLoss("segment rewrite epoch mismatch in " + seg_path);
    }
    size_t off = kSegmentHeaderSize;
    bool check_prev = true;
    if (snapshot != nullptr && seg == start_segment &&
        snapshot->resume_offset > kSegmentHeaderSize) {
      if (snapshot->resume_offset > data->size()) {
        return DataLoss("snapshot resume offset beyond segment " + seg_path);
      }
      off = static_cast<size_t>(snapshot->resume_offset);
      // Pre-snapshot records are skipped, so the chain at this segment's
      // start is unknown here; the committed-head check still covers it.
      check_prev = false;
    }
    if (check_prev && !ConstantTimeEqual(header->prev_head, rr.chain)) {
      return DataLoss("segment chain discontinuity at " + seg_path);
    }
    SEAL_RETURN_IF_ERROR(scan_records(seg_path, *data, off, last_file));
    rr.any_segment = true;
    rr.last_segment = seg;
    rr.last_segment_bytes =
        rr.truncate_pending && rr.truncate_path == seg_path ? rr.truncate_to : data->size();
    rr.last_header = *header;
    rr.last_header_valid = true;
  }
  return rr;
}

Status AuditLog::Recover(RecoveryInfo* info) {
  RecoveryInfo scratch;
  RecoveryInfo& out = info != nullptr ? *info : scratch;
  out = RecoveryInfo{};
  if (options_.mode != PersistenceMode::kDisk || options_.path.empty()) {
    recovered_ = true;
    return Status::Ok();
  }
  if (recovered_) {
    return FailedPrecondition("Recover() already ran");
  }
  if (entries_logged_ != 0) {
    return FailedPrecondition("Recover() must precede the first append");
  }
  const int64_t t0 = NowNanos();

  // 1. The committed head. It may be missing or torn — the chain then
  //    self-verifies through the segment headers and whatever follows the
  //    last durable commit is kept (it was authenticated by us).
  Bytes stored_head;
  uint64_t stored_count = 0;
  bool head_valid = false;
  const bool head_exists = FileExists(HeadFilePath(options_.path));
  if (head_exists) {
    auto data = ReadFileBytes(HeadFilePath(options_.path));
    if (data.ok() && data->size() == crypto::kSha256DigestSize + 16 + 64) {
      auto sig = crypto::EcdsaSignature::Decode(
          BytesView(*data).subspan(crypto::kSha256DigestSize + 16, 64));
      Bytes signed_blob(data->begin(),
                        data->begin() + static_cast<ptrdiff_t>(crypto::kSha256DigestSize + 16));
      if (sig.has_value() && signing_key_.public_key().Verify(signed_blob, *sig)) {
        stored_head.assign(data->begin(),
                           data->begin() + static_cast<ptrdiff_t>(crypto::kSha256DigestSize));
        stored_count = LoadBe64(data->data() + crypto::kSha256DigestSize + 8);
        head_valid = true;
      }
    }
  }
  out.head_missing = !head_valid;

  // 2. The newest snapshot, if present and its seal opens under our
  //    identity. Any failure just falls back to a full replay.
  std::optional<SnapshotState> snapshot;
  if (FileExists(SnapshotFilePath(options_.path))) {
    auto snap = ReadSnapshotFile(SnapshotFilePath(options_.path), MakeSealContext());
    if (snap.ok()) {
      snapshot = std::move(*snap);
    }
  }

  out.had_state = head_exists || snapshot.has_value() || FileExists(options_.path) ||
                  !ListSegmentFiles(options_.path).empty();

  // 3. Replay, snapshot plan first. The committed head must appear in the
  //    recovered chain exactly at its entry count; a stale or forged
  //    snapshot fails this and triggers the full replay.
  auto attempt = [&](const SnapshotState* snap) -> Result<ReplayResult> {
    auto rr = ScanPersisted(snap);
    if (!rr.ok()) {
      return rr;
    }
    if (head_valid) {
      if (stored_count < rr->snapshot_entries) {
        return DataLoss("snapshot is newer than the committed head");
      }
      if (stored_count > rr->entries.size()) {
        return DataLoss("committed head covers more entries than the log holds");
      }
      Bytes at(crypto::kSha256DigestSize, 0);
      if (stored_count == rr->snapshot_entries) {
        if (snap != nullptr) {
          at = snap->chain_head;
        }
      } else {
        at = rr->tail_heads[stored_count - rr->snapshot_entries - 1];
      }
      if (!ConstantTimeEqual(at, stored_head)) {
        return PermissionDenied("recovered chain does not match the committed head");
      }
    }
    return rr;
  };
  Result<ReplayResult> rr = attempt(snapshot ? &*snapshot : nullptr);
  if (!rr.ok() && snapshot.has_value()) {
    snapshot.reset();
    rr = attempt(nullptr);
  }
  if (!rr.ok()) {
    return rr.status();
  }

  // 4. Drop the torn tail from disk so the next append lands cleanly.
  if (rr->truncate_pending) {
    if (options_.segment_bytes > 0 && rr->truncate_to < kSegmentHeaderSize) {
      RemoveFileIfExists(rr->truncate_path);
    } else {
      SEAL_RETURN_IF_ERROR(TruncateFile(rr->truncate_path, rr->truncate_to));
    }
  }

  // 5. Rebuild the database and in-memory state.
  for (const LogEntry& entry : rr->entries) {
    SEAL_RETURN_IF_ERROR(db_.InsertRow(entry.table, entry.values));
  }
  entries_ = std::move(rr->entries);
  entries_logged_ = entries_.size();
  chain_head_ = rr->chain;
  last_flushed_head_ = chain_head_;
  persisted_bytes_ = (snapshot ? snapshot->persisted_bytes : 0) + rr->tail_bytes;
  max_ticket_ = 0;
  for (const LogEntry& entry : entries_) {
    max_ticket_ = std::max(max_ticket_, entry.time);
  }
  const std::vector<uint32_t> archives = ListArchiveFiles(options_.path);
  next_archive_index_ = archives.empty() ? 0 : archives.back() + 1;
  if (options_.segment_bytes > 0) {
    rewrite_epoch_ = rr->rewrite_epoch;
    active_prev_head_ = chain_head_;
    if (rr->any_segment) {
      if (!rr->last_header_valid) {
        // Torn header: the file was removed; recreate the same index on
        // the next flush.
        active_segment_ = rr->last_segment;
        segment_count_ = rr->last_segment;
        active_segment_open_ = false;
      } else if (rr->last_header.closed != 0) {
        // Crash after a roll closed this segment but before the next one
        // was opened.
        active_segment_ = rr->last_segment + 1;
        segment_count_ = rr->last_segment + 1;
        active_segment_open_ = false;
      } else {
        active_segment_ = rr->last_segment;
        segment_count_ = rr->last_segment + 1;
        active_segment_open_ = true;
        active_segment_file_bytes_ = rr->last_segment_bytes;
        active_prev_head_ = rr->last_header.prev_head;
        active_first_ticket_ = rr->last_header.first_ticket;
        active_last_ticket_ =
            entries_.empty() ? rr->last_header.first_ticket : entries_.back().time;
      }
    }
  }
  bytes_since_snapshot_ = 0;
  recovered_ = true;

  out.snapshot_loaded = snapshot.has_value();
  out.snapshot_entries = rr->snapshot_entries;
  out.replayed_entries = entries_.size() - rr->snapshot_entries;
  out.discarded_records = rr->torn_records;
  out.max_ticket = max_ticket_;

  // 6. Re-commit: the restarted ROTE cluster starts a fresh counter epoch,
  //    so the recovered head must be rebound to a value this cluster will
  //    report (and a missing/torn head replaced).
  if (out.had_state) {
    SEAL_RETURN_IF_ERROR(CommitHead());
  }

  out.recovery_nanos = NowNanos() - t0;
  SEAL_OBS_COUNTER("log_recovery_replayed_entries").Add(out.replayed_entries);
  SEAL_OBS_COUNTER("log_recovery_discarded_records_total").Add(out.discarded_records);
  SEAL_OBS_HISTOGRAM("log_recovery_nanos").Observe(static_cast<uint64_t>(out.recovery_nanos));
  return Status::Ok();
}

Result<std::vector<LogEntry>> AuditLog::ReadVerifiedEntries(const std::string& path,
                                                            const Bytes& encryption_key) {
  std::optional<crypto::Aes128Gcm> cipher;
  if (!encryption_key.empty()) {
    cipher.emplace(encryption_key);
  }
  auto scan = ScanWholeLog(path, cipher ? &*cipher : nullptr);
  if (!scan.ok()) {
    return scan.status();
  }
  return std::move(scan->entries);
}

Result<size_t> AuditLog::VerifyLogFile(const std::string& path,
                                       const crypto::EcdsaPublicKey& log_public_key,
                                       const rote::RoteCounter& counter,
                                       const Bytes& encryption_key,
                                       VerifiedHeadInfo* head_out) {
  std::optional<crypto::Aes128Gcm> cipher;
  if (!encryption_key.empty()) {
    cipher.emplace(encryption_key);
  }
  auto scan = ScanWholeLog(path, cipher ? &*cipher : nullptr);
  if (!scan.ok()) {
    return scan.status();
  }

  auto sig_data = ReadFileBytes(HeadFilePath(path));
  if (!sig_data.ok()) {
    return sig_data.status();
  }
  if (sig_data->size() != crypto::kSha256DigestSize + 16 + 64) {
    return DataLoss("malformed log head file");
  }
  BytesView stored_head = BytesView(*sig_data).subspan(0, crypto::kSha256DigestSize);
  uint64_t stored_counter = LoadBe64(sig_data->data() + crypto::kSha256DigestSize);
  uint64_t stored_count = LoadBe64(sig_data->data() + crypto::kSha256DigestSize + 8);
  auto sig = crypto::EcdsaSignature::Decode(
      BytesView(*sig_data).subspan(crypto::kSha256DigestSize + 16, 64));
  if (!sig.has_value()) {
    return DataLoss("malformed head signature");
  }
  Bytes signed_blob(sig_data->begin(),
                    sig_data->begin() + static_cast<ptrdiff_t>(crypto::kSha256DigestSize + 16));
  if (!log_public_key.Verify(signed_blob, *sig)) {
    return PermissionDenied("log head signature invalid: tampered or forged log");
  }
  if (!ConstantTimeEqual(stored_head, scan->chain)) {
    return PermissionDenied("hash chain mismatch: log entries modified");
  }
  if (stored_count != scan->count) {
    return PermissionDenied("entry count mismatch");
  }
  auto current = counter.Read();
  if (!current.ok()) {
    return current.status();
  }
  if (stored_counter != *current) {
    return PermissionDenied("rollback detected: counter " + std::to_string(stored_counter) +
                            " but cluster reports " + std::to_string(*current));
  }
  if (head_out != nullptr) {
    head_out->counter_value = stored_counter;
    head_out->entry_count = stored_count;
    head_out->chain_head = Bytes(stored_head.begin(), stored_head.end());
  }
  return scan->count;
}

Result<std::vector<LogEntry>> AuditLog::ReadArchivedEntries(const std::string& path,
                                                            const Bytes& encryption_key,
                                                            const sgx::Enclave* sealing_enclave,
                                                            sgx::SealPolicy seal_policy) {
  SealContext ctx;
  ctx.encryption_key = &encryption_key;
  ctx.enclave = sealing_enclave;
  ctx.policy = seal_policy;
  std::vector<LogEntry> all;
  const std::vector<uint32_t> archives = ListArchiveFiles(path);
  for (size_t i = 0; i < archives.size(); ++i) {
    if (archives[i] != i) {
      return DataLoss("missing trim archive " + std::to_string(i));
    }
    auto entries = ReadArchiveFile(ArchiveFilePath(path, static_cast<uint32_t>(i)), ctx);
    if (!entries.ok()) {
      return entries.status();
    }
    all.insert(all.end(), std::make_move_iterator(entries->begin()),
               std::make_move_iterator(entries->end()));
  }
  return all;
}

Result<std::vector<LogEntry>> AuditLog::ReadFullHistory(const std::string& path,
                                                        const Bytes& encryption_key,
                                                        const sgx::Enclave* sealing_enclave,
                                                        sgx::SealPolicy seal_policy) {
  auto archived = ReadArchivedEntries(path, encryption_key, sealing_enclave, seal_policy);
  if (!archived.ok()) {
    return archived.status();
  }
  auto live = ReadVerifiedEntries(path, encryption_key);
  if (!live.ok()) {
    return live.status();
  }
  std::vector<LogEntry> all = std::move(*archived);
  all.insert(all.end(), std::make_move_iterator(live->begin()),
             std::make_move_iterator(live->end()));
  std::stable_sort(all.begin(), all.end(),
                   [](const LogEntry& a, const LogEntry& b) { return a.time < b.time; });
  return all;
}

}  // namespace seal::core
