// LibSEAL: the secure audit library (paper §3, §4).
//
// A LibSealRuntime stands in for the LibSEAL shared library a service links
// against instead of OpenSSL/LibreSSL. It:
//
//   * runs the TLS protocol engine, the audit log, the SQL engine and the
//     invariant checker inside a (simulated) SGX enclave;
//   * exposes the familiar outside API (SslNew/SslAccept/SslRead/SslWrite,
//     info callbacks, ex_data) with OpenSSL-compatible semantics; thin
//     SSL_*-style free functions are provided in libseal_compat.h;
//   * keeps a sanitised SHADOW structure outside the enclave for fields
//     applications poke directly (§4.1 "Shadowing"), and stores
//     application ex_data outside to avoid transitions (§4.2);
//   * invokes application callbacks registered from outside through
//     trampoline ocalls (§4.1 "Secure callbacks");
//   * crosses the enclave boundary either with plain synchronous
//     ecalls/ocalls or through the asynchronous call runtime (§4.3).
//
// When an SSM is attached, every decrypted request and plaintext response
// is observed inside the enclave, complete HTTP message pairs are fed to
// the audit logger, and Libseal-Check requests receive in-band results via
// the Libseal-Check-Result response header (§5.2).
#ifndef SRC_CORE_LIBSEAL_H_
#define SRC_CORE_LIBSEAL_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "src/asyncall/asyncall.h"
#include "src/core/logger.h"
#include "src/core/service_module.h"
#include "src/net/net.h"
#include "src/sgx/attestation.h"
#include "src/sgx/enclave.h"
#include "src/tls/tls.h"

namespace seal::core {

class LibSealRuntime;
struct LibSealSsl;

// Outside info callback (the SSL_CTX_set_info_callback analogue). Receives
// the OUTSIDE shadow structure, never trusted memory.
using SslInfoCallback = void (*)(const LibSealSsl* ssl, int event, int bytes);

// The outside, untrusted connection handle: LibSEAL's shadow of the SSL
// structure. Applications may read the sanitised fields directly (as
// Apache and Squid do, §4.1); the security-sensitive state lives inside
// the enclave under `conn_id`.
struct LibSealSsl {
  LibSealRuntime* runtime = nullptr;
  net::Stream* stream = nullptr;  // the BIO, outside the enclave (Fig. 2)
  uint64_t conn_id = 0;

  // Sanitised shadow fields, synchronised at ecall boundaries.
  int handshake_done = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  // The TLS session id after a successful handshake (empty until then).
  // Safe to expose: the id is already plaintext on the wire in both the
  // full and abbreviated handshakes. Shard routers key connection affinity
  // on it (see services::ShardedTransport).
  uint8_t session_id[32] = {0};
  size_t session_id_len = 0;

  // Application-specific data kept OUTSIDE the enclave (§4.2 optimisation
  // 3: Apache stores the current request here; keeping it outside avoids
  // an ecall per access).
  static constexpr int kMaxExData = 8;
  void* ex_data[kMaxExData] = {nullptr};
};

// Emulation switches for the §4.2 transition-reduction techniques. With a
// flag ON the optimisation is active (LibSEAL default); with it OFF the
// runtime issues the ocalls/ecalls a naive port would, so benchmarks can
// measure what each technique saves.
struct TransitionReductionOptions {
  bool outside_memory_pool = true;   // (1) avoids malloc/free ocalls
  bool in_enclave_locks_rng = true;  // (2) avoids pthread/random ocalls
  bool ex_data_outside = true;       // (3) avoids ecalls for app data
};

struct LibSealOptions {
  sgx::EnclaveConfig enclave;
  bool use_async_calls = true;  // §4.3; false = one hardware transition per call
  asyncall::AsyncCallRuntime::Options async;
  TransitionReductionOptions reductions;

  // Auditing. When no ServiceModule is attached the library is a pure
  // in-enclave TLS stack ("LibSEAL without auditing", §6.6).
  AuditLogOptions audit_log;
  LoggerOptions logger;

  // TLS identity/trust, provisioned into the enclave at Init (§6.3).
  tls::TlsConfig tls;

  // Distinguishes enclave instances of the SAME module within one process
  // (horizontal sharding: ShardSet runs one runtime per shard). The tag is
  // folded into the enclave identity, so each shard derives its own
  // measurement, log signing key and sealing identity — shard logs are
  // independently attributable and one shard's key cannot sign another's
  // entries. Empty (the default) preserves the single-instance identity.
  std::string instance_tag;

  // Approximate in-enclave footprint per connection, charged against the
  // EPC model.
  size_t per_connection_epc_bytes = 24 * 1024;
};

class LibSealRuntime {
 public:
  // `module` may be null (no auditing).
  LibSealRuntime(LibSealOptions options, std::unique_ptr<ServiceModule> module);
  ~LibSealRuntime();

  LibSealRuntime(const LibSealRuntime&) = delete;
  LibSealRuntime& operator=(const LibSealRuntime&) = delete;

  // Creates the enclave, provisions keys, initialises the audit schema and
  // starts the async-call workers.
  Status Init();
  void Shutdown();

  // --- the outside TLS API (OpenSSL semantics) ---

  // Creates a connection bound to `stream`. Returns the outside shadow.
  LibSealSsl* SslNew(net::Stream* stream, tls::Role role);
  // 1 on success, -1 on failure (like SSL_accept/SSL_connect).
  int SslHandshake(LibSealSsl* ssl);
  // >0 bytes, 0 on clean close, -1 on error.
  int SslRead(LibSealSsl* ssl, uint8_t* buf, int len);
  // Bytes consumed (all of them), or -1.
  int SslWrite(LibSealSsl* ssl, const uint8_t* buf, int len);
  void SslShutdown(LibSealSsl* ssl);
  void SslFree(LibSealSsl* ssl);

  // Secure callback registration (§4.1). The callback runs OUTSIDE.
  void SetInfoCallback(SslInfoCallback cb) { info_callback_ = cb; }

  // ex_data (outside per §4.2; flips to ecalls when the reduction is off).
  int SslSetExData(LibSealSsl* ssl, int index, void* data);
  void* SslGetExData(LibSealSsl* ssl, int index);

  // --- attestation & audit access ---

  // Quote binding the enclave to its TLS certificate (§6.3 "Bypassing
  // logging"): report_data = SHA-256 of the certificate.
  Result<sgx::Quote> AttestationQuote(const sgx::QuotingEnclave& qe) const;

  // The enclave's log-verification key (public part of the log signer).
  const crypto::EcdsaPublicKey& log_public_key() const;

  AuditLogger* logger() { return logger_.get(); }
  sgx::Enclave& enclave() { return *enclave_; }
  bool auditing_enabled() const { return logger_ != nullptr; }

 private:
  struct TrustedConn;   // in-enclave per-connection state
  struct EnclaveState;  // all trusted state

  // Dispatches a call across the boundary via the configured mechanism.
  Status DoEcall(int id, void* data);
  static Status DoOcallFromInside(LibSealRuntime* runtime, int id, void* data);

  void RegisterInterface();
  void SimulateUnoptimisedOcalls(int count);

  LibSealOptions options_;
  std::unique_ptr<ServiceModule> pending_module_;  // moved into logger at Init
  std::unique_ptr<sgx::Enclave> enclave_;
  std::unique_ptr<asyncall::AsyncCallRuntime> async_;
  std::unique_ptr<EnclaveState> state_;  // conceptually inside the enclave
  std::unique_ptr<AuditLogger> logger_;  // inside the enclave

  SslInfoCallback info_callback_ = nullptr;
  bool initialised_ = false;

  // ecall/ocall ids.
  int ecall_new_ = -1;
  int ecall_handshake_ = -1;
  int ecall_read_ = -1;
  int ecall_write_ = -1;
  int ecall_shutdown_ = -1;
  int ecall_free_ = -1;
  int ecall_ex_data_ = -1;
  int ocall_bio_read_ = -1;
  int ocall_bio_write_ = -1;
  int ocall_bio_close_ = -1;
  int ocall_info_cb_ = -1;
  int ocall_alloc_ = -1;
};

// Buffered-message cap: an audited connection that never completes an HTTP
// message must not grow without bound, and no valid Content-Length may
// promise a body larger than this.
inline constexpr size_t kAuditBufferCap = 8 * 1024 * 1024;

// Incremental HTTP/1.1 message framer (Content-Length framing) for the
// audited plaintext streams. Bytes are appended as they arrive; complete
// messages come off the front. Parsing works in place over string_views and
// resumes the header-terminator search from where the previous attempt
// stopped, so a message delivered in many small chunks costs one scan of
// each byte instead of one scan per chunk.
class HttpMessageBuffer {
 public:
  // Adds newly decrypted bytes to the stream.
  void Append(const char* data, size_t len) { buffer_.append(data, len); }

  // Removes and returns one complete message, or nullopt when the stream
  // is incomplete or poisoned.
  std::optional<std::string> TryExtract();

  // A malformed Content-Length (non-numeric, overflowing, or promising more
  // than kAuditBufferCap) poisons the stream: it cannot be framed, so the
  // caller should stop accumulating and fall back to pass-through.
  bool poisoned() const { return poisoned_; }

  size_t size() const { return buffer_.size(); }
  std::string_view view() const { return buffer_; }

  // Drops all buffered bytes and parser state (including poisoning).
  void Clear();

 private:
  std::string buffer_;
  size_t scan_offset_ = 0;  // the "\r\n\r\n" search resumes here
  // Parsed framing of the message at the front, valid once the header
  // block is complete.
  size_t total_ = 0;
  bool framed_ = false;
  bool poisoned_ = false;
};

// Extracts one complete HTTP message (Content-Length framing) from the
// front of `buffer`, removing it. Returns nullopt when incomplete or when
// the Content-Length header is invalid. Exposed for testing; the runtime
// itself uses HttpMessageBuffer.
std::optional<std::string> TryExtractHttpMessage(std::string& buffer);

// Strict Content-Length extraction over a header block (request/status line
// included; the last occurrence wins). Returns the length, 0 when absent,
// or nullopt when a value is non-numeric, overflows, or exceeds
// kAuditBufferCap. Surrounding spaces/tabs are tolerated.
std::optional<size_t> ContentLengthFromHeaders(std::string_view headers);

}  // namespace seal::core

#endif  // SRC_CORE_LIBSEAL_H_
