// Horizontal scale-out: the multi-enclave sharded audit log (ROADMAP
// item 2; paper §3.2 anticipates the merge of partial logs).
//
// A ShardSet runs N LibSealRuntime instances in one process. Each shard is
// a full vertical slice — its own enclave identity (LibSealOptions::
// instance_tag folds the shard number into the measurement, so every shard
// derives a distinct log signing key), hash chain, seadb, segmented
// durable log and CheckerEngine — and appends proceed on the shards with
// no shared lock, which is where the near-linear scaling comes from
// (bench_sharding).
//
// Epoch anchoring: independent per-shard ROTE counters prevent each
// shard's log from being rolled back in isolation, but say nothing about
// the COMBINED log — an operator could revert shard 3 to an old backup
// complete with its old (still quorum-consistent, if the operator also
// rewinds that shard's cluster) head. AnchorEpoch() closes this: each
// epoch it commits every shard's head (one per-shard counter round),
// takes one round of a single SHARED ROTE-backed epoch counter, and
// atomically persists a signed record of (epoch, every shard's chain
// head/counter/entry count). The anchor signing key derives from the
// concatenated shard measurements, so the record also pins the shard-set
// membership. Recovery verifies the record and accepts a shard only at or
// past its anchored head: the set either advances as a whole or is caught
// out per shard.
//
// Crash window: heads commit before the epoch record (phase 1 then phase
// 2). A crash between the phases leaves shards past the last anchored
// record — recovery treats "at or past the anchor" as consistent and
// re-anchors the recovered state. The reverse order would instead leave a
// record claiming heads that never became durable, which is exactly the
// rollback evidence we must never fabricate. tests/recovery_test.cc kills
// the process model in this window.
//
// Cross-shard invariants run scatter-gather: every shard's live entries
// are snapshotted in the SAME critical section as its head commit
// (AuditLogger::CommitAndSnapshotHead), giving a consistent cut of
// per-shard prefixes; the cut is merged with the log_merge interleave
// (wall-clock order, re-assigned global timestamps) into a fresh database
// and the SSM's invariants are evaluated there, in parallel, against a
// pinned snapshot. Per-shard partial evaluation would be unsound — a Git
// advertisement on shard B can only be matched against pushes on shard A
// after the merge — so the merged view is the truth and the parallelism
// lives in the scatter and evaluation phases.
#ifndef SRC_CORE_SHARD_H_
#define SRC_CORE_SHARD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/core/checker.h"
#include "src/core/libseal.h"
#include "src/core/log_merge.h"
#include "src/rote/rote.h"

namespace seal::core {

// One shard's line in an epoch record.
struct ShardHeadInfo {
  uint32_t shard = 0;
  Bytes chain_head;            // SHA-256 chain head the shard committed
  uint64_t counter_value = 0;  // that shard's own ROTE round
  uint64_t entry_count = 0;
};

// The signed head vector anchoring all shards to one shared epoch.
struct EpochRecord {
  uint64_t epoch = 0;      // shared epoch-counter round
  int64_t wall_nanos = 0;  // when the anchor was taken
  std::vector<ShardHeadInfo> heads;

  // Canonical byte encoding (what the anchor key signs).
  Bytes Serialize() const;
  static Result<EpochRecord> Deserialize(BytesView in);
};

// Outcome of one cross-shard check round.
struct CrossShardReport {
  CheckReport report;         // violations over the merged view
  uint64_t epoch = 0;         // the anchor this cut corresponds to
  size_t shards = 0;
  size_t merged_entries = 0;
  int64_t scatter_nanos = 0;  // per-shard commit + snapshot (parallel)
  int64_t merge_nanos = 0;    // interleave + materialise
  int64_t eval_nanos = 0;     // invariant evaluation on the merged db
};

struct ShardSetOptions {
  size_t shards = 4;
  // Template applied to every shard. Per-shard, ShardSet rewrites
  // `instance_tag` to "shard<K>" (appended to any tag already set),
  // `audit_log.path` to "<path>.shard<K>" and `logger.shard_index` to K.
  LibSealOptions libseal;
  // Where the signed epoch record lives. Empty = "<audit_log.path>.epoch"
  // (kMemory mode or an empty path disables anchoring persistence).
  std::string epoch_path;
  // The shared epoch counter's cluster. One round per anchor, regardless
  // of shard count.
  rote::RoteCounter::Options epoch_counter;
  // Verify an existing epoch record against the recovered shards at Init
  // (requires libseal.audit_log.recover) and re-anchor. Without a record
  // on disk, recovery proceeds per shard and a fresh anchor is written.
  bool recover = false;
  // Threads for the scatter and merged-eval phases of CheckCrossShard
  // (0 = one per shard).
  size_t crossshard_parallelism = 0;
};

class ShardSet {
 public:
  // `module_factory` builds one ServiceModule per shard (plus one for the
  // merged cross-shard view); SSMs are stateless, so instances are
  // interchangeable.
  ShardSet(ShardSetOptions options,
           std::function<std::unique_ptr<ServiceModule>()> module_factory);
  ~ShardSet();

  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  // Brings up every shard runtime (recovering each shard's log when
  // configured), verifies the epoch record against the recovered state
  // (options.recover), and writes a fresh anchor.
  Status Init();
  void Shutdown();

  // Stable route-key -> shard map (splitmix64 finalizer, then modulo):
  // the same key always lands on the same shard for a given shard count.
  static uint32_t ShardFor(uint64_t route_key, size_t shard_count);
  uint32_t ShardFor(uint64_t route_key) const {
    return ShardFor(route_key, runtimes_.size());
  }

  // Feeds a pair to the shard owning `route_key`. The direct intake path
  // for benchmarks, tests and embedders that already route connections;
  // network traffic reaches shards through services::ShardedTransport.
  Result<std::optional<CheckReport>> OnPair(uint64_t route_key, std::string_view request,
                                            std::string_view response, bool force_check);

  // Commits every shard's head (phase 1), then takes one shared epoch
  // round and atomically persists the signed head vector (phase 2). See
  // the file comment for the crash-ordering argument.
  Result<EpochRecord> AnchorEpoch();

  // Anchors an epoch AND evaluates the SSM's invariants over the merged
  // consistent cut at that epoch.
  Result<CrossShardReport> CheckCrossShard();

  // Reads + signature-verifies a persisted epoch record.
  static Result<EpochRecord> ReadEpochRecord(const std::string& path,
                                             const crypto::EcdsaPublicKey& anchor_key);

  size_t shard_count() const { return runtimes_.size(); }
  LibSealRuntime& shard(size_t i) { return *runtimes_[i]; }
  AuditLogger* logger(size_t i) { return runtimes_[i]->logger(); }
  rote::RoteCounter& epoch_counter() { return *epoch_counter_; }
  const crypto::EcdsaPublicKey& anchor_public_key() const { return anchor_public_key_; }
  const std::string& epoch_path() const { return epoch_path_; }
  uint64_t last_anchored_epoch() const { return last_anchored_epoch_; }

  // Crash injection: when set, AnchorEpoch stops after phase 1 (heads
  // committed, epoch record untouched) and returns Unavailable — the process
  // "died" in the crash window. recovery_test.cc exercises both sides.
  bool crash_after_head_commit_for_testing = false;

 private:
  // Phase 1 of an anchor: per-shard head commits (+ optional entry
  // snapshots for the cross-shard cut), scattered across threads.
  Status CommitAllHeads(std::vector<ShardHeadInfo>* heads,
                        std::vector<std::vector<LogEntry>>* entries);
  // Phase 2: shared epoch round + signed record persist.
  Result<EpochRecord> CommitEpochRecord(std::vector<ShardHeadInfo> heads);
  // options.recover: checks each recovered shard against the persisted
  // record ("at or past its anchored head").
  Status VerifyRecoveredAgainstRecord();

  size_t ScatterParallelism() const;

  ShardSetOptions options_;
  std::function<std::unique_ptr<ServiceModule>()> module_factory_;
  std::vector<std::unique_ptr<LibSealRuntime>> runtimes_;
  // Schema/invariant source for the merged cross-shard view.
  std::unique_ptr<ServiceModule> merged_module_;
  std::unique_ptr<rote::RoteCounter> epoch_counter_;
  crypto::EcdsaPrivateKey anchor_key_;
  crypto::EcdsaPublicKey anchor_public_key_;
  std::string epoch_path_;
  uint64_t last_anchored_epoch_ = 0;
  bool initialised_ = false;
};

}  // namespace seal::core

#endif  // SRC_CORE_SHARD_H_
