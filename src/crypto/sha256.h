// SHA-256 (FIPS 180-4), implemented from scratch.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace seal::crypto {

inline constexpr size_t kSha256DigestSize = 32;
inline constexpr size_t kSha256BlockSize = 64;

using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

// Incremental SHA-256. Typical use:
//   Sha256 h; h.Update(a); h.Update(b); Sha256Digest d = h.Finish();
// Finish() may only be called once; the object is then exhausted.
class Sha256 {
 public:
  Sha256();

  void Update(BytesView data);
  void Update(std::string_view data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(BytesView data);
  static Sha256Digest Hash(std::string_view data);

 private:
  void Compress(const uint8_t block[kSha256BlockSize]);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[kSha256BlockSize];
  size_t buffered_ = 0;
};

// Digest as a Bytes vector (handy for log/hash-chain code).
Bytes Sha256Bytes(BytesView data);

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_SHA256_H_
