#include "src/crypto/ecdsa.h"

#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"

namespace seal::crypto {

namespace {

// Reduces a digest to a scalar mod n (simple interpretation of the left-most
// 256 bits, as P-256's order is 256 bits).
U256 DigestToScalar(const Sha256Digest& digest) {
  U256 z = U256::FromBytes(BytesView(digest.data(), digest.size()));
  return Mod(z, P256Order());
}

// Deterministic nonce: HMAC(key_bytes, digest || counter) mod n, retried on
// the (cryptographically negligible) zero case. `keyed` carries the HMAC
// state already keyed with d's bytes, so no key schedule runs per signature.
U256 DeterministicNonce(const HmacSha256& keyed, const Sha256Digest& digest) {
  for (uint32_t counter = 0;; ++counter) {
    HmacSha256 h = keyed;
    h.Update(BytesView(digest.data(), digest.size()));
    uint8_t c[4];
    seal::StoreBe32(c, counter);
    h.Update(BytesView(c, 4));
    Sha256Digest out = h.Finish();
    U256 k = Mod(U256::FromBytes(BytesView(out.data(), out.size())), P256Order());
    if (!k.IsZero()) {
      return k;
    }
  }
}

}  // namespace

Bytes EcdsaSignature::Encode() const {
  Bytes out = r.ToBytes();
  Append(out, s.ToBytes());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::Decode(BytesView in) {
  if (in.size() != 64) {
    return std::nullopt;
  }
  EcdsaSignature sig;
  sig.r = U256::FromBytes(in.subspan(0, 32));
  sig.s = U256::FromBytes(in.subspan(32, 32));
  return sig;
}

std::optional<EcdsaPublicKey> EcdsaPublicKey::Decode(BytesView in) {
  std::optional<AffinePoint> p = AffinePoint::Decode(in);
  if (!p.has_value()) {
    return std::nullopt;
  }
  return EcdsaPublicKey(*p);
}

bool EcdsaPublicKey::VerifyDigest(const Sha256Digest& digest, const EcdsaSignature& sig) const {
  const U256& n = P256Order();
  if (q_.infinity || sig.r.IsZero() || sig.s.IsZero() || Cmp(sig.r, n) >= 0 ||
      Cmp(sig.s, n) >= 0) {
    return false;
  }
  U256 z = DigestToScalar(digest);
  U256 s_inv = ModInv(sig.s, n);
  U256 u1 = ModMul(z, s_inv, n);
  U256 u2 = ModMul(sig.r, s_inv, n);
  AffinePoint point = DoubleScalarMult(u1, u2, q_);
  if (point.infinity) {
    return false;
  }
  return Mod(point.x, n) == sig.r;
}

bool EcdsaPublicKey::Verify(BytesView message, const EcdsaSignature& sig) const {
  return VerifyDigest(Sha256::Hash(message), sig);
}

EcdsaPrivateKey EcdsaPrivateKey::FromSeed(BytesView seed) {
  // Expand the seed and reduce; retry on the (negligible) zero case.
  Bytes material(seed.begin(), seed.end());
  for (;;) {
    Sha256Digest d = Sha256::Hash(material);
    U256 scalar = Mod(U256::FromBytes(BytesView(d.data(), d.size())), P256Order());
    if (!scalar.IsZero()) {
      EcdsaPrivateKey key;
      key.d_ = scalar;
      key.public_key_ = EcdsaPublicKey(ScalarBaseMult(scalar));
      key.nonce_mac_.emplace(key.d_.ToBytes());
      return key;
    }
    material.push_back(0x42);
  }
}

EcdsaPrivateKey EcdsaPrivateKey::Generate() {
  // Thread-local DRBG: key generation sits on the handshake path (ECDHE
  // ephemerals), which must not serialize on the process-DRBG mutex.
  Bytes seed = ThreadLocalDrbg().Generate(48);
  return FromSeed(seed);
}

EcdsaSignature EcdsaPrivateKey::SignDigest(const Sha256Digest& digest) const {
  const U256& n = P256Order();
  U256 z = DigestToScalar(digest);
  for (uint32_t attempt = 0;; ++attempt) {
    Sha256Digest tweaked = digest;
    tweaked[0] ^= static_cast<uint8_t>(attempt);
    U256 k = nonce_mac_.has_value() ? DeterministicNonce(*nonce_mac_, tweaked)
                                    : DeterministicNonce(HmacSha256(d_.ToBytes()), tweaked);
    AffinePoint kg = ScalarBaseMult(k);
    U256 r = Mod(kg.x, n);
    if (r.IsZero()) {
      continue;
    }
    U256 k_inv = ModInv(k, n);
    U256 rd = ModMul(r, d_, n);
    U256 s = ModMul(k_inv, ModAdd(z, rd, n), n);
    if (s.IsZero()) {
      continue;
    }
    return EcdsaSignature{r, s};
  }
}

EcdsaSignature EcdsaPrivateKey::Sign(BytesView message) const {
  return SignDigest(Sha256::Hash(message));
}

std::optional<Bytes> EcdhSharedSecret(const U256& private_scalar, const AffinePoint& peer_point) {
  AffinePoint shared = ScalarMult(private_scalar, peer_point);
  if (shared.infinity) {
    return std::nullopt;
  }
  return shared.x.ToBytes();
}

}  // namespace seal::crypto
