// ECDSA over P-256 with SHA-256, plus ECDH key agreement.
// Signing uses deterministic nonces in the spirit of RFC 6979 (HMAC over
// key and digest), so no entropy source is needed on the signing path.
#ifndef SRC_CRYPTO_ECDSA_H_
#define SRC_CRYPTO_ECDSA_H_

#include <optional>

#include "src/common/bytes.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"

namespace seal::crypto {

struct EcdsaSignature {
  U256 r;
  U256 s;

  Bytes Encode() const;  // 64 bytes: r || s, both big-endian.
  static std::optional<EcdsaSignature> Decode(BytesView in);
};

class EcdsaPrivateKey;

class EcdsaPublicKey {
 public:
  EcdsaPublicKey() = default;
  explicit EcdsaPublicKey(AffinePoint q) : q_(q) {}

  bool Verify(BytesView message, const EcdsaSignature& sig) const;
  bool VerifyDigest(const Sha256Digest& digest, const EcdsaSignature& sig) const;

  Bytes Encode() const { return q_.Encode(); }
  static std::optional<EcdsaPublicKey> Decode(BytesView in);
  const AffinePoint& point() const { return q_; }
  bool valid() const { return !q_.infinity; }

 private:
  AffinePoint q_;
};

class EcdsaPrivateKey {
 public:
  EcdsaPrivateKey() = default;

  // Derives a key pair deterministically from a seed (any length). Used by
  // the SGX simulator to derive per-enclave signing keys from the sealed
  // root; also convenient for reproducible tests.
  static EcdsaPrivateKey FromSeed(BytesView seed);
  // Generates a fresh key from the process DRBG.
  static EcdsaPrivateKey Generate();

  EcdsaSignature Sign(BytesView message) const;
  EcdsaSignature SignDigest(const Sha256Digest& digest) const;

  const EcdsaPublicKey& public_key() const { return public_key_; }
  const U256& scalar() const { return d_; }
  bool valid() const { return !d_.IsZero(); }

 private:
  U256 d_;
  EcdsaPublicKey public_key_;
  // Keyed HMAC state for deterministic nonces, built once per key: each
  // signature copies this instead of re-running the HMAC key schedule over
  // d. Empty only for default-constructed (invalid) keys.
  std::optional<HmacSha256> nonce_mac_;
};

// ECDH: returns the 32-byte x-coordinate of private * peer_point, or nullopt
// if the result is the point at infinity (invalid peer key).
std::optional<Bytes> EcdhSharedSecret(const U256& private_scalar, const AffinePoint& peer_point);

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_ECDSA_H_
