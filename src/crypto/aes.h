// AES-128 block cipher (FIPS 197), table-based implementation.
#ifndef SRC_CRYPTO_AES_H_
#define SRC_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace seal::crypto {

inline constexpr size_t kAesBlockSize = 16;
inline constexpr size_t kAes128KeySize = 16;

using AesBlock = std::array<uint8_t, kAesBlockSize>;

// AES-128 encryption-only context (GCM needs only the forward direction).
class Aes128 {
 public:
  explicit Aes128(BytesView key);  // key must be exactly 16 bytes.

  void EncryptBlock(const uint8_t in[kAesBlockSize], uint8_t out[kAesBlockSize]) const;

 private:
  uint32_t round_keys_[44];
};

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_AES_H_
