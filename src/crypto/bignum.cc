#include "src/crypto/bignum.h"

#include <algorithm>

namespace seal::crypto {

using uint128_t = unsigned __int128;

U256 U256::FromBytes(BytesView be) {
  uint8_t buf[32] = {0};
  size_t n = std::min<size_t>(32, be.size());
  // Right-align: the last n bytes of buf receive the last n bytes of input.
  std::copy(be.end() - static_cast<ptrdiff_t>(n), be.end(), buf + (32 - n));
  U256 r;
  for (int i = 0; i < 4; ++i) {
    r.limb[3 - i] = seal::LoadBe64(buf + 8 * i);
  }
  return r;
}

U256 U256::FromHexString(std::string_view hex) {
  std::string padded(64 - std::min<size_t>(64, hex.size()), '0');
  padded.append(hex);
  Bytes b = seal::FromHex(padded);
  return FromBytes(b);
}

Bytes U256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) {
    seal::StoreBe64(out.data() + 8 * i, limb[3 - i]);
  }
  return out;
}

std::string U256::ToHexString() const { return seal::ToHex(ToBytes()); }

int U256::BitLength() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) {
      return 64 * i + (63 - __builtin_clzll(limb[i]));
    }
  }
  return -1;
}

U256 Add(const U256& a, const U256& b, uint64_t* carry) {
  U256 r;
  uint128_t c = 0;
  for (int i = 0; i < 4; ++i) {
    uint128_t s = static_cast<uint128_t>(a.limb[i]) + b.limb[i] + c;
    r.limb[i] = static_cast<uint64_t>(s);
    c = s >> 64;
  }
  if (carry != nullptr) {
    *carry = static_cast<uint64_t>(c);
  }
  return r;
}

U256 Sub(const U256& a, const U256& b, uint64_t* borrow) {
  U256 r;
  uint128_t bor = 0;
  for (int i = 0; i < 4; ++i) {
    uint128_t d = static_cast<uint128_t>(a.limb[i]) - b.limb[i] - bor;
    r.limb[i] = static_cast<uint64_t>(d);
    bor = (d >> 64) & 1;  // two's complement wrap indicates borrow
  }
  if (borrow != nullptr) {
    *borrow = static_cast<uint64_t>(bor);
  }
  return r;
}

int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) {
      return -1;
    }
    if (a.limb[i] > b.limb[i]) {
      return 1;
    }
  }
  return 0;
}

U512 Mul(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      uint128_t cur = static_cast<uint128_t>(a.limb[i]) * b.limb[j] + r.limb[i + j] + carry;
      r.limb[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    r.limb[i + 4] += carry;
  }
  return r;
}

U256 Shl1(const U256& a, uint64_t* carry) {
  U256 r;
  uint64_t c = 0;
  for (int i = 0; i < 4; ++i) {
    r.limb[i] = (a.limb[i] << 1) | c;
    c = a.limb[i] >> 63;
  }
  if (carry != nullptr) {
    *carry = c;
  }
  return r;
}

U256 Shr1(const U256& a) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    r.limb[i] = a.limb[i] >> 1;
    if (i < 3) {
      r.limb[i] |= a.limb[i + 1] << 63;
    }
  }
  return r;
}

namespace {

// Binary long division remainder: processes `a` bit-by-bit from the top.
U256 ModBits(const uint64_t* limbs, int nlimbs, const U256& m) {
  U256 rem;
  for (int bit = nlimbs * 64 - 1; bit >= 0; --bit) {
    uint64_t carry = 0;
    rem = Shl1(rem, &carry);
    if ((limbs[bit / 64] >> (bit % 64)) & 1) {
      rem.limb[0] |= 1;
    }
    // rem is at most 2m - 1 + high carry; subtract m if rem >= m or the
    // shift overflowed 256 bits (carry means rem >= 2^256 > m).
    if (carry != 0 || Cmp(rem, m) >= 0) {
      uint64_t borrow = 0;
      rem = Sub(rem, m, &borrow);
    }
  }
  return rem;
}

}  // namespace

U256 Mod(const U512& a, const U256& m) { return ModBits(a.limb, 8, m); }

U256 Mod(const U256& a, const U256& m) {
  if (Cmp(a, m) < 0) {
    return a;
  }
  return ModBits(a.limb, 4, m);
}

U256 ModMul(const U256& a, const U256& b, const U256& m) { return Mod(Mul(a, b), m); }

U256 ModAdd(const U256& a, const U256& b, const U256& m) {
  uint64_t carry = 0;
  U256 s = Add(a, b, &carry);
  if (carry != 0 || Cmp(s, m) >= 0) {
    uint64_t borrow = 0;
    s = Sub(s, m, &borrow);
  }
  return s;
}

U256 ModSub(const U256& a, const U256& b, const U256& m) {
  uint64_t borrow = 0;
  U256 d = Sub(a, b, &borrow);
  if (borrow != 0) {
    uint64_t carry = 0;
    d = Add(d, m, &carry);
  }
  return d;
}

U256 ModExp(const U256& a, const U256& e, const U256& m) {
  U256 result = U256::One();
  U256 base = Mod(a, m);
  int bits = e.BitLength();
  for (int i = bits; i >= 0; --i) {
    result = ModMul(result, result, m);
    if (e.GetBit(i)) {
      result = ModMul(result, base, m);
    }
  }
  return result;
}

U256 ModInvPrime(const U256& a, const U256& m) {
  // a^(m-2) mod m.
  uint64_t borrow = 0;
  U256 e = Sub(m, U256::FromUint64(2), &borrow);
  return ModExp(a, e, m);
}

namespace {

// Returns x/2 mod m for odd m: if x is even, shift; otherwise (x + m) / 2,
// keeping the carry bit that the addition may produce.
U256 HalveMod(const U256& x, const U256& m) {
  if (!x.IsOdd()) {
    return Shr1(x);
  }
  uint64_t carry = 0;
  U256 s = Add(x, m, &carry);
  U256 r = Shr1(s);
  if (carry != 0) {
    r.limb[3] |= 1ULL << 63;
  }
  return r;
}

}  // namespace

U256 ModInv(const U256& a, const U256& m) {
  // Binary extended Euclid (HAC 14.61 variant) for odd modulus m.
  U256 u = Mod(a, m);
  U256 v = m;
  U256 x1 = U256::One();
  U256 x2 = U256::Zero();
  const U256 one = U256::One();
  while (!(u == one) && !(v == one)) {
    while (!u.IsOdd() && !u.IsZero()) {
      u = Shr1(u);
      x1 = HalveMod(x1, m);
    }
    while (!v.IsOdd() && !v.IsZero()) {
      v = Shr1(v);
      x2 = HalveMod(x2, m);
    }
    if (u.IsZero() || v.IsZero()) {
      break;  // not invertible; caller violated the contract
    }
    if (Cmp(u, v) >= 0) {
      uint64_t borrow = 0;
      u = Sub(u, v, &borrow);
      x1 = ModSub(x1, x2, m);
    } else {
      uint64_t borrow = 0;
      v = Sub(v, u, &borrow);
      x2 = ModSub(x2, x1, m);
    }
  }
  return (u == one) ? x1 : x2;
}

}  // namespace seal::crypto
