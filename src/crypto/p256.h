// NIST P-256 (secp256r1) elliptic-curve arithmetic: field ops with fast
// Solinas reduction, Jacobian-coordinate point arithmetic, and windowed
// scalar multiplication.
#ifndef SRC_CRYPTO_P256_H_
#define SRC_CRYPTO_P256_H_

#include <optional>

#include "src/common/bytes.h"
#include "src/crypto/bignum.h"

namespace seal::crypto {

// Curve parameters (y^2 = x^3 - 3x + b over GF(p)).
const U256& P256Prime();   // p
const U256& P256Order();   // n (order of the base point)
const U256& P256B();       // b
const U256& P256Gx();      // base point x
const U256& P256Gy();      // base point y

// Field arithmetic mod p with Solinas reduction (fast path).
U256 FeAdd(const U256& a, const U256& b);
U256 FeSub(const U256& a, const U256& b);
U256 FeMul(const U256& a, const U256& b);
U256 FeSqr(const U256& a);
U256 FeInv(const U256& a);
// Reduces a 512-bit product modulo p (exposed for testing against the
// generic slow reduction).
U256 FeReduce512(const U512& a);

// Affine point; infinity is represented by `infinity == true`.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = true;

  static AffinePoint Infinity() { return AffinePoint{}; }
  static AffinePoint Generator();

  bool OnCurve() const;
  // SEC1 uncompressed encoding: 0x04 || X || Y (65 bytes).
  Bytes Encode() const;
  static std::optional<AffinePoint> Decode(BytesView in);

  bool operator==(const AffinePoint& o) const;
};

// scalar * point. Scalar is taken mod n implicitly by callers; zero scalar
// or infinity input yields infinity.
AffinePoint ScalarMult(const U256& scalar, const AffinePoint& point);
// scalar * G, using the generator.
AffinePoint ScalarBaseMult(const U256& scalar);
// a*G + b*Q (used by ECDSA verification).
AffinePoint DoubleScalarMult(const U256& a, const U256& b, const AffinePoint& q);
// Point addition in affine terms (handles doubling and infinity).
AffinePoint PointAdd(const AffinePoint& p, const AffinePoint& q);

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_P256_H_
