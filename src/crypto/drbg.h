// HMAC-DRBG (SP 800-90A, HMAC-SHA256 variant).
#ifndef SRC_CRYPTO_DRBG_H_
#define SRC_CRYPTO_DRBG_H_

#include <cstdint>

#include "src/common/bytes.h"

namespace seal::crypto {

// Deterministic random bit generator. Instances are NOT thread-safe; the
// process-wide instance returned by ProcessDrbg() is internally locked.
class HmacDrbg {
 public:
  // Seeds from entropy (std::random_device + clock).
  HmacDrbg();
  // Deterministic instantiation for tests and for the SGX simulator's
  // in-enclave RNG (seeded from the enclave identity).
  explicit HmacDrbg(BytesView seed);

  Bytes Generate(size_t n);
  void Reseed(BytesView extra);

 private:
  void Update(BytesView provided);

  uint8_t k_[32];
  uint8_t v_[32];
};

// Process-wide, mutex-protected DRBG handle.
class ProcessDrbg {
 public:
  Bytes Generate(size_t n);
};

// Per-thread DRBG child, seeded once from the process DRBG. Hot paths
// (handshake randoms, ECDHE ephemerals) draw from this to avoid serializing
// every connection on the process-DRBG mutex.
HmacDrbg& ThreadLocalDrbg();

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_DRBG_H_
