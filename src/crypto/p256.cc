#include "src/crypto/p256.h"

#include <vector>

namespace seal::crypto {

namespace {

const U256 kP = U256::FromHexString(
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
const U256 kN = U256::FromHexString(
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
const U256 kB = U256::FromHexString(
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
const U256 kGx = U256::FromHexString(
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
const U256 kGy = U256::FromHexString(
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");

}  // namespace

const U256& P256Prime() { return kP; }
const U256& P256Order() { return kN; }
const U256& P256B() { return kB; }
const U256& P256Gx() { return kGx; }
const U256& P256Gy() { return kGy; }

U256 FeAdd(const U256& a, const U256& b) { return ModAdd(a, b, kP); }
U256 FeSub(const U256& a, const U256& b) { return ModSub(a, b, kP); }

U256 FeReduce512(const U512& v) {
  // Solinas fast reduction for p = 2^256 - 2^224 + 2^192 + 2^96 - 1
  // (FIPS 186-4 D.2.3). The 512-bit input is viewed as sixteen 32-bit
  // words c0 (least significant) .. c15.
  uint32_t c[16];
  for (int i = 0; i < 8; ++i) {
    c[2 * i] = static_cast<uint32_t>(v.limb[i]);
    c[2 * i + 1] = static_cast<uint32_t>(v.limb[i] >> 32);
  }
  // Each row lists the word for positions 7..0 (most significant first);
  // the multiplier is +1, +2 or -1.
  struct Term {
    int mult;
    int w[8];  // indices into c, -1 means zero
  };
  static constexpr Term kTerms[] = {
      {+1, {7, 6, 5, 4, 3, 2, 1, 0}},           // s1
      {+2, {15, 14, 13, 12, 11, -1, -1, -1}},   // s2
      {+2, {-1, 15, 14, 13, 12, -1, -1, -1}},   // s3
      {+1, {15, 14, -1, -1, -1, 10, 9, 8}},     // s4
      {+1, {8, 13, 15, 14, 13, 11, 10, 9}},     // s5
      {-1, {10, 8, -1, -1, -1, 13, 12, 11}},    // s6 (d1)
      {-1, {11, 9, -1, -1, 15, 14, 13, 12}},    // s7 (d2)
      {-1, {12, -1, 10, 9, 8, 15, 14, 13}},     // s8 (d3)
      {-1, {13, -1, 11, 10, 9, -1, 15, 14}},    // s9 (d4)
  };
  int64_t acc[8] = {0};
  for (const Term& t : kTerms) {
    for (int pos = 0; pos < 8; ++pos) {
      int idx = t.w[7 - pos];  // t.w[0] is the most significant position
      if (idx >= 0) {
        acc[pos] += static_cast<int64_t>(t.mult) * static_cast<int64_t>(c[idx]);
      }
    }
  }
  // Carry-propagate into a 256-bit value plus a small signed overflow t.
  __int128 carry = 0;
  uint32_t words[8];
  for (int i = 0; i < 8; ++i) {
    carry += acc[i];
    words[i] = static_cast<uint32_t>(carry & 0xffffffff);
    carry >>= 32;  // arithmetic shift keeps the sign
  }
  int64_t overflow = static_cast<int64_t>(carry);
  U256 r;
  for (int i = 0; i < 4; ++i) {
    r.limb[i] = uint64_t{words[2 * i]} | (uint64_t{words[2 * i + 1]} << 32);
  }
  while (overflow > 0) {
    uint64_t borrow = 0;
    r = Sub(r, kP, &borrow);
    overflow -= static_cast<int64_t>(borrow);
  }
  while (overflow < 0) {
    uint64_t c2 = 0;
    r = Add(r, kP, &c2);
    overflow += static_cast<int64_t>(c2);
  }
  while (Cmp(r, kP) >= 0) {
    uint64_t borrow = 0;
    r = Sub(r, kP, &borrow);
  }
  return r;
}

U256 FeMul(const U256& a, const U256& b) { return FeReduce512(Mul(a, b)); }
U256 FeSqr(const U256& a) { return FeReduce512(Mul(a, a)); }
U256 FeInv(const U256& a) { return ModInv(a, kP); }

AffinePoint AffinePoint::Generator() { return AffinePoint{kGx, kGy, false}; }

bool AffinePoint::OnCurve() const {
  if (infinity) {
    return true;
  }
  // y^2 == x^3 - 3x + b.
  U256 y2 = FeSqr(y);
  U256 x3 = FeMul(FeSqr(x), x);
  U256 three_x = FeAdd(FeAdd(x, x), x);
  U256 rhs = FeAdd(FeSub(x3, three_x), kB);
  return y2 == rhs;
}

Bytes AffinePoint::Encode() const {
  Bytes out;
  out.push_back(0x04);
  Append(out, x.ToBytes());
  Append(out, y.ToBytes());
  return out;
}

std::optional<AffinePoint> AffinePoint::Decode(BytesView in) {
  if (in.size() != 65 || in[0] != 0x04) {
    return std::nullopt;
  }
  AffinePoint p;
  p.x = U256::FromBytes(in.subspan(1, 32));
  p.y = U256::FromBytes(in.subspan(33, 32));
  p.infinity = false;
  if (Cmp(p.x, kP) >= 0 || Cmp(p.y, kP) >= 0 || !p.OnCurve()) {
    return std::nullopt;
  }
  return p;
}

bool AffinePoint::operator==(const AffinePoint& o) const {
  if (infinity || o.infinity) {
    return infinity == o.infinity;
  }
  return x == o.x && y == o.y;
}

namespace {

// Jacobian coordinates: (X, Y, Z) represents (X/Z^2, Y/Z^3).
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;
  bool infinity = true;

  static JacobianPoint FromAffine(const AffinePoint& p) {
    if (p.infinity) {
      return JacobianPoint{};
    }
    return JacobianPoint{p.x, p.y, U256::One(), false};
  }

  AffinePoint ToAffine() const {
    if (infinity) {
      return AffinePoint::Infinity();
    }
    U256 zinv = FeInv(z);
    U256 zinv2 = FeSqr(zinv);
    U256 zinv3 = FeMul(zinv2, zinv);
    return AffinePoint{FeMul(x, zinv2), FeMul(y, zinv3), false};
  }
};

// Point doubling, dbl-2001-b formulas (a = -3).
JacobianPoint Double(const JacobianPoint& p) {
  if (p.infinity || p.y.IsZero()) {
    return JacobianPoint{};
  }
  U256 delta = FeSqr(p.z);
  U256 gamma = FeSqr(p.y);
  U256 beta = FeMul(p.x, gamma);
  U256 t1 = FeSub(p.x, delta);
  U256 t2 = FeAdd(p.x, delta);
  U256 t3 = FeMul(t1, t2);
  U256 alpha = FeAdd(FeAdd(t3, t3), t3);
  U256 beta8 = FeAdd(beta, beta);   // 2b
  beta8 = FeAdd(beta8, beta8);      // 4b
  U256 x3 = FeSub(FeSqr(alpha), FeAdd(beta8, beta8));
  U256 z3 = FeSub(FeSub(FeSqr(FeAdd(p.y, p.z)), gamma), delta);
  U256 gamma2 = FeSqr(gamma);
  U256 gamma8 = FeAdd(gamma2, gamma2);
  gamma8 = FeAdd(gamma8, gamma8);
  gamma8 = FeAdd(gamma8, gamma8);
  U256 y3 = FeSub(FeMul(alpha, FeSub(beta8, x3)), gamma8);
  return JacobianPoint{x3, y3, z3, false};
}

// Mixed addition: p (Jacobian) + q (affine, not infinity).
JacobianPoint AddMixed(const JacobianPoint& p, const AffinePoint& q) {
  if (p.infinity) {
    return JacobianPoint::FromAffine(q);
  }
  U256 z1z1 = FeSqr(p.z);
  U256 u2 = FeMul(q.x, z1z1);
  U256 s2 = FeMul(FeMul(q.y, p.z), z1z1);
  U256 h = FeSub(u2, p.x);
  U256 r = FeSub(s2, p.y);
  if (h.IsZero()) {
    if (r.IsZero()) {
      return Double(p);
    }
    return JacobianPoint{};  // P + (-P) = infinity
  }
  U256 hh = FeSqr(h);
  U256 hhh = FeMul(h, hh);
  U256 v = FeMul(p.x, hh);
  U256 x3 = FeSub(FeSub(FeSqr(r), hhh), FeAdd(v, v));
  U256 y3 = FeSub(FeMul(r, FeSub(v, x3)), FeMul(p.y, hhh));
  U256 z3 = FeMul(p.z, h);
  return JacobianPoint{x3, y3, z3, false};
}

// General Jacobian + Jacobian addition (add-2007-bl, simplified). Only used
// off the per-bit hot loops: precomputation tables build with it.
JacobianPoint AddJacobian(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.infinity) {
    return q;
  }
  if (q.infinity) {
    return p;
  }
  U256 z1z1 = FeSqr(p.z);
  U256 z2z2 = FeSqr(q.z);
  U256 u1 = FeMul(p.x, z2z2);
  U256 u2 = FeMul(q.x, z1z1);
  U256 s1 = FeMul(FeMul(p.y, q.z), z2z2);
  U256 s2 = FeMul(FeMul(q.y, p.z), z1z1);
  U256 h = FeSub(u2, u1);
  U256 r = FeSub(s2, s1);
  if (h.IsZero()) {
    if (r.IsZero()) {
      return Double(p);
    }
    return JacobianPoint{};
  }
  U256 hh = FeSqr(h);
  U256 hhh = FeMul(h, hh);
  U256 v = FeMul(u1, hh);
  U256 x3 = FeSub(FeSub(FeSqr(r), hhh), FeAdd(v, v));
  U256 y3 = FeSub(FeMul(r, FeSub(v, x3)), FeMul(s1, hhh));
  U256 z3 = FeMul(FeMul(p.z, q.z), h);
  return JacobianPoint{x3, y3, z3, false};
}

// Normalises a batch of Jacobian points to affine with a single field
// inversion (Montgomery's trick). Inputs must not be at infinity.
std::vector<AffinePoint> BatchToAffine(const std::vector<JacobianPoint>& jac) {
  std::vector<U256> prefix(jac.size());
  U256 acc = U256::One();
  for (size_t k = 0; k < jac.size(); ++k) {
    prefix[k] = acc;
    acc = FeMul(acc, jac[k].z);
  }
  U256 inv = FeInv(acc);
  std::vector<AffinePoint> out(jac.size());
  for (size_t k = jac.size(); k-- > 0;) {
    U256 zinv = FeMul(inv, prefix[k]);
    inv = FeMul(inv, jac[k].z);
    U256 zi2 = FeSqr(zinv);
    U256 zi3 = FeMul(zi2, zinv);
    out[k] = AffinePoint{FeMul(jac[k].x, zi2), FeMul(jac[k].y, zi3), false};
  }
  return out;
}

AffinePoint Negate(const AffinePoint& p) {
  return AffinePoint{p.x, FeSub(U256::Zero(), p.y), false};
}

// Width of the sliding-window NAF recoding below: digits are odd in
// [-15, 15], so the per-point table holds the 8 odd multiples 1P..15P.
constexpr int kWnafWidth = 5;

// Recodes `scalar` into wNAF form: at most one nonzero (odd, signed) digit
// in any kWnafWidth consecutive positions. Returns the digit count.
int WnafRecode(const U256& scalar, int8_t digits[257]) {
  constexpr uint64_t kWindow = uint64_t{1} << kWnafWidth;        // 32
  constexpr uint64_t kHalf = uint64_t{1} << (kWnafWidth - 1);    // 16
  U256 k = scalar;
  int len = 0;
  while (!k.IsZero()) {
    int8_t digit = 0;
    if (k.IsOdd()) {
      uint64_t t = k.limb[0] & (kWindow - 1);
      if (t >= kHalf) {
        // Negative digit t - 32; add back so the remaining bits stay even.
        digit = static_cast<int8_t>(static_cast<int64_t>(t) -
                                    static_cast<int64_t>(kWindow));
        uint64_t carry = 0;
        k = Add(k, U256::FromUint64(kWindow - t), &carry);
      } else {
        digit = static_cast<int8_t>(t);
        uint64_t borrow = 0;
        k = Sub(k, U256::FromUint64(t), &borrow);
      }
    }
    digits[len++] = digit;
    k = Shr1(k);
  }
  return len;
}

// Variable-point scalar multiply via wNAF: ~256 doublings but only ~43
// additions (vs ~128 for binary double-and-add), with the 8-entry
// odd-multiples table batch-normalised so every addition is mixed. This is
// the ECDHE peer-point multiply on every full TLS handshake.
JacobianPoint ScalarMultJacobian(const U256& scalar, const AffinePoint& point) {
  if (scalar.IsZero() || point.infinity) {
    return JacobianPoint{};
  }
  // Odd multiples 1P, 3P, ..., 15P.
  JacobianPoint p1 = JacobianPoint::FromAffine(point);
  JacobianPoint p2 = Double(p1);
  std::vector<JacobianPoint> odd;
  odd.reserve(8);
  odd.push_back(p1);
  for (int i = 1; i < 8; ++i) {
    odd.push_back(AddJacobian(odd.back(), p2));
  }
  std::vector<AffinePoint> table = BatchToAffine(odd);

  int8_t digits[257];
  int len = WnafRecode(scalar, digits);
  JacobianPoint acc;
  for (int i = len - 1; i >= 0; --i) {
    acc = Double(acc);
    int8_t d = digits[i];
    if (d > 0) {
      acc = AddMixed(acc, table[static_cast<size_t>(d / 2)]);
    } else if (d < 0) {
      acc = AddMixed(acc, Negate(table[static_cast<size_t>(-d / 2)]));
    }
  }
  return acc;
}

// Fixed-base precomputation for the generator: table[i][j-1] = j * 16^i * G
// for i in 0..63, j in 1..15. Built once (Jacobian, then batch-normalised
// to affine with a single field inversion); cuts a base-point multiply to
// at most 64 mixed additions. ECDSA signing and the server side of every
// TLS handshake are dominated by base multiplies, so this matters for the
// throughput benchmarks.
class BaseTable {
 public:
  BaseTable() {
    std::vector<JacobianPoint> jac;
    jac.reserve(64 * 15);
    JacobianPoint row_base = JacobianPoint::FromAffine(AffinePoint::Generator());
    for (int i = 0; i < 64; ++i) {
      // row: 1x .. 15x of row_base.
      JacobianPoint current = row_base;
      std::vector<JacobianPoint> row;
      row.push_back(current);
      for (int j = 2; j <= 15; ++j) {
        if (j % 2 == 0) {
          current = Double(row[static_cast<size_t>(j / 2 - 1)]);
        } else {
          current = AddJacobian(row[static_cast<size_t>(j - 2)], row_base);
        }
        row.push_back(current);
      }
      for (const JacobianPoint& p : row) {
        jac.push_back(p);
      }
      row_base = Double(Double(Double(Double(row_base))));  // *16
    }
    points_ = BatchToAffine(jac);
  }

  const AffinePoint& At(int window, int value) const {
    return points_[static_cast<size_t>(window * 15 + value - 1)];
  }

 private:
  std::vector<AffinePoint> points_;
};

const BaseTable& GetBaseTable() {
  static const BaseTable table;
  return table;
}

JacobianPoint ScalarBaseMultJacobian(const U256& scalar) {
  if (scalar.IsZero()) {
    return JacobianPoint{};
  }
  const BaseTable& table = GetBaseTable();
  JacobianPoint acc;
  for (int i = 0; i < 64; ++i) {
    int nibble = static_cast<int>((scalar.limb[i / 16] >> (4 * (i % 16))) & 0xf);
    if (nibble != 0) {
      acc = AddMixed(acc, table.At(i, nibble));
    }
  }
  return acc;
}

}  // namespace

AffinePoint ScalarMult(const U256& scalar, const AffinePoint& point) {
  return ScalarMultJacobian(scalar, point).ToAffine();
}

AffinePoint ScalarBaseMult(const U256& scalar) {
  return ScalarBaseMultJacobian(scalar).ToAffine();
}

AffinePoint PointAdd(const AffinePoint& p, const AffinePoint& q) {
  if (p.infinity) {
    return q;
  }
  if (q.infinity) {
    return p;
  }
  return AddMixed(JacobianPoint::FromAffine(p), q).ToAffine();
}

AffinePoint DoubleScalarMult(const U256& a, const U256& b, const AffinePoint& q) {
  JacobianPoint ag = ScalarBaseMultJacobian(a);
  AffinePoint bq = ScalarMult(b, q);
  if (bq.infinity) {
    return ag.ToAffine();
  }
  return AddMixed(ag, bq).ToAffine();
}

}  // namespace seal::crypto
