// AES-128-GCM authenticated encryption (NIST SP 800-38D).
#ifndef SRC_CRYPTO_GCM_H_
#define SRC_CRYPTO_GCM_H_

#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"

namespace seal::crypto {

inline constexpr size_t kGcmTagSize = 16;
inline constexpr size_t kGcmNonceSize = 12;

// AES-128-GCM AEAD. One context per key; nonces must be unique per key
// (the TLS record layer derives them from the sequence number).
class Aes128Gcm {
 public:
  explicit Aes128Gcm(BytesView key);

  // Returns ciphertext || 16-byte tag. `nonce` must be 12 bytes.
  Bytes Seal(BytesView nonce, BytesView aad, BytesView plaintext) const;

  // Input is ciphertext || tag. Returns nullopt on authentication failure.
  std::optional<Bytes> Open(BytesView nonce, BytesView aad, BytesView ciphertext_and_tag) const;

 private:
  struct U128 {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  // GHASH accumulation: acc = (acc ^ block) * H per 16-byte block of `data`
  // (zero-padded at the tail).
  void GhashBlocks(U128& acc, BytesView data) const;
  Bytes CtrCrypt(BytesView nonce, BytesView in, uint32_t initial_counter) const;
  U128 ComputeGhash(BytesView aad, BytesView ciphertext) const;
  void ComputeTag(BytesView nonce, BytesView aad, BytesView ciphertext, uint8_t tag[16]) const;

  Aes128 aes_;
  // byte_table_[b] = (polynomial of byte b) * H, bit 7 of b = coefficient
  // of x^0 within the byte (GCM's reflected bit order).
  U128 byte_table_[256];
};

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_GCM_H_
