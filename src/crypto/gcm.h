// AES-128-GCM authenticated encryption (NIST SP 800-38D).
#ifndef SRC_CRYPTO_GCM_H_
#define SRC_CRYPTO_GCM_H_

#include <atomic>
#include <cstdint>
#include <optional>

#include "src/common/bytes.h"
#include "src/crypto/aes.h"

namespace seal::crypto {

inline constexpr size_t kGcmTagSize = 16;
inline constexpr size_t kGcmNonceSize = 12;

// AES-128-GCM AEAD. One context per key; nonces must be unique per key
// (the TLS record layer derives them from the sequence number, the audit
// log from a GcmNonceSequence). Construction builds the AES key schedule
// and a 4 KB GHASH table, so callers on hot paths must cache the context
// instead of rebuilding it per message.
class Aes128Gcm {
 public:
  explicit Aes128Gcm(BytesView key);

  // Returns ciphertext || 16-byte tag. `nonce` must be 12 bytes.
  Bytes Seal(BytesView nonce, BytesView aad, BytesView plaintext) const;

  // Input is ciphertext || tag. Returns nullopt on authentication failure.
  std::optional<Bytes> Open(BytesView nonce, BytesView aad, BytesView ciphertext_and_tag) const;

  // Allocation-free variants. SealInto writes plaintext.size() + kGcmTagSize
  // bytes to `out`; OpenInto writes ciphertext_and_tag.size() - kGcmTagSize
  // bytes and returns false (touching nothing) on authentication failure.
  // `out` may not alias the input.
  void SealInto(BytesView nonce, BytesView aad, BytesView plaintext, uint8_t* out) const;
  bool OpenInto(BytesView nonce, BytesView aad, BytesView ciphertext_and_tag, uint8_t* out) const;

 private:
  struct U128 {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  // GHASH accumulation: acc = (acc ^ block) * H per 16-byte block of `data`
  // (zero-padded at the tail).
  void GhashBlocks(U128& acc, BytesView data) const;
  Bytes CtrCrypt(BytesView nonce, BytesView in, uint32_t initial_counter) const;
  void CtrCryptInto(BytesView nonce, BytesView in, uint32_t initial_counter, uint8_t* out) const;
  U128 ComputeGhash(BytesView aad, BytesView ciphertext) const;
  void ComputeTag(BytesView nonce, BytesView aad, BytesView ciphertext, uint8_t tag[16]) const;

  Aes128 aes_;
  // byte_table_[b] = (polynomial of byte b) * H, bit 7 of b = coefficient
  // of x^0 within the byte (GCM's reflected bit order).
  U128 byte_table_[256];
};

// Deterministic per-key nonce source: a random 32-bit prefix drawn once at
// construction plus a big-endian 64-bit counter fills GCM's 96 bits. The
// counter is atomic, so concurrent appenders get unique nonces without any
// lock (the per-record ProcessDrbg().Generate() it replaces serialised every
// producer behind the process-wide DRBG mutex). The prefix keeps sequences
// from distinct runs that share a key disjoint except with probability
// 2^-32 per run pair, the same birthday exposure as 96-bit random nonces at
// ~2^32 records.
class GcmNonceSequence {
 public:
  GcmNonceSequence();  // random prefix from the process DRBG
  explicit GcmNonceSequence(uint32_t prefix);  // fixed prefix (tests)

  GcmNonceSequence(const GcmNonceSequence&) = delete;
  GcmNonceSequence& operator=(const GcmNonceSequence&) = delete;

  // Writes the next unique 12-byte nonce. Thread-safe.
  void Next(uint8_t out[kGcmNonceSize]);
  Bytes Next();

  uint64_t issued() const { return counter_.load(std::memory_order_relaxed); }

 private:
  uint8_t prefix_[4];
  std::atomic<uint64_t> counter_{0};
};

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_GCM_H_
