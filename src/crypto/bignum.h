// Fixed-width 256/512-bit unsigned integer arithmetic for the P-256 curve.
//
// U256 is little-endian limbed (limb[0] = least significant 64 bits).
// The generic (slow) modular routines are used for scalar arithmetic mod the
// group order n, where only a handful of operations happen per signature;
// field arithmetic mod p uses the fast Solinas reduction in p256.cc.
#ifndef SRC_CRYPTO_BIGNUM_H_
#define SRC_CRYPTO_BIGNUM_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace seal::crypto {

struct U256 {
  uint64_t limb[4] = {0, 0, 0, 0};

  static U256 Zero() { return U256{}; }
  static U256 One() {
    U256 r;
    r.limb[0] = 1;
    return r;
  }
  static U256 FromUint64(uint64_t v) {
    U256 r;
    r.limb[0] = v;
    return r;
  }
  // Parses a 32-byte big-endian value (shorter inputs are left-padded).
  static U256 FromBytes(BytesView be);
  static U256 FromHexString(std::string_view hex);

  Bytes ToBytes() const;  // 32 bytes, big-endian.
  std::string ToHexString() const;

  bool IsZero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool IsOdd() const { return (limb[0] & 1) != 0; }
  bool GetBit(int i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  // Index of highest set bit, or -1 if zero.
  int BitLength() const;

  bool operator==(const U256& o) const {
    return limb[0] == o.limb[0] && limb[1] == o.limb[1] && limb[2] == o.limb[2] &&
           limb[3] == o.limb[3];
  }
};

struct U512 {
  uint64_t limb[8] = {0};
};

// a + b; *carry receives the out-going carry bit.
U256 Add(const U256& a, const U256& b, uint64_t* carry);
// a - b; *borrow receives the out-going borrow bit.
U256 Sub(const U256& a, const U256& b, uint64_t* borrow);
// -1, 0, +1 for a<b, a==b, a>b.
int Cmp(const U256& a, const U256& b);
// Full 256x256 -> 512 product.
U512 Mul(const U256& a, const U256& b);
// Left shift by 1 bit (bit 255 is discarded into *carry if non-null).
U256 Shl1(const U256& a, uint64_t* carry);
U256 Shr1(const U256& a);

// Generic (slow, binary) reduction of a 512-bit value modulo m (m != 0).
U256 Mod(const U512& a, const U256& m);
U256 Mod(const U256& a, const U256& m);

// (a * b) mod m and (a + b) mod m using the slow path; a, b must be < m.
U256 ModMul(const U256& a, const U256& b, const U256& m);
U256 ModAdd(const U256& a, const U256& b, const U256& m);
U256 ModSub(const U256& a, const U256& b, const U256& m);
// a^e mod m (square and multiply).
U256 ModExp(const U256& a, const U256& e, const U256& m);
// Modular inverse via Fermat for prime m: a^(m-2) mod m. a must be non-zero.
U256 ModInvPrime(const U256& a, const U256& m);
// Fast modular inverse via binary extended Euclid; m must be odd and
// gcd(a, m) == 1. This is the routine used on hot paths (ECDSA, point
// conversion); ModInvPrime is retained as a cross-check oracle for tests.
U256 ModInv(const U256& a, const U256& m);

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_BIGNUM_H_
