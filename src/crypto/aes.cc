#include "src/crypto/aes.h"

#include <cstring>

namespace seal::crypto {

namespace {

// The S-box and the four T-tables are derived programmatically at static
// initialisation time from the GF(2^8) arithmetic definition in FIPS 197,
// which avoids transcription errors in 256-entry constant tables.
struct AesTables {
  uint8_t sbox[256];
  uint32_t t0[256], t1[256], t2[256], t3[256];

  AesTables() {
    // Build log/antilog tables over GF(2^8) with generator 3.
    uint8_t pow[256], log[256];
    uint8_t x = 1;
    for (int i = 0; i < 256; ++i) {
      pow[i] = x;
      log[x] = static_cast<uint8_t>(i);
      // multiply x by 3 = x ^ (x<<1 mod poly)
      uint8_t xt = static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0));
      x = static_cast<uint8_t>(xt ^ x);
    }
    auto inv = [&](uint8_t a) -> uint8_t {
      if (a == 0) {
        return 0;
      }
      return pow[(255 - log[a]) % 255];
    };
    for (int i = 0; i < 256; ++i) {
      uint8_t q = inv(static_cast<uint8_t>(i));
      // Affine transform.
      uint8_t s = static_cast<uint8_t>(q ^ RotL8(q, 1) ^ RotL8(q, 2) ^ RotL8(q, 3) ^ RotL8(q, 4) ^
                                       0x63);
      sbox[i] = s;
      uint8_t s2 = Mul2(s);
      uint8_t s3 = static_cast<uint8_t>(s2 ^ s);
      // T0 row = [s*2, s, s, s*3] packed big-endian.
      t0[i] = (uint32_t{s2} << 24) | (uint32_t{s} << 16) | (uint32_t{s} << 8) | uint32_t{s3};
      t1[i] = (uint32_t{s3} << 24) | (uint32_t{s2} << 16) | (uint32_t{s} << 8) | uint32_t{s};
      t2[i] = (uint32_t{s} << 24) | (uint32_t{s3} << 16) | (uint32_t{s2} << 8) | uint32_t{s};
      t3[i] = (uint32_t{s} << 24) | (uint32_t{s} << 16) | (uint32_t{s3} << 8) | uint32_t{s2};
    }
  }

  static uint8_t RotL8(uint8_t v, int n) {
    return static_cast<uint8_t>((v << n) | (v >> (8 - n)));
  }
  static uint8_t Mul2(uint8_t v) {
    return static_cast<uint8_t>((v << 1) ^ ((v & 0x80) ? 0x1b : 0));
  }
};

const AesTables& Tables() {
  static const AesTables tables;
  return tables;
}

constexpr uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};

}  // namespace

Aes128::Aes128(BytesView key) {
  const AesTables& t = Tables();
  // Key expansion for AES-128: 44 32-bit round-key words.
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = seal::LoadBe32(key.data() + 4 * i);
  }
  for (int i = 4; i < 44; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      temp = (temp << 8) | (temp >> 24);
      temp = (uint32_t{t.sbox[(temp >> 24) & 0xff]} << 24) |
             (uint32_t{t.sbox[(temp >> 16) & 0xff]} << 16) |
             (uint32_t{t.sbox[(temp >> 8) & 0xff]} << 8) | uint32_t{t.sbox[temp & 0xff]};
      temp ^= uint32_t{kRcon[i / 4 - 1]} << 24;
    }
    round_keys_[i] = round_keys_[i - 4] ^ temp;
  }
}

void Aes128::EncryptBlock(const uint8_t in[kAesBlockSize], uint8_t out[kAesBlockSize]) const {
  const AesTables& t = Tables();
  uint32_t s0 = seal::LoadBe32(in) ^ round_keys_[0];
  uint32_t s1 = seal::LoadBe32(in + 4) ^ round_keys_[1];
  uint32_t s2 = seal::LoadBe32(in + 8) ^ round_keys_[2];
  uint32_t s3 = seal::LoadBe32(in + 12) ^ round_keys_[3];

  for (int round = 1; round < 10; ++round) {
    uint32_t n0 = t.t0[(s0 >> 24) & 0xff] ^ t.t1[(s1 >> 16) & 0xff] ^ t.t2[(s2 >> 8) & 0xff] ^
                  t.t3[s3 & 0xff] ^ round_keys_[4 * round];
    uint32_t n1 = t.t0[(s1 >> 24) & 0xff] ^ t.t1[(s2 >> 16) & 0xff] ^ t.t2[(s3 >> 8) & 0xff] ^
                  t.t3[s0 & 0xff] ^ round_keys_[4 * round + 1];
    uint32_t n2 = t.t0[(s2 >> 24) & 0xff] ^ t.t1[(s3 >> 16) & 0xff] ^ t.t2[(s0 >> 8) & 0xff] ^
                  t.t3[s1 & 0xff] ^ round_keys_[4 * round + 2];
    uint32_t n3 = t.t0[(s3 >> 24) & 0xff] ^ t.t1[(s0 >> 16) & 0xff] ^ t.t2[(s1 >> 8) & 0xff] ^
                  t.t3[s2 & 0xff] ^ round_keys_[4 * round + 3];
    s0 = n0;
    s1 = n1;
    s2 = n2;
    s3 = n3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  auto sub_shift = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d) -> uint32_t {
    return (uint32_t{t.sbox[(a >> 24) & 0xff]} << 24) | (uint32_t{t.sbox[(b >> 16) & 0xff]} << 16) |
           (uint32_t{t.sbox[(c >> 8) & 0xff]} << 8) | uint32_t{t.sbox[d & 0xff]};
  };
  uint32_t o0 = sub_shift(s0, s1, s2, s3) ^ round_keys_[40];
  uint32_t o1 = sub_shift(s1, s2, s3, s0) ^ round_keys_[41];
  uint32_t o2 = sub_shift(s2, s3, s0, s1) ^ round_keys_[42];
  uint32_t o3 = sub_shift(s3, s0, s1, s2) ^ round_keys_[43];
  seal::StoreBe32(out, o0);
  seal::StoreBe32(out + 4, o1);
  seal::StoreBe32(out + 8, o2);
  seal::StoreBe32(out + 12, o3);
}

}  // namespace seal::crypto
