#include "src/crypto/drbg.h"

#include <chrono>
#include <cstring>
#include <mutex>
#include <random>

#include "src/crypto/hmac.h"

namespace seal::crypto {

HmacDrbg::HmacDrbg() {
  std::random_device rd;
  Bytes seed;
  for (int i = 0; i < 12; ++i) {
    AppendBe32(seed, rd());
  }
  AppendBe64(seed, static_cast<uint64_t>(
                       std::chrono::steady_clock::now().time_since_epoch().count()));
  std::memset(k_, 0, sizeof(k_));
  std::memset(v_, 1, sizeof(v_));
  Update(seed);
}

HmacDrbg::HmacDrbg(BytesView seed) {
  std::memset(k_, 0, sizeof(k_));
  std::memset(v_, 1, sizeof(v_));
  Update(seed);
}

void HmacDrbg::Update(BytesView provided) {
  // K = HMAC(K, V || 0x00 || provided); V = HMAC(K, V)
  HmacSha256 h1(BytesView(k_, 32));
  h1.Update(BytesView(v_, 32));
  uint8_t zero = 0;
  h1.Update(BytesView(&zero, 1));
  h1.Update(provided);
  Sha256Digest nk = h1.Finish();
  std::memcpy(k_, nk.data(), 32);
  Sha256Digest nv = HmacSha256::Mac(BytesView(k_, 32), BytesView(v_, 32));
  std::memcpy(v_, nv.data(), 32);
  if (!provided.empty()) {
    HmacSha256 h2(BytesView(k_, 32));
    h2.Update(BytesView(v_, 32));
    uint8_t one = 1;
    h2.Update(BytesView(&one, 1));
    h2.Update(provided);
    Sha256Digest nk2 = h2.Finish();
    std::memcpy(k_, nk2.data(), 32);
    Sha256Digest nv2 = HmacSha256::Mac(BytesView(k_, 32), BytesView(v_, 32));
    std::memcpy(v_, nv2.data(), 32);
  }
}

Bytes HmacDrbg::Generate(size_t n) {
  Bytes out;
  while (out.size() < n) {
    Sha256Digest nv = HmacSha256::Mac(BytesView(k_, 32), BytesView(v_, 32));
    std::memcpy(v_, nv.data(), 32);
    out.insert(out.end(), v_, v_ + 32);
  }
  out.resize(n);
  Update({});
  return out;
}

void HmacDrbg::Reseed(BytesView extra) { Update(extra); }

namespace {
std::mutex g_drbg_mutex;
HmacDrbg& GlobalDrbg() {
  static HmacDrbg drbg;
  return drbg;
}
}  // namespace

Bytes ProcessDrbg::Generate(size_t n) {
  std::lock_guard<std::mutex> lock(g_drbg_mutex);
  return GlobalDrbg().Generate(n);
}

HmacDrbg& ThreadLocalDrbg() {
  // Seeded once per thread from the locked process DRBG; afterwards each
  // thread generates lock-free.
  thread_local HmacDrbg drbg = [] {
    Bytes seed = ProcessDrbg().Generate(48);
    return HmacDrbg(seed);
  }();
  return drbg;
}

}  // namespace seal::crypto
