#include "src/crypto/gcm.h"

#include <cstring>

#include "src/crypto/drbg.h"

namespace seal::crypto {

namespace {

// GCM interprets blocks as polynomials over GF(2) where the most significant
// bit of the 128-bit big-endian integer is the coefficient of x^0.
// Multiplying by x is therefore a right shift with conditional reduction by
// R = 0xE1 << 120 (x^128 = x^7 + x^2 + x + 1).

// Reduction values for shifting right by 8 bits: the shifted-out byte
// represents coefficients of x^128..x^135, which reduce to
// b(x) * (x^7 + x^2 + x + 1), a polynomial of degree <= 14 that lands in
// the top 16 bits of `hi`.
struct ReduceTable {
  uint16_t r[256];
  ReduceTable() {
    for (int b = 0; b < 256; ++b) {
      // After a right shift by 8, bit k (LSB = 0) of the out-going byte was
      // the coefficient of x^(127 - k); multiplied by x^8 it is x^(135 - k),
      // which reduces to x^(7 - k) * (x^7 + x^2 + x + 1).
      uint16_t acc = 0;
      for (int k = 0; k < 8; ++k) {
        if ((b >> k) & 1) {
          for (int d : {7, 2, 1, 0}) {
            int deg = (7 - k) + d;  // 0..14
            // Degree `deg` maps to bit (15 - deg) of the top 16 bits
            // (MSB of hi = x^0).
            acc ^= static_cast<uint16_t>(1u << (15 - deg));
          }
        }
      }
      r[b] = acc;
    }
  }
};

const ReduceTable& Reduce() {
  static const ReduceTable table;
  return table;
}

}  // namespace

Aes128Gcm::Aes128Gcm(BytesView key) : aes_(key) {
  uint8_t zero[16] = {0};
  uint8_t h[16];
  aes_.EncryptBlock(zero, h);

  byte_table_[0] = U128{};
  byte_table_[0x80] = U128{seal::LoadBe64(h), seal::LoadBe64(h + 8)};
  // Byte value 0x80 is the polynomial x^0 (within the byte); halving the
  // byte value shifts the coefficient up by one power of x.
  for (int i = 0x40; i >= 1; i >>= 1) {
    const U128& prev = byte_table_[i << 1];
    U128 next;
    bool carry = (prev.lo & 1) != 0;
    next.lo = (prev.lo >> 1) | (prev.hi << 63);
    next.hi = prev.hi >> 1;
    if (carry) {
      next.hi ^= 0xe100000000000000ULL;
    }
    byte_table_[i] = next;
  }
  for (int b = 2; b < 256; ++b) {
    if ((b & (b - 1)) == 0) {
      continue;  // powers of two already filled in
    }
    int low = b & (-b);
    byte_table_[b].hi = byte_table_[b ^ low].hi ^ byte_table_[low].hi;
    byte_table_[b].lo = byte_table_[b ^ low].lo ^ byte_table_[low].lo;
  }
}

void Aes128Gcm::GhashBlocks(U128& acc, BytesView data) const {
  const ReduceTable& red = Reduce();
  size_t off = 0;
  while (off < data.size()) {
    uint8_t block[16] = {0};
    size_t take = std::min<size_t>(16, data.size() - off);
    std::memcpy(block, data.data() + off, take);
    acc.hi ^= seal::LoadBe64(block);
    acc.lo ^= seal::LoadBe64(block + 8);

    // acc *= H, one byte at a time, starting from the byte holding the
    // highest powers of x (byte 15).
    uint8_t x[16];
    seal::StoreBe64(x, acc.hi);
    seal::StoreBe64(x + 8, acc.lo);
    U128 z;
    for (int j = 15; j >= 0; --j) {
      if (j != 15) {
        // z *= x^8: shift right by 8 and fold the out-going byte back in.
        uint8_t out_byte = static_cast<uint8_t>(z.lo & 0xff);
        z.lo = (z.lo >> 8) | (z.hi << 56);
        z.hi >>= 8;
        z.hi ^= static_cast<uint64_t>(red.r[out_byte]) << 48;
      }
      z.hi ^= byte_table_[x[j]].hi;
      z.lo ^= byte_table_[x[j]].lo;
    }
    acc = z;
    off += take;
  }
}

namespace {

// XORs `n` keystream bytes into dst eight bytes at a time. memcpy keeps the
// word loads alignment- and strict-aliasing-safe; compilers lower it to
// plain 64-bit moves.
inline void XorWords(const uint8_t* src, const uint8_t* ks, uint8_t* dst, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t a;
    uint64_t k;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&k, ks + i, 8);
    a ^= k;
    std::memcpy(dst + i, &a, 8);
  }
  for (; i < n; ++i) {
    dst[i] = src[i] ^ ks[i];
  }
}

}  // namespace

void Aes128Gcm::CtrCryptInto(BytesView nonce, BytesView in, uint32_t initial_counter,
                             uint8_t* out) const {
  uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), kGcmNonceSize);
  uint32_t counter = initial_counter;
  const size_t n = in.size();
  size_t off = 0;
  uint8_t keystream[64];
  // Four counter blocks per iteration: the keystream blocks are independent,
  // so the per-call setup (counter store, function dispatch) amortises and
  // the XOR runs word-wise over a 64-byte chunk.
  while (n - off >= 64) {
    for (int b = 0; b < 4; ++b) {
      seal::StoreBe32(counter_block + 12, counter++);
      aes_.EncryptBlock(counter_block, keystream + 16 * b);
    }
    XorWords(in.data() + off, keystream, out + off, 64);
    off += 64;
  }
  while (off < n) {
    seal::StoreBe32(counter_block + 12, counter++);
    aes_.EncryptBlock(counter_block, keystream);
    size_t take = std::min<size_t>(16, n - off);
    XorWords(in.data() + off, keystream, out + off, take);
    off += take;
  }
}

Bytes Aes128Gcm::CtrCrypt(BytesView nonce, BytesView in, uint32_t initial_counter) const {
  Bytes out(in.size());
  CtrCryptInto(nonce, in, initial_counter, out.data());
  return out;
}

Aes128Gcm::U128 Aes128Gcm::ComputeGhash(BytesView aad, BytesView ciphertext) const {
  U128 acc;
  GhashBlocks(acc, aad);
  GhashBlocks(acc, ciphertext);
  uint8_t lengths[16];
  seal::StoreBe64(lengths, static_cast<uint64_t>(aad.size()) * 8);
  seal::StoreBe64(lengths + 8, static_cast<uint64_t>(ciphertext.size()) * 8);
  GhashBlocks(acc, BytesView(lengths, 16));
  return acc;
}

void Aes128Gcm::ComputeTag(BytesView nonce, BytesView aad, BytesView ciphertext,
                           uint8_t tag[16]) const {
  U128 ghash = ComputeGhash(aad, ciphertext);
  uint8_t s[16];
  seal::StoreBe64(s, ghash.hi);
  seal::StoreBe64(s + 8, ghash.lo);
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kGcmNonceSize);
  seal::StoreBe32(j0 + 12, 1);
  uint8_t ek[16];
  aes_.EncryptBlock(j0, ek);
  for (int i = 0; i < 16; ++i) {
    tag[i] = s[i] ^ ek[i];
  }
}

void Aes128Gcm::SealInto(BytesView nonce, BytesView aad, BytesView plaintext,
                         uint8_t* out) const {
  CtrCryptInto(nonce, plaintext, 2, out);
  ComputeTag(nonce, aad, BytesView(out, plaintext.size()), out + plaintext.size());
}

bool Aes128Gcm::OpenInto(BytesView nonce, BytesView aad, BytesView ciphertext_and_tag,
                         uint8_t* out) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return false;
  }
  BytesView ciphertext = ciphertext_and_tag.subspan(0, ciphertext_and_tag.size() - kGcmTagSize);
  BytesView tag = ciphertext_and_tag.subspan(ciphertext_and_tag.size() - kGcmTagSize);
  uint8_t expected[16];
  ComputeTag(nonce, aad, ciphertext, expected);
  if (!ConstantTimeEqual(BytesView(expected, 16), tag)) {
    return false;
  }
  CtrCryptInto(nonce, ciphertext, 2, out);
  return true;
}

Bytes Aes128Gcm::Seal(BytesView nonce, BytesView aad, BytesView plaintext) const {
  Bytes out(plaintext.size() + kGcmTagSize);
  SealInto(nonce, aad, plaintext, out.data());
  return out;
}

std::optional<Bytes> Aes128Gcm::Open(BytesView nonce, BytesView aad,
                                     BytesView ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kGcmTagSize) {
    return std::nullopt;
  }
  Bytes out(ciphertext_and_tag.size() - kGcmTagSize);
  if (!OpenInto(nonce, aad, ciphertext_and_tag, out.data())) {
    return std::nullopt;
  }
  return out;
}

GcmNonceSequence::GcmNonceSequence() {
  Bytes prefix = ProcessDrbg().Generate(sizeof(prefix_));
  std::memcpy(prefix_, prefix.data(), sizeof(prefix_));
}

GcmNonceSequence::GcmNonceSequence(uint32_t prefix) { seal::StoreBe32(prefix_, prefix); }

void GcmNonceSequence::Next(uint8_t out[kGcmNonceSize]) {
  std::memcpy(out, prefix_, sizeof(prefix_));
  seal::StoreBe64(out + sizeof(prefix_), counter_.fetch_add(1, std::memory_order_relaxed));
}

Bytes GcmNonceSequence::Next() {
  Bytes out(kGcmNonceSize);
  Next(out.data());
  return out;
}

}  // namespace seal::crypto
