// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869) and the TLS 1.2 PRF (RFC 5246).
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/common/bytes.h"
#include "src/crypto/sha256.h"

namespace seal::crypto {

// Incremental HMAC-SHA256.
class HmacSha256 {
 public:
  explicit HmacSha256(BytesView key);

  void Update(BytesView data);
  Sha256Digest Finish();

  static Sha256Digest Mac(BytesView key, BytesView data);

 private:
  Sha256 inner_;
  uint8_t opad_key_[kSha256BlockSize];
};

// HKDF-Extract and HKDF-Expand with SHA-256.
Bytes HkdfExtract(BytesView salt, BytesView ikm);
Bytes HkdfExpand(BytesView prk, BytesView info, size_t length);

// TLS 1.2 PRF: P_SHA256(secret, label || seed) truncated to `length` bytes.
Bytes Tls12Prf(BytesView secret, std::string_view label, BytesView seed, size_t length);

}  // namespace seal::crypto

#endif  // SRC_CRYPTO_HMAC_H_
