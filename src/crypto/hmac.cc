#include "src/crypto/hmac.h"

#include <cstring>

namespace seal::crypto {

HmacSha256::HmacSha256(BytesView key) {
  uint8_t block_key[kSha256BlockSize] = {0};
  if (key.size() > kSha256BlockSize) {
    Sha256Digest d = Sha256::Hash(key);
    std::memcpy(block_key, d.data(), d.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }
  uint8_t ipad[kSha256BlockSize];
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad_key_[i] = block_key[i] ^ 0x5c;
  }
  inner_.Update(BytesView(ipad, kSha256BlockSize));
}

void HmacSha256::Update(BytesView data) { inner_.Update(data); }

Sha256Digest HmacSha256::Finish() {
  Sha256Digest inner_digest = inner_.Finish();
  Sha256 outer;
  outer.Update(BytesView(opad_key_, kSha256BlockSize));
  outer.Update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Sha256Digest HmacSha256::Mac(BytesView key, BytesView data) {
  HmacSha256 h(key);
  h.Update(data);
  return h.Finish();
}

Bytes HkdfExtract(BytesView salt, BytesView ikm) {
  Sha256Digest d = HmacSha256::Mac(salt, ikm);
  return Bytes(d.begin(), d.end());
}

Bytes HkdfExpand(BytesView prk, BytesView info, size_t length) {
  Bytes out;
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < length) {
    HmacSha256 h(prk);
    h.Update(t);
    h.Update(info);
    h.Update(BytesView(&counter, 1));
    Sha256Digest d = h.Finish();
    t.assign(d.begin(), d.end());
    Append(out, t);
    ++counter;
  }
  out.resize(length);
  return out;
}

Bytes Tls12Prf(BytesView secret, std::string_view label, BytesView seed, size_t length) {
  Bytes label_seed = ToBytes(label);
  Append(label_seed, seed);
  // P_SHA256: A(0) = label_seed; A(i) = HMAC(secret, A(i-1));
  // output = HMAC(secret, A(1) || label_seed) || HMAC(secret, A(2) || ...) ...
  Bytes out;
  Bytes a = label_seed;
  while (out.size() < length) {
    Sha256Digest ad = HmacSha256::Mac(secret, a);
    a.assign(ad.begin(), ad.end());
    HmacSha256 h(secret);
    h.Update(a);
    h.Update(label_seed);
    Sha256Digest block = h.Finish();
    out.insert(out.end(), block.begin(), block.end());
  }
  out.resize(length);
  return out;
}

}  // namespace seal::crypto
