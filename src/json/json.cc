#include "src/json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace seal::json {

const JsonValue& JsonValue::Get(std::string_view key) const {
  static const JsonValue kNull;
  if (!is_object()) {
    return kNull;
  }
  for (const auto& [k, v] : std::get<JsonObject>(v_)) {
    if (k == key) {
      return v;
    }
  }
  return kNull;
}

bool JsonValue::Has(std::string_view key) const {
  if (!is_object()) {
    return false;
  }
  for (const auto& [k, v] : std::get<JsonObject>(v_)) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

bool JsonValue::operator==(const JsonValue& o) const { return Dump() == o.Dump(); }

namespace {

void DumpString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void DumpValue(const JsonValue& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.AsBool() ? "true" : "false";
  } else if (v.is_number()) {
    double d = v.AsNumber();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      out += std::to_string(static_cast<int64_t>(d));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out += buf;
    }
  } else if (v.is_string()) {
    DumpString(v.AsString(), out);
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const JsonValue& e : v.AsArray()) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      DumpValue(e, out);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.AsObject()) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      DumpString(k, out);
      out.push_back(':');
      DumpValue(e, out);
    }
    out.push_back('}');
  }
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    auto v = ParseValue();
    if (!v.ok()) {
      return v;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters");
    }
    return v;
  }

 private:
  Status Err(std::string msg) {
    return InvalidArgument("JSON: " + msg + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Err("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{' || c == '[') {
      // The parser recurses per nesting level, so hostile input like
      // "[[[[..." must be bounded before it exhausts the stack.
      if (depth_ >= kMaxNestingDepth) {
        return Err("nesting too deep");
      }
      ++depth_;
      auto v = c == '{' ? ParseObject() : ParseArray();
      --depth_;
      return v;
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) {
        return s.status();
      }
      return JsonValue(std::move(*s));
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue(false);
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      if (c == '-') {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
              text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
              text_[pos_] == '-')) {
        ++pos_;
      }
      std::string num(text_.substr(start, pos_ - start));
      char* end = nullptr;
      double d = std::strtod(num.c_str(), &end);
      if (end != num.c_str() + num.size()) {
        return Err("malformed number");
      }
      return JsonValue(d);
    }
    return Err("unexpected character");
  }

  Result<std::string> ParseString() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Err("expected string");
    }
    ++pos_;
    std::string s;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return s;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          break;
        }
        char e = text_[pos_++];
        switch (e) {
          case '"':
            s.push_back('"');
            break;
          case '\\':
            s.push_back('\\');
            break;
          case '/':
            s.push_back('/');
            break;
          case 'n':
            s.push_back('\n');
            break;
          case 't':
            s.push_back('\t');
            break;
          case 'r':
            s.push_back('\r');
            break;
          case 'b':
            s.push_back('\b');
            break;
          case 'f':
            s.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Err("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // UTF-8 encode (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              s.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              s.push_back(static_cast<char>(0xc0 | (code >> 6)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              s.push_back(static_cast<char>(0xe0 | (code >> 12)));
              s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              s.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
        continue;
      }
      s.push_back(c);
      ++pos_;
    }
    return Err("unterminated string");
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonObject obj;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(obj));
    }
    for (;;) {
      auto key = ParseString();
      if (!key.ok()) {
        return key.status();
      }
      if (!Consume(':')) {
        return Err("expected ':'");
      }
      auto value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      obj.emplace_back(std::move(*key), std::move(*value));
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue(std::move(obj));
      }
      return Err("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonArray arr;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(arr));
    }
    for (;;) {
      auto value = ParseValue();
      if (!value.ok()) {
        return value;
      }
      arr.push_back(std::move(*value));
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue(std::move(arr));
      }
      return Err("expected ',' or ']'");
    }
  }

  static constexpr int kMaxNestingDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string JsonValue::Dump() const {
  std::string out;
  DumpValue(*this, out);
  return out;
}

Result<JsonValue> Parse(std::string_view text) { return JsonParser(text).Parse(); }

}  // namespace seal::json
