// Minimal JSON parser/serializer. Used by the ownCloud and Dropbox
// service-specific modules to parse document-sync and metadata messages.
#ifndef SRC_JSON_JSON_H_
#define SRC_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace seal::json {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
// Object preserves insertion order (services care about readable output).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  JsonValue() : v_(nullptr) {}                                  // null
  JsonValue(bool b) : v_(b) {}                                  // NOLINT
  JsonValue(double d) : v_(d) {}                                // NOLINT
  JsonValue(int64_t i) : v_(static_cast<double>(i)) {}          // NOLINT
  JsonValue(int i) : v_(static_cast<double>(i)) {}              // NOLINT
  JsonValue(const char* s) : v_(std::string(s)) {}              // NOLINT
  JsonValue(std::string s) : v_(std::move(s)) {}                // NOLINT
  JsonValue(JsonArray a) : v_(std::move(a)) {}                  // NOLINT
  JsonValue(JsonObject o) : v_(std::move(o)) {}                 // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }

  bool AsBool() const { return is_bool() && std::get<bool>(v_); }
  double AsNumber() const { return is_number() ? std::get<double>(v_) : 0.0; }
  int64_t AsInt() const { return static_cast<int64_t>(AsNumber()); }
  const std::string& AsString() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(v_) : kEmpty;
  }
  const JsonArray& AsArray() const {
    static const JsonArray kEmpty;
    return is_array() ? std::get<JsonArray>(v_) : kEmpty;
  }
  const JsonObject& AsObject() const {
    static const JsonObject kEmpty;
    return is_object() ? std::get<JsonObject>(v_) : kEmpty;
  }

  // Object field lookup; returns null value when absent or not an object.
  const JsonValue& Get(std::string_view key) const;
  bool Has(std::string_view key) const;

  // Compact serialisation.
  std::string Dump() const;

  bool operator==(const JsonValue& o) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v_;
};

// Parses a complete JSON document.
Result<JsonValue> Parse(std::string_view text);

// Convenience builder: Obj({{"k", v}, ...}).
inline JsonValue Obj(JsonObject o) { return JsonValue(std::move(o)); }
inline JsonValue Arr(JsonArray a) { return JsonValue(std::move(a)); }

}  // namespace seal::json

#endif  // SRC_JSON_JSON_H_
