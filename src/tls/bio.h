// BIO: the byte-transport abstraction under the TLS protocol engine.
// Mirrors OpenSSL's BIO in role: in LibSEAL the BIO lives OUTSIDE the
// enclave (paper Fig. 2) while the protocol state lives inside; the
// enclave reaches its BIO through ocalls.
#ifndef SRC_TLS_BIO_H_
#define SRC_TLS_BIO_H_

#include <memory>

#include "src/common/bytes.h"
#include "src/net/net.h"

namespace seal::tls {

class Bio {
 public:
  virtual ~Bio() = default;

  // Reads up to `max` bytes, blocking for at least one; 0 = EOF.
  virtual size_t Read(uint8_t* buf, size_t max) = 0;
  // Writes all bytes; returns false on a broken transport.
  virtual bool Write(BytesView data) = 0;
  virtual void Close() = 0;
};

// BIO over an in-memory network stream.
class StreamBio : public Bio {
 public:
  explicit StreamBio(net::Stream* stream) : stream_(stream) {}

  size_t Read(uint8_t* buf, size_t max) override { return stream_->Read(buf, max); }
  bool Write(BytesView data) override {
    stream_->Write(data);
    return true;
  }
  void Close() override { stream_->Close(); }

 private:
  net::Stream* stream_;
};

}  // namespace seal::tls

#endif  // SRC_TLS_BIO_H_
