// X.509-lite certificates: subject/issuer identities bound to P-256 public
// keys with ECDSA signatures. Enough structure for CA issuance, server
// authentication and TLS client authentication (§6.3 "Impersonating
// clients"), without ASN.1.
#ifndef SRC_TLS_X509_H_
#define SRC_TLS_X509_H_

#include <optional>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/ecdsa.h"

namespace seal::tls {

struct Certificate {
  std::string subject;
  std::string issuer;
  Bytes public_key;  // SEC1 uncompressed P-256 point (65 bytes)
  uint64_t serial = 0;
  crypto::EcdsaSignature signature;

  // The to-be-signed portion.
  Bytes Tbs() const;
  Bytes Encode() const;
  static Result<Certificate> Decode(BytesView in);

  // Parses the embedded public key.
  std::optional<crypto::EcdsaPublicKey> Key() const;

  bool self_signed() const { return subject == issuer; }
};

// A certificate plus its private key.
struct CertifiedKey {
  Certificate cert;
  crypto::EcdsaPrivateKey key;
};

// Creates a self-signed CA.
CertifiedKey MakeSelfSignedCa(const std::string& subject, const crypto::EcdsaPrivateKey& key);

// Issues a leaf certificate for `subject_key`'s public key, signed by `ca`.
Certificate IssueCertificate(const CertifiedKey& ca, const std::string& subject,
                             const crypto::EcdsaPublicKey& subject_key, uint64_t serial);

// Verifies that `cert` is correctly signed by `ca` (or self-signed by a key
// equal to the CA's when cert == root).
Status VerifyCertificate(const Certificate& cert, const Certificate& ca);

}  // namespace seal::tls

#endif  // SRC_TLS_X509_H_
