#include "src/tls/record.h"

#include <cstring>

#include "src/obs/obs.h"

namespace seal::tls {

RecordCipher::RecordCipher(BytesView key, BytesView implicit_iv) : gcm_(key) {
  std::memcpy(implicit_iv_, implicit_iv.data(), 4);
}

Bytes RecordCipher::Nonce(uint64_t seq) const {
  Bytes nonce(12);
  std::memcpy(nonce.data(), implicit_iv_, 4);
  StoreBe64(nonce.data() + 4, seq);
  return nonce;
}

Bytes RecordCipher::Aad(uint64_t seq, RecordType type, size_t length) const {
  Bytes aad(13);
  StoreBe64(aad.data(), seq);
  aad[8] = static_cast<uint8_t>(type);
  aad[9] = static_cast<uint8_t>(kTlsVersion >> 8);
  aad[10] = static_cast<uint8_t>(kTlsVersion & 0xff);
  aad[11] = static_cast<uint8_t>(length >> 8);
  aad[12] = static_cast<uint8_t>(length & 0xff);
  return aad;
}

Bytes RecordCipher::Protect(RecordType type, BytesView plaintext) {
  uint64_t seq = seq_++;
  Bytes nonce = Nonce(seq);
  Bytes aad = Aad(seq, type, plaintext.size());
  Bytes sealed = gcm_.Seal(nonce, aad, plaintext);
  // Prepend the explicit nonce (the sequence number).
  Bytes out(8);
  StoreBe64(out.data(), seq);
  Append(out, sealed);
  return out;
}

Result<Bytes> RecordCipher::Unprotect(RecordType type, BytesView ciphertext) {
  if (ciphertext.size() < 8 + crypto::kGcmTagSize) {
    return DataLoss("protected record too short");
  }
  uint64_t explicit_seq = LoadBe64(ciphertext.data());
  if (explicit_seq != seq_) {
    return PermissionDenied("record sequence mismatch: replay or reorder");
  }
  ++seq_;
  Bytes nonce = Nonce(explicit_seq);
  size_t plain_len = ciphertext.size() - 8 - crypto::kGcmTagSize;
  Bytes aad = Aad(explicit_seq, type, plain_len);
  auto opened = gcm_.Open(nonce, aad, ciphertext.subspan(8));
  if (!opened.has_value()) {
    return PermissionDenied("record authentication failed");
  }
  return *opened;
}

void RecordLayer::EnableWriteProtection(BytesView key, BytesView implicit_iv) {
  write_cipher_ = std::make_unique<RecordCipher>(key, implicit_iv);
}

void RecordLayer::EnableReadProtection(BytesView key, BytesView implicit_iv) {
  read_cipher_ = std::make_unique<RecordCipher>(key, implicit_iv);
}

Status RecordLayer::WriteRecord(RecordType type, BytesView payload) {
  Bytes wire_payload;
  if (write_cipher_ != nullptr) {
    wire_payload = write_cipher_->Protect(type, payload);
  } else {
    wire_payload.assign(payload.begin(), payload.end());
  }
  if (wire_payload.size() > 0xffff) {
    return InvalidArgument("record too large");
  }
  Bytes header(5);
  header[0] = static_cast<uint8_t>(type);
  header[1] = static_cast<uint8_t>(kTlsVersion >> 8);
  header[2] = static_cast<uint8_t>(kTlsVersion & 0xff);
  header[3] = static_cast<uint8_t>(wire_payload.size() >> 8);
  header[4] = static_cast<uint8_t>(wire_payload.size() & 0xff);
  if (!bio_->Write(header) || !bio_->Write(wire_payload)) {
    return Unavailable("transport write failed");
  }
  bytes_out_ += header.size() + wire_payload.size();
  SEAL_OBS_COUNTER("tls_records_out_total").Increment();
  SEAL_OBS_COUNTER("tls_record_bytes_out_total").Add(header.size() + wire_payload.size());
  return Status::Ok();
}

Status RecordLayer::WriteAll(RecordType type, BytesView payload) {
  size_t off = 0;
  do {
    size_t take = std::min(kMaxRecordPayload, payload.size() - off);
    SEAL_RETURN_IF_ERROR(WriteRecord(type, payload.subspan(off, take)));
    off += take;
  } while (off < payload.size());
  return Status::Ok();
}

Result<Record> RecordLayer::ReadRecord() {
  uint8_t header[5];
  size_t got = 0;
  while (got < 5) {
    size_t n = bio_->Read(header + got, 5 - got);
    if (n == 0) {
      return DataLoss("EOF before record header");
    }
    got += n;
  }
  uint16_t version = static_cast<uint16_t>((header[1] << 8) | header[2]);
  if (version != kTlsVersion) {
    return InvalidArgument("unsupported record version");
  }
  size_t length = static_cast<size_t>((header[3] << 8) | header[4]);
  Bytes payload(length);
  got = 0;
  while (got < length) {
    size_t n = bio_->Read(payload.data() + got, length - got);
    if (n == 0) {
      return DataLoss("EOF inside record body");
    }
    got += n;
  }
  bytes_in_ += 5 + length;
  SEAL_OBS_COUNTER("tls_records_in_total").Increment();
  SEAL_OBS_COUNTER("tls_record_bytes_in_total").Add(5 + length);
  Record record;
  record.type = static_cast<RecordType>(header[0]);
  if (record.type != RecordType::kAlert && record.type != RecordType::kHandshake &&
      record.type != RecordType::kApplicationData) {
    return InvalidArgument("unknown record type");
  }
  if (read_cipher_ != nullptr) {
    auto plain = read_cipher_->Unprotect(record.type, payload);
    if (!plain.ok()) {
      return plain.status();
    }
    record.payload = std::move(*plain);
  } else {
    record.payload = std::move(payload);
  }
  return record;
}

}  // namespace seal::tls
