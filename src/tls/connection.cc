#include <cstring>

#include "src/common/clock.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/obs/obs.h"
#include "src/tls/tls.h"

namespace seal::tls {

namespace {
constexpr size_t kRandomSize = 32;
constexpr size_t kMasterSecretSize = 48;
constexpr size_t kVerifyDataSize = 12;

void CountResumptionMiss(const char* reason) {
  // Dynamic label, so intern through the registry rather than the
  // static-caching SEAL_OBS_COUNTER macro (which would pin the first name).
  obs::Registry::Global()
      .GetCounter(std::string("tls_resumption_misses_total{reason=\"") + reason + "\"}")
      .Increment();
}

const char* MissReasonName(SessionMissReason reason) {
  switch (reason) {
    case SessionMissReason::kUnknown:
      return "unknown";
    case SessionMissReason::kEvicted:
      return "evicted";
    case SessionMissReason::kExpired:
      return "expired";
  }
  return "unknown";
}
}  // namespace

TlsConnection::TlsConnection(Bio* bio, const TlsConfig* config, Role role)
    : config_(config), role_(role), record_layer_(bio) {}

void TlsConnection::Notify(InfoEvent event, int bytes) {
  if (info_callback_) {
    info_callback_(event, bytes);
  }
}

void TlsConnection::OfferSession(const TlsSession& session) {
  if (!session.valid()) {
    return;
  }
  offered_session_ = session;
}

Status TlsConnection::SendHandshakeMessage(HsType type, BytesView body) {
  Bytes msg;
  msg.push_back(static_cast<uint8_t>(type));
  AppendBe24(msg, static_cast<uint32_t>(body.size()));
  Append(msg, body);
  transcript_hash_.Update(msg);
  return record_layer_.WriteAll(RecordType::kHandshake, msg);
}

Result<std::pair<TlsConnection::HsType, Bytes>> TlsConnection::ReadHandshakeMessage() {
  // Handshake messages may span records; accumulate until one full message
  // is available.
  while (true) {
    if (pending_plaintext_.size() - pending_offset_ >= 4) {
      const uint8_t* p = pending_plaintext_.data() + pending_offset_;
      size_t body_len = (static_cast<size_t>(p[1]) << 16) | (static_cast<size_t>(p[2]) << 8) |
                        static_cast<size_t>(p[3]);
      if (pending_plaintext_.size() - pending_offset_ >= 4 + body_len) {
        HsType type = static_cast<HsType>(p[0]);
        // Snapshot the transcript state first: Finished verification hashes
        // the transcript EXCLUDING the message being verified.
        transcript_before_last_read_ = transcript_hash_;
        transcript_hash_.Update(BytesView(p, 4 + body_len));
        Bytes body(p + 4, p + 4 + body_len);
        pending_offset_ += 4 + body_len;
        if (pending_offset_ == pending_plaintext_.size()) {
          pending_plaintext_.clear();
          pending_offset_ = 0;
        }
        return std::make_pair(type, std::move(body));
      }
    }
    auto record = record_layer_.ReadRecord();
    if (!record.ok()) {
      return record.status();
    }
    if (record->type == RecordType::kAlert) {
      return DataLoss("peer sent alert during handshake");
    }
    if (record->type != RecordType::kHandshake) {
      return InvalidArgument("unexpected record type during handshake");
    }
    Append(pending_plaintext_, record->payload);
  }
}

void TlsConnection::AdoptMasterSecret(Bytes master_secret) {
  master_secret_ = std::move(master_secret);
  crypto::Sha256Digest sid = crypto::Sha256::Hash(master_secret_);
  session_id_.assign(sid.begin(), sid.begin() + 16);
}

void TlsConnection::DeriveKeys(BytesView pre_master_secret) {
  Bytes randoms = client_random_;
  Append(randoms, server_random_);
  AdoptMasterSecret(
      crypto::Tls12Prf(pre_master_secret, "master secret", randoms, kMasterSecretSize));
}

Bytes TlsConnection::DeriveKeyBlock() const {
  Bytes randoms = server_random_;
  Append(randoms, client_random_);
  return crypto::Tls12Prf(master_secret_, "key expansion", randoms, 40);
}

Bytes TlsConnection::FinishedPayload(std::string_view label) const {
  crypto::Sha256 transcript = transcript_hash_;
  crypto::Sha256Digest transcript_hash = transcript.Finish();
  return crypto::Tls12Prf(master_secret_, label,
                          BytesView(transcript_hash.data(), transcript_hash.size()),
                          kVerifyDataSize);
}

Status TlsConnection::SendFinished(std::string_view label) {
  Bytes verify_data = FinishedPayload(label);
  return SendHandshakeMessage(HsType::kFinished, verify_data);
}

Status TlsConnection::CheckFinished(std::string_view label, BytesView received) {
  // The expected value is computed over the transcript EXCLUDING the
  // received Finished message itself, which ReadHandshakeMessage has
  // already absorbed -- so hash from the snapshot taken just before it.
  crypto::Sha256 transcript = transcript_before_last_read_;
  crypto::Sha256Digest transcript_hash = transcript.Finish();
  Bytes expected = crypto::Tls12Prf(master_secret_, label,
                                    BytesView(transcript_hash.data(), transcript_hash.size()),
                                    kVerifyDataSize);
  if (!ConstantTimeEqual(expected, received)) {
    return PermissionDenied("Finished verification failed");
  }
  return Status::Ok();
}

Status TlsConnection::Handshake() {
  if (handshake_complete_) {
    // Would be a renegotiation; the protocol engine does not support one,
    // but the attempt itself is worth counting (§6.3 probes for it).
    SEAL_OBS_COUNTER("tls_renegotiations_total").Increment();
  }
  SEAL_OBS_COUNTER("tls_handshakes_started_total").Increment();
  Notify(InfoEvent::kHandshakeStart, 0);
  int64_t start = NowNanos();
  Status status = role_ == Role::kClient ? HandshakeClient() : HandshakeServer();
  if (status.ok()) {
    handshake_complete_ = true;
    uint64_t elapsed = static_cast<uint64_t>(NowNanos() - start);
    if (resumed_) {
      SEAL_OBS_HISTOGRAM("tls_handshake_abbreviated_nanos").Observe(elapsed);
    } else {
      SEAL_OBS_HISTOGRAM("tls_handshake_full_nanos").Observe(elapsed);
    }
    SEAL_OBS_COUNTER("tls_handshakes_completed_total").Increment();
    Notify(InfoEvent::kHandshakeDone, 0);
  } else {
    SEAL_OBS_COUNTER("tls_handshakes_failed_total").Increment();
    // Tear the transport down so the peer unblocks with EOF instead of
    // waiting for a flight that will never come.
    closed_ = true;
    record_layer_.CloseBio();
    Notify(InfoEvent::kClosed, 0);
  }
  return status;
}

// Abbreviated flow (client side), entered once the ServerHello echoed the
// offered id: both sides already share the master secret, so only new
// randoms and the Finished exchange are needed. The server speaks first.
Status TlsConnection::HandshakeClientAbbreviated() {
  resumed_ = true;
  AdoptMasterSecret(offered_session_.master_secret);
  Bytes key_block = DeriveKeyBlock();
  BytesView kb = key_block;
  record_layer_.EnableReadProtection(kb.subspan(16, 16), kb.subspan(36, 4));

  auto fin = ReadHandshakeMessage();
  if (!fin.ok()) {
    return fin.status();
  }
  if (fin->first != HsType::kFinished) {
    return InvalidArgument("expected Finished");
  }
  SEAL_RETURN_IF_ERROR(CheckFinished("server finished", fin->second));

  record_layer_.EnableWriteProtection(kb.subspan(0, 16), kb.subspan(32, 4));
  return SendFinished("client finished");
}

Status TlsConnection::HandshakeClient() {
  client_random_ = crypto::ThreadLocalDrbg().Generate(kRandomSize);
  // ClientHello: random || session-id length || session id (empty when the
  // client has nothing to resume).
  Bytes hello = client_random_;
  hello.push_back(static_cast<uint8_t>(offered_session_.id.size()));
  Append(hello, offered_session_.id);
  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kClientHello, hello));

  // ServerHello: random, optionally followed by the echoed session id when
  // the server accepts resumption. A bare 32-byte body means a full
  // handshake.
  auto sh = ReadHandshakeMessage();
  if (!sh.ok()) {
    return sh.status();
  }
  if (sh->first != HsType::kServerHello || sh->second.size() < kRandomSize) {
    return InvalidArgument("expected ServerHello");
  }
  server_random_.assign(sh->second.begin(), sh->second.begin() + kRandomSize);
  if (sh->second.size() > kRandomSize) {
    size_t sid_len = sh->second[kRandomSize];
    if (sid_len > kMaxSessionIdSize || sh->second.size() != kRandomSize + 1 + sid_len) {
      return InvalidArgument("malformed ServerHello session id");
    }
    if (sid_len > 0) {
      BytesView echoed = BytesView(sh->second).subspan(kRandomSize + 1, sid_len);
      if (offered_session_.id.empty() ||
          !ConstantTimeEqual(echoed, offered_session_.id)) {
        return PermissionDenied("server echoed a session id that was not offered");
      }
      return HandshakeClientAbbreviated();
    }
  }

  // Certificate.
  auto cert_msg = ReadHandshakeMessage();
  if (!cert_msg.ok()) {
    return cert_msg.status();
  }
  if (cert_msg->first != HsType::kCertificate) {
    return InvalidArgument("expected Certificate");
  }
  auto server_cert = Certificate::Decode(cert_msg->second);
  if (!server_cert.ok()) {
    return server_cert.status();
  }
  if (config_->verify_peer) {
    bool trusted = false;
    for (const Certificate& root : config_->trusted_roots) {
      if (VerifyCertificate(*server_cert, root).ok()) {
        trusted = true;
        break;
      }
    }
    if (!trusted) {
      return PermissionDenied("server certificate not trusted");
    }
  }
  peer_certificate_ = *server_cert;
  auto server_key = server_cert->Key();
  if (!server_key.has_value()) {
    return PermissionDenied("server certificate key malformed");
  }

  // ServerKeyExchange: ephemeral point + signature.
  auto ske = ReadHandshakeMessage();
  if (!ske.ok()) {
    return ske.status();
  }
  if (ske->first != HsType::kServerKeyExchange || ske->second.size() != 65 + 64) {
    return InvalidArgument("expected ServerKeyExchange");
  }
  BytesView server_point_bytes = BytesView(ske->second).subspan(0, 65);
  auto sig = crypto::EcdsaSignature::Decode(BytesView(ske->second).subspan(65, 64));
  if (!sig.has_value()) {
    return InvalidArgument("malformed SKE signature");
  }
  Bytes signed_blob = client_random_;
  Append(signed_blob, server_random_);
  Append(signed_blob, server_point_bytes);
  if (config_->verify_peer && !server_key->Verify(signed_blob, *sig)) {
    return PermissionDenied("ServerKeyExchange signature invalid");
  }
  auto server_point = crypto::AffinePoint::Decode(server_point_bytes);
  if (!server_point.has_value()) {
    return InvalidArgument("invalid server ECDHE point");
  }

  // Optional CertificateRequest, then ServerHelloDone.
  bool client_cert_requested = false;
  auto next = ReadHandshakeMessage();
  if (!next.ok()) {
    return next.status();
  }
  if (next->first == HsType::kCertificateRequest) {
    client_cert_requested = true;
    next = ReadHandshakeMessage();
    if (!next.ok()) {
      return next.status();
    }
  }
  if (next->first != HsType::kServerHelloDone) {
    return InvalidArgument("expected ServerHelloDone");
  }

  // Client certificate if requested.
  if (client_cert_requested) {
    if (!config_->certificate.has_value() || !config_->private_key.has_value()) {
      return FailedPrecondition("server requires a client certificate but none is configured");
    }
    SEAL_RETURN_IF_ERROR(
        SendHandshakeMessage(HsType::kCertificate, config_->certificate->Encode()));
  }

  // ClientKeyExchange: our ephemeral point.
  crypto::EcdsaPrivateKey ephemeral = crypto::EcdsaPrivateKey::Generate();
  Bytes client_point = ephemeral.public_key().Encode();
  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kClientKeyExchange, client_point));

  // CertificateVerify: proves possession of the client key over the
  // transcript so far.
  if (client_cert_requested) {
    crypto::Sha256 covered = transcript_hash_;
    crypto::EcdsaSignature cv = config_->private_key->SignDigest(covered.Finish());
    SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kCertificateVerify, cv.Encode()));
  }

  auto shared = crypto::EcdhSharedSecret(ephemeral.scalar(), *server_point);
  if (!shared.has_value()) {
    return PermissionDenied("ECDH failed");
  }
  DeriveKeys(*shared);
  Bytes key_block = DeriveKeyBlock();
  BytesView kb = key_block;
  // client_write_key, server_write_key, client_iv, server_iv.
  record_layer_.EnableWriteProtection(kb.subspan(0, 16), kb.subspan(32, 4));
  SEAL_RETURN_IF_ERROR(SendFinished("client finished"));
  record_layer_.EnableReadProtection(kb.subspan(16, 16), kb.subspan(36, 4));

  auto fin = ReadHandshakeMessage();
  if (!fin.ok()) {
    return fin.status();
  }
  if (fin->first != HsType::kFinished) {
    return InvalidArgument("expected Finished");
  }
  return CheckFinished("server finished", fin->second);
}

// Abbreviated flow (server side): echo the session id, rederive keys from
// the cached master secret, exchange Finished. Skips the certificate,
// ServerKeyExchange (ECDHE + ECDSA sign), ClientKeyExchange and
// CertificateVerify flights entirely.
Status TlsConnection::HandshakeServerAbbreviated(Bytes cached_master_secret) {
  resumed_ = true;
  Status status = HandshakeServerAbbreviatedInner(std::move(cached_master_secret));
  if (status.ok()) {
    SEAL_OBS_COUNTER("tls_resumptions_total").Increment();
  } else if (config_->session_cache != nullptr) {
    // A failed resumption attempt (bad Finished, peer that cannot actually
    // decrypt, transport death mid-flight) burns the session: a client that
    // offers the right id without the master secret is probing, and a
    // half-torn session should not be retried either.
    config_->session_cache->Remove(offered_session_.id);
  }
  return status;
}

Status TlsConnection::HandshakeServerAbbreviatedInner(Bytes cached_master_secret) {
  Bytes hello = server_random_;
  hello.push_back(static_cast<uint8_t>(offered_session_.id.size()));
  Append(hello, offered_session_.id);
  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kServerHello, hello));

  AdoptMasterSecret(std::move(cached_master_secret));
  Bytes key_block = DeriveKeyBlock();
  BytesView kb = key_block;
  record_layer_.EnableWriteProtection(kb.subspan(16, 16), kb.subspan(36, 4));
  SEAL_RETURN_IF_ERROR(SendFinished("server finished"));
  record_layer_.EnableReadProtection(kb.subspan(0, 16), kb.subspan(32, 4));

  auto fin = ReadHandshakeMessage();
  if (!fin.ok()) {
    return fin.status();
  }
  if (fin->first != HsType::kFinished) {
    return InvalidArgument("expected Finished");
  }
  return CheckFinished("client finished", fin->second);
}

Status TlsConnection::HandshakeServer() {
  if (!config_->certificate.has_value() || !config_->private_key.has_value()) {
    return FailedPrecondition("server requires a certificate and key");
  }

  auto ch = ReadHandshakeMessage();
  if (!ch.ok()) {
    return ch.status();
  }
  // ClientHello: random, optionally followed by an offered session id
  // (length-prefixed). A bare 32-byte body offers nothing.
  if (ch->first != HsType::kClientHello || ch->second.size() < kRandomSize) {
    return InvalidArgument("expected ClientHello");
  }
  client_random_.assign(ch->second.begin(), ch->second.begin() + kRandomSize);
  if (ch->second.size() > kRandomSize) {
    size_t sid_len = ch->second[kRandomSize];
    if (sid_len > kMaxSessionIdSize || ch->second.size() != kRandomSize + 1 + sid_len) {
      return InvalidArgument("malformed ClientHello session id");
    }
    offered_session_.id.assign(ch->second.begin() + kRandomSize + 1, ch->second.end());
  }
  server_random_ = crypto::ThreadLocalDrbg().Generate(kRandomSize);

  // Resumption attempt: consult the session cache.
  if (!offered_session_.id.empty()) {
    if (config_->session_cache == nullptr) {
      CountResumptionMiss("disabled");
    } else {
      SessionMissReason reason = SessionMissReason::kUnknown;
      auto secret = config_->session_cache->Lookup(offered_session_.id, &reason);
      if (secret.has_value()) {
        return HandshakeServerAbbreviated(std::move(*secret));
      }
      CountResumptionMiss(MissReasonName(reason));
    }
  }

  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kServerHello, server_random_));
  SEAL_RETURN_IF_ERROR(
      SendHandshakeMessage(HsType::kCertificate, config_->certificate->Encode()));

  // ServerKeyExchange.
  crypto::EcdsaPrivateKey ephemeral = crypto::EcdsaPrivateKey::Generate();
  Bytes point = ephemeral.public_key().Encode();
  Bytes signed_blob = client_random_;
  Append(signed_blob, server_random_);
  Append(signed_blob, point);
  crypto::EcdsaSignature sig = config_->private_key->Sign(signed_blob);
  Bytes ske = point;
  Append(ske, sig.Encode());
  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kServerKeyExchange, ske));

  if (config_->require_client_certificate) {
    SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kCertificateRequest, {}));
  }
  SEAL_RETURN_IF_ERROR(SendHandshakeMessage(HsType::kServerHelloDone, {}));

  // Client certificate (if demanded).
  std::optional<crypto::EcdsaPublicKey> client_key;
  auto msg = ReadHandshakeMessage();
  if (!msg.ok()) {
    return msg.status();
  }
  if (config_->require_client_certificate) {
    if (msg->first != HsType::kCertificate) {
      return PermissionDenied("client did not present a certificate");
    }
    auto client_cert = Certificate::Decode(msg->second);
    if (!client_cert.ok()) {
      return client_cert.status();
    }
    bool trusted = false;
    for (const Certificate& root : config_->trusted_roots) {
      if (VerifyCertificate(*client_cert, root).ok()) {
        trusted = true;
        break;
      }
    }
    if (!trusted) {
      return PermissionDenied("client certificate not trusted");
    }
    peer_certificate_ = *client_cert;
    client_key = client_cert->Key();
    if (!client_key.has_value()) {
      return PermissionDenied("client certificate key malformed");
    }
    msg = ReadHandshakeMessage();
    if (!msg.ok()) {
      return msg.status();
    }
  }

  // ClientKeyExchange.
  if (msg->first != HsType::kClientKeyExchange || msg->second.size() != 65) {
    return InvalidArgument("expected ClientKeyExchange");
  }
  auto client_point = crypto::AffinePoint::Decode(msg->second);
  if (!client_point.has_value()) {
    return InvalidArgument("invalid client ECDHE point");
  }

  // CertificateVerify.
  if (config_->require_client_certificate) {
    // Signature covers the transcript up to (and including) CKE but not the
    // CertificateVerify message itself.
    crypto::Sha256 covered = transcript_hash_;
    auto cv = ReadHandshakeMessage();
    if (!cv.ok()) {
      return cv.status();
    }
    if (cv->first != HsType::kCertificateVerify || cv->second.size() != 64) {
      return InvalidArgument("expected CertificateVerify");
    }
    auto cv_sig = crypto::EcdsaSignature::Decode(cv->second);
    if (!cv_sig.has_value() || !client_key->VerifyDigest(covered.Finish(), *cv_sig)) {
      return PermissionDenied("CertificateVerify failed: client key not proven");
    }
  }

  auto shared = crypto::EcdhSharedSecret(ephemeral.scalar(), *client_point);
  if (!shared.has_value()) {
    return PermissionDenied("ECDH failed");
  }
  DeriveKeys(*shared);
  Bytes key_block = DeriveKeyBlock();
  BytesView kb = key_block;
  record_layer_.EnableReadProtection(kb.subspan(0, 16), kb.subspan(32, 4));

  auto fin = ReadHandshakeMessage();
  if (!fin.ok()) {
    return fin.status();
  }
  if (fin->first != HsType::kFinished) {
    return InvalidArgument("expected Finished");
  }
  SEAL_RETURN_IF_ERROR(CheckFinished("client finished", fin->second));

  record_layer_.EnableWriteProtection(kb.subspan(16, 16), kb.subspan(36, 4));
  SEAL_RETURN_IF_ERROR(SendFinished("server finished"));

  // The completed session becomes resumable.
  if (config_->session_cache != nullptr) {
    config_->session_cache->Insert(session_id_, master_secret_);
  }
  return Status::Ok();
}

Result<size_t> TlsConnection::Read(uint8_t* buf, size_t max) {
  if (!handshake_complete_) {
    return FailedPrecondition("handshake not complete");
  }
  while (pending_offset_ >= pending_plaintext_.size()) {
    if (closed_) {
      return size_t{0};
    }
    auto record = record_layer_.ReadRecord();
    if (!record.ok()) {
      // Treat transport EOF as close.
      if (record.status().code() == StatusCode::kDataLoss) {
        closed_ = true;
        return size_t{0};
      }
      return record.status();
    }
    if (record->type == RecordType::kAlert) {
      closed_ = true;
      Notify(InfoEvent::kClosed, 0);
      return size_t{0};
    }
    if (record->type != RecordType::kApplicationData) {
      return InvalidArgument("unexpected record type after handshake");
    }
    pending_plaintext_ = std::move(record->payload);
    pending_offset_ = 0;
  }
  size_t available = pending_plaintext_.size() - pending_offset_;
  size_t take = std::min(available, max);
  std::memcpy(buf, pending_plaintext_.data() + pending_offset_, take);
  pending_offset_ += take;
  if (pending_offset_ == pending_plaintext_.size()) {
    pending_plaintext_.clear();
    pending_offset_ = 0;
  }
  Notify(InfoEvent::kRead, static_cast<int>(take));
  return take;
}

Status TlsConnection::Write(BytesView data) {
  if (!handshake_complete_) {
    return FailedPrecondition("handshake not complete");
  }
  if (closed_) {
    return Unavailable("connection closed");
  }
  SEAL_RETURN_IF_ERROR(record_layer_.WriteAll(RecordType::kApplicationData, data));
  Notify(InfoEvent::kWrite, static_cast<int>(data.size()));
  return Status::Ok();
}

void TlsConnection::Close() {
  if (!closed_ && handshake_complete_) {
    uint8_t close_notify[2] = {1, 0};
    (void)record_layer_.WriteRecord(RecordType::kAlert, BytesView(close_notify, 2));
  }
  closed_ = true;
  Notify(InfoEvent::kClosed, 0);
}

}  // namespace seal::tls
