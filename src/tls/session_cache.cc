#include "src/tls/session_cache.h"

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::tls {

namespace {

// FNV-1a over the id bytes; the ids are already uniformly distributed
// (master-secret hashes), so a cheap mix suffices for shard selection.
size_t HashId(std::string_view id) {
  uint64_t h = 1469598103934665603ull;
  for (char c : id) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

obs::Gauge& OccupancyGauge() { return SEAL_OBS_GAUGE("tls_session_cache_entries"); }

}  // namespace

TlsSessionCache::TlsSessionCache(Options options) : options_(options) {
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  if (options_.capacity == 0) {
    options_.capacity = 1;
  }
  per_shard_capacity_ = std::max<size_t>(1, options_.capacity / options_.shards);
  shards_ = std::vector<Shard>(options_.shards);
}

TlsSessionCache::Shard& TlsSessionCache::ShardFor(std::string_view id) {
  return shards_[HashId(id) % shards_.size()];
}

void TlsSessionCache::RecordEviction(Shard& shard, std::string id) {
  if (shard.tombstones.insert(id).second) {
    shard.tombstone_order.push_back(std::move(id));
  }
  while (shard.tombstone_order.size() > 2 * per_shard_capacity_) {
    shard.tombstones.erase(shard.tombstone_order.front());
    shard.tombstone_order.pop_front();
  }
}

void TlsSessionCache::Insert(BytesView id, BytesView master_secret) {
  if (id.empty() || id.size() > kMaxSessionIdSize || master_secret.empty()) {
    return;
  }
  std::string key(reinterpret_cast<const char*>(id.data()), id.size());
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->master_secret.assign(master_secret.begin(), master_secret.end());
    it->second->inserted_nanos = NowNanos();
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  while (shard.lru.size() >= per_shard_capacity_) {
    Entry& victim = shard.lru.back();
    shard.map.erase(victim.id);
    RecordEviction(shard, std::move(victim.id));
    shard.lru.pop_back();
    OccupancyGauge().Add(-1);
  }
  shard.lru.push_front(
      Entry{key, Bytes(master_secret.begin(), master_secret.end()), NowNanos()});
  shard.map[std::move(key)] = shard.lru.begin();
  shard.tombstones.erase(shard.lru.front().id);
  OccupancyGauge().Add(1);
}

std::optional<Bytes> TlsSessionCache::Lookup(BytesView id, SessionMissReason* reason) {
  SessionMissReason why = SessionMissReason::kUnknown;
  std::optional<Bytes> secret;
  if (!id.empty() && id.size() <= kMaxSessionIdSize) {
    std::string key(reinterpret_cast<const char*>(id.data()), id.size());
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (options_.ttl_nanos > 0 && NowNanos() - it->second->inserted_nanos > options_.ttl_nanos) {
        shard.lru.erase(it->second);
        shard.map.erase(it);
        OccupancyGauge().Add(-1);
        why = SessionMissReason::kExpired;
      } else {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        secret = it->second->master_secret;
      }
    } else if (shard.tombstones.count(key) != 0) {
      why = SessionMissReason::kEvicted;
    }
  }
  if (!secret.has_value() && reason != nullptr) {
    *reason = why;
  }
  return secret;
}

void TlsSessionCache::Remove(BytesView id) {
  if (id.empty() || id.size() > kMaxSessionIdSize) {
    return;
  }
  std::string key(reinterpret_cast<const char*>(id.data()), id.size());
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.lru.erase(it->second);
    shard.map.erase(it);
    OccupancyGauge().Add(-1);
  }
}

size_t TlsSessionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace seal::tls
