// TLS 1.2 session cache for abbreviated handshakes (the SSL_CTX session
// cache analogue). Master secrets never leave the cache owner's address
// space: in the LibSEAL deployment the cache lives inside the enclave next
// to the TlsConfig, so a compromised service provider cannot read cached
// secrets any more than it can read live connection keys.
//
// The cache is sharded (mutex per shard) so concurrent handshake threads
// rarely contend, LRU within each shard, and capacity-bounded. Lookups
// report why they missed so the resumption metrics can distinguish a
// client guessing ids (unknown) from capacity pressure (evicted) from
// lifetime policy (expired).
#ifndef SRC_TLS_SESSION_CACHE_H_
#define SRC_TLS_SESSION_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/bytes.h"

namespace seal::tls {

// Resumable session state: the wire session id and the master secret the
// abbreviated handshake rederives connection keys from.
struct TlsSession {
  Bytes id;
  Bytes master_secret;

  bool valid() const { return !id.empty() && !master_secret.empty(); }
};

// Session ids on the wire are length-prefixed with one byte and capped like
// TLS's 32-byte limit; anything longer is treated as tampering.
inline constexpr size_t kMaxSessionIdSize = 32;

enum class SessionMissReason {
  kUnknown,   // id never seen (or long since forgotten)
  kEvicted,   // id was cached but lost to capacity pressure
  kExpired,   // id was cached but outlived the TTL
};

class TlsSessionCache {
 public:
  struct Options {
    // Total entries across all shards.
    size_t capacity = 4096;
    // Session lifetime; 0 disables expiry.
    int64_t ttl_nanos = 0;
    // Power of two; each shard has its own mutex and LRU list.
    size_t shards = 8;
  };

  TlsSessionCache() : TlsSessionCache(Options{}) {}
  explicit TlsSessionCache(Options options);

  TlsSessionCache(const TlsSessionCache&) = delete;
  TlsSessionCache& operator=(const TlsSessionCache&) = delete;

  // Inserts or refreshes a session; evicts the shard's LRU entry when the
  // shard is full. Oversized ids are ignored.
  void Insert(BytesView id, BytesView master_secret);

  // Returns the master secret and refreshes LRU position, or nullopt with
  // `*reason` set. Expired entries are removed on the way out.
  std::optional<Bytes> Lookup(BytesView id, SessionMissReason* reason = nullptr);

  // Drops a session (e.g. after a failed resumption attempt).
  void Remove(BytesView id);

  size_t size() const;

 private:
  struct Entry {
    std::string id;
    Bytes master_secret;
    int64_t inserted_nanos = 0;
  };
  struct Shard {
    mutable std::mutex mutex;
    // Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> map;
    // Recently evicted ids, so a miss can be attributed to capacity
    // pressure. FIFO-bounded to 2x the shard capacity.
    std::unordered_set<std::string> tombstones;
    std::deque<std::string> tombstone_order;
  };

  Shard& ShardFor(std::string_view id);
  void RecordEviction(Shard& shard, std::string id);

  Options options_;
  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace seal::tls

#endif  // SRC_TLS_SESSION_CACHE_H_
