// TLS record layer: framing plus AES-128-GCM protection (TLS 1.2 style:
// 4-byte implicit IV from the key block, 8-byte explicit per-record nonce
// derived from the sequence number, AAD over seq/type/version/length).
#ifndef SRC_TLS_RECORD_H_
#define SRC_TLS_RECORD_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/gcm.h"
#include "src/tls/bio.h"

namespace seal::tls {

enum class RecordType : uint8_t {
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
};

inline constexpr uint16_t kTlsVersion = 0x0303;  // TLS 1.2
inline constexpr size_t kMaxRecordPayload = 16384;

struct Record {
  RecordType type;
  Bytes payload;
};

// One direction of record protection.
class RecordCipher {
 public:
  // `key` is 16 bytes, `implicit_iv` 4 bytes.
  RecordCipher(BytesView key, BytesView implicit_iv);

  Bytes Protect(RecordType type, BytesView plaintext);
  Result<Bytes> Unprotect(RecordType type, BytesView ciphertext);

  uint64_t seq() const { return seq_; }

 private:
  Bytes Nonce(uint64_t seq) const;
  Bytes Aad(uint64_t seq, RecordType type, size_t length) const;

  crypto::Aes128Gcm gcm_;
  uint8_t implicit_iv_[4];
  uint64_t seq_ = 0;
};

// Reads/writes records over a BIO; encryption is enabled per direction once
// the handshake derives keys.
class RecordLayer {
 public:
  explicit RecordLayer(Bio* bio) : bio_(bio) {}

  void EnableWriteProtection(BytesView key, BytesView implicit_iv);
  void EnableReadProtection(BytesView key, BytesView implicit_iv);
  bool write_protected() const { return write_cipher_ != nullptr; }
  bool read_protected() const { return read_cipher_ != nullptr; }

  // Writes one record (payload must fit kMaxRecordPayload).
  Status WriteRecord(RecordType type, BytesView payload);
  // Splits large payloads across records.
  Status WriteAll(RecordType type, BytesView payload);

  // Reads and (if enabled) decrypts the next record.
  Result<Record> ReadRecord();

  // Bytes moved on the wire (ciphertext side), for instrumentation.
  uint64_t bytes_out() const { return bytes_out_; }
  uint64_t bytes_in() const { return bytes_in_; }

  // Closes the underlying transport (used on fatal handshake errors).
  void CloseBio() { bio_->Close(); }

 private:
  Bio* bio_;
  std::unique_ptr<RecordCipher> write_cipher_;
  std::unique_ptr<RecordCipher> read_cipher_;
  uint64_t bytes_out_ = 0;
  uint64_t bytes_in_ = 0;
};

}  // namespace seal::tls

#endif  // SRC_TLS_RECORD_H_
