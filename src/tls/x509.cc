#include "src/tls/x509.h"

namespace seal::tls {

namespace {

void PutString(Bytes& out, const std::string& s) {
  AppendBe32(out, static_cast<uint32_t>(s.size()));
  Append(out, s);
}

bool GetString(BytesView in, size_t& off, std::string* s) {
  if (off + 4 > in.size()) {
    return false;
  }
  uint32_t n = LoadBe32(in.data() + off);
  off += 4;
  if (off + n > in.size()) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(in.data() + off), n);
  off += n;
  return true;
}

}  // namespace

Bytes Certificate::Tbs() const {
  Bytes out;
  PutString(out, subject);
  PutString(out, issuer);
  AppendBe64(out, serial);
  AppendBe32(out, static_cast<uint32_t>(public_key.size()));
  Append(out, public_key);
  return out;
}

Bytes Certificate::Encode() const {
  Bytes out = Tbs();
  Append(out, signature.Encode());
  return out;
}

Result<Certificate> Certificate::Decode(BytesView in) {
  Certificate cert;
  size_t off = 0;
  if (!GetString(in, off, &cert.subject) || !GetString(in, off, &cert.issuer)) {
    return DataLoss("certificate truncated in names");
  }
  if (off + 12 > in.size()) {
    return DataLoss("certificate truncated in serial");
  }
  cert.serial = LoadBe64(in.data() + off);
  off += 8;
  uint32_t key_len = LoadBe32(in.data() + off);
  off += 4;
  if (off + key_len + 64 > in.size()) {
    return DataLoss("certificate truncated in key");
  }
  cert.public_key.assign(in.begin() + static_cast<ptrdiff_t>(off),
                         in.begin() + static_cast<ptrdiff_t>(off + key_len));
  off += key_len;
  auto sig = crypto::EcdsaSignature::Decode(in.subspan(off, 64));
  if (!sig.has_value()) {
    return DataLoss("certificate signature malformed");
  }
  cert.signature = *sig;
  return cert;
}

std::optional<crypto::EcdsaPublicKey> Certificate::Key() const {
  return crypto::EcdsaPublicKey::Decode(public_key);
}

CertifiedKey MakeSelfSignedCa(const std::string& subject, const crypto::EcdsaPrivateKey& key) {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = subject;
  cert.serial = 1;
  cert.public_key = key.public_key().Encode();
  cert.signature = key.Sign(cert.Tbs());
  return CertifiedKey{cert, key};
}

Certificate IssueCertificate(const CertifiedKey& ca, const std::string& subject,
                             const crypto::EcdsaPublicKey& subject_key, uint64_t serial) {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = ca.cert.subject;
  cert.serial = serial;
  cert.public_key = subject_key.Encode();
  cert.signature = ca.key.Sign(cert.Tbs());
  return cert;
}

Status VerifyCertificate(const Certificate& cert, const Certificate& ca) {
  if (cert.issuer != ca.subject) {
    return PermissionDenied("issuer mismatch: " + cert.issuer + " vs " + ca.subject);
  }
  auto ca_key = ca.Key();
  if (!ca_key.has_value()) {
    return PermissionDenied("CA key malformed");
  }
  if (!ca_key->Verify(cert.Tbs(), cert.signature)) {
    return PermissionDenied("certificate signature invalid");
  }
  return Status::Ok();
}

}  // namespace seal::tls
