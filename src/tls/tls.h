// TLS protocol engine: ECDHE-ECDSA handshake with AES-128-GCM record
// protection, mutual authentication support and a transcript-bound
// Finished exchange. This is the code that LibSEAL runs INSIDE the enclave
// (paper §4); src/core wraps it in the OpenSSL-compatible outside API.
#ifndef SRC_TLS_TLS_H_
#define SRC_TLS_TLS_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/sha256.h"
#include "src/tls/bio.h"
#include "src/tls/record.h"
#include "src/tls/session_cache.h"
#include "src/tls/x509.h"

namespace seal::tls {

enum class Role { kClient, kServer };

// Shared configuration (the SSL_CTX analogue).
struct TlsConfig {
  // Local identity; required for servers, optional for clients unless the
  // peer demands client authentication.
  std::optional<Certificate> certificate;
  std::optional<crypto::EcdsaPrivateKey> private_key;

  // Trust anchors for peer verification.
  std::vector<Certificate> trusted_roots;

  // Clients: verify the server certificate chain (Dropbox §6.4 disables
  // this on the proxied clients). Servers: always present a certificate.
  bool verify_peer = true;

  // Servers: demand and verify a client certificate (§6.3, defends against
  // client impersonation by the provider).
  bool require_client_certificate = false;

  // Servers: when set, completed full handshakes are cached here and
  // ClientHellos offering a cached id take the abbreviated handshake
  // (no certificate flight, no ECDHE, no signature). The cache must
  // outlive every connection using this config.
  TlsSessionCache* session_cache = nullptr;
};

// Handshake/connection state change notifications (the analogue of
// SSL_CTX_set_info_callback). `where` is a coarse phase tag.
enum class InfoEvent {
  kHandshakeStart,
  kHandshakeDone,
  kRead,
  kWrite,
  kClosed,
};
using InfoCallback = std::function<void(InfoEvent event, int bytes)>;

// One TLS connection (the SSL analogue).
class TlsConnection {
 public:
  TlsConnection(Bio* bio, const TlsConfig* config, Role role);

  // Runs the handshake to completion.
  Status Handshake();
  bool handshake_complete() const { return handshake_complete_; }

  // Plaintext I/O (post-handshake). Read blocks for at least one byte;
  // returns 0 at clean close.
  Result<size_t> Read(uint8_t* buf, size_t max);
  Status Write(BytesView data);
  Status Write(std::string_view data) {
    return Write(BytesView(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  }

  // Sends a close alert.
  void Close();

  const std::optional<Certificate>& peer_certificate() const { return peer_certificate_; }
  void set_info_callback(InfoCallback cb) { info_callback_ = std::move(cb); }

  // Session identity material: the master secret hash, used by LibSEAL for
  // per-session log attribution. A resumed connection shares its master
  // secret with the original, so audit-log attribution is stable across
  // resumptions by construction.
  const Bytes& session_id() const { return session_id_; }

  // Clients: offer `session` in the ClientHello; if the server still has it
  // cached the handshake runs abbreviated. Must be called before
  // Handshake(). Invalid sessions are ignored.
  void OfferSession(const TlsSession& session);

  // Resumable state of a completed handshake, for a client-side store.
  TlsSession ExportSession() const { return TlsSession{session_id_, master_secret_}; }

  // True when the completed handshake was abbreviated (session resumption).
  bool resumed() const { return resumed_; }

  uint64_t bytes_on_wire_in() const { return record_layer_.bytes_in(); }
  uint64_t bytes_on_wire_out() const { return record_layer_.bytes_out(); }

 private:
  // Handshake message types.
  enum class HsType : uint8_t {
    kClientHello = 1,
    kServerHello = 2,
    kCertificate = 11,
    kServerKeyExchange = 12,
    kCertificateRequest = 13,
    kServerHelloDone = 14,
    kCertificateVerify = 15,
    kClientKeyExchange = 16,
    kFinished = 20,
  };

  Status HandshakeClient();
  Status HandshakeServer();
  Status HandshakeClientAbbreviated();
  Status HandshakeServerAbbreviated(Bytes cached_master_secret);
  Status HandshakeServerAbbreviatedInner(Bytes cached_master_secret);

  Status SendHandshakeMessage(HsType type, BytesView body);
  Result<std::pair<HsType, Bytes>> ReadHandshakeMessage();
  void DeriveKeys(BytesView pre_master_secret);
  void AdoptMasterSecret(Bytes master_secret);
  // TLS 1.2 key expansion over the current master secret and randoms:
  // client_write_key, server_write_key, client_iv, server_iv.
  Bytes DeriveKeyBlock() const;
  Bytes FinishedPayload(std::string_view label) const;
  Status SendFinished(std::string_view label);
  Status CheckFinished(std::string_view label, BytesView received);
  void Notify(InfoEvent event, int bytes);

  const TlsConfig* config_;
  Role role_;
  RecordLayer record_layer_;
  bool handshake_complete_ = false;
  bool closed_ = false;
  bool resumed_ = false;

  Bytes client_random_;
  Bytes server_random_;
  Bytes master_secret_;
  Bytes session_id_;
  // Session offered by the client for resumption (empty id = none).
  TlsSession offered_session_;
  // Incremental hash over all handshake messages (headers included), used
  // for CertificateVerify and Finished. `transcript_before_last_read_` is
  // the state just before the most recently received message, so Finished
  // verification can hash the transcript excluding the peer's Finished
  // without keeping (and copying) the raw byte concatenation.
  crypto::Sha256 transcript_hash_;
  crypto::Sha256 transcript_before_last_read_;

  std::optional<Certificate> peer_certificate_;
  InfoCallback info_callback_;

  // Buffered plaintext from a partially-consumed application record.
  Bytes pending_plaintext_;
  size_t pending_offset_ = 0;
};

}  // namespace seal::tls

#endif  // SRC_TLS_TLS_H_
