#include "src/asyncall/asyncall.h"

#include "src/lthread/lthread.h"

namespace seal::asyncall {

namespace {

// Light backoff for spin loops: stay hot briefly, then yield the CPU so
// oversubscribed configurations (Table 3, S=4) degrade instead of livelock.
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ % 64 == 0) {
      std::this_thread::yield();
    }
  }

 private:
  uint64_t spins_ = 0;
};

// Per-application-thread slot binding.
thread_local const void* t_bound_runtime = nullptr;
thread_local int t_bound_slot = -1;

}  // namespace

// Binds an lthread task to the slot it is serving plus the enclave whose
// handlers it invokes.
struct TaskBinding {
  CallSlot* slot = nullptr;
  sgx::Enclave* enclave = nullptr;
  AsyncCallRuntime* runtime = nullptr;
  lthread::Task* task = nullptr;
};

struct AsyncCallRuntime::Worker {
  lthread::Scheduler scheduler;
  std::vector<std::unique_ptr<TaskBinding>> bindings;
};

AsyncCallRuntime::AsyncCallRuntime(sgx::Enclave* enclave, Options options)
    : enclave_(enclave), options_(options) {
  slots_.reserve(static_cast<size_t>(options_.max_app_threads));
  for (int i = 0; i < options_.max_app_threads; ++i) {
    slots_.push_back(std::make_unique<CallSlot>());
  }
  // The single long-running ecall each worker thread uses to enter the
  // enclave (this is the only hardware transition on the async path).
  worker_ecall_id_ = enclave_->RegisterEcall(
      "asyncall_worker_loop", [this](void* data) { WorkerLoop(static_cast<Worker*>(data)); },
      /*charge_execution=*/false);  // per-handler work is charged in the task body
}

AsyncCallRuntime::~AsyncCallRuntime() { Stop(); }

void AsyncCallRuntime::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  for (int i = 0; i < options_.enclave_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker* worker = workers_.back().get();
    threads_.emplace_back([this, worker] {
      // One transition in, one out, for the whole worker lifetime.
      (void)enclave_->Ecall(worker_ecall_id_, worker);
    });
  }
}

void AsyncCallRuntime::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  workers_.clear();
}

void AsyncCallRuntime::WorkerLoop(Worker* worker) {
  // Spawn the T persistent lthread tasks.
  for (int i = 0; i < options_.tasks_per_thread; ++i) {
    auto binding = std::make_unique<TaskBinding>();
    binding->enclave = enclave_;
    binding->runtime = this;
    TaskBinding* b = binding.get();
    b->task = worker->scheduler.Spawn([this, b] {
      b->task->set_user_data(b);
      for (;;) {
        while (b->slot == nullptr) {
          if (stop_.load(std::memory_order_acquire)) {
            return;
          }
          lthread::Scheduler::Block();
        }
        CallSlot* slot = b->slot;
        const sgx::Enclave::CallFn* fn = enclave_->ecall_handler(slot->ecall_id);
        if (fn != nullptr) {
          // In-enclave execution overhead applies to the handler exactly as
          // it would on a synchronous ecall. CPU is attributed per TASK:
          // thread CPU time would include other tasks interleaved on this
          // worker while the handler waits for async-ocalls.
          int64_t cpu0 = b->task->cpu_nanos();
          (*fn)(slot->ecall_data);
          enclave_->ChargeExecution(b->task->cpu_nanos() - cpu0);
        }
        b->slot = nullptr;
        slot->state.store(CallSlot::kResultReady, std::memory_order_release);
        slot->Signal();  // wake the waiting application thread
      }
    });
    worker->bindings.push_back(std::move(binding));
  }

  int idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    // Snapshot the work signal BEFORE scanning: anything posted after this
    // point keeps us awake through the wait predicate below.
    uint64_t seen_seq = work_seq_.load(std::memory_order_acquire);
    // Resume tasks whose async-ocall has completed.
    for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
      if (b->slot != nullptr && b->task->state() == lthread::Task::State::kBlocked &&
          b->slot->state.load(std::memory_order_acquire) == CallSlot::kOcallDone) {
        worker->scheduler.MakeRunnable(b->task);
      }
    }
    bool progressed = worker->scheduler.RunOnce();
    // Claim pending async-ecalls for idle tasks.
    bool dispatched = false;
    for (const std::unique_ptr<CallSlot>& slot : slots_) {
      if (slot->state.load(std::memory_order_acquire) != CallSlot::kEcallPending) {
        continue;
      }
      TaskBinding* idle = nullptr;
      for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
        if (b->slot == nullptr && b->task->state() == lthread::Task::State::kBlocked) {
          idle = b.get();
          break;
        }
      }
      if (idle == nullptr) {
        break;  // all tasks busy; other workers may pick this up
      }
      int expected = CallSlot::kEcallPending;
      if (slot->state.compare_exchange_strong(expected, CallSlot::kEcallRunning,
                                              std::memory_order_acq_rel)) {
        idle->slot = slot.get();
        worker->scheduler.MakeRunnable(idle->task);
        dispatched = true;
      }
    }
    if (progressed || dispatched) {
      idle_rounds = 0;
      continue;
    }
    // No runnable task and nothing to claim: yield first (another thread
    // may be about to post work on this core), then block on the work
    // signal instead of burning the CPU.
    if (++idle_rounds < 4) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(work_mutex_);
    work_cv_.wait_for(lock, std::chrono::microseconds(500), [&] {
      return work_seq_.load(std::memory_order_acquire) != seen_seq ||
             stop_.load(std::memory_order_acquire);
    });
  }
  // Wake blocked tasks so they observe stop_ and finish cleanly.
  for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
    worker->scheduler.MakeRunnable(b->task);
  }
  worker->scheduler.Run();
}

int AsyncCallRuntime::AcquireSlotIndex() {
  if (t_bound_runtime != this || t_bound_slot < 0) {
    uint32_t ticket = next_slot_.fetch_add(1, std::memory_order_relaxed);
    t_bound_slot = SlotIndexForTicket(ticket, options_.max_app_threads);
    t_bound_runtime = this;
  }
  return t_bound_slot;
}

Status AsyncCallRuntime::AsyncEcall(int id, void* data) {
  if (!running()) {
    return FailedPrecondition("async-call runtime not started");
  }
  if (enclave_->ecall_handler(id) == nullptr) {
    return InvalidArgument("unknown ecall id " + std::to_string(id));
  }
  CallSlot* slot = slots_[static_cast<size_t>(AcquireSlotIndex())].get();
  // Take ownership of the slot (only contended if more application threads
  // than slots share an index), write the payload, then publish it.
  SpinBackoff acquire_backoff;
  int expected = CallSlot::kEmpty;
  while (!slot->state.compare_exchange_weak(expected, CallSlot::kPreparing,
                                            std::memory_order_acq_rel)) {
    expected = CallSlot::kEmpty;
    acquire_backoff.Pause();
  }
  slot->ecall_id = id;
  slot->ecall_data = data;
  slot->state.store(CallSlot::kEcallPending, std::memory_order_release);
  SignalWorkers();

  int idle_spins = 0;
  for (;;) {
    int s = slot->state.load(std::memory_order_acquire);
    if (s == CallSlot::kOcallPending) {
      idle_spins = 0;
      int want = CallSlot::kOcallPending;
      if (slot->state.compare_exchange_strong(want, CallSlot::kOcallRunning,
                                              std::memory_order_acq_rel)) {
        const sgx::Enclave::CallFn* fn = enclave_->ocall_handler(slot->ocall_id);
        if (fn != nullptr) {
          (*fn)(slot->ocall_data);
        }
        slot->state.store(CallSlot::kOcallDone, std::memory_order_release);
        SignalWorkers();
      }
      continue;
    }
    if (s == CallSlot::kResultReady) {
      slot->state.store(CallSlot::kEmpty, std::memory_order_release);
      slot->Signal();  // another app thread may share this slot index
      return Status::Ok();
    }
    // Spin briefly, then block until the enclave side signals the slot.
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lock(slot->mutex);
    slot->cv.wait_for(lock, std::chrono::microseconds(200), [&] {
      int now = slot->state.load(std::memory_order_acquire);
      return now == CallSlot::kOcallPending || now == CallSlot::kResultReady;
    });
  }
}

Status AsyncCallRuntime::AsyncOcall(int id, void* data) {
  lthread::Task* current = lthread::Scheduler::Current();
  if (current == nullptr || current->user_data() == nullptr) {
    return FailedPrecondition("AsyncOcall outside an async-ecall handler");
  }
  auto* binding = static_cast<TaskBinding*>(current->user_data());
  CallSlot* slot = binding->slot;
  if (slot == nullptr) {
    return FailedPrecondition("task has no bound slot");
  }
  if (binding->enclave->ocall_handler(id) == nullptr) {
    return InvalidArgument("unknown ocall id " + std::to_string(id));
  }
  slot->ocall_id = id;
  slot->ocall_data = data;
  slot->state.store(CallSlot::kOcallPending, std::memory_order_release);
  slot->Signal();  // wake the bound application thread
  // Block this task until the application thread posts the result; the
  // worker's scheduler loop re-runs it when it observes kOcallDone. Other
  // tasks on this worker keep running meanwhile, and a worker whose tasks
  // are ALL waiting goes to sleep instead of starving the ocall executor.
  while (slot->state.load(std::memory_order_acquire) != CallSlot::kOcallDone) {
    lthread::Scheduler::Block();
  }
  slot->state.store(CallSlot::kEcallRunning, std::memory_order_release);
  return Status::Ok();
}

}  // namespace seal::asyncall
