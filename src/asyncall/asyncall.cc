#include "src/asyncall/asyncall.h"

#include "src/common/clock.h"
#include "src/lthread/lthread.h"
#include "src/obs/obs.h"

namespace seal::asyncall {

namespace {

// Light backoff for spin loops: stay hot briefly, then yield the CPU so
// oversubscribed configurations (Table 3, S=4) degrade instead of livelock.
class SpinBackoff {
 public:
  void Pause() {
    if (++spins_ % 64 == 0) {
      std::this_thread::yield();
    }
  }

 private:
  uint64_t spins_ = 0;
};

// Per-application-thread slot binding.
thread_local const void* t_bound_runtime = nullptr;
thread_local int t_bound_slot = -1;

// True while this OS thread is inside WorkerLoop (an enclave worker).
thread_local bool t_enclave_worker = false;

// Upper bounds on the blocking waits. Correctness does not depend on them:
// every state transition now notifies the condition variable a waiter could
// be parked on (including Stop), so these are pure belt-and-braces against
// bugs, not part of the protocol. They used to be 500µs/200µs, short enough
// to paper over a missed notify; a missed one now shows up as a hang in the
// stress tests instead of a silent latency tax.
constexpr std::chrono::milliseconds kWorkerWait{100};
constexpr std::chrono::milliseconds kSlotWait{10};

}  // namespace

// Binds an lthread task to the slot it is serving plus the enclave whose
// handlers it invokes.
struct TaskBinding {
  CallSlot* slot = nullptr;
  sgx::Enclave* enclave = nullptr;
  AsyncCallRuntime* runtime = nullptr;
  lthread::Task* task = nullptr;
};

struct AsyncCallRuntime::Worker {
  lthread::Scheduler scheduler;
  std::vector<std::unique_ptr<TaskBinding>> bindings;
};

AsyncCallRuntime::AsyncCallRuntime(sgx::Enclave* enclave, Options options)
    : enclave_(enclave), options_(options) {
  slots_.reserve(static_cast<size_t>(options_.max_app_threads));
  for (int i = 0; i < options_.max_app_threads; ++i) {
    slots_.push_back(std::make_unique<CallSlot>());
  }
  // The single long-running ecall each worker thread uses to enter the
  // enclave (this is the only hardware transition on the async path).
  worker_ecall_id_ = enclave_->RegisterEcall(
      "asyncall_worker_loop", [this](void* data) { WorkerLoop(static_cast<Worker*>(data)); },
      /*charge_execution=*/false);  // per-handler work is charged in the task body
}

AsyncCallRuntime::~AsyncCallRuntime() { Stop(); }

void AsyncCallRuntime::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stop_.store(false, std::memory_order_release);
  for (int i = 0; i < options_.enclave_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    Worker* worker = workers_.back().get();
    threads_.emplace_back([this, worker] {
      // One transition in, one out, for the whole worker lifetime.
      (void)enclave_->Ecall(worker_ecall_id_, worker);
    });
  }
}

void AsyncCallRuntime::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  // Wake EVERY waiter so nothing sits out a timeout: workers sleeping on
  // the work signal drain their in-flight calls and exit; application
  // threads blocked on a slot no worker will ever claim observe stop_ and
  // fail the call with a Status instead of stranding on kEcallPending.
  SignalWorkers();
  for (const std::unique_ptr<CallSlot>& slot : slots_) {
    slot->Signal();
  }
  for (std::thread& t : threads_) {
    t.join();
  }
  threads_.clear();
  workers_.clear();
}

bool AsyncCallRuntime::OnEnclaveWorkerThread() { return t_enclave_worker; }

void AsyncCallRuntime::WorkerLoop(Worker* worker) {
  t_enclave_worker = true;
  // Spawn the T persistent lthread tasks.
  for (int i = 0; i < options_.tasks_per_thread; ++i) {
    auto binding = std::make_unique<TaskBinding>();
    binding->enclave = enclave_;
    binding->runtime = this;
    TaskBinding* b = binding.get();
    b->task = worker->scheduler.Spawn([this, b] {
      b->task->set_user_data(b);
      for (;;) {
        while (b->slot == nullptr) {
          if (stop_.load(std::memory_order_acquire)) {
            return;
          }
          lthread::Scheduler::Block();
        }
        CallSlot* slot = b->slot;
        const sgx::Enclave::CallFn* fn = enclave_->ecall_handler(slot->ecall_id);
        if (fn != nullptr) {
          // In-enclave execution overhead applies to the handler exactly as
          // it would on a synchronous ecall. CPU is attributed per TASK:
          // thread CPU time would include other tasks interleaved on this
          // worker while the handler waits for async-ocalls.
          int64_t cpu0 = b->task->cpu_nanos();
          (*fn)(slot->ecall_data);
          enclave_->ChargeExecution(b->task->cpu_nanos() - cpu0);
        }
        b->slot = nullptr;
        slot->state.store(CallSlot::kResultReady, std::memory_order_release);
        slot->Signal();  // wake the waiting application thread
      }
    });
    worker->bindings.push_back(std::move(binding));
  }

  int idle_rounds = 0;
  for (;;) {
    // Once stop_ is observed the worker claims no NEW calls but keeps
    // draining the ones its tasks already carry: their bound application
    // threads are parked in AsyncEcall servicing ocalls and waiting for
    // kResultReady, so every in-flight call completes normally.
    const bool stopping = stop_.load(std::memory_order_acquire);
    // Snapshot the work signal BEFORE scanning: anything posted after this
    // point keeps us awake through the wait predicate below.
    uint64_t seen_seq = work_seq_.load(std::memory_order_acquire);
    // Resume tasks whose async-ocall has completed.
    for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
      if (b->slot != nullptr && b->task->state() == lthread::Task::State::kBlocked &&
          b->slot->state.load(std::memory_order_acquire) == CallSlot::kOcallDone) {
        worker->scheduler.MakeRunnable(b->task);
      }
    }
    bool progressed = worker->scheduler.RunOnce();
    // Claim pending async-ecalls for idle tasks.
    bool dispatched = false;
    if (!stopping) {
      for (const std::unique_ptr<CallSlot>& slot : slots_) {
        if (slot->state.load(std::memory_order_acquire) != CallSlot::kEcallPending) {
          continue;
        }
        TaskBinding* idle = nullptr;
        for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
          if (b->slot == nullptr && b->task->state() == lthread::Task::State::kBlocked) {
            idle = b.get();
            break;
          }
        }
        if (idle == nullptr) {
          break;  // all tasks busy; other workers may pick this up
        }
        int expected = CallSlot::kEcallPending;
        if (slot->state.compare_exchange_strong(expected, CallSlot::kEcallRunning,
                                                std::memory_order_acq_rel)) {
          SEAL_OBS_HISTOGRAM("asyncall_slot_pending_dwell_nanos")
              .Observe(static_cast<uint64_t>(
                  std::max<int64_t>(0, NowNanos() - slot->ecall_posted_nanos)));
          idle->slot = slot.get();
          worker->scheduler.MakeRunnable(idle->task);
          dispatched = true;
        }
      }
    } else {
      bool draining = false;
      for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
        if (b->slot != nullptr) {
          draining = true;
          break;
        }
      }
      if (!draining) {
        break;
      }
    }
    if (progressed || dispatched) {
      idle_rounds = 0;
      continue;
    }
    // No runnable task and nothing to claim: yield first (another thread
    // may be about to post work on this core), then block on the work
    // signal instead of burning the CPU.
    if (++idle_rounds < 4) {
      std::this_thread::yield();
      continue;
    }
    SEAL_OBS_COUNTER("asyncall_worker_blocks_total").Increment();
    std::unique_lock<std::mutex> lock(work_mutex_);
    // While draining, stop_ is already set, so the flag must not satisfy
    // the predicate (that would busy-loop); only new work signals do.
    work_cv_.wait_for(lock, kWorkerWait, [&] {
      return work_seq_.load(std::memory_order_acquire) != seen_seq ||
             stop_.load(std::memory_order_acquire) != stopping;
    });
  }
  // Wake blocked tasks so they observe stop_ and finish cleanly.
  for (const std::unique_ptr<TaskBinding>& b : worker->bindings) {
    worker->scheduler.MakeRunnable(b->task);
  }
  worker->scheduler.Run();
}

int AsyncCallRuntime::AcquireSlotIndex() {
  if (t_bound_runtime != this || t_bound_slot < 0) {
    uint32_t ticket = next_slot_.fetch_add(1, std::memory_order_relaxed);
    t_bound_slot = SlotIndexForTicket(ticket, options_.max_app_threads);
    t_bound_runtime = this;
  }
  return t_bound_slot;
}

Status AsyncCallRuntime::AsyncEcall(int id, void* data) {
  if (!running()) {
    return FailedPrecondition("async-call runtime not started");
  }
  if (enclave_->ecall_handler(id) == nullptr) {
    return InvalidArgument("unknown ecall id " + std::to_string(id));
  }
  // An application LTHREAD task (a reactor connection) must not use the
  // per-OS-thread slot binding: many tasks share one OS thread, and if task
  // A is parked mid-ecall the bound slot stays occupied — task B spinning
  // on that same slot would wedge the whole thread (A can never resume).
  // Such callers instead claim ANY free slot per call and yield between
  // sweeps so sibling tasks (including the ones whose ecalls will free
  // slots) keep running.
  const bool cooperative = lthread::Scheduler::Current() != nullptr && !t_enclave_worker;
  CallSlot* slot = nullptr;
  if (cooperative) {
    uint32_t start = next_slot_.fetch_add(1, std::memory_order_relaxed);
    const size_t n = slots_.size();
    for (;;) {
      for (size_t i = 0; i < n && slot == nullptr; ++i) {
        CallSlot* cand = slots_[(static_cast<size_t>(start) + i) % n].get();
        int want = CallSlot::kEmpty;
        if (cand->state.compare_exchange_strong(want, CallSlot::kPreparing,
                                                std::memory_order_acq_rel)) {
          slot = cand;
        }
      }
      if (slot != nullptr) {
        break;
      }
      if (stop_.load(std::memory_order_acquire)) {
        return Unavailable("async-call runtime stopped before a slot was free");
      }
      lthread::Scheduler::Yield();
    }
  } else {
    slot = slots_[static_cast<size_t>(AcquireSlotIndex())].get();
    // Take ownership of the slot (only contended if more application
    // threads than slots share an index), write the payload, then publish.
    SpinBackoff acquire_backoff;
    int expected = CallSlot::kEmpty;
    while (!slot->state.compare_exchange_weak(expected, CallSlot::kPreparing,
                                              std::memory_order_acq_rel)) {
      expected = CallSlot::kEmpty;
      acquire_backoff.Pause();
    }
  }
  slot->ecall_id = id;
  slot->ecall_data = data;
  slot->ocall_roundtrips = 0;
  slot->ecall_posted_nanos = NowNanos();
  slot->state.store(CallSlot::kEcallPending, std::memory_order_release);
  SignalWorkers();
  SEAL_OBS_COUNTER("asyncall_ecalls_total").Increment();

  bool blocked = false;  // did this call ever park on the slot cv?
  int idle_spins = 0;
  for (;;) {
    int s = slot->state.load(std::memory_order_acquire);
    if (s == CallSlot::kOcallPending) {
      idle_spins = 0;
      int want = CallSlot::kOcallPending;
      if (slot->state.compare_exchange_strong(want, CallSlot::kOcallRunning,
                                              std::memory_order_acq_rel)) {
        SEAL_OBS_HISTOGRAM("asyncall_ocall_dispatch_dwell_nanos")
            .Observe(static_cast<uint64_t>(
                std::max<int64_t>(0, NowNanos() - slot->ocall_posted_nanos)));
        const sgx::Enclave::CallFn* fn = enclave_->ocall_handler(slot->ocall_id);
        if (fn != nullptr) {
          (*fn)(slot->ocall_data);
        }
        slot->state.store(CallSlot::kOcallDone, std::memory_order_release);
        SignalWorkers();
      }
      continue;
    }
    if (s == CallSlot::kResultReady) {
      if (blocked) {
        SEAL_OBS_COUNTER("asyncall_result_wakeups_total{path=\"block\"}").Increment();
      } else {
        SEAL_OBS_COUNTER("asyncall_result_wakeups_total{path=\"spin\"}").Increment();
      }
      SEAL_OBS_HISTOGRAM("asyncall_ecall_latency_nanos")
          .Observe(static_cast<uint64_t>(
              std::max<int64_t>(0, NowNanos() - slot->ecall_posted_nanos)));
      SEAL_OBS_HISTOGRAM("asyncall_ocall_roundtrips_per_ecall")
          .Observe(slot->ocall_roundtrips);
      slot->state.store(CallSlot::kEmpty, std::memory_order_release);
      slot->Signal();  // another app thread may share this slot index
      return Status::Ok();
    }
    if (s == CallSlot::kEcallPending && stop_.load(std::memory_order_acquire)) {
      // The runtime is stopping and no worker claimed the call (workers
      // stop claiming once they observe stop_). Withdraw it and report the
      // failure instead of stranding this thread on a dead slot.
      int want = CallSlot::kEcallPending;
      if (slot->state.compare_exchange_strong(want, CallSlot::kEmpty,
                                              std::memory_order_acq_rel)) {
        slot->Signal();
        SEAL_OBS_COUNTER("asyncall_aborted_ecalls_total").Increment();
        return Unavailable("async-call runtime stopped before the call was claimed");
      }
      continue;  // a worker won the race: the call is in flight and will drain
    }
    // A cooperative caller never parks its OS thread: sibling lthread
    // tasks on this reactor thread must keep running (one of them may be
    // the very task whose progress completes our call). Yield instead.
    if (cooperative) {
      lthread::Scheduler::Yield();
      continue;
    }
    // Spin briefly, then block until the enclave side signals the slot.
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    blocked = true;
    std::unique_lock<std::mutex> lock(slot->mutex);
    slot->cv.wait_for(lock, kSlotWait, [&] {
      int now = slot->state.load(std::memory_order_acquire);
      return now == CallSlot::kOcallPending || now == CallSlot::kResultReady ||
             (now == CallSlot::kEcallPending && stop_.load(std::memory_order_acquire));
    });
  }
}

Status AsyncCallRuntime::AsyncOcall(int id, void* data) {
  lthread::Task* current = lthread::Scheduler::Current();
  if (current == nullptr || current->user_data() == nullptr) {
    return FailedPrecondition("AsyncOcall outside an async-ecall handler");
  }
  auto* binding = static_cast<TaskBinding*>(current->user_data());
  CallSlot* slot = binding->slot;
  if (slot == nullptr) {
    return FailedPrecondition("task has no bound slot");
  }
  if (binding->enclave->ocall_handler(id) == nullptr) {
    return InvalidArgument("unknown ocall id " + std::to_string(id));
  }
  slot->ocall_id = id;
  slot->ocall_data = data;
  ++slot->ocall_roundtrips;
  slot->ocall_posted_nanos = NowNanos();
  slot->state.store(CallSlot::kOcallPending, std::memory_order_release);
  slot->Signal();  // wake the bound application thread
  SEAL_OBS_COUNTER("asyncall_ocalls_total").Increment();
  // Block this task until the application thread posts the result; the
  // worker's scheduler loop re-runs it when it observes kOcallDone. Other
  // tasks on this worker keep running meanwhile, and a worker whose tasks
  // are ALL waiting goes to sleep instead of starving the ocall executor.
  while (slot->state.load(std::memory_order_acquire) != CallSlot::kOcallDone) {
    lthread::Scheduler::Block();
  }
  slot->state.store(CallSlot::kEcallRunning, std::memory_order_release);
  return Status::Ok();
}

}  // namespace seal::asyncall
