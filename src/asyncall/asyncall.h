// Asynchronous enclave calls (paper §4.3, Figs. 3 and 4).
//
// Instead of paying a hardware transition per ecall/ocall, S enclave worker
// threads enter the enclave once and stay inside, each running T user-level
// lthread tasks. Application threads communicate with them through an array
// of per-thread call slots shared across the boundary:
//
//   1. the application thread writes the async-ecall into its slot;
//   2. a worker's lthread scheduler claims it and resumes an idle task;
//   3. if the handler needs outside functionality it posts an async-ocall
//      into the same slot (the task yields while waiting);
//   4. the application thread executes the ocall and posts the result;
//   5. the task resumes and eventually publishes the ecall result;
//   6. the application thread observes the result and continues.
//
// The binding invariants from the paper hold: a slot belongs to exactly one
// application thread, that thread executes all async-ocalls its ecall
// generates, and the lthread task resuming after an ocall is the one that
// started the ecall.
#ifndef SRC_ASYNCALL_ASYNCALL_H_
#define SRC_ASYNCALL_ASYNCALL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/sgx/enclave.h"

namespace seal::asyncall {

// One request slot, shared between an application thread and the enclave
// workers. State machine:
//   kEmpty -> kEcallPending -> kEcallRunning
//       -> (kOcallPending -> kOcallRunning -> kOcallDone)*  -> kResultReady -> kEmpty
struct CallSlot {
  enum State : int {
    kEmpty = 0,
    kPreparing,  // application thread owns the slot, payload not yet visible
    kEcallPending,
    kEcallRunning,
    kOcallPending,
    kOcallRunning,
    kOcallDone,
    kResultReady,
  };

  std::atomic<int> state{kEmpty};
  int ecall_id = 0;
  void* ecall_data = nullptr;
  int ocall_id = 0;
  void* ocall_data = nullptr;

  // Observability fields. Each is written by the side that owns the slot at
  // that point in the protocol and read after the corresponding acquire
  // load of `state`, so they need no atomics of their own.
  int64_t ecall_posted_nanos = 0;   // when kEcallPending was published
  int64_t ocall_posted_nanos = 0;   // when kOcallPending was published
  uint32_t ocall_roundtrips = 0;    // async-ocalls issued by the current ecall

  // Application threads spin briefly then block here; the enclave side
  // signals when the slot needs attention (async-ocall posted, result
  // ready, or the runtime stopping). This is the blocking refinement of
  // §4.3 -- the paper found that having every application thread busy-wait
  // does not pay off, and neither does it on this machine. Every state
  // transition a waiter can be parked on notifies this cv (or the runtime's
  // work cv), so the waits' timeouts are a safety bound, not a crutch.
  std::mutex mutex;
  std::condition_variable cv;

  void Signal() {
    std::lock_guard<std::mutex> lock(mutex);
    cv.notify_all();
  }
};

class AsyncCallRuntime {
 public:
  struct Options {
    int enclave_threads = 3;    // S (Table 3 sweeps this)
    int tasks_per_thread = 48;  // T (Table 4 sweeps this)
    int max_app_threads = 64;   // A: size of the slot array
  };

  AsyncCallRuntime(sgx::Enclave* enclave, Options options);
  ~AsyncCallRuntime();

  AsyncCallRuntime(const AsyncCallRuntime&) = delete;
  AsyncCallRuntime& operator=(const AsyncCallRuntime&) = delete;

  // Launches the S worker threads (each enters the enclave once).
  void Start();
  // Stops and joins the workers. In-flight async-ecalls are DRAINED (their
  // handlers run to completion, including any async-ocalls, before the
  // workers exit); posted-but-unclaimed calls fail with Unavailable so no
  // application thread is left stranded on its slot.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Issues ecall `id` asynchronously from an application thread and waits
  // for its completion, servicing any async-ocalls it generates.
  Status AsyncEcall(int id, void* data);

  // Issues ocall `id` from inside a handler running on an lthread task; the
  // bound application thread executes it. Must only be called from handler
  // code reached via AsyncEcall.
  static Status AsyncOcall(int id, void* data);

  // True on a thread currently inside WorkerLoop (an enclave worker that
  // runs handler lthread tasks). Distinguishes "handler task inside the
  // enclave" from "application lthread task outside it" — both have a
  // current lthread Scheduler, but only the former may post async-ocalls,
  // and only the latter takes the cooperative AsyncEcall path.
  static bool OnEnclaveWorkerThread();

  const Options& options() const { return options_; }

  // Maps a monotonically increasing (and wrapping) ticket to a slot index
  // in [0, max_app_threads). Unsigned arithmetic makes the wraparound
  // well-defined: the modulo stays in range for every uint32_t value,
  // where the previous signed counter overflowed into UB and could yield a
  // negative slot. Exposed for the wraparound unit test.
  static int SlotIndexForTicket(uint32_t ticket, int max_app_threads) {
    return static_cast<int>(ticket % static_cast<uint32_t>(max_app_threads));
  }
  // Test hook: fast-forwards the ticket counter (e.g. to just below the
  // wrap point).
  void set_next_slot_for_testing(uint32_t value) {
    next_slot_.store(value, std::memory_order_relaxed);
  }

 private:
  struct Worker;

  void WorkerLoop(Worker* worker);
  int AcquireSlotIndex();

  sgx::Enclave* enclave_;
  Options options_;
  std::vector<std::unique_ptr<CallSlot>> slots_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint32_t> next_slot_{0};
  int worker_ecall_id_ = -1;

  // Wakes idle enclave workers when application threads post work. The
  // sequence number closes the lost-wakeup window: workers snapshot it
  // before scanning for work and only sleep if it has not moved since.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::atomic<uint64_t> work_seq_{0};
  void SignalWorkers() {
    {
      std::lock_guard<std::mutex> lock(work_mutex_);
      work_seq_.fetch_add(1, std::memory_order_release);
    }
    work_cv_.notify_all();
  }
};

}  // namespace seal::asyncall

#endif  // SRC_ASYNCALL_ASYNCALL_H_
