#include "src/common/compress.h"

#include <cstring>
#include <vector>

namespace seal {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 16;

uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void AppendRunLength(Bytes& out, size_t extra) {
  while (extra >= 255) {
    out.push_back(255);
    extra -= 255;
  }
  out.push_back(static_cast<uint8_t>(extra));
}

// Emits one token: `lit_len` literals starting at in[lit_start], then a
// match of `match_len` (0 = final literal-only token) at `offset` back.
void EmitToken(Bytes& out, BytesView in, size_t lit_start, size_t lit_len, size_t match_len,
               size_t offset) {
  const size_t ml = match_len == 0 ? 0 : match_len - kMinMatch;
  uint8_t token = static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4);
  token |= static_cast<uint8_t>(ml < 15 ? ml : 15);
  out.push_back(token);
  if (lit_len >= 15) {
    AppendRunLength(out, lit_len - 15);
  }
  out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(lit_start),
             in.begin() + static_cast<ptrdiff_t>(lit_start + lit_len));
  if (match_len != 0) {
    AppendBe16(out, static_cast<uint16_t>(offset));
    if (ml >= 15) {
      AppendRunLength(out, ml - 15);
    }
  }
}

}  // namespace

Bytes LzCompress(BytesView in) {
  Bytes out;
  out.reserve(8 + in.size() / 2);
  AppendBe64(out, in.size());
  const size_t n = in.size();
  std::vector<int64_t> table(size_t{1} << kHashBits, -1);
  size_t i = 0;
  size_t lit_start = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(in.data() + i);
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kMaxOffset &&
        std::memcmp(in.data() + cand, in.data() + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      while (i + len < n && in[static_cast<size_t>(cand) + len] == in[i + len]) {
        ++len;
      }
      EmitToken(out, in, lit_start, i - lit_start, len, i - static_cast<size_t>(cand));
      // Seed the table across the matched span so later data can point at
      // it; every other position keeps the scan cheap without giving up
      // much ratio.
      for (size_t p = i + 2; p + kMinMatch <= i + len; p += 2) {
        table[Hash4(in.data() + p)] = static_cast<int64_t>(p);
      }
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  EmitToken(out, in, lit_start, n - lit_start, 0, 0);
  return out;
}

Result<Bytes> LzDecompress(BytesView in, size_t max_raw_size) {
  if (in.size() < 8) {
    return DataLoss("compressed stream truncated in header");
  }
  const uint64_t raw = LoadBe64(in.data());
  if (raw > max_raw_size) {
    return DataLoss("compressed stream declares oversized payload");
  }
  Bytes out;
  out.reserve(raw);
  size_t off = 8;
  auto read_extended = [&](size_t base) -> Result<size_t> {
    size_t len = base;
    for (;;) {
      if (off >= in.size()) {
        return DataLoss("compressed stream truncated in run length");
      }
      const uint8_t b = in[off++];
      len += b;
      if (b != 255) {
        return len;
      }
    }
  };
  // Input-driven loop: the compressor always terminates the stream with a
  // literals-only token, which can be empty when a match already completed
  // the payload.
  while (off < in.size()) {
    const uint8_t token = in[off++];
    size_t lit_len = token >> 4;
    if (lit_len == 15) {
      auto len = read_extended(15);
      if (!len.ok()) {
        return len.status();
      }
      lit_len = *len;
    }
    if (lit_len > in.size() - off) {
      return DataLoss("compressed stream truncated in literals");
    }
    if (lit_len > raw - out.size()) {
      return DataLoss("literal run overflows declared size");
    }
    out.insert(out.end(), in.begin() + static_cast<ptrdiff_t>(off),
               in.begin() + static_cast<ptrdiff_t>(off + lit_len));
    off += lit_len;
    if (out.size() == raw) {
      if ((token & 0x0F) != 0) {
        return DataLoss("match in final token");
      }
      break;
    }
    if (off + 2 > in.size()) {
      return DataLoss("compressed stream truncated in match offset");
    }
    const size_t offset = (static_cast<size_t>(in[off]) << 8) | in[off + 1];
    off += 2;
    size_t match_len = token & 0x0F;
    if (match_len == 15) {
      auto len = read_extended(15);
      if (!len.ok()) {
        return len.status();
      }
      match_len = *len;
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > out.size()) {
      return DataLoss("match offset out of range");
    }
    if (match_len > raw - out.size()) {
      return DataLoss("match overflows declared size");
    }
    // Byte-wise copy: overlapping matches (offset < match_len) replicate
    // the just-written bytes, which is the RLE case.
    size_t src = out.size() - offset;
    for (size_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);
    }
    if (out.size() == raw && off >= in.size()) {
      // A match completed the payload but the stream ends here: the
      // terminating literals-only token is missing, i.e. truncated input.
      return DataLoss("compressed stream missing final token");
    }
  }
  if (out.size() != raw) {
    return DataLoss("compressed stream short of declared size");
  }
  if (off != in.size()) {
    return DataLoss("trailing bytes after compressed stream");
  }
  return out;
}

}  // namespace seal
