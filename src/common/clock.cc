#include "src/common/clock.h"

#include <ctime>
#include <thread>

namespace seal {

int64_t ThreadCpuNanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SpinNanos(int64_t nanos) {
  if (nanos <= 0) {
    return;
  }
  const int64_t deadline = NowNanos() + nanos;
  while (NowNanos() < deadline) {
    // Busy wait: this models work that occupies the CPU.
  }
}

void SpinCpuNanos(int64_t nanos) {
  if (nanos <= 0) {
    return;
  }
  const int64_t target = ThreadCpuNanos() + nanos;
  while (ThreadCpuNanos() < target) {
    // Busy work charged to this thread's CPU account.
  }
}

void SleepNanos(int64_t nanos) {
  if (nanos <= 0) {
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
}

}  // namespace seal
