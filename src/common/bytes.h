// Byte-buffer utilities shared across all LibSEAL modules.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace seal {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

// Converts a string to its byte representation (no copy of semantics, just
// reinterpretation of the character data).
Bytes ToBytes(std::string_view s);

// Converts raw bytes to a std::string (useful for text protocols).
std::string ToString(BytesView b);

// Lower-case hex encoding of `b`.
std::string ToHex(BytesView b);

// Parses a hex string; returns empty on malformed input (odd length or
// non-hex characters).
Bytes FromHex(std::string_view hex);

// Appends `src` to `dst`.
void Append(Bytes& dst, BytesView src);
void Append(Bytes& dst, std::string_view src);

// Big-endian fixed-width loads/stores, used by the crypto and TLS record
// code. `p` must point at enough valid bytes.
uint32_t LoadBe32(const uint8_t* p);
uint64_t LoadBe64(const uint8_t* p);
void StoreBe32(uint8_t* p, uint32_t v);
void StoreBe64(uint8_t* p, uint64_t v);
void AppendBe16(Bytes& b, uint16_t v);
void AppendBe24(Bytes& b, uint32_t v);
void AppendBe32(Bytes& b, uint32_t v);
void AppendBe64(Bytes& b, uint64_t v);

// Constant-time equality; returns false when sizes differ.
bool ConstantTimeEqual(BytesView a, BytesView b);

}  // namespace seal

#endif  // SRC_COMMON_BYTES_H_
