#include "src/common/bytes.h"

namespace seal {

Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string ToString(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string ToHex(BytesView b) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}
}  // namespace

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, BytesView src) { dst.insert(dst.end(), src.begin(), src.end()); }

void Append(Bytes& dst, std::string_view src) { dst.insert(dst.end(), src.begin(), src.end()); }

uint32_t LoadBe32(const uint8_t* p) {
  return (uint32_t{p[0]} << 24) | (uint32_t{p[1]} << 16) | (uint32_t{p[2]} << 8) | uint32_t{p[3]};
}

uint64_t LoadBe64(const uint8_t* p) {
  return (uint64_t{LoadBe32(p)} << 32) | uint64_t{LoadBe32(p + 4)};
}

void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

void AppendBe16(Bytes& b, uint16_t v) {
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v));
}

void AppendBe24(Bytes& b, uint32_t v) {
  b.push_back(static_cast<uint8_t>(v >> 16));
  b.push_back(static_cast<uint8_t>(v >> 8));
  b.push_back(static_cast<uint8_t>(v));
}

void AppendBe32(Bytes& b, uint32_t v) {
  uint8_t tmp[4];
  StoreBe32(tmp, v);
  b.insert(b.end(), tmp, tmp + 4);
}

void AppendBe64(Bytes& b, uint64_t v) {
  uint8_t tmp[8];
  StoreBe64(tmp, v);
  b.insert(b.end(), tmp, tmp + 8);
}

bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

}  // namespace seal
