// A small self-contained LZ77 byte compressor (LZ4-style block format)
// used for the audit log's sealed snapshots and trim archives. No external
// dependency: the enclave cannot link zlib, and the archived log entries
// (SQL text, repeated table/branch names) compress well under plain
// window matching.
//
// Wire format: 8-byte big-endian raw size, then a token stream. Each token
// byte holds a literal run length in the high nibble and a match length
// (minus the 4-byte minimum) in the low nibble; a nibble of 15 continues
// in following bytes (255 = keep adding). Literals follow the length
// bytes; a match is a 2-byte big-endian backwards offset (1..65535) into
// the output produced so far. The final token carries literals only.
#ifndef SRC_COMMON_COMPRESS_H_
#define SRC_COMMON_COMPRESS_H_

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace seal {

Bytes LzCompress(BytesView in);

// Rejects malformed streams (bad offsets, overruns, trailing bytes) and
// streams declaring more than `max_raw_size` bytes before allocating.
Result<Bytes> LzDecompress(BytesView in, size_t max_raw_size = size_t{1} << 32);

}  // namespace seal

#endif  // SRC_COMMON_COMPRESS_H_
