// Minimal leveled logging to stderr. Intentionally tiny: the library is
// quiet by default (kWarn) so benchmarks are not perturbed.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace seal {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, const std::string& msg);

namespace internal {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace seal

#define SEAL_LOG(level) ::seal::internal::LogLine(::seal::LogLevel::level)

#endif  // SRC_COMMON_LOG_H_
