// Time and simulated-cycle utilities.
//
// The SGX simulator injects transition costs expressed in CPU cycles
// (the paper reports 8,400 cycles per enclave transition). CycleSpinner
// converts a cycle count into a calibrated busy-wait so that benchmark
// shapes reflect the paper's cost model on whatever machine this runs on.
#ifndef SRC_COMMON_CLOCK_H_
#define SRC_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace seal {

// Nanoseconds since an arbitrary epoch (steady clock).
int64_t NowNanos();

// CPU time consumed by the calling thread, in nanoseconds. Used by the SGX
// simulator to charge in-enclave execution overhead proportionally to work
// actually done (robust against preemption on loaded machines).
int64_t ThreadCpuNanos();

// Busy-waits for approximately `nanos` nanoseconds of WALL time. Used to
// model costs that merely delay; costs that consume CPU use SpinCpuNanos.
void SpinNanos(int64_t nanos);

// Busy-waits until the calling thread has consumed `nanos` nanoseconds of
// CPU time. Under CPU contention this models real work correctly where a
// wall-clock spin would be double-counted across preempted threads.
void SpinCpuNanos(int64_t nanos);

// Sleeps (yields the CPU) for `nanos` nanoseconds.
void SleepNanos(int64_t nanos);

// Converts simulated CPU cycles to nanoseconds at a reference frequency.
// The paper's testbed is a 3.70 GHz Xeon E3-1280 v5; we keep that frequency
// so cycle figures quoted from the paper translate directly.
class CycleSpinner {
 public:
  static constexpr double kReferenceGhz = 3.7;

  // Busy-waits for `cycles` simulated cycles of CPU time (transitions
  // stall the core; concurrent transitions must not overlap for free).
  static void Spin(uint64_t cycles) {
    SpinCpuNanos(static_cast<int64_t>(static_cast<double>(cycles) / kReferenceGhz));
  }

  static int64_t CyclesToNanos(uint64_t cycles) {
    return static_cast<int64_t>(static_cast<double>(cycles) / kReferenceGhz);
  }
};

}  // namespace seal

#endif  // SRC_COMMON_CLOCK_H_
