// Deterministic PRNGs for workload generation and tests. Not used for
// key material -- the crypto library has its own DRBG (src/crypto/drbg.h).
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace seal {

// SplitMix64: tiny, fast, good-enough generator for reproducible workloads.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Random lower-case alphanumeric identifier of length n.
  std::string Ident(size_t n) {
    static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
    std::string s;
    s.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      s.push_back(kAlphabet[Below(sizeof(kAlphabet) - 1)]);
    }
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace seal

#endif  // SRC_COMMON_RNG_H_
