// Minimal Status/Result vocabulary types (std::expected is C++23; we target
// C++20, so we hand-roll a small equivalent).
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace seal {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kPermissionDenied,
  kOutOfRange,
  kDataLoss,
};

// A status code plus human-readable message. Cheap to copy, never throws.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return "error(" + std::to_string(static_cast<int>(code_)) + "): " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status PermissionDenied(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}
inline Status DataLoss(std::string msg) { return Status(StatusCode::kDataLoss, std::move(msg)); }

// Result<T> is either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) {
      return kOk;
    }
    return std::get<Status>(v_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define SEAL_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::seal::Status _st = (expr);          \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

#define SEAL_ASSIGN_OR_RETURN(lhs, expr)  \
  auto lhs##_result = (expr);             \
  if (!lhs##_result.ok()) {               \
    return lhs##_result.status();         \
  }                                       \
  auto lhs = std::move(lhs##_result).value()

}  // namespace seal

#endif  // SRC_COMMON_STATUS_H_
