// User-level cooperative threading, modelled after the lthread library the
// paper uses inside the enclave (§4.3). Tasks run on a scheduler owned by
// one OS thread; Yield() returns control to the scheduler, which resumes
// the next runnable task. There is no preemption.
#ifndef SRC_LTHREAD_LTHREAD_H_
#define SRC_LTHREAD_LTHREAD_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace seal::lthread {

class Scheduler;

// One coroutine task. Created by Scheduler::Spawn.
class Task {
 public:
  enum class State { kRunnable, kRunning, kBlocked, kFinished };

  State state() const { return state_; }
  uint64_t id() const { return id_; }

  // Task-local pointer for the embedding layer (the async-call runtime binds
  // each task to the call slot it is currently serving).
  void set_user_data(void* p) { user_data_ = p; }
  void* user_data() const { return user_data_; }

  // CPU nanoseconds consumed by THIS task's slices only (other tasks
  // interleaved on the same OS thread are excluded), including the current
  // slice when called from inside the running task. The SGX simulator uses
  // this to charge in-enclave execution overhead per handler.
  int64_t cpu_nanos() const;

 private:
  friend class Scheduler;

  Task(Scheduler* scheduler, uint64_t id, std::function<void()> fn, size_t stack_size);

  static void Trampoline();

  Scheduler* scheduler_;
  uint64_t id_;
  std::function<void()> fn_;
  State state_ = State::kRunnable;
  void* user_data_ = nullptr;
  int64_t cpu_nanos_ = 0;
  int64_t slice_cpu_start_ = 0;  // thread CPU stamp at the current resume
  std::vector<uint8_t> stack_;
  ucontext_t context_;
};

// A cooperative scheduler. Not thread-safe: one Scheduler per OS thread
// (the async-call layer runs S schedulers on S enclave threads).
class Scheduler {
 public:
  static constexpr size_t kDefaultStackSize = 256 * 1024;

  Scheduler() = default;
  ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a task; it will first run on the next Run()/RunOnce().
  Task* Spawn(std::function<void()> fn, size_t stack_size = kDefaultStackSize);

  // Runs runnable tasks until all have finished.
  void Run();

  // Runs at most one scheduling round (each runnable task gets one slice).
  // Returns true if any task made progress.
  bool RunOnce();

  // --- called from inside a running task ---

  // Yields back to the scheduler; the task stays runnable.
  static void Yield();
  // Marks the current task blocked and yields; another context must call
  // MakeRunnable to resume it.
  static void Block();

  // Wakes a blocked task (callable from the scheduler's thread).
  void MakeRunnable(Task* task);

  // The currently running task on this thread, or nullptr.
  static Task* Current();

  size_t live_tasks() const { return live_; }

 private:
  friend class Task;

  void SwitchTo(Task* task);

  std::vector<std::unique_ptr<Task>> tasks_;
  size_t live_ = 0;
  uint64_t next_id_ = 1;
  ucontext_t main_context_;
};

}  // namespace seal::lthread

#endif  // SRC_LTHREAD_LTHREAD_H_
