// User-level cooperative threading, modelled after the lthread library the
// paper uses inside the enclave (§4.3). Tasks run on a scheduler owned by
// one OS thread; Yield() returns control to the scheduler, which resumes
// the next runnable task. There is no preemption.
//
// Scheduling is a FIFO ready queue: Spawn/Yield/wakeup append, each
// RunOnce() round pops the tasks that were ready when the round started.
// This keeps round semantics identical to the original list scan while
// making a round O(runnable) instead of O(ever-created) — with 20k mostly
// idle connection tasks parked on a reactor thread, only the woken few are
// touched.
//
// Cross-thread wakeups: everything on a Scheduler is owned by its OS
// thread EXCEPT MakeRunnableFromAnyThread/Notify, which other threads (the
// poller, shutdown paths) use to wake a blocked task. The handoff is a
// per-task wake token plus a mutex-protected mailbox the scheduler thread
// drains; a wake that races with the task still running simply parks the
// token, which the scheduler consumes the moment the task blocks — wakeups
// are never lost, at worst a task observes one spurious resume.
#ifndef SRC_LTHREAD_LTHREAD_H_
#define SRC_LTHREAD_LTHREAD_H_

#include <ucontext.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace seal::lthread {

class Scheduler;

// One coroutine task. Created by Scheduler::Spawn.
class Task {
 public:
  enum class State { kRunnable, kRunning, kBlocked, kFinished };

  State state() const { return state_; }
  uint64_t id() const { return id_; }

  // Task-local pointer for the embedding layer (the async-call runtime binds
  // each task to the call slot it is currently serving; the reactor binds
  // each task to its connection context).
  void set_user_data(void* p) { user_data_ = p; }
  void* user_data() const { return user_data_; }

  // CPU nanoseconds consumed by THIS task's slices only (other tasks
  // interleaved on the same OS thread are excluded), including the current
  // slice when called from inside the running task. The SGX simulator uses
  // this to charge in-enclave execution overhead per handler.
  int64_t cpu_nanos() const;

 private:
  friend class Scheduler;

  Task(Scheduler* scheduler, uint64_t id, std::function<void()> fn, size_t stack_size);

  static void Trampoline();

  Scheduler* scheduler_;
  uint64_t id_;
  std::function<void()> fn_;
  State state_ = State::kRunnable;
  void* user_data_ = nullptr;
  int64_t cpu_nanos_ = 0;
  int64_t slice_cpu_start_ = 0;  // thread CPU stamp at the current resume
  // Set by MakeRunnableFromAnyThread; consumed on the scheduler thread
  // (mailbox drain, or SwitchTo when the wake raced the task blocking).
  std::atomic<bool> wake_pending_{false};
  std::vector<uint8_t> stack_;
  ucontext_t context_;
};

// A cooperative scheduler. One Scheduler per OS thread; only the two
// cross-thread entry points documented below may be called from elsewhere.
class Scheduler {
 public:
  static constexpr size_t kDefaultStackSize = 256 * 1024;

  Scheduler() = default;
  ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Creates a task; it will first run on the next Run()/RunOnce().
  Task* Spawn(std::function<void()> fn, size_t stack_size = kDefaultStackSize);

  // Runs runnable tasks until all have finished.
  void Run();

  // Runs at most one scheduling round (each task ready at round start gets
  // one slice). Returns true if any task made progress.
  bool RunOnce();

  // --- called from inside a running task ---

  // Yields back to the scheduler; the task stays runnable.
  static void Yield();
  // Marks the current task blocked and yields; another context must call
  // MakeRunnable / MakeRunnableFromAnyThread to resume it.
  static void Block();

  // Wakes a blocked task. Only from the scheduler's own thread.
  void MakeRunnable(Task* task);

  // --- cross-thread entry points (any thread) ---

  // Wakes `task`, which must belong to this scheduler and must not have
  // finished (callers own that guarantee: a connection's wakers are torn
  // down before its task exits). Safe to race with the task blocking,
  // running, or being already runnable; also wakes WaitForWork.
  void MakeRunnableFromAnyThread(Task* task);

  // Wakes the scheduler thread out of WaitForWork without waking a task
  // (new work arrived by some other channel, or shutdown).
  void Notify();

  // --- scheduler-thread idle parking ---

  // Blocks the OS thread until MakeRunnableFromAnyThread or Notify is
  // called. Returns immediately if a wakeup is already pending. Call only
  // from the scheduler's own thread, outside RunOnce.
  void WaitForWork();

  // The currently running task on this thread, or nullptr.
  static Task* Current();

  size_t live_tasks() const { return live_; }
  // Tasks currently queued to run (scheduler thread only; metrics).
  size_t ready_depth() const { return ready_.size(); }

 private:
  friend class Task;

  void SwitchTo(Task* task);
  // Moves mailbox wakeups into the ready queue (scheduler thread only).
  void DrainExternalWakeups();

  std::vector<std::unique_ptr<Task>> tasks_;
  std::deque<Task*> ready_;
  size_t live_ = 0;
  uint64_t next_id_ = 1;
  ucontext_t main_context_;

  // Cross-thread wakeup mailbox.
  std::mutex ext_mutex_;
  std::condition_variable ext_cv_;
  std::vector<Task*> ext_wakeups_;
  bool notified_ = false;
};

}  // namespace seal::lthread

#endif  // SRC_LTHREAD_LTHREAD_H_
