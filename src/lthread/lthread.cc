#include "src/lthread/lthread.h"

#include <cassert>

#include "src/common/clock.h"

namespace seal::lthread {

namespace {
thread_local Scheduler* t_scheduler = nullptr;
thread_local Task* t_current = nullptr;
}  // namespace

Task::Task(Scheduler* scheduler, uint64_t id, std::function<void()> fn, size_t stack_size)
    : scheduler_(scheduler), id_(id), fn_(std::move(fn)), stack_(stack_size) {
  getcontext(&context_);
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // we always swap back explicitly
  makecontext(&context_, reinterpret_cast<void (*)()>(&Task::Trampoline), 0);
}

void Task::Trampoline() {
  Task* self = t_current;
  self->fn_();
  self->state_ = State::kFinished;
  // Return to the scheduler.
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

Task* Scheduler::Spawn(std::function<void()> fn, size_t stack_size) {
  tasks_.push_back(std::unique_ptr<Task>(new Task(this, next_id_++, std::move(fn), stack_size)));
  ++live_;
  return tasks_.back().get();
}

void Scheduler::SwitchTo(Task* task) {
  Scheduler* prev_sched = t_scheduler;
  Task* prev_task = t_current;
  t_scheduler = this;
  t_current = task;
  task->state_ = Task::State::kRunning;
  task->slice_cpu_start_ = ThreadCpuNanos();
  swapcontext(&main_context_, &task->context_);
  task->cpu_nanos_ += ThreadCpuNanos() - task->slice_cpu_start_;
  t_current = prev_task;
  t_scheduler = prev_sched;
  if (task->state_ == Task::State::kFinished) {
    --live_;
  } else if (task->state_ == Task::State::kRunning) {
    task->state_ = Task::State::kRunnable;
  }
}

bool Scheduler::RunOnce() {
  bool progressed = false;
  // Snapshot: tasks spawned during the round run next round.
  size_t count = tasks_.size();
  for (size_t i = 0; i < count; ++i) {
    Task* task = tasks_[i].get();
    if (task->state_ == Task::State::kRunnable) {
      SwitchTo(task);
      progressed = true;
    }
  }
  // Compact finished tasks occasionally to bound memory.
  if (tasks_.size() > 64) {
    size_t alive = 0;
    for (const auto& t : tasks_) {
      if (t->state_ != Task::State::kFinished) {
        ++alive;
      }
    }
    if (alive * 2 < tasks_.size()) {
      std::vector<std::unique_ptr<Task>> keep;
      keep.reserve(alive);
      for (auto& t : tasks_) {
        if (t->state_ != Task::State::kFinished) {
          keep.push_back(std::move(t));
        }
      }
      tasks_ = std::move(keep);
    }
  }
  return progressed;
}

void Scheduler::Run() {
  while (live_ > 0) {
    if (!RunOnce()) {
      // All remaining tasks are blocked: nothing can make progress from
      // here without an external MakeRunnable, so bail to the caller.
      break;
    }
  }
}

void Scheduler::Yield() {
  Task* self = t_current;
  assert(self != nullptr && "Yield outside a task");
  self->state_ = Task::State::kRunnable;
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

void Scheduler::Block() {
  Task* self = t_current;
  assert(self != nullptr && "Block outside a task");
  self->state_ = Task::State::kBlocked;
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

void Scheduler::MakeRunnable(Task* task) {
  if (task->state_ == Task::State::kBlocked) {
    task->state_ = Task::State::kRunnable;
  }
}

Task* Scheduler::Current() { return t_current; }

int64_t Task::cpu_nanos() const {
  if (t_current == this && state_ == State::kRunning) {
    return cpu_nanos_ + (ThreadCpuNanos() - slice_cpu_start_);
  }
  return cpu_nanos_;
}

}  // namespace seal::lthread
