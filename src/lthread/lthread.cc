#include "src/lthread/lthread.h"

#include <cassert>

#include "src/common/clock.h"

namespace seal::lthread {

namespace {
thread_local Scheduler* t_scheduler = nullptr;
thread_local Task* t_current = nullptr;
}  // namespace

Task::Task(Scheduler* scheduler, uint64_t id, std::function<void()> fn, size_t stack_size)
    : scheduler_(scheduler), id_(id), fn_(std::move(fn)), stack_(stack_size) {
  getcontext(&context_);
  context_.uc_stack.ss_sp = stack_.data();
  context_.uc_stack.ss_size = stack_.size();
  context_.uc_link = nullptr;  // we always swap back explicitly
  makecontext(&context_, reinterpret_cast<void (*)()>(&Task::Trampoline), 0);
}

void Task::Trampoline() {
  Task* self = t_current;
  self->fn_();
  self->state_ = State::kFinished;
  // Return to the scheduler.
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

Task* Scheduler::Spawn(std::function<void()> fn, size_t stack_size) {
  tasks_.push_back(std::unique_ptr<Task>(new Task(this, next_id_++, std::move(fn), stack_size)));
  ++live_;
  ready_.push_back(tasks_.back().get());
  return tasks_.back().get();
}

void Scheduler::SwitchTo(Task* task) {
  Scheduler* prev_sched = t_scheduler;
  Task* prev_task = t_current;
  t_scheduler = this;
  t_current = task;
  task->state_ = Task::State::kRunning;
  task->slice_cpu_start_ = ThreadCpuNanos();
  swapcontext(&main_context_, &task->context_);
  task->cpu_nanos_ += ThreadCpuNanos() - task->slice_cpu_start_;
  t_current = prev_task;
  t_scheduler = prev_sched;
  switch (task->state_) {
    case Task::State::kFinished:
      --live_;
      break;
    case Task::State::kRunning:  // swapped out without setting a state
      task->state_ = Task::State::kRunnable;
      ready_.push_back(task);
      break;
    case Task::State::kRunnable:  // yielded: runs again next round
      ready_.push_back(task);
      break;
    case Task::State::kBlocked:
      // A cross-thread wake may have landed while the task was still
      // running (wake-before-block). Consume the parked token now so the
      // wakeup is not lost.
      if (task->wake_pending_.exchange(false, std::memory_order_acq_rel)) {
        task->state_ = Task::State::kRunnable;
        ready_.push_back(task);
      }
      break;
  }
}

void Scheduler::DrainExternalWakeups() {
  std::vector<Task*> pending;
  {
    std::lock_guard<std::mutex> lock(ext_mutex_);
    if (ext_wakeups_.empty()) {
      return;
    }
    pending.swap(ext_wakeups_);
  }
  for (Task* task : pending) {
    // state_ is only written by this thread, so the read is safe; the
    // token decides whether this mailbox entry still means anything.
    if (task->state_ == Task::State::kBlocked &&
        task->wake_pending_.exchange(false, std::memory_order_acq_rel)) {
      task->state_ = Task::State::kRunnable;
      ready_.push_back(task);
    }
  }
}

bool Scheduler::RunOnce() {
  DrainExternalWakeups();
  bool progressed = false;
  // Snapshot: tasks queued during the round (spawns, yields, wakeups) run
  // next round.
  size_t count = ready_.size();
  for (size_t i = 0; i < count; ++i) {
    Task* task = ready_.front();
    ready_.pop_front();
    assert(task->state_ == Task::State::kRunnable && "non-runnable task in ready queue");
    SwitchTo(task);
    progressed = true;
  }
  // Compact finished tasks occasionally to bound memory.
  if (tasks_.size() > 64) {
    size_t alive = 0;
    for (const auto& t : tasks_) {
      if (t->state_ != Task::State::kFinished) {
        ++alive;
      }
    }
    if (alive * 2 < tasks_.size()) {
      // Neutralise any mailbox entries that still point at tasks we are
      // about to free. Wakers guarantee no NEW wakes for finished tasks
      // (they tear down before the task exits), so post-drain the mailbox
      // cannot regrow a dangling pointer.
      DrainExternalWakeups();
      std::vector<std::unique_ptr<Task>> keep;
      keep.reserve(alive);
      for (auto& t : tasks_) {
        if (t->state_ != Task::State::kFinished) {
          keep.push_back(std::move(t));
        }
      }
      tasks_ = std::move(keep);
    }
  }
  return progressed;
}

void Scheduler::Run() {
  while (live_ > 0) {
    if (!RunOnce()) {
      // All remaining tasks are blocked: nothing can make progress from
      // here without an external MakeRunnable, so bail to the caller.
      break;
    }
  }
}

void Scheduler::Yield() {
  Task* self = t_current;
  assert(self != nullptr && "Yield outside a task");
  self->state_ = Task::State::kRunnable;
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

void Scheduler::Block() {
  Task* self = t_current;
  assert(self != nullptr && "Block outside a task");
  self->state_ = Task::State::kBlocked;
  swapcontext(&self->context_, &self->scheduler_->main_context_);
}

void Scheduler::MakeRunnable(Task* task) {
  if (task->state_ == Task::State::kBlocked) {
    task->wake_pending_.store(false, std::memory_order_relaxed);  // direct wake wins
    task->state_ = Task::State::kRunnable;
    ready_.push_back(task);
  }
}

void Scheduler::MakeRunnableFromAnyThread(Task* task) {
  task->wake_pending_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(ext_mutex_);
    ext_wakeups_.push_back(task);
  }
  ext_cv_.notify_one();
}

void Scheduler::Notify() {
  {
    std::lock_guard<std::mutex> lock(ext_mutex_);
    notified_ = true;
  }
  ext_cv_.notify_one();
}

void Scheduler::WaitForWork() {
  std::unique_lock<std::mutex> lock(ext_mutex_);
  ext_cv_.wait(lock, [this] { return notified_ || !ext_wakeups_.empty(); });
  notified_ = false;
}

Task* Scheduler::Current() { return t_current; }

int64_t Task::cpu_nanos() const {
  if (t_current == this && state_ == State::kRunning) {
    return cpu_nanos_ + (ThreadCpuNanos() - slice_cpu_start_);
  }
  return cpu_nanos_;
}

}  // namespace seal::lthread
