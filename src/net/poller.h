// Poller: readiness multiplexer over Pipe endpoints — the stand-in for
// epoll on the untrusted side of the enclave boundary. One background
// thread watches any number of pipes and invokes a per-watch callback
// when the pipe becomes ready (readable data due / EOF for kRead, buffer
// space for kWrite).
//
// Watches are level-triggered but one-shot-armed, the way epoll is used
// with EPOLLONESHOT: a ready watch fires its callback once and disarms;
// the owner calls Rearm() when it wants the next event. This makes the
// "callback races with the task that is about to block" window easy to
// reason about in the reactor: arm, then check, then block.
//
// Latency-modelled pipes can hold data that exists but is not yet due
// (in flight on the simulated link). Such watches park in a deadline heap
// and fire when the data arrives, without busy-polling.
#ifndef SRC_NET_POLLER_H_
#define SRC_NET_POLLER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "src/net/net.h"

namespace seal::net {

class Poller {
 public:
  enum class Interest { kRead, kWrite };

  Poller();
  // Stops and joins the poll thread. All watches must be Unwatch()ed first
  // (the reactor owns that ordering); remaining ones are dropped.
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers `callback` to fire when `pipe` is ready for `interest`. The
  // watch is created armed, and readiness is evaluated immediately (a pipe
  // that is already ready fires promptly — level-triggered semantics).
  // The callback runs on the poller thread, or on whatever thread mutated
  // the pipe; it must be fast and must not call back into the Poller or
  // the pipe. Returns a watch id.
  uint64_t Watch(Pipe* pipe, Interest interest, std::function<void()> callback);

  // Re-arms a fired (or never-fired) watch and re-evaluates readiness.
  // Calling Rearm on an armed watch is a no-op re-check.
  void Rearm(uint64_t id);

  // Removes the watch. On return the callback is guaranteed to never run
  // again, making it safe to destroy whatever the callback captures (and
  // then the pipe). Must not be called from inside the watch's callback.
  void Unwatch(uint64_t id);

  void Stop();

  size_t watch_count() const;

 private:
  struct WatchState {
    Pipe* pipe = nullptr;
    Interest interest = Interest::kRead;
    std::function<void()> callback;
    uint64_t pipe_watcher_id = 0;
    bool armed = true;
    bool firing = false;    // callback currently running on the poll thread
    bool removing = false;  // Unwatch in progress: stop firing it
  };

  // Evaluates one watch and fires it if armed+ready. Caller holds mutex_;
  // the probe takes the pipe lock under mutex_ (lock order is always
  // poller -> pipe) and the callback runs with mutex_ released.
  void EvaluateLocked(uint64_t id, std::unique_lock<std::mutex>& lock);

  void Loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable fire_cv_;  // signalled when a callback finishes
  std::map<uint64_t, WatchState> watches_;
  uint64_t next_id_ = 1;
  std::deque<uint64_t> dirty_;  // ids whose pipe changed state
  // (deadline, id) for in-flight data on latency-modelled links.
  std::priority_queue<std::pair<int64_t, uint64_t>, std::vector<std::pair<int64_t, uint64_t>>,
                      std::greater<>>
      deadlines_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace seal::net

#endif  // SRC_NET_POLLER_H_
