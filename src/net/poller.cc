#include "src/net/poller.h"

#include <chrono>

#include "src/common/clock.h"
#include "src/obs/obs.h"

namespace seal::net {

Poller::Poller() { thread_ = std::thread([this] { Loop(); }); }

Poller::~Poller() { Stop(); }

uint64_t Poller::Watch(Pipe* pipe, Interest interest, std::function<void()> callback) {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t id = next_id_++;
  WatchState& w = watches_[id];
  w.pipe = pipe;
  w.interest = interest;
  w.callback = std::move(callback);
  // The hook only enqueues the id; stale ids (after Unwatch) are skipped by
  // the loop. Lock order is poller -> pipe everywhere: pipe hooks run with
  // the pipe lock already released (Pipe::NotifyWatchers).
  w.pipe_watcher_id = pipe->AddWatcher([this, id] {
    std::lock_guard<std::mutex> l(mutex_);
    dirty_.push_back(id);
    cv_.notify_all();
  });
  SEAL_OBS_GAUGE("poller_watches").Set(static_cast<int64_t>(watches_.size()));
  EvaluateLocked(id, lock);
  return id;
}

void Poller::Rearm(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = watches_.find(id);
  if (it == watches_.end() || it->second.removing) {
    return;
  }
  it->second.armed = true;
  EvaluateLocked(id, lock);
}

void Poller::Unwatch(uint64_t id) {
  Pipe* pipe = nullptr;
  uint64_t pipe_watcher_id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = watches_.find(id);
    if (it == watches_.end()) {
      return;
    }
    it->second.removing = true;
    pipe = it->second.pipe;
    pipe_watcher_id = it->second.pipe_watcher_id;
  }
  // Outside the poller lock: RemoveWatcher waits out in-flight hook
  // invocations, and those hooks need the poller lock to finish.
  pipe->RemoveWatcher(pipe_watcher_id);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = watches_.find(id);
    if (it != watches_.end()) {
      fire_cv_.wait(lock, [&] { return !it->second.firing; });
      watches_.erase(it);
    }
    SEAL_OBS_GAUGE("poller_watches").Set(static_cast<int64_t>(watches_.size()));
  }
}

void Poller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      if (thread_.joinable()) {
        // fall through to join below
      } else {
        return;
      }
    }
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  // Detach hooks of any watches the owner never removed, so pipe mutations
  // after the poller is gone cannot call into freed state. Pipes must still
  // be alive at this point (owners keep streams alive until after Stop).
  std::map<uint64_t, WatchState> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(watches_);
  }
  for (auto& [id, w] : leftovers) {
    w.pipe->RemoveWatcher(w.pipe_watcher_id);
  }
}

size_t Poller::watch_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return watches_.size();
}

void Poller::EvaluateLocked(uint64_t id, std::unique_lock<std::mutex>& lock) {
  auto it = watches_.find(id);
  if (it == watches_.end()) {
    return;
  }
  WatchState& w = it->second;
  if (!w.armed || w.firing || w.removing || stop_) {
    return;
  }
  bool ready = false;
  if (w.interest == Interest::kRead) {
    Pipe::ReadReadiness r = w.pipe->CheckReadReady();
    ready = r.ready;
    if (!ready && r.next_ready_at != 0) {
      deadlines_.emplace(r.next_ready_at, id);
      cv_.notify_all();  // the loop may need to shorten its sleep
    }
  } else {
    ready = w.pipe->CheckWriteReady();
  }
  if (!ready) {
    return;
  }
  w.armed = false;
  w.firing = true;
  std::function<void()> cb = w.callback;
  lock.unlock();
  cb();
  SEAL_OBS_COUNTER("poller_dispatch_total").Increment();
  lock.lock();
  // The map is stable across the unlock except for erase, which Unwatch
  // defers until firing clears.
  auto again = watches_.find(id);
  if (again != watches_.end()) {
    again->second.firing = false;
  }
  fire_cv_.notify_all();
}

void Poller::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    while (!dirty_.empty() && !stop_) {
      uint64_t id = dirty_.front();
      dirty_.pop_front();
      EvaluateLocked(id, lock);
    }
    if (stop_) {
      break;
    }
    int64_t now = NowNanos();
    while (!deadlines_.empty() && deadlines_.top().first <= now) {
      uint64_t id = deadlines_.top().second;
      deadlines_.pop();
      EvaluateLocked(id, lock);
    }
    if (!dirty_.empty()) {
      continue;
    }
    if (!deadlines_.empty()) {
      int64_t wait_nanos = deadlines_.top().first - NowNanos();
      if (wait_nanos > 0) {
        cv_.wait_for(lock, std::chrono::nanoseconds(wait_nanos),
                     [this] { return stop_ || !dirty_.empty(); });
      }
    } else {
      cv_.wait(lock, [this] { return stop_ || !dirty_.empty() || !deadlines_.empty(); });
    }
  }
}

}  // namespace seal::net
