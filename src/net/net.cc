#include "src/net/net.h"

#include <chrono>

#include "src/common/clock.h"

namespace seal::net {

void Pipe::Write(BytesView data) {
  if (data.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    return;  // writes after close are dropped, like a reset connection
  }
  int64_t now = NowNanos();
  int64_t transmit_end = now;
  if (bandwidth_bytes_per_sec_ > 0) {
    int64_t serialisation =
        static_cast<int64_t>(static_cast<double>(data.size()) * 1e9 /
                             static_cast<double>(bandwidth_bytes_per_sec_));
    transmit_end = std::max(now, link_free_at_) + serialisation;
    link_free_at_ = transmit_end;
  }
  chunks_.push_back(Chunk{transmit_end + latency_nanos_, Bytes(data.begin(), data.end())});
  cv_.notify_all();
}

void Pipe::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

bool Pipe::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t Pipe::Read(uint8_t* buf, size_t max) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!chunks_.empty()) {
      int64_t now = NowNanos();
      Chunk& front = chunks_.front();
      if (front.ready_at <= now) {
        size_t available = front.data.size() - front.offset;
        size_t take = std::min(available, max);
        std::copy(front.data.begin() + static_cast<ptrdiff_t>(front.offset),
                  front.data.begin() + static_cast<ptrdiff_t>(front.offset + take), buf);
        front.offset += take;
        if (front.offset == front.data.size()) {
          chunks_.pop_front();
        }
        return take;
      }
      // Data exists but is still "in flight": wait out the latency.
      cv_.wait_for(lock, std::chrono::nanoseconds(front.ready_at - now));
      continue;
    }
    if (closed_) {
      return 0;  // EOF
    }
    cv_.wait(lock);
  }
}

Status Stream::ReadFull(uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    size_t r = Read(buf + got, n - got);
    if (r == 0) {
      return DataLoss("connection closed mid-read (" + std::to_string(got) + "/" +
                      std::to_string(n) + " bytes)");
    }
    got += r;
  }
  return Status::Ok();
}

std::pair<StreamPtr, StreamPtr> CreateStreamPair(int64_t latency_nanos,
                                                 int64_t bandwidth_bytes_per_sec) {
  auto a_to_b = std::make_shared<Pipe>(latency_nanos, bandwidth_bytes_per_sec);
  auto b_to_a = std::make_shared<Pipe>(latency_nanos, bandwidth_bytes_per_sec);
  auto a = std::make_unique<Stream>(b_to_a, a_to_b);
  auto b = std::make_unique<Stream>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

StreamPtr Listener::Accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !pending_.empty() || shutdown_; });
  if (pending_.empty()) {
    return nullptr;
  }
  StreamPtr stream = std::move(pending_.front());
  pending_.pop_front();
  return stream;
}

void Listener::Shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  shutdown_ = true;
  cv_.notify_all();
}

void Listener::Push(StreamPtr stream) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_) {
    return;
  }
  pending_.push_back(std::move(stream));
  cv_.notify_all();
}

Result<std::shared_ptr<Listener>> Network::Listen(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = listeners_.emplace(address, std::make_shared<Listener>());
  if (!inserted) {
    return AlreadyExists("address in use: " + address);
  }
  return it->second;
}

Result<StreamPtr> Network::Dial(const std::string& address, int64_t latency_nanos,
                                int64_t bandwidth_bytes_per_sec) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Unavailable("connection refused: " + address);
    }
    listener = it->second;
  }
  auto [client_end, server_end] = CreateStreamPair(latency_nanos, bandwidth_bytes_per_sec);
  listener->Push(std::move(server_end));
  return std::move(client_end);
}

void Network::Unlisten(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = listeners_.find(address);
  if (it != listeners_.end()) {
    it->second->Shutdown();
    listeners_.erase(it);
  }
}

}  // namespace seal::net
