#include "src/net/net.h"

#include <algorithm>
#include <chrono>

#include "src/common/clock.h"

namespace seal::net {

void Pipe::EnqueueLocked(BytesView data) {
  int64_t now = NowNanos();
  int64_t transmit_end = now;
  if (bandwidth_bytes_per_sec_ > 0) {
    int64_t serialisation =
        static_cast<int64_t>(static_cast<double>(data.size()) * 1e9 /
                             static_cast<double>(bandwidth_bytes_per_sec_));
    transmit_end = std::max(now, link_free_at_) + serialisation;
    link_free_at_ = transmit_end;
  }
  chunks_.push_back(Chunk{transmit_end + latency_nanos_, Bytes(data.begin(), data.end())});
  buffered_ += data.size();
}

void Pipe::NotifyWatchers(std::unique_lock<std::mutex>& lock) {
  if (watchers_.empty()) {
    return;
  }
  // Snapshot, then invoke outside the pipe lock: watcher hooks take the
  // poller's lock, and the poller takes pipe locks while scanning, so
  // calling under mutex_ would invert that order. `notifying_` lets
  // RemoveWatcher wait out invocations snapshotted before the removal.
  std::vector<std::function<void()>> hooks;
  hooks.reserve(watchers_.size());
  for (auto& [id, fn] : watchers_) {
    hooks.push_back(fn);
  }
  ++notifying_;
  lock.unlock();
  for (auto& fn : hooks) {
    fn();
  }
  lock.lock();
  if (--notifying_ == 0) {
    watcher_cv_.notify_all();
  }
}

void Pipe::Write(BytesView data) {
  if (data.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    return;  // writes after close are dropped, like a reset connection
  }
  EnqueueLocked(data);
  cv_.notify_all();
  NotifyWatchers(lock);
}

int64_t Pipe::TryWrite(BytesView data) {
  if (data.empty()) {
    return 0;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) {
    return static_cast<int64_t>(data.size());  // accepted and dropped, like Write
  }
  size_t take = data.size();
  if (capacity_ != 0) {
    if (buffered_ >= capacity_) {
      return kWouldBlock;
    }
    take = std::min(take, capacity_ - buffered_);
  }
  EnqueueLocked(BytesView(data.data(), take));
  cv_.notify_all();
  NotifyWatchers(lock);
  return static_cast<int64_t>(take);
}

void Pipe::Close() {
  std::unique_lock<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.notify_all();
  NotifyWatchers(lock);
}

void Pipe::set_capacity(size_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = bytes;
}

void Pipe::Unread(BytesView data) {
  if (data.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // ready_at 0 = due since forever: these bytes were already delivered once
  // and must come back ahead of everything still queued or in flight.
  chunks_.push_front(Chunk{0, Bytes(data.begin(), data.end())});
  buffered_ += data.size();
  cv_.notify_all();
  NotifyWatchers(lock);
}

bool Pipe::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t Pipe::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffered_;
}

size_t Pipe::Read(uint8_t* buf, size_t max) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!chunks_.empty()) {
      int64_t now = NowNanos();
      Chunk& front = chunks_.front();
      if (front.ready_at <= now) {
        size_t available = front.data.size() - front.offset;
        size_t take = std::min(available, max);
        std::copy(front.data.begin() + static_cast<ptrdiff_t>(front.offset),
                  front.data.begin() + static_cast<ptrdiff_t>(front.offset + take), buf);
        front.offset += take;
        buffered_ -= take;
        if (front.offset == front.data.size()) {
          chunks_.pop_front();
        }
        if (capacity_ != 0) {
          // Room opened up: a non-blocking writer may be waiting on it.
          NotifyWatchers(lock);
        }
        return take;
      }
      // Data exists but is still "in flight": wait out the latency.
      cv_.wait_for(lock, std::chrono::nanoseconds(front.ready_at - now));
      continue;
    }
    if (closed_) {
      return 0;  // EOF
    }
    cv_.wait(lock);
  }
}

int64_t Pipe::TryRead(uint8_t* buf, size_t max) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!chunks_.empty()) {
    Chunk& front = chunks_.front();
    if (front.ready_at > NowNanos()) {
      return kWouldBlock;  // in flight; CheckReadReady reports when it's due
    }
    size_t available = front.data.size() - front.offset;
    size_t take = std::min(available, max);
    std::copy(front.data.begin() + static_cast<ptrdiff_t>(front.offset),
              front.data.begin() + static_cast<ptrdiff_t>(front.offset + take), buf);
    front.offset += take;
    buffered_ -= take;
    if (front.offset == front.data.size()) {
      chunks_.pop_front();
    }
    if (capacity_ != 0) {
      NotifyWatchers(lock);
    }
    return static_cast<int64_t>(take);
  }
  if (closed_) {
    return 0;  // EOF
  }
  return kWouldBlock;
}

Pipe::ReadReadiness Pipe::CheckReadReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReadReadiness r;
  if (!chunks_.empty()) {
    int64_t due = chunks_.front().ready_at;
    if (due <= NowNanos()) {
      r.ready = true;
    } else {
      r.next_ready_at = due;
    }
    return r;
  }
  r.ready = closed_;  // EOF counts as readable
  return r;
}

bool Pipe::CheckWriteReady() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    return true;  // a TryWrite would "succeed" (and drop)
  }
  return capacity_ == 0 || buffered_ < capacity_;
}

uint64_t Pipe::AddWatcher(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_watcher_id_++;
  watchers_.emplace_back(id, std::move(fn));
  return id;
}

void Pipe::RemoveWatcher(uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  watchers_.erase(std::remove_if(watchers_.begin(), watchers_.end(),
                                 [id](const auto& w) { return w.first == id; }),
                  watchers_.end());
  // Wait out snapshots taken before the erase so the callback provably
  // never fires after we return.
  watcher_cv_.wait(lock, [this] { return notifying_ == 0; });
}

Status Stream::ReadFull(uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    size_t r = Read(buf + got, n - got);
    if (r == 0) {
      return DataLoss("connection closed mid-read (" + std::to_string(got) + "/" +
                      std::to_string(n) + " bytes)");
    }
    got += r;
  }
  return Status::Ok();
}

std::pair<StreamPtr, StreamPtr> CreateStreamPair(int64_t latency_nanos,
                                                 int64_t bandwidth_bytes_per_sec) {
  auto a_to_b = std::make_shared<Pipe>(latency_nanos, bandwidth_bytes_per_sec);
  auto b_to_a = std::make_shared<Pipe>(latency_nanos, bandwidth_bytes_per_sec);
  auto a = std::make_unique<Stream>(b_to_a, a_to_b);
  auto b = std::make_unique<Stream>(a_to_b, b_to_a);
  return {std::move(a), std::move(b)};
}

StreamPtr Listener::Accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !pending_.empty() || shutdown_; });
  if (pending_.empty()) {
    return nullptr;
  }
  StreamPtr stream = std::move(pending_.front());
  pending_.pop_front();
  return stream;
}

void Listener::Shutdown() {
  std::deque<StreamPtr> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    orphans.swap(pending_);
    cv_.notify_all();
  }
  // Queued but never accepted: abort outside the lock so dialers see EOF
  // instead of a connection nobody will ever serve.
  for (auto& stream : orphans) {
    stream->Abort();
  }
}

bool Listener::Push(StreamPtr stream) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!shutdown_) {
      pending_.push_back(std::move(stream));
      cv_.notify_all();
      return true;
    }
  }
  // Raced with Shutdown: close both directions so the dialer's end reads
  // EOF rather than blocking forever on a half-open stream.
  stream->Abort();
  return false;
}

Result<std::shared_ptr<Listener>> Network::Listen(const std::string& address) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = listeners_.emplace(address, std::make_shared<Listener>());
  if (!inserted) {
    return AlreadyExists("address in use: " + address);
  }
  return it->second;
}

Result<StreamPtr> Network::Dial(const std::string& address, int64_t latency_nanos,
                                int64_t bandwidth_bytes_per_sec) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(address);
    if (it == listeners_.end()) {
      return Unavailable("connection refused: " + address);
    }
    listener = it->second;
  }
  auto [client_end, server_end] = CreateStreamPair(latency_nanos, bandwidth_bytes_per_sec);
  if (!listener->Push(std::move(server_end))) {
    return Unavailable("connection refused: " + address);
  }
  return std::move(client_end);
}

void Network::Unlisten(const std::string& address) {
  std::shared_ptr<Listener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(address);
    if (it != listeners_.end()) {
      listener = it->second;
      listeners_.erase(it);
    }
  }
  if (listener != nullptr) {
    listener->Shutdown();  // outside the map lock: aborts orphaned streams
  }
}

}  // namespace seal::net
