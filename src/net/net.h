// In-memory network: duplex byte streams with configurable one-way latency,
// listeners, and an address registry. Stands in for the TCP sockets between
// clients, proxies and services in the paper's testbed (including the 76 ms
// WAN link between the Squid proxy and Dropbox, §6.4).
//
// Besides the blocking socket surface, pipes expose a non-blocking edge
// (TryRead/TryWrite plus readiness probes and change watchers) that the
// Poller in poller.h multiplexes -- the stand-in for epoll on the untrusted
// side of the enclave boundary.
#ifndef SRC_NET_NET_H_
#define SRC_NET_NET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace seal::net {

// One direction of a connection. Writers append chunks stamped with a
// delivery time (now + latency); readers block until stamped data is due.
class Pipe {
 public:
  // Returned by TryRead/TryWrite when the operation cannot make progress
  // without blocking.
  static constexpr int64_t kWouldBlock = -1;

  // `bandwidth_bytes_per_sec` of 0 means unlimited; otherwise chunk
  // delivery is additionally delayed by the link's serialisation time
  // (back-to-back writes queue behind each other, like a real NIC).
  explicit Pipe(int64_t latency_nanos, int64_t bandwidth_bytes_per_sec = 0)
      : latency_nanos_(latency_nanos), bandwidth_bytes_per_sec_(bandwidth_bytes_per_sec) {}

  void Write(BytesView data);
  void Close();

  // Blocks until at least one byte is available (TCP semantics) or the pipe
  // is closed and drained. Returns the number of bytes read; 0 means EOF.
  size_t Read(uint8_t* buf, size_t max);

  // Non-blocking read: >0 bytes copied, 0 at EOF (closed and drained),
  // kWouldBlock when no data is due yet (including data still "in flight"
  // on a latency-modelled link).
  int64_t TryRead(uint8_t* buf, size_t max);

  // Non-blocking write: returns the number of bytes accepted (all of them
  // on an unbounded pipe, a prefix when a capacity is set and almost full),
  // kWouldBlock when the buffer is full. Writing to a closed pipe "accepts"
  // and drops everything, like Write.
  int64_t TryWrite(BytesView data);

  // Bounds the bytes TryWrite may buffer (0 = unlimited, the default).
  // Models the peer's receive window so writers see backpressure. The
  // blocking Write stays unbounded: only non-blocking writers can usefully
  // react to a full buffer.
  void set_capacity(size_t bytes);

  // Pushes already-consumed bytes back to the FRONT of the pipe so the next
  // Read/TryRead returns them again, immediately (no latency re-charge: the
  // bytes already crossed the link once). This is how a routing layer can
  // peek at a protocol prologue — e.g. the TLS ClientHello a shard router
  // inspects for its session id — and then hand the untouched byte stream
  // to the real protocol engine. Only the pipe's single reader may call it,
  // between its own reads.
  void Unread(BytesView data);

  // Readiness probes for the poller. `next_ready_at` is non-zero when data
  // exists but is still in flight: the earliest nanosecond it becomes due.
  struct ReadReadiness {
    bool ready = false;          // a TryRead would make progress (data or EOF)
    int64_t next_ready_at = 0;   // when in-flight data is due (0 = none)
  };
  ReadReadiness CheckReadReady() const;
  // True when a TryWrite would accept at least one byte.
  bool CheckWriteReady() const;

  // Registers a callback invoked (on the mutating thread, outside the pipe
  // lock) whenever the pipe's state changes: data written, closed, or --
  // when a capacity is set -- buffered bytes drained. Watchers must not
  // block and must not re-enter the pipe. RemoveWatcher additionally waits
  // out any in-flight invocation, so after it returns the callback will
  // never run again.
  uint64_t AddWatcher(std::function<void()> fn);
  void RemoveWatcher(uint64_t id);

  bool closed() const;
  size_t buffered_bytes() const;

 private:
  struct Chunk {
    int64_t ready_at;
    Bytes data;
    size_t offset = 0;
  };

  // Snapshots the watcher list and invokes it with the lock released;
  // `lock` must hold mutex_ on entry and holds it again on return.
  void NotifyWatchers(std::unique_lock<std::mutex>& lock);

  // Appends a chunk stamped with the link's delivery time. Caller holds
  // mutex_.
  void EnqueueLocked(BytesView data);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Chunk> chunks_;
  bool closed_ = false;
  int64_t latency_nanos_;
  int64_t bandwidth_bytes_per_sec_;
  int64_t link_free_at_ = 0;  // when the link finishes its current chunk
  size_t capacity_ = 0;       // TryWrite bound; 0 = unlimited
  size_t buffered_ = 0;       // unconsumed bytes across chunks_

  std::vector<std::pair<uint64_t, std::function<void()>>> watchers_;
  uint64_t next_watcher_id_ = 1;
  int notifying_ = 0;  // in-flight NotifyWatchers invocations
  std::condition_variable watcher_cv_;
};

// A duplex stream endpoint. Create connected pairs with CreateStreamPair.
// Virtual so embedding layers can interpose on the blocking operations
// (the reactor wraps accepted streams in a cooperative variant that
// suspends an lthread task instead of the OS thread).
class Stream {
 public:
  Stream(std::shared_ptr<Pipe> read_pipe, std::shared_ptr<Pipe> write_pipe)
      : read_pipe_(std::move(read_pipe)), write_pipe_(std::move(write_pipe)) {}
  // Half-closes our outgoing direction, like Close().
  virtual ~Stream() {
    if (write_pipe_ != nullptr) {
      write_pipe_->Close();
    }
  }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Writes all of `data` (the base stream never blocks: buffers are
  // unbounded).
  virtual void Write(BytesView data) { write_pipe_->Write(data); }
  void Write(std::string_view data) {
    Write(BytesView(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  }

  // Reads up to `max` bytes; blocks for at least one. 0 = EOF.
  virtual size_t Read(uint8_t* buf, size_t max) { return read_pipe_->Read(buf, max); }

  // Non-blocking variants (see Pipe::TryRead/TryWrite).
  int64_t TryRead(uint8_t* buf, size_t max) { return read_pipe_->TryRead(buf, max); }
  int64_t TryWrite(BytesView data) { return write_pipe_->TryWrite(data); }

  // Reads exactly n bytes or fails at EOF.
  Status ReadFull(uint8_t* buf, size_t n);

  // Half-close of our outgoing direction; reading continues until the peer
  // closes too.
  virtual void Close() { write_pipe_->Close(); }

  // Hard close of BOTH directions: our reader unblocks with EOF and the
  // peer sees EOF too. Shutdown paths use this to unwedge threads parked
  // in Read on an idle connection; it is safe to call from any thread
  // while another thread is using the stream.
  virtual void Abort() {
    if (read_pipe_ != nullptr) {
      read_pipe_->Close();
    }
    if (write_pipe_ != nullptr) {
      write_pipe_->Close();
    }
  }

  // The underlying endpoints, for readiness watching (Poller).
  Pipe* read_pipe() const { return read_pipe_.get(); }
  Pipe* write_pipe() const { return write_pipe_.get(); }

 protected:
  // For wrapper subclasses: construct empty, then adopt another stream's
  // endpoints (the donor's destructor becomes a no-op).
  Stream() = default;
  void AdoptPipes(std::unique_ptr<Stream> donor) {
    read_pipe_ = std::move(donor->read_pipe_);
    write_pipe_ = std::move(donor->write_pipe_);
  }

  std::shared_ptr<Pipe> read_pipe_;
  std::shared_ptr<Pipe> write_pipe_;
};

using StreamPtr = std::unique_ptr<Stream>;

// Creates a connected pair of endpoints with the given one-way latency and
// per-direction bandwidth (0 = unlimited).
std::pair<StreamPtr, StreamPtr> CreateStreamPair(int64_t latency_nanos = 0,
                                                 int64_t bandwidth_bytes_per_sec = 0);

// Accept queue for a listening address.
class Listener {
 public:
  // Blocks until a connection arrives or the listener is shut down
  // (nullptr).
  StreamPtr Accept();
  // Stops accepting. Connections queued but never accepted are aborted so
  // their dialers observe EOF instead of blocking forever.
  void Shutdown();

 private:
  friend class Network;
  // False when the listener is already shut down; the stream is aborted
  // (both directions closed) before being dropped so the dialer cannot be
  // handed a stream nobody will ever serve.
  bool Push(StreamPtr stream);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<StreamPtr> pending_;
  bool shutdown_ = false;
};

// Address registry: services Listen on names, clients Dial them.
class Network {
 public:
  // Registers a listener on `address`; fails if taken.
  Result<std::shared_ptr<Listener>> Listen(const std::string& address);
  // Connects to `address`; the link gets `latency_nanos` one-way latency
  // and, when non-zero, a per-direction bandwidth cap.
  Result<StreamPtr> Dial(const std::string& address, int64_t latency_nanos = 0,
                         int64_t bandwidth_bytes_per_sec = 0);
  void Unlisten(const std::string& address);

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
};

}  // namespace seal::net

#endif  // SRC_NET_NET_H_
