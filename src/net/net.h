// In-memory network: duplex byte streams with configurable one-way latency,
// listeners, and an address registry. Stands in for the TCP sockets between
// clients, proxies and services in the paper's testbed (including the 76 ms
// WAN link between the Squid proxy and Dropbox, §6.4).
#ifndef SRC_NET_NET_H_
#define SRC_NET_NET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace seal::net {

// One direction of a connection. Writers append chunks stamped with a
// delivery time (now + latency); readers block until stamped data is due.
class Pipe {
 public:
  // `bandwidth_bytes_per_sec` of 0 means unlimited; otherwise chunk
  // delivery is additionally delayed by the link's serialisation time
  // (back-to-back writes queue behind each other, like a real NIC).
  explicit Pipe(int64_t latency_nanos, int64_t bandwidth_bytes_per_sec = 0)
      : latency_nanos_(latency_nanos), bandwidth_bytes_per_sec_(bandwidth_bytes_per_sec) {}

  void Write(BytesView data);
  void Close();

  // Blocks until at least one byte is available (TCP semantics) or the pipe
  // is closed and drained. Returns the number of bytes read; 0 means EOF.
  size_t Read(uint8_t* buf, size_t max);

  bool closed() const;

 private:
  struct Chunk {
    int64_t ready_at;
    Bytes data;
    size_t offset = 0;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Chunk> chunks_;
  bool closed_ = false;
  int64_t latency_nanos_;
  int64_t bandwidth_bytes_per_sec_;
  int64_t link_free_at_ = 0;  // when the link finishes its current chunk
};

// A duplex stream endpoint. Create connected pairs with CreateStreamPair.
class Stream {
 public:
  Stream(std::shared_ptr<Pipe> read_pipe, std::shared_ptr<Pipe> write_pipe)
      : read_pipe_(std::move(read_pipe)), write_pipe_(std::move(write_pipe)) {}
  ~Stream() { Close(); }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  // Writes all of `data` (never blocks: buffers are unbounded).
  void Write(BytesView data) { write_pipe_->Write(data); }
  void Write(std::string_view data) {
    write_pipe_->Write(BytesView(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
  }

  // Reads up to `max` bytes; blocks for at least one. 0 = EOF.
  size_t Read(uint8_t* buf, size_t max) { return read_pipe_->Read(buf, max); }

  // Reads exactly n bytes or fails at EOF.
  Status ReadFull(uint8_t* buf, size_t n);

  // Half-close of our outgoing direction; reading continues until the peer
  // closes too.
  void Close() { write_pipe_->Close(); }

 private:
  std::shared_ptr<Pipe> read_pipe_;
  std::shared_ptr<Pipe> write_pipe_;
};

using StreamPtr = std::unique_ptr<Stream>;

// Creates a connected pair of endpoints with the given one-way latency and
// per-direction bandwidth (0 = unlimited).
std::pair<StreamPtr, StreamPtr> CreateStreamPair(int64_t latency_nanos = 0,
                                                 int64_t bandwidth_bytes_per_sec = 0);

// Accept queue for a listening address.
class Listener {
 public:
  // Blocks until a connection arrives or the listener is shut down
  // (nullptr).
  StreamPtr Accept();
  void Shutdown();

 private:
  friend class Network;
  void Push(StreamPtr stream);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<StreamPtr> pending_;
  bool shutdown_ = false;
};

// Address registry: services Listen on names, clients Dial them.
class Network {
 public:
  // Registers a listener on `address`; fails if taken.
  Result<std::shared_ptr<Listener>> Listen(const std::string& address);
  // Connects to `address`; the link gets `latency_nanos` one-way latency
  // and, when non-zero, a per-direction bandwidth cap.
  Result<StreamPtr> Dial(const std::string& address, int64_t latency_nanos = 0,
                         int64_t bandwidth_bytes_per_sec = 0);
  void Unlisten(const std::string& address);

 private:
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<Listener>> listeners_;
};

}  // namespace seal::net

#endif  // SRC_NET_NET_H_
