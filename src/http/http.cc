#include "src/http/http.h"

#include <algorithm>
#include <cctype>

namespace seal::http {

namespace {

bool IEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses "Header: value" lines between `start` and the blank line; returns
// the offset just past the blank line, or npos on malformed input.
size_t ParseHeaderBlock(std::string_view raw, size_t start, Headers* headers) {
  size_t pos = start;
  for (;;) {
    size_t eol = raw.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      return std::string_view::npos;
    }
    if (eol == pos) {
      return pos + 2;  // blank line
    }
    std::string_view line = raw.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return std::string_view::npos;
    }
    headers->emplace_back(std::string(Trim(line.substr(0, colon))),
                          std::string(Trim(line.substr(colon + 1))));
    pos = eol + 2;
  }
}

void SerializeHeaders(const Headers& headers, size_t body_size, std::string& out) {
  bool have_length = false;
  for (const auto& [name, value] : headers) {
    if (IEquals(name, "Content-Length") || IEquals(name, "Transfer-Encoding")) {
      have_length = true;
    }
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

const std::string* FindHeader(const Headers& headers, std::string_view name) {
  for (const auto& [n, v] : headers) {
    if (IEquals(n, name)) {
      return &v;
    }
  }
  return nullptr;
}

bool RequestsConnectionClose(const HttpRequest& request) {
  bool close = false;
  bool keep_alive = false;
  const std::string* header = request.GetHeader("Connection");
  if (header != nullptr) {
    std::string_view rest = *header;
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view token = Trim(rest.substr(0, comma));
      if (IEquals(token, "close")) {
        close = true;
      } else if (IEquals(token, "keep-alive")) {
        keep_alive = true;
      }
      rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    }
  }
  if (close) {
    return true;  // "close" wins over any other token
  }
  if (IEquals(request.version, "HTTP/1.0")) {
    return !keep_alive;  // 1.0 must opt IN to persistence
  }
  return false;  // HTTP/1.1 defaults to keep-alive
}

void HttpRequest::SetHeader(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (IEquals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

void HttpResponse::SetHeader(std::string name, std::string value) {
  for (auto& [n, v] : headers) {
    if (IEquals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

std::string HttpRequest::Serialize() const {
  std::string out = method + " " + target + " " + version + "\r\n";
  SerializeHeaders(headers, body.size(), out);
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  SerializeHeaders(headers, body.size(), out);
  out += body;
  return out;
}

Result<HttpRequest> ParseRequest(std::string_view raw) {
  size_t eol = raw.find("\r\n");
  if (eol == std::string_view::npos) {
    return InvalidArgument("no request line");
  }
  std::string_view line = raw.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return InvalidArgument("malformed request line");
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(Trim(line.substr(sp1 + 1, sp2 - sp1 - 1)));
  req.version = std::string(line.substr(sp2 + 1));
  size_t body_start = ParseHeaderBlock(raw, eol + 2, &req.headers);
  if (body_start == std::string_view::npos) {
    return InvalidArgument("malformed headers");
  }
  req.body = std::string(raw.substr(body_start));
  return req;
}

Result<HttpResponse> ParseResponse(std::string_view raw) {
  size_t eol = raw.find("\r\n");
  if (eol == std::string_view::npos) {
    return InvalidArgument("no status line");
  }
  std::string_view line = raw.substr(0, eol);
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return InvalidArgument("malformed status line");
  }
  HttpResponse rsp;
  rsp.version = std::string(line.substr(0, sp1));
  size_t sp2 = line.find(' ', sp1 + 1);
  std::string_view code =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? line.size() : sp2 - sp1 - 1);
  rsp.status = std::atoi(std::string(code).c_str());
  if (rsp.status < 100 || rsp.status > 599) {
    return InvalidArgument("bad status code");
  }
  rsp.reason = sp2 == std::string_view::npos ? "" : std::string(line.substr(sp2 + 1));
  size_t body_start = ParseHeaderBlock(raw, eol + 2, &rsp.headers);
  if (body_start == std::string_view::npos) {
    return InvalidArgument("malformed headers");
  }
  rsp.body = std::string(raw.substr(body_start));
  return rsp;
}

Result<std::string> ReadHttpMessage(const ReadFn& read) {
  std::string buffer;
  // 1. Read until the end of the header block.
  size_t header_end = std::string::npos;
  uint8_t chunk[4096];
  while (header_end == std::string::npos) {
    size_t n = read(chunk, sizeof(chunk));
    if (n == 0) {
      if (buffer.empty()) {
        return DataLoss("connection closed before message");
      }
      return DataLoss("connection closed inside headers");
    }
    buffer.append(reinterpret_cast<char*>(chunk), n);
    header_end = buffer.find("\r\n\r\n");
  }
  size_t body_start = header_end + 4;

  // 2. Work out the body length.
  Headers headers;
  size_t first_line_end = buffer.find("\r\n");
  if (ParseHeaderBlock(buffer, first_line_end + 2, &headers) == std::string_view::npos) {
    return InvalidArgument("malformed headers");
  }
  const std::string* te = FindHeader(headers, "Transfer-Encoding");
  if (te != nullptr && IEquals(*te, "chunked")) {
    // 3a. Chunked: read until the terminating 0-length chunk, then
    // re-assemble as an identity body for the caller.
    std::string dechunked_head = buffer.substr(0, body_start);
    std::string tail = buffer.substr(body_start);
    std::string body;
    size_t pos = 0;
    for (;;) {
      size_t line_end;
      while ((line_end = tail.find("\r\n", pos)) == std::string::npos) {
        size_t n = read(chunk, sizeof(chunk));
        if (n == 0) {
          return DataLoss("EOF inside chunked body");
        }
        tail.append(reinterpret_cast<char*>(chunk), n);
      }
      size_t chunk_size = std::strtoul(tail.c_str() + pos, nullptr, 16);
      size_t data_start = line_end + 2;
      while (tail.size() < data_start + chunk_size + 2) {
        size_t n = read(chunk, sizeof(chunk));
        if (n == 0) {
          return DataLoss("EOF inside chunk data");
        }
        tail.append(reinterpret_cast<char*>(chunk), n);
      }
      if (chunk_size == 0) {
        break;
      }
      body.append(tail, data_start, chunk_size);
      pos = data_start + chunk_size + 2;
    }
    // Rewrite the header block with a Content-Length for the caller.
    std::string result;
    size_t te_line = dechunked_head.find("Transfer-Encoding");
    if (te_line != std::string::npos) {
      size_t te_end = dechunked_head.find("\r\n", te_line);
      dechunked_head.erase(te_line, te_end + 2 - te_line);
    }
    result = dechunked_head;
    result.insert(result.size() - 2, "Content-Length: " + std::to_string(body.size()) + "\r\n");
    result += body;
    return result;
  }

  size_t content_length = 0;
  const std::string* cl = FindHeader(headers, "Content-Length");
  if (cl != nullptr) {
    content_length = std::strtoul(cl->c_str(), nullptr, 10);
  }
  // 3b. Identity body: read the remaining bytes.
  while (buffer.size() < body_start + content_length) {
    size_t n = read(chunk, sizeof(chunk));
    if (n == 0) {
      return DataLoss("EOF inside body");
    }
    buffer.append(reinterpret_cast<char*>(chunk), n);
  }
  buffer.resize(body_start + content_length);
  return buffer;
}

}  // namespace seal::http
