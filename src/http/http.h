// HTTP/1.1 message parsing and serialisation. The service-specific modules
// use this to extract audited fields from requests and responses; the
// HttpServer/ProxyServer in src/services use it to speak the protocol.
#ifndef SRC_HTTP_HTTP_H_
#define SRC_HTTP_HTTP_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace seal::http {

using Headers = std::vector<std::pair<std::string, std::string>>;

// Case-insensitive header lookup; returns nullptr when absent.
const std::string* FindHeader(const Headers& headers, std::string_view name);

struct HttpRequest {
  std::string method;
  std::string target;  // request-target (path + query)
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  const std::string* GetHeader(std::string_view name) const {
    return FindHeader(headers, name);
  }
  void SetHeader(std::string name, std::string value);
  std::string Serialize() const;  // sets Content-Length automatically
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  std::string body;

  const std::string* GetHeader(std::string_view name) const {
    return FindHeader(headers, name);
  }
  void SetHeader(std::string name, std::string value);
  std::string Serialize() const;
};

// Whether the server must close the connection after responding to
// `request`, per RFC 7230 §6: the Connection header is a comma-separated,
// case-insensitive token list ("Close", "keep-alive, close"), and HTTP/1.0
// defaults to close unless the request opts into keep-alive.
bool RequestsConnectionClose(const HttpRequest& request);

// Parses a complete message held in memory.
Result<HttpRequest> ParseRequest(std::string_view raw);
Result<HttpResponse> ParseResponse(std::string_view raw);

// Reads one full HTTP message from a byte source. `read` must behave like a
// socket read: fill up to n bytes, return the count, 0 on EOF. Handles
// Content-Length and chunked transfer-coding bodies. Returns the raw bytes
// of exactly one message.
using ReadFn = std::function<size_t(uint8_t* buf, size_t max)>;
Result<std::string> ReadHttpMessage(const ReadFn& read);

}  // namespace seal::http

#endif  // SRC_HTTP_HTTP_H_
