// Git service-specific module (paper §3.1, §6.2).
//
// Audited protocol (the smart-HTTP shape of src/services/git_service.h):
//   * POST /<repo>/git-receive-pack with body lines
//       "UPDATE <branch> <cid>" / "DELETE <branch>"      -> updates()
//   * GET /<repo>/info/refs, response body lines
//       "REF <branch> <cid>"                             -> advertisements()
//
// Detects teleport, rollback and reference-deletion attacks via the
// soundness and completeness invariants from the paper.
#ifndef SRC_SSM_GIT_SSM_H_
#define SRC_SSM_GIT_SSM_H_

#include "src/core/service_module.h"

namespace seal::ssm {

class GitModule : public core::ServiceModule {
 public:
  std::string name() const override { return "git"; }
  std::vector<std::string> Schema() const override;
  std::vector<std::string> Views() const override;
  std::vector<core::Invariant> Invariants() const override;
  std::vector<std::string> TrimmingQueries() const override;
  void Log(std::string_view request, std::string_view response, int64_t time,
           std::vector<core::LogTuple>* out) override;
};

}  // namespace seal::ssm

#endif  // SRC_SSM_GIT_SSM_H_
