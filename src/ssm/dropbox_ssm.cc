#include "src/ssm/dropbox_ssm.h"

#include "src/http/http.h"
#include "src/json/json.h"

namespace seal::ssm {

std::vector<std::string> DropboxModule::Schema() const {
  // The paper's two relations (§6.2).
  return {
      "CREATE TABLE commit_batch(time, file, blocks, account, host, size)",
      "CREATE TABLE list(time, file, blocks, account, host, size)",
  };
}

std::vector<std::string> DropboxModule::Views() const {
  // Live (non-deleted) file count per account at each list time, mirroring
  // the Git branchcnt construction.
  return {
      "CREATE VIEW dbx_livecnt AS "
      "SELECT DISTINCT l.time,l.account,COUNT(c.file) AS cnt "
      "FROM list l "
      "JOIN commit_batch c ON c.time < l.time AND c.account = l.account "
      "WHERE c.size != -1 AND c.time = (SELECT MAX(time) "
      "FROM commit_batch WHERE file = c.file "
      "AND account = c.account AND time < l.time) GROUP BY l.time,l.account,l.file",
  };
}

std::vector<core::Invariant> DropboxModule::Invariants() const {
  return {
      // Blocklist soundness: the blocklist the server announces for a file
      // equals the most recently committed blocklist.
      // Both monotone: violations hang off a list response, and a checked
      // response cannot be invalidated by later commits (only strictly
      // older commits enter its comparison).
      {"dropbox-blocklist-soundness",
       "SELECT l.time, l.file FROM list l WHERE l.blocks != ("
       "SELECT c.blocks FROM commit_batch c WHERE c.file = l.file AND "
       "c.account = l.account AND c.time < l.time ORDER BY c.time DESC LIMIT 1)",
       /*monotone=*/true},
      // File-list completeness: each list response names every live file.
      {"dropbox-list-completeness",
       "SELECT time, account FROM list "
       "NATURAL JOIN dbx_livecnt "
       "GROUP BY time, account, cnt HAVING COUNT(file) != cnt",
       /*monotone=*/true},
  };
}

std::vector<std::string> DropboxModule::TrimmingQueries() const {
  return {
      "DELETE FROM list",
      "DELETE FROM commit_batch WHERE time NOT IN "
      "(SELECT MAX(time) FROM commit_batch GROUP BY account, file)",
  };
}

void DropboxModule::Log(std::string_view request, std::string_view response, int64_t time,
                        std::vector<core::LogTuple>* out) {
  auto req = http::ParseRequest(request);
  if (!req.ok()) {
    return;
  }
  if (req->method == "POST" && req->target == "/commit_batch") {
    auto body = json::Parse(req->body);
    if (!body.ok()) {
      return;
    }
    std::string account = body->Get("account").AsString();
    std::string host = body->Get("host").AsString();
    for (const json::JsonValue& commit : body->Get("commits").AsArray()) {
      out->push_back(core::LogTuple{
          "commit_batch",
          {db::Value(commit.Get("file").AsString()),
           db::Value(commit.Get("blocklist").AsString()), db::Value(account), db::Value(host),
           db::Value(commit.Get("size").AsInt())}});
    }
    return;
  }
  if (req->method == "GET" && req->target.rfind("/list", 0) == 0) {
    auto rsp = http::ParseResponse(response);
    if (!rsp.ok() || rsp->status != 200) {
      return;
    }
    auto body = json::Parse(rsp->body);
    if (!body.ok()) {
      return;
    }
    std::string account;
    size_t q = req->target.find("account=");
    if (q != std::string::npos) {
      size_t end = req->target.find('&', q);
      account =
          req->target.substr(q + 8, end == std::string::npos ? std::string::npos : end - q - 8);
    }
    std::string host = body->Get("host").AsString();
    for (const json::JsonValue& file : body->Get("files").AsArray()) {
      out->push_back(core::LogTuple{
          "list",
          {db::Value(file.Get("file").AsString()), db::Value(file.Get("blocklist").AsString()),
           db::Value(account), db::Value(host), db::Value(file.Get("size").AsInt())}});
    }
  }
}

}  // namespace seal::ssm
