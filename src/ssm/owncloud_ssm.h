// ownCloud Documents service-specific module (paper §6.1, §6.2).
//
// Audited protocol (src/services/owncloud_service.h): collaborative
// document sessions synchronising JSON messages.
//   * POST /docs/sync      {"doc","session","client","seq","text"}  -> oc_updates()
//   * POST /docs/snapshot  {"doc","session","client","content"}     -> oc_snapshots()
//   * GET  /docs/join?doc=D, response
//          {"session",N,"snapshot":S,"updates":[...]}               -> oc_joins()
//
// Invariants: (i) the snapshot served to a joining client matches the
// latest snapshot the service received; (ii) the aggregate history of
// updates served corresponds to the full history received (lost-edit
// detection).
#ifndef SRC_SSM_OWNCLOUD_SSM_H_
#define SRC_SSM_OWNCLOUD_SSM_H_

#include "src/core/service_module.h"

namespace seal::ssm {

class OwnCloudModule : public core::ServiceModule {
 public:
  std::string name() const override { return "owncloud"; }
  std::vector<std::string> Schema() const override;
  std::vector<core::Invariant> Invariants() const override;
  std::vector<std::string> TrimmingQueries() const override;
  void Log(std::string_view request, std::string_view response, int64_t time,
           std::vector<core::LogTuple>* out) override;
};

}  // namespace seal::ssm

#endif  // SRC_SSM_OWNCLOUD_SSM_H_
