#include "src/ssm/git_ssm.h"

#include <sstream>

#include "src/http/http.h"

namespace seal::ssm {

namespace {

// "/myrepo/info/refs?service=git-upload-pack" -> "myrepo"
std::string RepoFromTarget(const std::string& target) {
  size_t start = target.find('/');
  if (start == std::string::npos) {
    return "";
  }
  size_t end = target.find('/', start + 1);
  if (end == std::string::npos) {
    end = target.find('?', start + 1);
  }
  if (end == std::string::npos) {
    end = target.size();
  }
  return target.substr(start + 1, end - start - 1);
}

}  // namespace

std::vector<std::string> GitModule::Schema() const {
  // Exactly the paper's schema (§3.1).
  return {
      "CREATE TABLE updates(time, repo, branch, cid, type)",
      "CREATE TABLE advertisements(time, repo, branch, cid)",
  };
}

std::vector<std::string> GitModule::Views() const {
  // The auxiliary view counting live (non-deleted) branches per repository
  // at each advertisement time (§6.2).
  return {
      "CREATE VIEW branchcnt AS "
      "SELECT DISTINCT a.time,a.repo,COUNT(u.branch) AS cnt "
      "FROM advertisements a "
      "JOIN updates u ON u.time < a.time AND u.repo = a.repo "
      "WHERE u.type != 'delete' AND u.time = (SELECT MAX(time) "
      "FROM updates WHERE branch = u.branch "
      "AND repo = u.repo AND time < a.time) GROUP BY a.time,a.repo,a.branch",
  };
}

std::vector<core::Invariant> GitModule::Invariants() const {
  return {
      // Soundness (§6.2): every advertised commit ID matches the most
      // recent update of that (repo, branch).
      // Monotone: a violation always involves an advertisement, and old
      // advertisements cannot become inconsistent retroactively (updates
      // only count when older than the advertisement).
      {"git-soundness",
       "SELECT * FROM advertisements a WHERE cid != ("
       "SELECT u.cid FROM updates u WHERE u.repo = a.repo AND "
       "u.branch = a.branch AND u.time < a.time ORDER BY "
       "u.time DESC LIMIT 1)",
       /*monotone=*/true},
      // Completeness (§1, §6.2): every advertisement lists ALL live
      // branches.
      {"git-completeness",
       "SELECT time, repo FROM advertisements "
       "NATURAL JOIN branchcnt "
       "GROUP BY time, repo, cnt HAVING COUNT(branch) != cnt",
       /*monotone=*/true},
  };
}

std::vector<std::string> GitModule::TrimmingQueries() const {
  // Verbatim from §5.1.
  return {
      "DELETE FROM advertisements",
      "DELETE FROM updates WHERE time NOT IN "
      "(SELECT MAX(time) FROM updates GROUP BY repo, branch)",
  };
}

void GitModule::Log(std::string_view request, std::string_view response, int64_t time,
                    std::vector<core::LogTuple>* out) {
  auto req = http::ParseRequest(request);
  if (!req.ok()) {
    return;
  }
  std::string repo = RepoFromTarget(req->target);
  if (repo.empty()) {
    return;
  }
  if (req->method == "POST" && req->target.find("git-receive-pack") != std::string::npos) {
    // Push: record branch/tag pointer changes.
    std::istringstream body(req->body);
    std::string op, branch, cid;
    while (body >> op) {
      if (op == "UPDATE" && body >> branch >> cid) {
        out->push_back(core::LogTuple{
            "updates",
            {db::Value(repo), db::Value(branch), db::Value(cid), db::Value(std::string("update"))}});
      } else if (op == "DELETE" && body >> branch) {
        out->push_back(core::LogTuple{
            "updates",
            {db::Value(repo), db::Value(branch), db::Value(std::string("")),
             db::Value(std::string("delete"))}});
      } else {
        break;  // malformed body: stop parsing, log nothing further
      }
    }
    return;
  }
  if (req->method == "GET" && req->target.find("info/refs") != std::string::npos) {
    // Fetch: record the ref advertisement the server returned.
    auto rsp = http::ParseResponse(response);
    if (!rsp.ok() || rsp->status != 200) {
      return;
    }
    std::istringstream body(rsp->body);
    std::string tag, branch, cid;
    while (body >> tag) {
      if (tag != "REF" || !(body >> branch >> cid)) {
        break;
      }
      out->push_back(core::LogTuple{
          "advertisements", {db::Value(repo), db::Value(branch), db::Value(cid)}});
    }
  }
}

}  // namespace seal::ssm
