// Dropbox service-specific module (paper §6.1, §6.2).
//
// Audited protocol (src/services/dropbox_service.h): metadata messages in
// the shape of the Dropbox client protocol.
//   * POST /commit_batch {"account","host","commits":[{file,blocklist,size}]}
//       -> commit_batch() rows (size = -1 marks deletion)
//   * GET  /list?account=A, response {"files":[{file,blocklist,size}]}
//       -> list() rows
//
// Invariants: blocklist soundness and file-list completeness. Block
// CONTENT integrity is the client's job (it hashes blocks); LibSEAL's log
// of the original blocklists is what lets the client prove a metadata
// mismatch afterwards.
#ifndef SRC_SSM_DROPBOX_SSM_H_
#define SRC_SSM_DROPBOX_SSM_H_

#include "src/core/service_module.h"

namespace seal::ssm {

class DropboxModule : public core::ServiceModule {
 public:
  std::string name() const override { return "dropbox"; }
  std::vector<std::string> Schema() const override;
  std::vector<std::string> Views() const override;
  std::vector<core::Invariant> Invariants() const override;
  std::vector<std::string> TrimmingQueries() const override;
  void Log(std::string_view request, std::string_view response, int64_t time,
           std::vector<core::LogTuple>* out) override;
};

}  // namespace seal::ssm

#endif  // SRC_SSM_DROPBOX_SSM_H_
