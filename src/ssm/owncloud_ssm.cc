#include "src/ssm/owncloud_ssm.h"

#include "src/http/http.h"
#include "src/json/json.h"

namespace seal::ssm {

std::vector<std::string> OwnCloudModule::Schema() const {
  return {
      // Document updates pushed by clients (one row per synchronised edit;
      // the paper reports 124 bytes of constant overhead per update).
      "CREATE TABLE oc_updates(time, doc, session, client, seq, payload)",
      // Snapshots stored by clients leaving a session.
      "CREATE TABLE oc_snapshots(time, doc, session, client, content)",
      // Session joins: what the service served to the new client.
      "CREATE TABLE oc_joins(time, doc, session, client, snapshot, upcount)",
  };
}

std::vector<core::Invariant> OwnCloudModule::Invariants() const {
  return {
      // (i) Snapshot soundness: the snapshot served at a join matches the
      // most recent snapshot any client stored for that document.
      // Monotone: violations hang off a join row, and a checked join only
      // compares against strictly older snapshots/updates.
      {"owncloud-snapshot-match",
       "SELECT j.time, j.doc FROM oc_joins j WHERE j.snapshot != ("
       "SELECT s.content FROM oc_snapshots s WHERE s.doc = j.doc AND "
       "s.time < j.time ORDER BY s.time DESC LIMIT 1)",
       /*monotone=*/true},
      // (ii) Update-history completeness: the number of updates served to
      // a joining client equals the number of updates the service received
      // for that session before the join (a dropped edit shows up as a
      // deficit; a fabricated edit as a surplus).
      {"owncloud-update-prefix",
       "SELECT j.time, j.doc FROM oc_joins j WHERE j.upcount != ("
       "SELECT COUNT(*) FROM oc_updates u WHERE u.doc = j.doc AND "
       "u.session = j.session AND u.time < j.time)",
       /*monotone=*/true},
  };
}

std::vector<std::string> OwnCloudModule::TrimmingQueries() const {
  return {
      // Joins are checked once.
      "DELETE FROM oc_joins",
      // Keep only the most recent snapshot per document.
      "DELETE FROM oc_snapshots WHERE time NOT IN "
      "(SELECT MAX(time) FROM oc_snapshots GROUP BY doc)",
      // Keep only updates of each document's latest session (sessions are
      // globally unique and monotonically increasing).
      "DELETE FROM oc_updates WHERE session NOT IN "
      "(SELECT MAX(session) FROM oc_updates GROUP BY doc)",
  };
}

void OwnCloudModule::Log(std::string_view request, std::string_view response, int64_t time,
                         std::vector<core::LogTuple>* out) {
  auto req = http::ParseRequest(request);
  if (!req.ok()) {
    return;
  }
  if (req->method == "POST" &&
      (req->target == "/docs/sync" || req->target == "/docs/snapshot")) {
    auto body = json::Parse(req->body);
    if (!body.ok()) {
      return;
    }
    // The authoritative session id is the one the service CONFIRMS in its
    // response (clients may send 0 for "current session"); LibSEAL sees
    // both directions, so the log records the confirmed value.
    auto rsp = http::ParseResponse(response);
    if (!rsp.ok() || rsp->status != 200) {
      return;
    }
    auto rsp_body = json::Parse(rsp->body);
    int64_t session = rsp_body.ok() ? rsp_body->Get("session").AsInt() : 0;
    if (req->target == "/docs/sync") {
      out->push_back(core::LogTuple{
          "oc_updates",
          {db::Value(body->Get("doc").AsString()), db::Value(session),
           db::Value(body->Get("client").AsString()), db::Value(body->Get("seq").AsInt()),
           db::Value(body->Get("text").AsString())}});
    } else {
      out->push_back(core::LogTuple{
          "oc_snapshots",
          {db::Value(body->Get("doc").AsString()), db::Value(session),
           db::Value(body->Get("client").AsString()),
           db::Value(body->Get("content").AsString())}});
    }
    return;
  }
  if (req->method == "GET" && req->target.rfind("/docs/join", 0) == 0) {
    auto rsp = http::ParseResponse(response);
    if (!rsp.ok() || rsp->status != 200) {
      return;
    }
    auto body = json::Parse(rsp->body);
    if (!body.ok()) {
      return;
    }
    std::string doc;
    size_t q = req->target.find("doc=");
    if (q != std::string::npos) {
      size_t end = req->target.find('&', q);
      doc = req->target.substr(q + 4, end == std::string::npos ? std::string::npos : end - q - 4);
    }
    std::string client;
    size_t c = req->target.find("client=");
    if (c != std::string::npos) {
      size_t end = req->target.find('&', c);
      client =
          req->target.substr(c + 7, end == std::string::npos ? std::string::npos : end - c - 7);
    }
    out->push_back(core::LogTuple{
        "oc_joins",
        {db::Value(doc), db::Value(body->Get("session").AsInt()), db::Value(client),
         db::Value(body->Get("snapshot").AsString()),
         db::Value(static_cast<int64_t>(body->Get("updates").AsArray().size()))}});
  }
}

}  // namespace seal::ssm
