// Messaging service-specific module: a fourth SSM demonstrating LibSEAL's
// generality claim (R1) for the communication/IM scenario of §2.2.
//
// Audited protocol (src/services/messaging_service.h):
//   POST /msg/send  {"from","to","id","body"}         -> msg_sent()
//   GET  /msg/inbox?user=U, response {"messages":[..]} -> msg_delivered()
//                                                        + one msg_polls() row
//
// Invariants: delivered messages were really sent and unmodified
// (soundness), every poll drains exactly the pending messages
// (completeness / no drops), and nothing is delivered twice.
#ifndef SRC_SSM_MESSAGING_SSM_H_
#define SRC_SSM_MESSAGING_SSM_H_

#include "src/core/service_module.h"

namespace seal::ssm {

class MessagingModule : public core::ServiceModule {
 public:
  std::string name() const override { return "messaging"; }
  std::vector<std::string> Schema() const override;
  std::vector<core::Invariant> Invariants() const override;
  std::vector<std::string> TrimmingQueries() const override;
  void Log(std::string_view request, std::string_view response, int64_t time,
           std::vector<core::LogTuple>* out) override;
};

}  // namespace seal::ssm

#endif  // SRC_SSM_MESSAGING_SSM_H_
