#include "src/ssm/messaging_ssm.h"

#include "src/http/http.h"
#include "src/json/json.h"

namespace seal::ssm {

std::vector<std::string> MessagingModule::Schema() const {
  return {
      "CREATE TABLE msg_sent(time, mid, sender, recipient, body)",
      "CREATE TABLE msg_delivered(time, mid, recipient, body)",
      // One row per inbox poll: how many messages the service handed out.
      "CREATE TABLE msg_polls(time, recipient, delivered)",
  };
}

std::vector<core::Invariant> MessagingModule::Invariants() const {
  return {
      // Soundness: everything delivered was previously sent to that
      // recipient with exactly that body (catches modification and
      // misdelivery).
      // Monotone: a delivery checked once can only be re-implicated by a
      // newer delivery row.
      {"messaging-soundness",
       "SELECT d.time, d.mid FROM msg_delivered d WHERE NOT EXISTS ("
       "SELECT * FROM msg_sent s WHERE s.mid = d.mid AND "
       "s.recipient = d.recipient AND s.body = d.body AND s.time < d.time)",
       /*monotone=*/true},
      // Completeness: a poll returns exactly the messages pending for the
      // recipient (sent before the poll, not delivered before the poll).
      {"messaging-completeness",
       "SELECT p.time, p.recipient FROM msg_polls p WHERE p.delivered != "
       "(SELECT COUNT(*) FROM msg_sent s WHERE s.recipient = p.recipient "
       "AND s.time < p.time) - "
       "(SELECT COUNT(*) FROM msg_delivered d WHERE d.recipient = p.recipient "
       "AND d.time < p.time)",
       /*monotone=*/true},
      // Exactly-once: no (message, recipient) is delivered twice. NOT
      // monotone: a fresh duplicate's group contains an old, already-checked
      // delivery, so restricting the scan to new rows would see COUNT(*)=1
      // and miss it. This one is always checked over the full log.
      {"messaging-no-duplicates",
       "SELECT mid, recipient FROM msg_delivered "
       "GROUP BY mid, recipient HAVING COUNT(*) > 1"},
  };
}

std::vector<std::string> MessagingModule::TrimmingQueries() const {
  return {
      // Polls are checked once; delivered messages close out their sends.
      "DELETE FROM msg_polls",
      "DELETE FROM msg_sent WHERE mid IN (SELECT mid FROM msg_delivered)",
      "DELETE FROM msg_delivered",
  };
}

void MessagingModule::Log(std::string_view request, std::string_view response, int64_t time,
                          std::vector<core::LogTuple>* out) {
  auto req = http::ParseRequest(request);
  if (!req.ok()) {
    return;
  }
  if (req->method == "POST" && req->target == "/msg/send") {
    auto body = json::Parse(req->body);
    if (!body.ok()) {
      return;
    }
    out->push_back(core::LogTuple{
        "msg_sent",
        {db::Value(body->Get("id").AsString()), db::Value(body->Get("from").AsString()),
         db::Value(body->Get("to").AsString()), db::Value(body->Get("body").AsString())}});
    return;
  }
  if (req->method == "GET" && req->target.rfind("/msg/inbox", 0) == 0) {
    auto rsp = http::ParseResponse(response);
    if (!rsp.ok() || rsp->status != 200) {
      return;
    }
    auto body = json::Parse(rsp->body);
    if (!body.ok()) {
      return;
    }
    std::string user;
    size_t q = req->target.find("user=");
    if (q != std::string::npos) {
      size_t end = req->target.find('&', q);
      user =
          req->target.substr(q + 5, end == std::string::npos ? std::string::npos : end - q - 5);
    }
    const json::JsonArray& messages = body->Get("messages").AsArray();
    for (const json::JsonValue& message : messages) {
      out->push_back(core::LogTuple{
          "msg_delivered",
          {db::Value(message.Get("id").AsString()), db::Value(user),
           db::Value(message.Get("body").AsString())}});
    }
    out->push_back(core::LogTuple{
        "msg_polls",
        {db::Value(user), db::Value(static_cast<int64_t>(messages.size()))}});
  }
}

}  // namespace seal::ssm
