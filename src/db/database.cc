#include "src/db/database.h"

#include <algorithm>
#include <cctype>

#include "src/db/executor.h"
#include "src/db/parser.h"
#include "src/obs/obs.h"

namespace seal::db {

namespace {

// Binary serialisation helpers (length-prefixed).
void PutString(Bytes& out, const std::string& s) {
  AppendBe32(out, static_cast<uint32_t>(s.size()));
  Append(out, s);
}

bool GetString(BytesView in, size_t& off, std::string* s) {
  if (off + 4 > in.size()) {
    return false;
  }
  uint32_t n = LoadBe32(in.data() + off);
  off += 4;
  if (off + n > in.size()) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(in.data() + off), n);
  off += n;
  return true;
}

void PutValue(Bytes& out, const Value& v) {
  if (v.is_null()) {
    out.push_back(0);
  } else if (v.is_int()) {
    out.push_back(1);
    AppendBe64(out, static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_real()) {
    out.push_back(2);
    double d = v.AsReal();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    AppendBe64(out, bits);
  } else {
    out.push_back(3);
    PutString(out, v.text());
  }
}

bool GetValue(BytesView in, size_t& off, Value* v) {
  if (off >= in.size()) {
    return false;
  }
  uint8_t tag = in[off++];
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      if (off + 8 > in.size()) {
        return false;
      }
      *v = Value(static_cast<int64_t>(LoadBe64(in.data() + off)));
      off += 8;
      return true;
    }
    case 2: {
      if (off + 8 > in.size()) {
        return false;
      }
      uint64_t bits = LoadBe64(in.data() + off);
      off += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!GetString(in, off, &s)) {
        return false;
      }
      *v = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

bool ColumnNameEq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

void Database::InitTimeIndex(TableData& table) {
  table.time_col = -1;
  for (size_t i = 0; i < table.columns.size(); ++i) {
    if (ColumnNameEq(table.columns[i], "time")) {
      table.time_col = static_cast<int>(i);
      break;
    }
  }
  table.index_valid = table.time_col >= 0;
  table.time_index.clear();
  table.rows_time_ordered = table.time_col >= 0;  // empty: trivially sorted
  table.last_row_time = 0;
}

void Database::IndexInsertedRow(TableData& table, size_t row_idx) {
  if (!table.index_valid) {
    table.rows_time_ordered = false;
    return;
  }
  const Value& v = table.rows[row_idx][static_cast<size_t>(table.time_col)];
  if (!v.is_int()) {
    // A non-integer time makes index-based comparisons unsound; drop the
    // index for this table rather than answer range queries wrongly.
    table.index_valid = false;
    table.time_index.clear();
    table.rows_time_ordered = false;
    return;
  }
  std::pair<int64_t, size_t> entry{v.AsInt(), row_idx};
  if (table.rows_time_ordered) {
    // Rows append at the end, so position order stays time order exactly
    // while every new time is >= the previous last row's.
    if (row_idx == 0 || entry.first >= table.last_row_time) {
      table.last_row_time = entry.first;
    } else {
      table.rows_time_ordered = false;
    }
  }
  if (table.time_index.empty() || table.time_index.back() <= entry) {
    table.time_index.push_back(entry);  // common case: appended in time order
  } else {
    table.time_index.insert(
        std::upper_bound(table.time_index.begin(), table.time_index.end(), entry), entry);
  }
}

void Database::RemapTimeIndexAfterDelete(TableData& table, const std::vector<bool>& doomed) {
  if (!table.index_valid || table.time_col < 0) {
    // The index may become valid again once the offending rows are gone;
    // only the full rebuild re-checks that.
    RebuildTimeIndex(table);
    return;
  }
  SEAL_OBS_COUNTER("seadb_index_incremental_remaps_total").Increment();
  // Old position -> new position after compaction (prefix sum of keeps).
  std::vector<size_t> new_pos(doomed.size());
  size_t next = 0;
  for (size_t i = 0; i < doomed.size(); ++i) {
    new_pos[i] = next;
    if (!doomed[i]) {
      ++next;
    }
  }
  // Surviving entries keep their (time, position-order) sort: the remap is
  // strictly monotone on surviving positions, so no re-sort is needed.
  std::vector<std::pair<int64_t, size_t>> remapped;
  remapped.reserve(next);
  for (const auto& [time, pos] : table.time_index) {
    if (!doomed[pos]) {
      remapped.emplace_back(time, new_pos[pos]);
    }
  }
  table.time_index = std::move(remapped);
  // Deleting rows from a time-ordered table keeps it time-ordered; only the
  // last row's time needs refreshing. A table that was NOT time-ordered may
  // coincidentally become ordered after the delete — conservatively keep
  // the flag false (it is advisory; the index above stays authoritative).
  if (table.rows_time_ordered) {
    table.last_row_time =
        table.rows.empty()
            ? 0
            : table.rows[table.rows.size() - 1][static_cast<size_t>(table.time_col)].AsInt();
  }
}

void Database::RebuildColumns(TableData& table) {
  table.cols.Reset(table.columns.size());
  const size_t n = table.rows.size();
  for (size_t i = 0; i < n; ++i) {
    table.cols.Append(table.rows[i]);
  }
}

void Database::RebuildTimeIndex(TableData& table) {
  table.index_valid = table.time_col >= 0;
  table.time_index.clear();
  table.rows_time_ordered = table.time_col >= 0;
  table.last_row_time = 0;
  if (!table.index_valid) {
    return;
  }
  table.time_index.reserve(table.rows.size());
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const Value& v = table.rows[i][static_cast<size_t>(table.time_col)];
    if (!v.is_int()) {
      table.index_valid = false;
      table.time_index.clear();
      table.rows_time_ordered = false;
      return;
    }
    if (table.rows_time_ordered) {
      if (i == 0 || v.AsInt() >= table.last_row_time) {
        table.last_row_time = v.AsInt();
      } else {
        table.rows_time_ordered = false;
      }
    }
    table.time_index.emplace_back(v.AsInt(), i);
  }
  std::sort(table.time_index.begin(), table.time_index.end());
}

Result<QueryResult> Database::Execute(std::string_view sql) {
  auto parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Statement& stmt = *parsed;

  if (auto* select = std::get_if<std::unique_ptr<SelectStmt>>(&stmt)) {
    Executor executor(*this);
    return executor.ExecuteSelect(**select);
  }

  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    if (tables_.count(create->name) > 0 || views_.count(create->name) > 0) {
      if (create->if_not_exists) {
        return QueryResult{};
      }
      return AlreadyExists("table " + create->name + " already exists");
    }
    TableData& table = tables_[create->name];
    table.columns = create->columns;
    table.cols.Reset(table.columns.size());
    InitTimeIndex(table);
    BumpSchemaEpoch();
    return QueryResult{};
  }

  if (auto* view = std::get_if<CreateViewStmt>(&stmt)) {
    if (tables_.count(view->name) > 0 || views_.count(view->name) > 0) {
      if (view->if_not_exists) {
        return QueryResult{};
      }
      return AlreadyExists("view " + view->name + " already exists");
    }
    views_[view->name] = ViewData{view->select, std::string(sql)};
    BumpSchemaEpoch();
    return QueryResult{};
  }

  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    auto it = tables_.find(insert->table);
    if (it == tables_.end()) {
      return NotFound("no such table: " + insert->table);
    }
    TableData& table = it->second;
    // Resolve column positions.
    std::vector<size_t> positions;
    if (insert->columns.empty()) {
      for (size_t i = 0; i < table.columns.size(); ++i) {
        positions.push_back(i);
      }
    } else {
      for (const std::string& col : insert->columns) {
        auto cit = std::find(table.columns.begin(), table.columns.end(), col);
        if (cit == table.columns.end()) {
          return NotFound("no such column: " + col);
        }
        positions.push_back(static_cast<size_t>(cit - table.columns.begin()));
      }
    }
    Executor executor(*this);
    QueryResult result;
    for (const std::vector<ExprPtr>& exprs : insert->rows) {
      if (exprs.size() != positions.size()) {
        return InvalidArgument("value count does not match column count");
      }
      Row row(table.columns.size(), Value::Null());
      for (size_t i = 0; i < exprs.size(); ++i) {
        auto v = executor.Eval(*exprs[i], {});
        if (!v.ok()) {
          return v.status();
        }
        row[positions[i]] = std::move(*v);
      }
      table.cols.Append(row);
      table.rows.push_back(std::move(row));
      IndexInsertedRow(table, table.rows.size() - 1);
      ++result.affected;
    }
    return result;
  }

  if (auto* del = std::get_if<DeleteStmt>(&stmt)) {
    auto it = tables_.find(del->table);
    if (it == tables_.end()) {
      return NotFound("no such table: " + del->table);
    }
    TableData& table = it->second;
    QueryResult result;
    if (del->where == nullptr) {
      result.affected = table.rows.size();
      table.rows.clear();
      table.cols.Reset(table.columns.size());
      RebuildTimeIndex(table);
      if (result.affected > 0) {
        BumpTrimEpoch();
      }
      return result;
    }
    // Evaluate all predicates against the pre-delete snapshot so that
    // subqueries over the same table observe consistent state.
    Executor executor(*this);
    Relation rel;
    rel.columns = table.columns;
    rel.aliases.assign(rel.columns.size(), del->table);
    // All predicates are evaluated before any mutation, so the relation can
    // reference the live rows through a view.
    rel.SetRows(RowsRef(table.rows.Snapshot()));
    std::vector<bool> doomed(table.rows.size(), false);
    for (size_t i = 0; i < rel.Rows().size(); ++i) {
      std::vector<RowScope> scopes = {RowScope{&rel, &rel.Rows()[i]}};
      auto cond = executor.Eval(*del->where, scopes);
      if (!cond.ok()) {
        return cond.status();
      }
      doomed[i] = cond->Truthy();
    }
    std::vector<Row> kept;
    for (size_t i = 0; i < table.rows.size(); ++i) {
      if (doomed[i]) {
        ++result.affected;
      } else {
        // Copy, not move: snapshots captured earlier may still be reading
        // these rows from another thread.
        kept.push_back(table.rows[i]);
      }
    }
    if (result.affected > 0) {
      table.rows.Assign(std::move(kept));
      RemapTimeIndexAfterDelete(table, doomed);  // row positions shifted
      RebuildColumns(table);
      BumpTrimEpoch();
    }
    return result;
  }

  if (auto* update = std::get_if<UpdateStmt>(&stmt)) {
    auto it = tables_.find(update->table);
    if (it == tables_.end()) {
      return NotFound("no such table: " + update->table);
    }
    TableData& table = it->second;
    std::vector<size_t> positions;
    for (const auto& [col, expr] : update->assignments) {
      auto cit = std::find(table.columns.begin(), table.columns.end(), col);
      if (cit == table.columns.end()) {
        return NotFound("no such column: " + col);
      }
      positions.push_back(static_cast<size_t>(cit - table.columns.begin()));
    }
    Executor executor(*this);
    Relation rel;
    rel.columns = table.columns;
    rel.aliases.assign(rel.columns.size(), update->table);
    rel.SetRows(RowsRef(table.rows.Snapshot()));  // snapshot: assignments
    // to earlier rows must not change predicate evaluation for later rows.
    // Mutations build into a fresh row set (published at the end) so that
    // concurrent snapshot readers never observe a half-updated table.
    std::vector<Row> updated = table.rows.CopyRows();
    QueryResult result;
    for (size_t i = 0; i < updated.size(); ++i) {
      std::vector<RowScope> scopes = {RowScope{&rel, &rel.Rows()[i]}};
      if (update->where != nullptr) {
        auto cond = executor.Eval(*update->where, scopes);
        if (!cond.ok()) {
          return cond.status();
        }
        if (!cond->Truthy()) {
          continue;
        }
      }
      for (size_t a = 0; a < update->assignments.size(); ++a) {
        auto v = executor.Eval(*update->assignments[a].second, scopes);
        if (!v.ok()) {
          return v.status();
        }
        updated[i][positions[a]] = std::move(*v);
      }
      ++result.affected;
    }
    bool touched_time = false;
    for (size_t a = 0; a < positions.size(); ++a) {
      if (static_cast<int>(positions[a]) == table.time_col) {
        touched_time = true;
      }
    }
    if (result.affected > 0) {
      table.rows.Assign(std::move(updated));
      RebuildColumns(table);
      BumpTrimEpoch();
      if (touched_time) {
        RebuildTimeIndex(table);
      }
    }
    return result;
  }

  if (auto* drop = std::get_if<DropStmt>(&stmt)) {
    size_t erased = drop->is_view ? views_.erase(drop->name) : tables_.erase(drop->name);
    if (erased == 0 && !drop->if_exists) {
      return NotFound("no such " + std::string(drop->is_view ? "view" : "table") + ": " +
                      drop->name);
    }
    if (erased > 0) {
      BumpSchemaEpoch();
    }
    return QueryResult{};
  }

  return Internal("unhandled statement type");
}

Status Database::CreateTable(const std::string& name, std::vector<std::string> columns) {
  if (tables_.count(name) > 0) {
    return AlreadyExists("table " + name + " already exists");
  }
  TableData& table = tables_[name];
  table.columns = std::move(columns);
  table.cols.Reset(table.columns.size());
  InitTimeIndex(table);
  BumpSchemaEpoch();
  return Status::Ok();
}

Status Database::InsertRow(const std::string& name, Row row) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound("no such table: " + name);
  }
  if (row.size() != it->second.columns.size()) {
    return InvalidArgument("row arity mismatch for table " + name);
  }
  it->second.cols.Append(row);
  it->second.rows.push_back(std::move(row));
  IndexInsertedRow(it->second, it->second.rows.size() - 1);
  return Status::Ok();
}

size_t Database::TableSize(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? 0 : it->second.rows.size();
}

const RowStore* Database::TableRows(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.rows;
}

const std::vector<std::string>* Database::TableColumns(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.columns;
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) {
    names.push_back(name);
  }
  return names;
}

std::optional<std::vector<std::string>> Database::CatalogColumns(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) {
    return it->second.columns;
  }
  auto vit = views_.find(name);
  if (vit == views_.end()) {
    return std::nullopt;
  }
  // Derive the view's output names the same way the executor does, bailing
  // on stars (they need the source relations to expand).
  std::vector<std::string> columns;
  for (const SelectItem& item : vit->second.select->items) {
    if (item.star) {
      return std::nullopt;
    }
    if (!item.alias.empty()) {
      columns.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumn) {
      columns.push_back(item.expr->name);
    } else {
      columns.push_back(ExprToString(*item.expr));
    }
  }
  return columns;
}

const std::vector<std::pair<int64_t, size_t>>* Database::TimeIndexForTesting(
    const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end() || !it->second.index_valid) {
    return nullptr;
  }
  return &it->second.time_index;
}

Expr* Database::InjectTimeFloorConjunct(SelectStmt& s) const {
  if (!s.from.has_value() || s.from->table_name.empty()) {
    return nullptr;
  }
  auto columns = CatalogColumns(s.from->table_name);
  bool has_time = false;
  if (columns.has_value()) {
    for (const std::string& c : *columns) {
      if (ColumnNameEq(c, "time")) {
        has_time = true;
      }
    }
  }
  if (!has_time) {
    return nullptr;
  }
  auto col = std::make_unique<Expr>(ExprKind::kColumn);
  col->table = s.from->alias.empty() ? s.from->table_name : s.from->alias;
  col->name = "time";
  auto lit = std::make_unique<Expr>(ExprKind::kLiteral);
  lit->literal = Value(int64_t{0});
  Expr* slot = lit.get();
  auto cmp = std::make_unique<Expr>(ExprKind::kBinary);
  cmp->op = ">";
  cmp->args.push_back(std::move(col));
  cmp->args.push_back(std::move(lit));
  if (s.where == nullptr) {
    s.where = std::move(cmp);
  } else {
    auto conj = std::make_unique<Expr>(ExprKind::kBinary);
    conj->op = "AND";
    conj->args.push_back(std::move(cmp));
    conj->args.push_back(std::move(s.where));
    s.where = std::move(conj);
  }
  return slot;
}

Result<QueryResult> Database::ExecuteWithTimeFloor(std::string_view sql, int64_t floor) {
  auto parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return parsed.status();
  }
  Statement& stmt = *parsed;
  auto* select = std::get_if<std::unique_ptr<SelectStmt>>(&stmt);
  if (select == nullptr) {
    return Execute(sql);
  }
  SelectStmt& s = **select;
  Expr* slot = InjectTimeFloorConjunct(s);
  if (slot == nullptr) {
    // No narrowable base: execute the unmodified parse in full.
    Executor executor(*this);
    return executor.ExecuteSelect(s);
  }
  slot->literal = Value(floor);
  Executor executor(*this);
  return executor.ExecuteSelect(s);
}

Snapshot Database::CaptureSnapshot() const {
  Snapshot snap;
  snap.schema_epoch = schema_epoch();
  snap.trim_epoch = trim_epoch();
  for (const auto& [name, table] : tables_) {
    TableSnapshot ts;
    ts.view = table.rows.Snapshot();
    ts.col_view = table.cols.Snapshot();
    ts.time_col = table.time_col;
    ts.time_sorted = table.rows_time_ordered && table.time_col >= 0;
    snap.tables.emplace(name, std::move(ts));
  }
  return snap;
}

Result<PreparedSelect> Database::Prepare(std::string_view sql, bool with_time_floor) const {
  auto parsed = ParseStatement(sql);
  if (!parsed.ok()) {
    return parsed.status();
  }
  auto* select = std::get_if<std::unique_ptr<SelectStmt>>(&*parsed);
  if (select == nullptr) {
    return InvalidArgument("Prepare: not a SELECT statement");
  }
  PreparedSelect plan;
  plan.sql_ = std::string(sql);
  plan.stmt_ = std::shared_ptr<SelectStmt>(std::move(*select));
  if (with_time_floor) {
    plan.floor_slot_ = InjectTimeFloorConjunct(*plan.stmt_);
  }
  plan.schema_epoch_ = schema_epoch();
  plan.trim_epoch_ = trim_epoch();
  return plan;
}

Result<QueryResult> Database::ExecutePrepared(const PreparedSelect& plan,
                                              std::optional<int64_t> floor,
                                              const Snapshot* snapshot) const {
  if (plan.stmt_ == nullptr) {
    return InvalidArgument("ExecutePrepared: empty plan");
  }
  if (floor.has_value() && plan.floor_slot_ != nullptr) {
    plan.floor_slot_->literal = Value(*floor);
  }
  if (snapshot != nullptr) {
    SEAL_OBS_COUNTER("db_snapshot_reads_total").Increment();
  }
  Executor executor(*this, snapshot);
  return executor.ExecuteSelect(*plan.stmt_);
}

Result<QueryResult> Database::ExecuteSnapshot(std::string_view sql,
                                              const Snapshot& snapshot) const {
  auto plan = Prepare(sql, /*with_time_floor=*/false);
  if (!plan.ok()) {
    return plan.status();
  }
  return ExecutePrepared(*plan, std::nullopt, &snapshot);
}

Result<QueryResult> PlanCache::Execute(const Database& db, const std::string& sql,
                                       std::optional<int64_t> floor,
                                       const Snapshot* snapshot) {
  const bool floored = floor.has_value();
  std::shared_ptr<PreparedSelect> plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find({sql, floored});
    if (it != plans_.end() && it->second->schema_epoch_ == db.schema_epoch() &&
        it->second->trim_epoch_ == db.trim_epoch()) {
      plan = it->second;
      SEAL_OBS_COUNTER("db_plan_cache_hits_total").Increment();
    }
  }
  if (plan == nullptr) {
    SEAL_OBS_COUNTER("db_plan_cache_misses_total").Increment();
    auto prepared = db.Prepare(sql, /*with_time_floor=*/floored);
    if (!prepared.ok()) {
      return prepared.status();
    }
    plan = std::make_shared<PreparedSelect>(std::move(*prepared));
    std::lock_guard<std::mutex> lock(mutex_);
    plans_[{sql, floored}] = plan;
  }
  // Executed outside the cache lock. Rebinding mutates the plan's AST, but
  // a given (sql, floored) plan is only ever run by one thread at a time
  // (rounds are serialised; parallel workers hold distinct invariants).
  return db.ExecutePrepared(*plan, floor, snapshot);
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

Bytes Database::Serialize() const {
  Bytes out;
  AppendBe32(out, static_cast<uint32_t>(tables_.size()));
  for (const auto& [name, table] : tables_) {
    PutString(out, name);
    AppendBe32(out, static_cast<uint32_t>(table.columns.size()));
    for (const std::string& col : table.columns) {
      PutString(out, col);
    }
    const size_t nrows = table.rows.size();
    AppendBe32(out, static_cast<uint32_t>(nrows));
    for (size_t r = 0; r < nrows; ++r) {
      for (const Value& v : table.rows[r]) {
        PutValue(out, v);
      }
    }
  }
  AppendBe32(out, static_cast<uint32_t>(views_.size()));
  for (const auto& [name, view] : views_) {
    PutString(out, view.sql);
  }
  return out;
}

Result<Database> Database::Deserialize(BytesView in) {
  Database db;
  size_t off = 0;
  if (off + 4 > in.size()) {
    return DataLoss("truncated database image");
  }
  uint32_t ntables = LoadBe32(in.data() + off);
  off += 4;
  for (uint32_t t = 0; t < ntables; ++t) {
    std::string name;
    if (!GetString(in, off, &name)) {
      return DataLoss("truncated table name");
    }
    if (off + 4 > in.size()) {
      return DataLoss("truncated column count");
    }
    uint32_t ncols = LoadBe32(in.data() + off);
    off += 4;
    TableData table;
    for (uint32_t c = 0; c < ncols; ++c) {
      std::string col;
      if (!GetString(in, off, &col)) {
        return DataLoss("truncated column name");
      }
      table.columns.push_back(std::move(col));
    }
    if (off + 4 > in.size()) {
      return DataLoss("truncated row count");
    }
    uint32_t nrows = LoadBe32(in.data() + off);
    off += 4;
    for (uint32_t r = 0; r < nrows; ++r) {
      Row row;
      for (uint32_t c = 0; c < ncols; ++c) {
        Value v;
        if (!GetValue(in, off, &v)) {
          return DataLoss("truncated value");
        }
        row.push_back(std::move(v));
      }
      table.rows.push_back(std::move(row));
    }
    InitTimeIndex(table);
    RebuildTimeIndex(table);
    RebuildColumns(table);
    db.tables_[name] = std::move(table);
  }
  if (off + 4 > in.size()) {
    return DataLoss("truncated view count");
  }
  uint32_t nviews = LoadBe32(in.data() + off);
  off += 4;
  for (uint32_t v = 0; v < nviews; ++v) {
    std::string sql;
    if (!GetString(in, off, &sql)) {
      return DataLoss("truncated view SQL");
    }
    auto r = db.Execute(sql);
    if (!r.ok()) {
      return r.status();
    }
  }
  return db;
}

}  // namespace seal::db
