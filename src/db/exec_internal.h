// Helpers shared by the row-at-a-time interpreter (executor.cc) and the
// vectorized engine (vector_exec.cc). Both paths must agree bit-for-bit on
// these semantics — name matching, LIKE, comparison/arithmetic coercion and
// the join/group key encodings — or the engines stop being interchangeable.
#ifndef SRC_DB_EXEC_INTERNAL_H_
#define SRC_DB_EXEC_INTERNAL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/ast.h"
#include "src/db/value.h"

namespace seal::db::exec_internal {

inline bool NameEq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

inline bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "MAX" || name == "MIN" || name == "SUM" || name == "AVG";
}

inline std::string SerializeRow(const Row& row) {
  std::string s;
  for (const Value& v : row) {
    s += v.Serialize();
    s.push_back('|');
  }
  return s;
}

// SQL LIKE with % and _ wildcards (case-insensitive, SQLite default).
inline bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Simple backtracking matcher.
  size_t ti = 0;
  size_t pi = 0;
  size_t star_ti = std::string_view::npos;
  size_t star_pi = std::string_view::npos;
  auto lc = [](char c) { return std::tolower(static_cast<unsigned char>(c)); };
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || lc(pattern[pi]) == lc(text[ti]))) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') {
    ++pi;
  }
  return pi == pattern.size();
}

inline Value CompareOp(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  int c = Value::Compare(a, b);
  bool r = false;
  if (op == "=") {
    r = c == 0;
  } else if (op == "!=") {
    r = c != 0;
  } else if (op == "<") {
    r = c < 0;
  } else if (op == "<=") {
    r = c <= 0;
  } else if (op == ">") {
    r = c > 0;
  } else if (op == ">=") {
    r = c >= 0;
  }
  return Value(static_cast<int64_t>(r ? 1 : 0));
}

inline Value Arith(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  if (op == "||") {
    return Value(a.AsText() + b.AsText());
  }
  bool ints = a.is_int() && b.is_int();
  if (ints) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    if (op == "+") {
      return Value(x + y);
    }
    if (op == "-") {
      return Value(x - y);
    }
    if (op == "*") {
      return Value(x * y);
    }
    if (op == "/") {
      return y == 0 ? Value::Null() : Value(x / y);
    }
    if (op == "%") {
      return y == 0 ? Value::Null() : Value(x % y);
    }
  } else {
    double x = a.AsReal();
    double y = b.AsReal();
    if (op == "+") {
      return Value(x + y);
    }
    if (op == "-") {
      return Value(x - y);
    }
    if (op == "*") {
      return Value(x * y);
    }
    if (op == "/") {
      return y == 0.0 ? Value::Null() : Value(x / y);
    }
    if (op == "%") {
      return Value::Null();
    }
  }
  return Value::Null();
}

// Hash/join key for one value, normalised so that any two non-null values
// with Value::Compare == 0 produce identical keys: integers and reals live
// in one numeric class, so an integral-valued real maps to the integer form.
inline std::string JoinKeyOf(const Value& v) {
  if (v.is_real()) {
    double d = v.AsReal();
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        return "I" + std::to_string(i);
      }
    }
  }
  return v.Serialize();
}

// Flattens a predicate tree into its top-level AND conjuncts, in
// left-to-right evaluation order.
inline void SplitAnd(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == ExprKind::kBinary && e->op == "AND") {
    SplitAnd(e->args[0].get(), out);
    SplitAnd(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

}  // namespace seal::db::exec_internal

#endif  // SRC_DB_EXEC_INTERNAL_H_
