// Column-major shadow storage for seadb tables.
//
// RowStore keeps the row-at-a-time truth; ColumnStore keeps the same rows
// transposed into per-column contiguous arrays so the vectorized executor
// (vector_exec.cc) can run predicate/join/aggregate kernels without boxing
// a Value per cell. Each column is stored as fixed 1024-row batches of a
// tag byte plus a 64-bit payload: integers and doubles live directly in
// the payload, short strings (<= 8 bytes) are inlined into it, and longer
// strings go through a per-batch dictionary. NULLs are a tag, so a "null
// bitmap" test is one byte compare and never touches the payload.
//
// Concurrency contract (mirrors RowStore):
//  - All MUTATORS (Append, Rebuild, Reset) must be externally synchronised
//    with each other and with captures — in the audit logger they run under
//    the sequencer's drain mutex.
//  - A captured View may be READ from any thread concurrently with any
//    mutator: batches never move once allocated, the batch directory is
//    replaced copy-on-grow, appends only write slots >= every view's count,
//    and a batch's string dictionary reserves its full capacity before the
//    first entry is published (push_back never reallocates under a reader).
#ifndef SRC_DB_COLUMN_STORE_H_
#define SRC_DB_COLUMN_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/value.h"

namespace seal::db {

class ColumnStore {
 public:
  static constexpr size_t kBatchShift = 10;
  static constexpr size_t kBatchRows = size_t{1} << kBatchShift;  // 1024
  static constexpr size_t kBatchMask = kBatchRows - 1;
  // Longest string stored inline in the 8-byte payload.
  static constexpr size_t kMaxInline = 8;

  // Per-cell tag: type plus, for inline text, the length.
  enum Tag : uint8_t {
    kNull = 0,
    kInt = 1,
    kReal = 2,
    kDictText = 3,                      // payload = index into the batch dict
    kInlineText = 4,                    // tags [4, 4+kMaxInline]: payload = bytes
  };

  // One column's slice of one 1024-row batch.
  struct Column {
    std::array<uint8_t, kBatchRows> tags{};
    std::array<uint64_t, kBatchRows> data{};
    // Reserved to kBatchRows before the first entry so push_back never
    // reallocates under a concurrent reader (see file comment).
    std::vector<std::string> dict;

    bool IsNull(size_t i) const { return tags[i] == kNull; }
    int64_t IntAt(size_t i) const { return static_cast<int64_t>(data[i]); }
    double RealAt(size_t i) const {
      double d;
      std::memcpy(&d, &data[i], sizeof(d));
      return d;
    }
    std::string_view TextAt(size_t i) const {
      if (tags[i] == kDictText) {
        return dict[data[i]];
      }
      return std::string_view(reinterpret_cast<const char*>(&data[i]),
                              tags[i] - kInlineText);
    }
    Value ValueAt(size_t i) const {
      switch (tags[i]) {
        case kNull:
          return Value::Null();
        case kInt:
          return Value(IntAt(i));
        case kReal:
          return Value(RealAt(i));
        default:
          return Value(std::string(TextAt(i)));
      }
    }
  };

  struct Batch {
    explicit Batch(size_t num_cols) : cols(num_cols) {}
    std::vector<Column> cols;
  };
  using Directory = std::vector<std::shared_ptr<Batch>>;

  // A frozen prefix of the store, pinned through the batch directory.
  class View {
   public:
    View() = default;

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    size_t num_cols() const { return num_cols_; }
    size_t num_batches() const { return (count_ + kBatchMask) >> kBatchShift; }
    const Batch& batch(size_t b) const { return *(*dir_)[b]; }
    const Column& column(size_t b, size_t c) const { return (*dir_)[b]->cols[c]; }

    Value ValueAt(size_t c, size_t row) const {
      return column(row >> kBatchShift, c).ValueAt(row & kBatchMask);
    }

   private:
    friend class ColumnStore;
    View(std::shared_ptr<const Directory> dir, size_t count, size_t num_cols)
        : dir_(std::move(dir)), count_(count), num_cols_(num_cols) {}

    std::shared_ptr<const Directory> dir_;
    size_t count_ = 0;
    size_t num_cols_ = 0;
  };

  ColumnStore() : dir_(std::make_shared<const Directory>()) {}
  ColumnStore(ColumnStore&& other) noexcept
      : num_cols_(other.num_cols_),
        dir_(std::move(other.dir_)),
        size_(other.size_.load(std::memory_order_relaxed)) {
    other.dir_ = std::make_shared<const Directory>();
    other.size_.store(0, std::memory_order_relaxed);
  }
  ColumnStore& operator=(ColumnStore&& other) noexcept {
    if (this != &other) {
      num_cols_ = other.num_cols_;
      dir_ = std::move(other.dir_);
      size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
      other.dir_ = std::make_shared<const Directory>();
      other.size_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  size_t num_cols() const { return num_cols_; }

  // Drops all rows and fixes the column count (CREATE TABLE / rebuild).
  // Publishes a fresh directory so pinned views keep the old rows alive.
  void Reset(size_t num_cols) {
    num_cols_ = num_cols;
    dir_ = std::make_shared<const Directory>();
    size_.store(0, std::memory_order_release);
  }

  // Appends one row (row.size() must equal num_cols()).
  void Append(const Row& row);

  View Snapshot() const { return View(dir_, size(), num_cols_); }

 private:
  size_t num_cols_ = 0;
  std::shared_ptr<const Directory> dir_;
  std::atomic<size_t> size_{0};
};

}  // namespace seal::db

#endif  // SRC_DB_COLUMN_STORE_H_
