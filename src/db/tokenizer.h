// SQL tokenizer for seadb.
#ifndef SRC_DB_TOKENIZER_H_
#define SRC_DB_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace seal::db {

enum class TokenType {
  kKeyword,     // normalised upper-case SQL keyword
  kIdentifier,  // table/column name (case preserved; possibly "quoted")
  kInteger,
  kReal,
  kString,      // 'single quoted', quotes stripped, '' unescaped
  kOperator,    // = != < > <= >= <> + - * / ( ) , . ; ||
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // keyword/operator text (keywords upper-cased)
  int64_t int_value = 0;
  double real_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const { return type == TokenType::kKeyword && text == kw; }
  bool IsOperator(std::string_view op) const { return type == TokenType::kOperator && text == op; }
};

// Tokenizes `sql`; the final token is always kEnd. Returns an error status
// for unterminated strings or unexpected characters.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace seal::db

#endif  // SRC_DB_TOKENIZER_H_
