// Vectorized columnar SELECT execution for seadb.
//
// TryVectorized runs an uncorrelated SELECT through batch-at-a-time kernels
// over ColumnStore views: predicate evaluation produces selection vectors,
// joins produce per-source row-index vectors (late materialisation), and
// grouping/aggregation accumulate over column cells without boxing a Value
// per row. An analysis pass admits only statement shapes whose semantics
// this file reproduces bit-for-bit against the interpreter in executor.cc;
// everything else returns nullopt (recorded in db_vector_fallback_total)
// and falls back. Correctness therefore never depends on coverage: the
// vectorized engine either produces the interpreter's exact bytes or it
// declines to run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/db/column_store.h"
#include "src/db/exec_internal.h"
#include "src/db/executor.h"
#include "src/obs/obs.h"

namespace seal::db {
namespace {

using exec_internal::IsAggregateName;
using exec_internal::LikeMatch;
using exec_internal::NameEq;
using exec_internal::SerializeRow;
using exec_internal::SplitAnd;

constexpr uint32_t kNoRow = 0xffffffffu;
constexpr size_t kVecBatch = ColumnStore::kBatchRows;

// --- cells ----------------------------------------------------------------
// A cell is the unboxed form of a Value: a tag plus the one live payload.
// Text payloads are string_views into a ColumnStore batch, a dictionary
// entry, an AST literal or a VecCol-owned buffer — all stable for the
// duration of the query.

enum CellTag : uint8_t { kCellNull = 0, kCellInt = 1, kCellReal = 2, kCellText = 3 };

struct CellView {
  uint8_t tag = kCellNull;
  int64_t i = 0;
  double d = 0;
  std::string_view s;
};

int64_t CellAsInt(const CellView& c) {
  switch (c.tag) {
    case kCellInt:
      return c.i;
    case kCellReal:
      return static_cast<int64_t>(c.d);
    case kCellText:
      return std::strtoll(std::string(c.s).c_str(), nullptr, 10);
    default:
      return 0;
  }
}

double CellAsReal(const CellView& c) {
  switch (c.tag) {
    case kCellReal:
      return c.d;
    case kCellInt:
      return static_cast<double>(c.i);
    case kCellText:
      return std::strtod(std::string(c.s).c_str(), nullptr);
    default:
      return 0.0;
  }
}

std::string CellAsTextStr(const CellView& c) {
  switch (c.tag) {
    case kCellText:
      return std::string(c.s);
    case kCellInt:
      return std::to_string(c.i);
    case kCellReal: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", c.d);
      return buf;
    }
    default:
      return "";
  }
}

bool CellTruthy(const CellView& c) {
  switch (c.tag) {
    case kCellInt:
      return c.i != 0;
    case kCellReal:
      return c.d != 0.0;
    case kCellText:
      return !c.s.empty();
    default:
      return false;
  }
}

// Mirrors Value::Compare: null < numeric < text; int/int exact, otherwise
// numerics compare as double; text compares bytewise.
int CellCompare(const CellView& a, const CellView& b) {
  auto cls = [](const CellView& c) {
    return c.tag == kCellNull ? 0 : (c.tag == kCellText ? 2 : 1);
  };
  int ca = cls(a);
  int cb = cls(b);
  if (ca != cb) {
    return ca < cb ? -1 : 1;
  }
  if (ca == 0) {
    return 0;
  }
  if (ca == 1) {
    if (a.tag == kCellInt && b.tag == kCellInt) {
      return a.i < b.i ? -1 : (a.i > b.i ? 1 : 0);
    }
    double x = CellAsReal(a);
    double y = CellAsReal(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  int c = a.s.compare(b.s);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

// Mirrors Value::Serialize byte-for-byte (group/distinct keys must match
// the interpreter's exactly).
void CellSerializeAppend(const CellView& c, std::string* out) {
  switch (c.tag) {
    case kCellNull:
      out->push_back('N');
      return;
    case kCellInt:
      out->push_back('I');
      out->append(std::to_string(c.i));
      return;
    case kCellReal: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "R%.17g", c.d);
      out->append(buf);
      return;
    }
    default:
      out->push_back('T');
      out->append(std::to_string(c.s.size()));
      out->push_back(':');
      out->append(c.s);
      return;
  }
}

// Mirrors exec_internal::JoinKeyOf: an integral-valued real maps to the
// integer form so that Value::Compare == 0 implies identical keys.
void CellJoinKeyAppend(const CellView& c, std::string* out) {
  if (c.tag == kCellReal) {
    double d = c.d;
    if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
      int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) {
        out->push_back('I');
        out->append(std::to_string(i));
        return;
      }
    }
  }
  CellSerializeAppend(c, out);
}

Value CellToValue(const CellView& c) {
  switch (c.tag) {
    case kCellInt:
      return Value(c.i);
    case kCellReal:
      return Value(c.d);
    case kCellText:
      return Value(std::string(c.s));
    default:
      return Value::Null();
  }
}

CellView ValueToCell(const Value& v) {
  CellView c;
  if (v.is_int()) {
    c.tag = kCellInt;
    c.i = v.AsInt();
  } else if (v.is_real()) {
    c.tag = kCellReal;
    c.d = v.AsReal();
  } else if (v.is_text()) {
    c.tag = kCellText;
    c.s = v.text();
  }
  return c;
}

// --- batch column ---------------------------------------------------------
// One expression's values for a batch of rows, struct-of-arrays. `owned`
// stores computed strings; it is reserved up front so push_back never moves
// a string out from under a string_view already pointing at it.

struct VecCol {
  std::vector<uint8_t> tag;
  std::vector<int64_t> ival;
  std::vector<double> rval;
  std::vector<std::string_view> sval;
  std::vector<std::string> owned;
  // Buffers adopted from child evaluations whose views we forwarded
  // (COALESCE): keeps their storage alive for this column's lifetime.
  std::vector<std::vector<std::string>> keepalive;

  void Reset(size_t n) {
    tag.assign(n, kCellNull);
    ival.resize(n);
    rval.resize(n);
    sval.resize(n);
    owned.clear();
    owned.reserve(n);
    keepalive.clear();
  }
  void SetNull(size_t i) { tag[i] = kCellNull; }
  void SetInt(size_t i, int64_t v) {
    tag[i] = kCellInt;
    ival[i] = v;
  }
  void SetReal(size_t i, double v) {
    tag[i] = kCellReal;
    rval[i] = v;
  }
  void SetView(size_t i, std::string_view v) {
    tag[i] = kCellText;
    sval[i] = v;
  }
  void SetOwned(size_t i, std::string v) {
    owned.push_back(std::move(v));
    tag[i] = kCellText;
    sval[i] = owned.back();
  }
  void SetCell(size_t i, const CellView& c) {
    switch (c.tag) {
      case kCellInt:
        SetInt(i, c.i);
        break;
      case kCellReal:
        SetReal(i, c.d);
        break;
      case kCellText:
        SetView(i, c.s);
        break;
      default:
        SetNull(i);
        break;
    }
  }
  CellView At(size_t i) const {
    CellView c;
    c.tag = tag[i];
    c.i = ival[i];
    c.d = rval[i];
    if (c.tag == kCellText) {
      c.s = sval[i];
    }
    return c;
  }
  // Takes over `from`'s string storage (call after forwarding its views).
  void Adopt(VecCol&& from) {
    if (!from.owned.empty()) {
      keepalive.push_back(std::move(from.owned));
    }
    for (auto& k : from.keepalive) {
      keepalive.push_back(std::move(k));
    }
  }
};

// --- plan -----------------------------------------------------------------

struct VecSource {
  ColumnStore::View view;
  std::vector<std::string> columns;
  std::string alias;
};

struct ColRef {
  uint32_t src = 0;
  uint32_t col = 0;
};

struct VecJoinStep {
  JoinClause::Kind kind = JoinClause::Kind::kInner;
  uint32_t right_src = 0;
  // (combined column index on the probe side, raw column index in the right
  // source's view). Empty means every left/right pair matches (cross).
  std::vector<std::pair<uint32_t, uint32_t>> keys;
};

struct VecOrderKey {
  enum Route { kCopyColumn, kEval };
  Route route = kEval;
  size_t out_col = 0;      // kCopyColumn: output column to copy
  const Expr* expr = nullptr;  // kEval
  bool desc = false;
};

struct VecPlan {
  std::vector<VecSource> sources;
  std::vector<VecJoinStep> joins;
  // Final combined schema, exactly as the interpreter builds it.
  std::vector<std::string> aliases;
  std::vector<std::string> columns;
  std::vector<ColRef> refs;
  // Column-expression nodes resolved during analysis (first-match rule).
  std::unordered_map<const Expr*, uint32_t> col_map;

  bool grouped = false;
  // Some output/HAVING expression reads a column (or star) outside any
  // aggregate: the interpreter's empty-relation aggregate row would read
  // past an empty representative, so we fall back at runtime instead.
  bool col_outside_agg = false;
  std::vector<const Expr*> aggs;
  std::unordered_map<const Expr*, uint32_t> agg_ids;

  struct OutItem {
    const Expr* expr = nullptr;  // null => star expansion of `star_col`
    uint32_t star_col = 0;
  };
  std::vector<OutItem> items;
  std::vector<std::string> out_names;
  std::vector<VecOrderKey> order_keys;

  bool has_limit = false;
  int64_t limit = 0;
  int64_t offset = 0;

  // Base-table scan, already narrowed by the advisory TimeBound.
  std::vector<uint32_t> base_rows;
};

// Per-source row-index vectors for the current intermediate relation; a
// combined row i is ({rows[0][i], rows[1][i], ...}); kNoRow marks the
// null-padded right side of an unmatched LEFT JOIN row.
struct Selection {
  size_t count = 0;
  std::vector<std::vector<uint32_t>> rows;
};

CellView ReadCell(const ColumnStore::View& view, uint32_t col, uint32_t row) {
  const ColumnStore::Column& c =
      view.column(row >> ColumnStore::kBatchShift, col);
  size_t o = row & ColumnStore::kBatchMask;
  CellView out;
  switch (c.tags[o]) {
    case ColumnStore::kNull:
      break;
    case ColumnStore::kInt:
      out.tag = kCellInt;
      out.i = c.IntAt(o);
      break;
    case ColumnStore::kReal:
      out.tag = kCellReal;
      out.d = c.RealAt(o);
      break;
    default:
      out.tag = kCellText;
      out.s = c.TextAt(o);
      break;
  }
  return out;
}

CellView ReadCombined(const VecPlan& plan, const Selection& sel, uint32_t combined_col,
                      size_t row) {
  const ColRef& ref = plan.refs[combined_col];
  uint32_t r = sel.rows[ref.src][row];
  if (r == kNoRow) {
    return CellView{};
  }
  return ReadCell(plan.sources[ref.src].view, ref.col, r);
}

// --- open-addressing byte-key table --------------------------------------
// Keys live in one arena; per-key chains preserve insertion order so hash
// join emission matches nested-loop order and group ids are first-seen.

struct ByteKeyMap {
  struct Entry {
    uint64_t hash = 0;
    uint32_t off = 0;
    uint32_t len = 0;
    uint32_t head = kNoRow;  // join chain head / group id
    uint32_t tail = kNoRow;
  };

  std::string arena;
  std::vector<Entry> entries;
  std::vector<uint32_t> slots;  // entry index + 1; 0 = empty
  uint64_t mask = 0;

  static uint64_t Hash(std::string_view key) {
    uint64_t h = 1469598103934665603ull;
    for (char c : key) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  void Init(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2) {
      cap <<= 1;
    }
    slots.assign(cap, 0);
    mask = cap - 1;
    entries.clear();
    entries.reserve(expected);
    arena.clear();
  }

  void Grow() {
    std::vector<uint32_t> old = std::move(slots);
    slots.assign(old.size() * 2, 0);
    mask = slots.size() - 1;
    for (uint32_t e = 0; e < entries.size(); ++e) {
      uint64_t p = entries[e].hash & mask;
      while (slots[p] != 0) {
        p = (p + 1) & mask;
      }
      slots[p] = e + 1;
    }
  }

  bool KeyEq(const Entry& e, std::string_view key) const {
    return e.len == key.size() &&
           std::memcmp(arena.data() + e.off, key.data(), key.size()) == 0;
  }

  // Returns the entry for `key`, inserting if absent (*inserted reports
  // which). References stay valid until the next FindOrInsert.
  Entry* FindOrInsert(std::string_view key, bool* inserted) {
    if ((entries.size() + 1) * 2 > slots.size()) {
      Grow();
    }
    uint64_t h = Hash(key);
    uint64_t p = h & mask;
    while (slots[p] != 0) {
      Entry& e = entries[slots[p] - 1];
      if (e.hash == h && KeyEq(e, key)) {
        *inserted = false;
        return &e;
      }
      p = (p + 1) & mask;
    }
    Entry e;
    e.hash = h;
    e.off = static_cast<uint32_t>(arena.size());
    e.len = static_cast<uint32_t>(key.size());
    arena.append(key);
    entries.push_back(e);
    slots[p] = static_cast<uint32_t>(entries.size());
    *inserted = true;
    return &entries.back();
  }

  const Entry* Find(std::string_view key) const {
    uint64_t h = Hash(key);
    uint64_t p = h & mask;
    while (slots[p] != 0) {
      const Entry& e = entries[slots[p] - 1];
      if (e.hash == h && KeyEq(e, key)) {
        return &e;
      }
      p = (p + 1) & mask;
    }
    return nullptr;
  }
};

// --- batch expression evaluation -----------------------------------------
// Evaluates plan-validated expressions for selection rows [start, start+n).
// The analysis pass guarantees no node in the tree can fail, so this layer
// is Status-free. AND/OR evaluate both sides eagerly: the interpreter's
// short-circuit only skips pure work and both operators reduce to
// (lt && rt) / (lt || rt) over truthiness, including the NULL cases.

void EvalBatch(const Expr& e, const VecPlan& plan, const Selection& sel, size_t start,
               size_t n, VecCol* out);

void EvalColumnBatch(const Expr& e, const VecPlan& plan, const Selection& sel,
                     size_t start, size_t n, VecCol* out) {
  const ColRef& ref = plan.refs[plan.col_map.at(&e)];
  const ColumnStore::View& view = plan.sources[ref.src].view;
  const std::vector<uint32_t>& rows = sel.rows[ref.src];
  for (size_t i = 0; i < n; ++i) {
    uint32_t r = rows[start + i];
    if (r == kNoRow) {
      out->SetNull(i);
      continue;
    }
    out->SetCell(i, ReadCell(view, ref.col, r));
  }
}

void EvalBinaryBatch(const Expr& e, const VecPlan& plan, const Selection& sel,
                     size_t start, size_t n, VecCol* out) {
  if (e.op == "AND" || e.op == "OR") {
    VecCol l, r;
    l.Reset(n);
    r.Reset(n);
    EvalBatch(*e.args[0], plan, sel, start, n, &l);
    EvalBatch(*e.args[1], plan, sel, start, n, &r);
    const bool is_and = e.op == "AND";
    for (size_t i = 0; i < n; ++i) {
      bool lt = CellTruthy(l.At(i));
      bool rt = CellTruthy(r.At(i));
      out->SetInt(i, (is_and ? (lt && rt) : (lt || rt)) ? 1 : 0);
    }
    return;
  }
  if (e.op == "BETWEEN") {
    VecCol v, lo, hi;
    v.Reset(n);
    lo.Reset(n);
    hi.Reset(n);
    EvalBatch(*e.args[0], plan, sel, start, n, &v);
    EvalBatch(*e.args[1], plan, sel, start, n, &lo);
    EvalBatch(*e.args[2], plan, sel, start, n, &hi);
    for (size_t i = 0; i < n; ++i) {
      CellView cv = v.At(i);
      CellView cl = lo.At(i);
      CellView ch = hi.At(i);
      bool ge = cv.tag != kCellNull && cl.tag != kCellNull && CellCompare(cv, cl) >= 0;
      bool le = cv.tag != kCellNull && ch.tag != kCellNull && CellCompare(cv, ch) <= 0;
      bool in = ge && le;
      if (e.negated) {
        in = !in;
      }
      out->SetInt(i, in ? 1 : 0);
    }
    return;
  }
  VecCol l, r;
  l.Reset(n);
  r.Reset(n);
  EvalBatch(*e.args[0], plan, sel, start, n, &l);
  EvalBatch(*e.args[1], plan, sel, start, n, &r);
  if (e.op == "LIKE") {
    for (size_t i = 0; i < n; ++i) {
      CellView a = l.At(i);
      CellView b = r.At(i);
      if (a.tag == kCellNull || b.tag == kCellNull) {
        out->SetNull(i);
        continue;
      }
      std::string at;
      std::string bt;
      std::string_view av = a.tag == kCellText ? a.s : (at = CellAsTextStr(a));
      std::string_view bv = b.tag == kCellText ? b.s : (bt = CellAsTextStr(b));
      bool m = LikeMatch(av, bv);
      if (e.negated) {
        m = !m;
      }
      out->SetInt(i, m ? 1 : 0);
    }
    return;
  }
  if (e.op == "=" || e.op == "!=" || e.op == "<" || e.op == "<=" || e.op == ">" ||
      e.op == ">=") {
    // Branch on the operator once per batch, not per row.
    int lo = -2, hi = 2;  // admitted Compare results [lo, hi]
    bool neq = false;
    if (e.op == "=") {
      lo = hi = 0;
    } else if (e.op == "!=") {
      neq = true;
    } else if (e.op == "<") {
      lo = -1, hi = -1;
    } else if (e.op == "<=") {
      lo = -1, hi = 0;
    } else if (e.op == ">") {
      lo = 1, hi = 1;
    } else {
      lo = 0, hi = 1;
    }
    for (size_t i = 0; i < n; ++i) {
      CellView a = l.At(i);
      CellView b = r.At(i);
      if (a.tag == kCellNull || b.tag == kCellNull) {
        out->SetNull(i);
        continue;
      }
      int c = CellCompare(a, b);
      bool t = neq ? c != 0 : (c >= lo && c <= hi);
      out->SetInt(i, t ? 1 : 0);
    }
    return;
  }
  // Arithmetic / concatenation, mirroring exec_internal::Arith.
  for (size_t i = 0; i < n; ++i) {
    CellView a = l.At(i);
    CellView b = r.At(i);
    if (a.tag == kCellNull || b.tag == kCellNull) {
      out->SetNull(i);
      continue;
    }
    if (e.op == "||") {
      out->SetOwned(i, CellAsTextStr(a) + CellAsTextStr(b));
      continue;
    }
    if (a.tag == kCellInt && b.tag == kCellInt) {
      int64_t x = a.i;
      int64_t y = b.i;
      if (e.op == "+") {
        out->SetInt(i, x + y);
      } else if (e.op == "-") {
        out->SetInt(i, x - y);
      } else if (e.op == "*") {
        out->SetInt(i, x * y);
      } else if (e.op == "/") {
        y == 0 ? out->SetNull(i) : out->SetInt(i, x / y);
      } else if (e.op == "%") {
        y == 0 ? out->SetNull(i) : out->SetInt(i, x % y);
      } else {
        out->SetNull(i);
      }
    } else {
      double x = CellAsReal(a);
      double y = CellAsReal(b);
      if (e.op == "+") {
        out->SetReal(i, x + y);
      } else if (e.op == "-") {
        out->SetReal(i, x - y);
      } else if (e.op == "*") {
        out->SetReal(i, x * y);
      } else if (e.op == "/") {
        y == 0.0 ? out->SetNull(i) : out->SetReal(i, x / y);
      } else {
        out->SetNull(i);  // "%" on non-integers
      }
    }
  }
}

void EvalFunctionBatch(const Expr& e, const VecPlan& plan, const Selection& sel,
                       size_t start, size_t n, VecCol* out) {
  std::vector<VecCol> args(e.args.size());
  for (size_t a = 0; a < e.args.size(); ++a) {
    args[a].Reset(n);
    EvalBatch(*e.args[a], plan, sel, start, n, &args[a]);
  }
  if (e.name == "LENGTH") {
    for (size_t i = 0; i < n; ++i) {
      if (args.size() != 1 || args[0].tag[i] == kCellNull) {
        out->SetNull(i);
        continue;
      }
      CellView c = args[0].At(i);
      size_t len = c.tag == kCellText ? c.s.size() : CellAsTextStr(c).size();
      out->SetInt(i, static_cast<int64_t>(len));
    }
    return;
  }
  if (e.name == "ABS") {
    for (size_t i = 0; i < n; ++i) {
      if (args.size() != 1 || args[0].tag[i] == kCellNull) {
        out->SetNull(i);
        continue;
      }
      CellView c = args[0].At(i);
      if (c.tag == kCellInt) {
        out->SetInt(i, c.i < 0 ? -c.i : c.i);
      } else {
        double v = CellAsReal(c);
        out->SetReal(i, v < 0 ? -v : v);
      }
    }
    return;
  }
  if (e.name == "SUBSTR") {
    for (size_t i = 0; i < n; ++i) {
      if (args.size() < 2 || args[0].tag[i] == kCellNull) {
        out->SetNull(i);
        continue;
      }
      std::string s = CellAsTextStr(args[0].At(i));
      int64_t begin = CellAsInt(args[1].At(i));  // 1-based
      int64_t len =
          args.size() > 2 ? CellAsInt(args[2].At(i)) : static_cast<int64_t>(s.size());
      if (begin < 1) {
        begin = 1;
      }
      if (begin > static_cast<int64_t>(s.size())) {
        out->SetOwned(i, std::string());
        continue;
      }
      out->SetOwned(i, s.substr(static_cast<size_t>(begin - 1), static_cast<size_t>(len)));
    }
    return;
  }
  // COALESCE (the only other name analysis admits): forward the first
  // non-null argument's view, then adopt every argument's string storage.
  for (size_t i = 0; i < n; ++i) {
    out->SetNull(i);
    for (VecCol& a : args) {
      if (a.tag[i] != kCellNull) {
        out->SetCell(i, a.At(i));
        break;
      }
    }
  }
  for (VecCol& a : args) {
    out->Adopt(std::move(a));
  }
}

void EvalBatch(const Expr& e, const VecPlan& plan, const Selection& sel, size_t start,
               size_t n, VecCol* out) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      CellView c = ValueToCell(e.literal);
      for (size_t i = 0; i < n; ++i) {
        out->SetCell(i, c);
      }
      return;
    }
    case ExprKind::kColumn:
      EvalColumnBatch(e, plan, sel, start, n, out);
      return;
    case ExprKind::kUnary: {
      VecCol v;
      v.Reset(n);
      EvalBatch(*e.args[0], plan, sel, start, n, &v);
      if (e.op == "NOT") {
        for (size_t i = 0; i < n; ++i) {
          if (v.tag[i] == kCellNull) {
            out->SetNull(i);
          } else {
            out->SetInt(i, CellTruthy(v.At(i)) ? 0 : 1);
          }
        }
      } else {  // "-"
        for (size_t i = 0; i < n; ++i) {
          CellView c = v.At(i);
          if (c.tag == kCellNull) {
            out->SetNull(i);
          } else if (c.tag == kCellInt) {
            out->SetInt(i, -c.i);
          } else {
            out->SetReal(i, -CellAsReal(c));
          }
        }
      }
      return;
    }
    case ExprKind::kBinary:
      EvalBinaryBatch(e, plan, sel, start, n, out);
      return;
    case ExprKind::kFunction:
      EvalFunctionBatch(e, plan, sel, start, n, out);
      return;
    case ExprKind::kIsNull: {
      VecCol v;
      v.Reset(n);
      EvalBatch(*e.args[0], plan, sel, start, n, &v);
      for (size_t i = 0; i < n; ++i) {
        bool is_null = v.tag[i] == kCellNull;
        if (e.negated) {
          is_null = !is_null;
        }
        out->SetInt(i, is_null ? 1 : 0);
      }
      return;
    }
    case ExprKind::kInList: {
      VecCol needle;
      needle.Reset(n);
      EvalBatch(*e.args[0], plan, sel, start, n, &needle);
      std::vector<VecCol> items(e.args.size() - 1);
      for (size_t a = 1; a < e.args.size(); ++a) {
        items[a - 1].Reset(n);
        EvalBatch(*e.args[a], plan, sel, start, n, &items[a - 1]);
      }
      for (size_t i = 0; i < n; ++i) {
        CellView nv = needle.At(i);
        if (nv.tag == kCellNull) {
          out->SetNull(i);
          continue;
        }
        bool found = false;
        for (const VecCol& item : items) {
          CellView c = item.At(i);
          if (c.tag != kCellNull && CellCompare(c, nv) == 0) {
            found = true;
            break;
          }
        }
        if (e.negated) {
          found = !found;
        }
        out->SetInt(i, found ? 1 : 0);
      }
      return;
    }
    default:
      // Analysis rejects every other kind; emit NULLs defensively.
      for (size_t i = 0; i < n; ++i) {
        out->SetNull(i);
      }
      return;
  }
}

}  // namespace

// --- analysis -------------------------------------------------------------
// Builds a VecPlan, or fails with a fallback reason. Failure is always
// safe: the interpreter runs instead, producing either the same result or
// the error the statement deserves (unknown column, misplaced aggregate).
// A named class (not anonymous-namespace) so Database can befriend it.

class VecAnalyzer {
 public:
  VecAnalyzer(const Database& db, const Snapshot* snap) : db_(db), snap_(snap) {}

  const char* reason() const { return reason_; }

  bool Build(const SelectStmt& stmt, const TimeBound& bound, VecPlan* plan);

 private:
  bool Fail(const char* reason) {
    reason_ = reason;
    return false;
  }

  bool AddSource(const TableRef& ref, VecPlan* plan);
  bool AddBaseScan(const SelectStmt& stmt, const TimeBound& bound, VecPlan* plan);
  bool AddJoin(const JoinClause& join, VecPlan* plan);
  bool CheckExpr(const Expr& e, VecPlan* plan, bool agg_allowed, bool in_agg,
                 bool track_bare);

  const Database& db_;
  const Snapshot* snap_;
  const char* reason_ = "unsupported";
};

bool VecAnalyzer::AddSource(const TableRef& ref, VecPlan* plan) {
  if (ref.subquery != nullptr) {
    return Fail("derived_table");
  }
  auto table_it = db_.tables_.find(ref.table_name);
  if (table_it == db_.tables_.end()) {
    // Views recurse through ExecuteSelect where TryVectorized gets another
    // look at the body; unknown names produce the interpreter's NotFound.
    return Fail(db_.views_.count(ref.table_name) > 0 ? "view_source" : "unknown_table");
  }
  const Database::TableData& t = table_it->second;
  VecSource src;
  src.columns = t.columns;
  src.alias = ref.alias.empty() ? ref.table_name : ref.alias;
  if (snap_ != nullptr) {
    auto snap_it = snap_->tables.find(ref.table_name);
    if (snap_it != snap_->tables.end()) {
      src.view = snap_it->second.col_view;
      if (src.view.size() != snap_it->second.view.size()) {
        return Fail("colstore_stale");
      }
    }
  } else {
    src.view = t.cols.Snapshot();
    if (src.view.size() != t.rows.size()) {
      return Fail("colstore_stale");
    }
  }
  if (!src.view.empty() && src.view.num_cols() != src.columns.size()) {
    return Fail("colstore_stale");
  }
  plan->sources.push_back(std::move(src));
  return true;
}

// Narrows the base scan with the advisory TimeBound, mirroring the
// interpreter's index/sorted-view range scans (including their counters).
// Dropping the bound is always result-identical, so every uncertain case
// degrades to a full scan, never to a fallback.
bool VecAnalyzer::AddBaseScan(const SelectStmt& stmt, const TimeBound& bound,
                              VecPlan* plan) {
  const VecSource& src = plan->sources[0];
  const size_t total = src.view.size();
  auto full_scan = [&](const char* reason) {
    plan->base_rows.resize(total);
    for (size_t i = 0; i < total; ++i) {
      plan->base_rows[i] = static_cast<uint32_t>(i);
    }
    obs::Registry::Global()
        .GetCounter(std::string("seadb_full_scans_total{reason=\"") + reason + "\"}")
        .Increment();
  };
  if (!bound.constrained()) {
    full_scan("unbounded");
    return true;
  }
  if (!db_.tuning_.use_time_index) {
    full_scan("tuning_off");
    return true;
  }

  // Resolve the inclusive [lo, hi] admitted time range.
  bool empty_range = false;
  int64_t lo = std::numeric_limits<int64_t>::min();
  if (bound.lo.has_value()) {
    if (bound.lo_strict && *bound.lo == std::numeric_limits<int64_t>::max()) {
      empty_range = true;
    } else {
      lo = bound.lo_strict ? *bound.lo + 1 : *bound.lo;
    }
  }
  int64_t hi = std::numeric_limits<int64_t>::max();
  if (bound.hi.has_value()) {
    if (bound.hi_strict && *bound.hi == std::numeric_limits<int64_t>::min()) {
      empty_range = true;
    } else {
      hi = bound.hi_strict ? *bound.hi - 1 : *bound.hi;
    }
  }

  int time_col = -1;
  bool sorted = false;
  if (snap_ != nullptr) {
    auto snap_it = snap_->tables.find(stmt.from->table_name);
    if (snap_it != snap_->tables.end()) {
      time_col = snap_it->second.time_col;
      sorted = snap_it->second.time_sorted;
    }
  } else {
    const Database::TableData& t = db_.tables_.find(stmt.from->table_name)->second;
    if (t.index_valid) {
      time_col = t.time_col;
      sorted = t.rows_time_ordered;
      if (!sorted) {
        // Out-of-order rows: walk the live index range and emit positions
        // in row order, exactly like the interpreter's index range scan.
        SEAL_OBS_COUNTER("seadb_index_range_scans_total").Increment();
        if (!empty_range && lo <= hi) {
          auto begin = std::lower_bound(t.time_index.begin(), t.time_index.end(),
                                        std::make_pair(lo, size_t{0}));
          auto end =
              std::upper_bound(begin, t.time_index.end(),
                               std::make_pair(hi, std::numeric_limits<size_t>::max()));
          plan->base_rows.reserve(static_cast<size_t>(end - begin));
          for (auto it = begin; it != end; ++it) {
            plan->base_rows.push_back(static_cast<uint32_t>(it->second));
          }
          std::sort(plan->base_rows.begin(), plan->base_rows.end());
        }
        return true;
      }
    }
  }
  if (time_col < 0 || !sorted) {
    full_scan("index_invalid");
    return true;
  }

  SEAL_OBS_COUNTER("seadb_index_range_scans_total").Increment();
  size_t lo_idx = 0;
  size_t hi_idx = 0;
  if (!empty_range && lo <= hi) {
    const size_t tc = static_cast<size_t>(time_col);
    auto time_at = [&](size_t i) { return src.view.ValueAt(tc, i).AsInt(); };
    size_t a = 0;
    size_t b = total;
    while (a < b) {  // first row with time >= lo
      size_t mid = a + (b - a) / 2;
      if (time_at(mid) < lo) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    lo_idx = a;
    b = total;
    while (a < b) {  // first row with time > hi
      size_t mid = a + (b - a) / 2;
      if (time_at(mid) <= hi) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    hi_idx = a;
  }
  plan->base_rows.reserve(hi_idx - lo_idx);
  for (size_t i = lo_idx; i < hi_idx; ++i) {
    plan->base_rows.push_back(static_cast<uint32_t>(i));
  }
  return true;
}

bool VecAnalyzer::AddJoin(const JoinClause& join, VecPlan* plan) {
  if (!AddSource(join.table, plan)) {
    return false;
  }
  const uint32_t right_src = static_cast<uint32_t>(plan->sources.size() - 1);
  const VecSource& right = plan->sources[right_src];
  const size_t left_width = plan->columns.size();

  VecJoinStep step;
  step.kind = join.kind;
  step.right_src = right_src;

  // NATURAL column pairing + right-column dedup, as the interpreter does it.
  std::vector<bool> right_kept(right.columns.size(), true);
  if (join.kind == JoinClause::Kind::kNatural) {
    for (size_t rc = 0; rc < right.columns.size(); ++rc) {
      for (size_t lc = 0; lc < left_width; ++lc) {
        if (NameEq(plan->columns[lc], right.columns[rc])) {
          step.keys.emplace_back(static_cast<uint32_t>(lc), static_cast<uint32_t>(rc));
          right_kept[rc] = false;
          break;
        }
      }
    }
  }
  std::vector<size_t> kept_to_right;
  for (size_t rc = 0; rc < right.columns.size(); ++rc) {
    if (right_kept[rc]) {
      kept_to_right.push_back(rc);
      plan->aliases.push_back(right.alias);
      plan->columns.push_back(right.columns[rc]);
      plan->refs.push_back(ColRef{right_src, static_cast<uint32_t>(rc)});
    }
  }

  if (join.on != nullptr) {
    if (join.kind != JoinClause::Kind::kInner && join.kind != JoinClause::Kind::kNatural &&
        join.kind != JoinClause::Kind::kLeft) {
      return Fail("join_shape");
    }
    // Every ON conjunct must decompose into a left/right equi-key column
    // pair under the interpreter's first-match resolution; any residual
    // conjunct would need per-pair evaluation, so we fall back.
    auto resolve = [&](const Expr& e) -> int {
      if (e.kind != ExprKind::kColumn) {
        return -1;
      }
      for (size_t i = 0; i < plan->columns.size(); ++i) {
        if (!NameEq(plan->columns[i], e.name)) {
          continue;
        }
        if (!e.table.empty() && !NameEq(plan->aliases[i], e.table)) {
          continue;
        }
        return static_cast<int>(i);
      }
      return -1;
    };
    std::vector<const Expr*> conjuncts;
    SplitAnd(join.on.get(), &conjuncts);
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kBinary || c->op != "=") {
        return Fail("join_residual");
      }
      int a = resolve(*c->args[0]);
      int b = resolve(*c->args[1]);
      if (a < 0 || b < 0) {
        return Fail("join_residual");
      }
      bool a_left = static_cast<size_t>(a) < left_width;
      bool b_left = static_cast<size_t>(b) < left_width;
      if (a_left == b_left) {
        return Fail("join_residual");
      }
      size_t lc = static_cast<size_t>(a_left ? a : b);
      size_t rc = kept_to_right[static_cast<size_t>(a_left ? b : a) - left_width];
      step.keys.emplace_back(static_cast<uint32_t>(lc), static_cast<uint32_t>(rc));
    }
  }
  plan->joins.push_back(std::move(step));
  return true;
}

bool VecAnalyzer::CheckExpr(const Expr& e, VecPlan* plan, bool agg_allowed, bool in_agg,
                            bool track_bare) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumn: {
      for (size_t i = 0; i < plan->columns.size(); ++i) {
        if (!NameEq(plan->columns[i], e.name)) {
          continue;
        }
        if (!e.table.empty() && !NameEq(plan->aliases[i], e.table)) {
          continue;
        }
        plan->col_map[&e] = static_cast<uint32_t>(i);
        if (track_bare && !in_agg) {
          plan->col_outside_agg = true;
        }
        return true;
      }
      return Fail("unknown_column");
    }
    case ExprKind::kUnary:
      if (e.op != "-" && e.op != "NOT") {
        return Fail("unknown_unary");
      }
      return CheckExpr(*e.args[0], plan, agg_allowed, in_agg, track_bare);
    case ExprKind::kBinary: {
      static const char* kOps[] = {"AND", "OR", "BETWEEN", "LIKE", "=", "!=", "<",
                                   "<=",  ">",  ">=",      "+",    "-", "*",  "/",
                                   "%",   "||"};
      bool known = false;
      for (const char* op : kOps) {
        if (e.op == op) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Fail("unknown_binary");
      }
      for (const ExprPtr& a : e.args) {
        if (!CheckExpr(*a, plan, agg_allowed, in_agg, track_bare)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kFunction: {
      if (IsAggregateName(e.name)) {
        if (!agg_allowed || in_agg) {
          return Fail(in_agg ? "nested_aggregate" : "aggregate_misplaced");
        }
        if (!e.star && e.args.size() != 1) {
          return Fail("aggregate_arity");
        }
        if (!e.star && !CheckExpr(*e.args[0], plan, false, true, track_bare)) {
          return false;
        }
        if (plan->agg_ids.emplace(&e, static_cast<uint32_t>(plan->aggs.size())).second) {
          plan->aggs.push_back(&e);
        }
        return true;
      }
      if (e.name != "LENGTH" && e.name != "ABS" && e.name != "SUBSTR" &&
          e.name != "COALESCE") {
        return Fail("unknown_function");
      }
      for (const ExprPtr& a : e.args) {
        if (!CheckExpr(*a, plan, agg_allowed, in_agg, track_bare)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kIsNull:
      return CheckExpr(*e.args[0], plan, agg_allowed, in_agg, track_bare);
    case ExprKind::kInList: {
      if (e.subquery != nullptr) {
        return Fail("subquery");
      }
      for (const ExprPtr& a : e.args) {
        if (!CheckExpr(*a, plan, agg_allowed, in_agg, track_bare)) {
          return false;
        }
      }
      return true;
    }
    default:
      return Fail("subquery");
  }
}

bool VecAnalyzer::Build(const SelectStmt& stmt, const TimeBound& bound, VecPlan* plan) {
  if (!stmt.from.has_value() || stmt.items.empty()) {
    return Fail("no_from");
  }
  if (stmt.limit != nullptr &&
      (stmt.limit->kind != ExprKind::kLiteral || !stmt.limit->literal.is_int())) {
    return Fail("limit_expr");
  }
  if (stmt.offset != nullptr &&
      (stmt.offset->kind != ExprKind::kLiteral || !stmt.offset->literal.is_int())) {
    return Fail("limit_expr");
  }
  if (stmt.limit != nullptr) {
    plan->has_limit = true;
    plan->limit = stmt.limit->literal.AsInt();
  }
  if (stmt.offset != nullptr) {
    plan->offset = std::max<int64_t>(0, stmt.offset->literal.AsInt());
  }

  // FROM + joins: build the combined schema exactly as the interpreter does.
  if (!AddSource(*stmt.from, plan)) {
    return false;
  }
  for (size_t c = 0; c < plan->sources[0].columns.size(); ++c) {
    plan->aliases.push_back(plan->sources[0].alias);
    plan->columns.push_back(plan->sources[0].columns[c]);
    plan->refs.push_back(ColRef{0, static_cast<uint32_t>(c)});
  }
  for (const JoinClause& join : stmt.joins) {
    if (!AddJoin(join, plan)) {
      return false;
    }
  }
  if (!AddBaseScan(stmt, bound, plan)) {
    return false;
  }

  // Grouping mirrors the interpreter: aggregates in items or HAVING, or an
  // explicit GROUP BY. A HAVING on a non-grouped statement is ignored.
  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      has_aggregates = true;
    }
  }
  if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
    has_aggregates = true;
  }
  plan->grouped = has_aggregates || !stmt.group_by.empty();

  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Fail("aggregate_in_where");
    }
    if (!CheckExpr(*stmt.where, plan, false, false, false)) {
      return false;
    }
  }
  for (const ExprPtr& g : stmt.group_by) {
    if (ContainsAggregate(*g)) {
      return Fail("aggregate_in_group_by");
    }
    if (!CheckExpr(*g, plan, false, false, false)) {
      return false;
    }
  }
  if (plan->grouped && stmt.having != nullptr &&
      !CheckExpr(*stmt.having, plan, true, false, true)) {
    return false;
  }

  // Output items: star expansion and names, as the interpreter builds them.
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < plan->columns.size(); ++i) {
        if (!item.star_table.empty() && !NameEq(plan->aliases[i], item.star_table)) {
          continue;
        }
        plan->out_names.push_back(plan->columns[i]);
        plan->items.push_back(VecPlan::OutItem{nullptr, static_cast<uint32_t>(i)});
        plan->col_outside_agg = true;
      }
      continue;
    }
    if (!item.alias.empty()) {
      plan->out_names.push_back(item.alias);
    } else if (item.expr->kind == ExprKind::kColumn) {
      plan->out_names.push_back(item.expr->name);
    } else {
      plan->out_names.push_back(ExprToString(*item.expr));
    }
    if (!CheckExpr(*item.expr, plan, plan->grouped, false, true)) {
      return false;
    }
    plan->items.push_back(VecPlan::OutItem{item.expr.get(), 0});
  }

  // ORDER BY routes are static: positional literal, output-alias match, or
  // expression evaluation — decided by the interpreter's exact rules.
  for (const OrderItem& oi : stmt.order_by) {
    VecOrderKey key;
    key.desc = oi.desc;
    if (oi.expr->kind == ExprKind::kLiteral && oi.expr->literal.is_int()) {
      int64_t pos = oi.expr->literal.AsInt();
      if (pos >= 1 && pos <= static_cast<int64_t>(plan->items.size())) {
        key.route = VecOrderKey::kCopyColumn;
        key.out_col = static_cast<size_t>(pos - 1);
        plan->order_keys.push_back(key);
        continue;
      }
    }
    bool matched_alias = false;
    if (oi.expr->kind == ExprKind::kColumn && oi.expr->table.empty()) {
      for (size_t i = 0; i < plan->out_names.size(); ++i) {
        if (NameEq(plan->out_names[i], oi.expr->name) && plan->items[i].expr != nullptr &&
            !NameEq(ExprToString(*plan->items[i].expr), oi.expr->name)) {
          key.route = VecOrderKey::kCopyColumn;
          key.out_col = i;
          matched_alias = true;
          break;
        }
      }
    }
    if (matched_alias) {
      plan->order_keys.push_back(key);
      continue;
    }
    if (!plan->grouped && ContainsAggregate(*oi.expr)) {
      return Fail("aggregate_in_order_by");
    }
    if (!CheckExpr(*oi.expr, plan, plan->grouped, false, true)) {
      return false;
    }
    key.route = VecOrderKey::kEval;
    key.expr = oi.expr.get();
    plan->order_keys.push_back(key);
  }
  return true;
}

namespace {

// --- join execution -------------------------------------------------------

// True when the left combined row's key was appended to *key (no NULL
// component); a NULL key never matches under SQL equality.
bool LeftJoinKey(const VecPlan& plan, const Selection& sel, const VecJoinStep& step,
                 size_t row, std::string* key) {
  key->clear();
  for (const auto& [lc, rc] : step.keys) {
    (void)rc;
    CellView c = ReadCombined(plan, sel, lc, row);
    if (c.tag == kCellNull) {
      return false;
    }
    CellJoinKeyAppend(c, key);
    key->push_back('\x1f');
  }
  return true;
}

Selection ExecJoin(const VecPlan& plan, const VecJoinStep& step, Selection sel) {
  const VecSource& right = plan.sources[step.right_src];
  const uint32_t right_n = static_cast<uint32_t>(right.view.size());
  const size_t num_left_srcs = sel.rows.size();

  Selection out;
  out.rows.resize(num_left_srcs + 1);
  auto emit = [&](size_t left_row, uint32_t right_row) {
    for (size_t s = 0; s < num_left_srcs; ++s) {
      out.rows[s].push_back(sel.rows[s][left_row]);
    }
    out.rows[num_left_srcs].push_back(right_row);
    ++out.count;
  };

  if (step.keys.empty()) {
    // Cross-product semantics (CROSS, ON-less INNER, NATURAL with no shared
    // columns); a LEFT join still pads when the right side is empty.
    SEAL_OBS_COUNTER("seadb_joins_total{algo=\"vector_cross\"}").Increment();
    for (size_t i = 0; i < sel.count; ++i) {
      if (right_n == 0 && step.kind == JoinClause::Kind::kLeft) {
        emit(i, kNoRow);
        continue;
      }
      for (uint32_t r = 0; r < right_n; ++r) {
        emit(i, r);
      }
    }
    return out;
  }

  SEAL_OBS_COUNTER("seadb_joins_total{algo=\"vector_hash\"}").Increment();
  // Build: bucket right rows by key bytes; chains keep insertion order so
  // probe emission matches the interpreter's nested-loop pair order.
  ByteKeyMap table;
  table.Init(right_n);
  std::vector<uint32_t> next(right_n, kNoRow);
  std::string key;
  for (uint32_t r = 0; r < right_n; ++r) {
    key.clear();
    bool null_key = false;
    for (const auto& [lc, rc] : step.keys) {
      (void)lc;
      CellView c = ReadCell(right.view, rc, r);
      if (c.tag == kCellNull) {
        null_key = true;
        break;
      }
      CellJoinKeyAppend(c, &key);
      key.push_back('\x1f');
    }
    if (null_key) {
      continue;
    }
    bool inserted = false;
    ByteKeyMap::Entry* e = table.FindOrInsert(key, &inserted);
    if (inserted) {
      e->head = e->tail = r;
    } else {
      next[e->tail] = r;
      e->tail = r;
    }
  }
  // Probe left rows in order.
  for (size_t i = 0; i < sel.count; ++i) {
    bool matched = false;
    if (LeftJoinKey(plan, sel, step, i, &key)) {
      if (const ByteKeyMap::Entry* e = table.Find(key)) {
        for (uint32_t r = e->head; r != kNoRow; r = next[r]) {
          emit(i, r);
          matched = true;
        }
      }
    }
    if (!matched && step.kind == JoinClause::Kind::kLeft) {
      emit(i, kNoRow);
    }
  }
  return out;
}

// --- WHERE filter ---------------------------------------------------------

Selection ExecFilter(const VecPlan& plan, const Expr& where, Selection sel) {
  Selection out;
  out.rows.resize(sel.rows.size());
  VecCol cond;
  for (size_t start = 0; start < sel.count; start += kVecBatch) {
    size_t n = std::min(kVecBatch, sel.count - start);
    cond.Reset(n);
    EvalBatch(where, plan, sel, start, n, &cond);
    SEAL_OBS_COUNTER("db_vectorized_batches_total").Increment();
    for (size_t i = 0; i < n; ++i) {
      if (!CellTruthy(cond.At(i))) {
        continue;
      }
      for (size_t s = 0; s < sel.rows.size(); ++s) {
        out.rows[s].push_back(sel.rows[s][start + i]);
      }
      ++out.count;
    }
  }
  return out;
}

// --- grouping + aggregation ----------------------------------------------

// Owned copy of one cell: MIN/MAX accumulator state.
struct OwnedCell {
  bool has = false;
  uint8_t tag = kCellNull;
  int64_t i = 0;
  double d = 0;
  std::string s;

  CellView AsView() const {
    CellView c;
    c.tag = tag;
    c.i = i;
    c.d = d;
    if (tag == kCellText) {
      c.s = s;
    }
    return c;
  }
  void Assign(const CellView& c) {
    has = true;
    tag = c.tag;
    i = c.i;
    d = c.d;
    if (c.tag == kCellText) {
      s.assign(c.s);
    }
  }
};

// Per-group accumulators for one aggregate node.
struct AggState {
  const Expr* node = nullptr;
  std::vector<int64_t> count;               // COUNT non-null
  std::vector<std::set<std::string>> distinct;  // COUNT(DISTINCT ...)
  std::vector<OwnedCell> best;              // MIN/MAX
  std::vector<uint8_t> any;                 // SUM/AVG saw a non-null
  std::vector<uint8_t> all_int;
  std::vector<int64_t> isum;
  std::vector<double> rsum;
};

// Evaluates every aggregate over the filtered relation in one batched pass
// per aggregate, accumulating into per-group state; returns per-aggregate,
// per-group result Values with the interpreter's exact semantics.
std::vector<std::vector<Value>> ExecAggregates(const VecPlan& plan, const Selection& sel,
                                               const std::vector<uint32_t>& gids,
                                               size_t num_groups) {
  std::vector<std::vector<Value>> results(plan.aggs.size());
  VecCol arg;
  for (size_t a = 0; a < plan.aggs.size(); ++a) {
    const Expr& node = *plan.aggs[a];
    AggState st;
    const bool is_count = node.name == "COUNT";
    const bool is_minmax = node.name == "MIN" || node.name == "MAX";
    const bool is_max = node.name == "MAX";
    const bool is_sum_avg = node.name == "SUM" || node.name == "AVG";
    st.count.assign(num_groups, 0);
    if (is_count && node.distinct && !node.star) {
      st.distinct.assign(num_groups, {});
    }
    if (is_minmax) {
      st.best.assign(num_groups, {});
    }
    if (is_sum_avg) {
      st.any.assign(num_groups, 0);
      st.all_int.assign(num_groups, 1);
      st.isum.assign(num_groups, 0);
      st.rsum.assign(num_groups, 0);
    }
    for (size_t start = 0; start < sel.count; start += kVecBatch) {
      size_t n = std::min(kVecBatch, sel.count - start);
      arg.Reset(n);
      if (node.star) {
        for (size_t i = 0; i < n; ++i) {
          arg.SetInt(i, 1);  // the interpreter samples literal 1 per row
        }
      } else {
        EvalBatch(*node.args[0], plan, sel, start, n, &arg);
      }
      SEAL_OBS_COUNTER("db_vectorized_batches_total").Increment();
      for (size_t i = 0; i < n; ++i) {
        CellView c = arg.At(i);
        if (c.tag == kCellNull) {
          continue;
        }
        uint32_t g = gids[start + i];
        ++st.count[g];
        if (!st.distinct.empty()) {
          std::string key;
          CellSerializeAppend(c, &key);
          st.distinct[g].insert(std::move(key));
        }
        if (is_minmax) {
          OwnedCell& best = st.best[g];
          if (!best.has || (is_max ? CellCompare(c, best.AsView()) > 0
                                   : CellCompare(c, best.AsView()) < 0)) {
            best.Assign(c);
          }
        }
        if (is_sum_avg) {
          st.any[g] = 1;
          if (c.tag != kCellInt) {
            st.all_int[g] = 0;
          } else {
            st.isum[g] += c.i;
          }
          st.rsum[g] += CellAsReal(c);
        }
      }
    }
    std::vector<Value>& out = results[a];
    out.reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      if (is_count) {
        if (!st.distinct.empty()) {
          out.push_back(Value(static_cast<int64_t>(st.distinct[g].size())));
        } else {
          out.push_back(Value(st.count[g]));
        }
      } else if (is_minmax) {
        out.push_back(st.best[g].has ? CellToValue(st.best[g].AsView()) : Value::Null());
      } else if (node.name == "SUM") {
        if (!st.any[g]) {
          out.push_back(Value::Null());
        } else {
          out.push_back(st.all_int[g] ? Value(st.isum[g]) : Value(st.rsum[g]));
        }
      } else {  // AVG
        if (!st.any[g]) {
          out.push_back(Value::Null());
        } else {
          out.push_back(Value(st.rsum[g] / static_cast<double>(st.count[g])));
        }
      }
    }
  }
  return results;
}

// Scalar expression evaluation for grouped projection/HAVING/ORDER BY: one
// group representative row, aggregate nodes read from precomputed results.
// Mirrors Executor::EvalInternal; analysis guarantees it cannot fail.
Value EvalGroupScalar(const Expr& e, const VecPlan& plan, const Selection& sel,
                      uint32_t rep_row, size_t gid,
                      const std::vector<std::vector<Value>>& agg_vals) {
  auto recurse = [&](const Expr& sub) {
    return EvalGroupScalar(sub, plan, sel, rep_row, gid, agg_vals);
  };
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumn: {
      if (rep_row == kNoRow) {
        return Value::Null();  // unreachable: col_outside_agg forces fallback
      }
      return CellToValue(ReadCombined(plan, sel, plan.col_map.at(&e), rep_row));
    }
    case ExprKind::kUnary: {
      Value v = recurse(*e.args[0]);
      if (v.is_null()) {
        return Value::Null();
      }
      if (e.op == "NOT") {
        return Value(static_cast<int64_t>(v.Truthy() ? 0 : 1));
      }
      return v.is_int() ? Value(-v.AsInt()) : Value(-v.AsReal());
    }
    case ExprKind::kBinary: {
      if (e.op == "AND" || e.op == "OR") {
        Value l = recurse(*e.args[0]);
        bool lt = l.Truthy();
        if (e.op == "AND" && !lt && !l.is_null()) {
          return Value(static_cast<int64_t>(0));
        }
        if (e.op == "OR" && lt) {
          return Value(static_cast<int64_t>(1));
        }
        bool rt = recurse(*e.args[1]).Truthy();
        return Value(static_cast<int64_t>((e.op == "AND" ? lt && rt : lt || rt) ? 1 : 0));
      }
      if (e.op == "BETWEEN") {
        Value v = recurse(*e.args[0]);
        Value lo = recurse(*e.args[1]);
        Value hi = recurse(*e.args[2]);
        bool in = exec_internal::CompareOp(">=", v, lo).Truthy() &&
                  exec_internal::CompareOp("<=", v, hi).Truthy();
        if (e.negated) {
          in = !in;
        }
        return Value(static_cast<int64_t>(in ? 1 : 0));
      }
      Value l = recurse(*e.args[0]);
      Value r = recurse(*e.args[1]);
      if (e.op == "LIKE") {
        if (l.is_null() || r.is_null()) {
          return Value::Null();
        }
        bool m = LikeMatch(l.AsText(), r.AsText());
        if (e.negated) {
          m = !m;
        }
        return Value(static_cast<int64_t>(m ? 1 : 0));
      }
      if (e.op == "=" || e.op == "!=" || e.op == "<" || e.op == "<=" || e.op == ">" ||
          e.op == ">=") {
        return exec_internal::CompareOp(e.op, l, r);
      }
      return exec_internal::Arith(e.op, l, r);
    }
    case ExprKind::kFunction: {
      if (IsAggregateName(e.name)) {
        return agg_vals[plan.agg_ids.at(&e)][gid];
      }
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const ExprPtr& a : e.args) {
        args.push_back(recurse(*a));
      }
      if (e.name == "LENGTH") {
        if (args.size() != 1 || args[0].is_null()) {
          return Value::Null();
        }
        return Value(static_cast<int64_t>(args[0].AsText().size()));
      }
      if (e.name == "ABS") {
        if (args.size() != 1 || args[0].is_null()) {
          return Value::Null();
        }
        if (args[0].is_int()) {
          int64_t v = args[0].AsInt();
          return Value(v < 0 ? -v : v);
        }
        double v = args[0].AsReal();
        return Value(v < 0 ? -v : v);
      }
      if (e.name == "SUBSTR") {
        if (args.size() < 2 || args[0].is_null()) {
          return Value::Null();
        }
        std::string s = args[0].AsText();
        int64_t begin = args[1].AsInt();
        int64_t len =
            args.size() > 2 ? args[2].AsInt() : static_cast<int64_t>(s.size());
        if (begin < 1) {
          begin = 1;
        }
        if (begin > static_cast<int64_t>(s.size())) {
          return Value(std::string());
        }
        return Value(s.substr(static_cast<size_t>(begin - 1), static_cast<size_t>(len)));
      }
      // COALESCE
      for (const Value& v : args) {
        if (!v.is_null()) {
          return v;
        }
      }
      return Value::Null();
    }
    case ExprKind::kIsNull: {
      bool is_null = recurse(*e.args[0]).is_null();
      if (e.negated) {
        is_null = !is_null;
      }
      return Value(static_cast<int64_t>(is_null ? 1 : 0));
    }
    case ExprKind::kInList: {
      Value needle = recurse(*e.args[0]);
      if (needle.is_null()) {
        return Value::Null();
      }
      bool found = false;
      for (size_t i = 1; i < e.args.size(); ++i) {
        Value v = recurse(*e.args[i]);
        if (!v.is_null() && Value::Compare(v, needle) == 0) {
          found = true;
          break;
        }
      }
      if (e.negated) {
        found = !found;
      }
      return Value(static_cast<int64_t>(found ? 1 : 0));
    }
    default:
      return Value::Null();  // unreachable: analysis rejects
  }
}

// --- output assembly ------------------------------------------------------

struct VecOutRow {
  Row row;
  Row keys;
};

// Fills each row's ORDER BY keys from its projected values (copy routes)
// or from `evaluated` (eval routes, one VecCol batch column per eval key).
void FillOrderKeys(const VecPlan& plan, const std::vector<VecCol>& evaluated,
                   size_t lane, VecOutRow* out) {
  size_t eval_i = 0;
  for (const VecOrderKey& key : plan.order_keys) {
    if (key.route == VecOrderKey::kCopyColumn) {
      out->keys.push_back(out->row[key.out_col]);
    } else {
      out->keys.push_back(CellToValue(evaluated[eval_i++].At(lane)));
    }
  }
}

// Non-grouped projection: batch-evaluate every item and eval-route ORDER BY
// key, then materialise Values per row.
std::vector<VecOutRow> ProjectRows(const VecPlan& plan, const Selection& sel) {
  std::vector<VecOutRow> outputs;
  outputs.reserve(sel.count);
  std::vector<VecCol> item_cols(plan.items.size());
  size_t num_eval_keys = 0;
  for (const VecOrderKey& k : plan.order_keys) {
    if (k.route == VecOrderKey::kEval) {
      ++num_eval_keys;
    }
  }
  std::vector<VecCol> key_cols(num_eval_keys);
  for (size_t start = 0; start < sel.count; start += kVecBatch) {
    size_t n = std::min(kVecBatch, sel.count - start);
    for (size_t c = 0; c < plan.items.size(); ++c) {
      if (plan.items[c].expr != nullptr) {
        item_cols[c].Reset(n);
        EvalBatch(*plan.items[c].expr, plan, sel, start, n, &item_cols[c]);
      }
    }
    size_t eval_i = 0;
    for (const VecOrderKey& k : plan.order_keys) {
      if (k.route == VecOrderKey::kEval) {
        key_cols[eval_i].Reset(n);
        EvalBatch(*k.expr, plan, sel, start, n, &key_cols[eval_i]);
        ++eval_i;
      }
    }
    SEAL_OBS_COUNTER("db_vectorized_batches_total").Increment();
    for (size_t i = 0; i < n; ++i) {
      VecOutRow out;
      out.row.reserve(plan.items.size());
      for (size_t c = 0; c < plan.items.size(); ++c) {
        if (plan.items[c].expr == nullptr) {
          out.row.push_back(CellToValue(ReadCombined(plan, sel, plan.items[c].star_col,
                                                     start + i)));
        } else {
          out.row.push_back(CellToValue(item_cols[c].At(i)));
        }
      }
      FillOrderKeys(plan, key_cols, i, &out);
      outputs.push_back(std::move(out));
    }
  }
  return outputs;
}

// Grouped projection: assign first-seen group ids batch-wise, aggregate,
// then emit one row per HAVING-surviving group in first-seen order.
std::vector<VecOutRow> ProjectGroups(const VecPlan& plan, const SelectStmt& stmt,
                                     const Selection& sel) {
  // 1. Group ids (first-seen order, interpreter-identical serialized keys).
  std::vector<uint32_t> gids(sel.count, 0);
  std::vector<uint32_t> reps;
  size_t num_groups = 0;
  if (stmt.group_by.empty()) {
    num_groups = 1;
    reps.push_back(sel.count > 0 ? 0 : kNoRow);
  } else {
    ByteKeyMap interner;
    interner.Init(64);
    std::vector<VecCol> key_cols(stmt.group_by.size());
    std::string key;
    for (size_t start = 0; start < sel.count; start += kVecBatch) {
      size_t n = std::min(kVecBatch, sel.count - start);
      for (size_t g = 0; g < stmt.group_by.size(); ++g) {
        key_cols[g].Reset(n);
        EvalBatch(*stmt.group_by[g], plan, sel, start, n, &key_cols[g]);
      }
      SEAL_OBS_COUNTER("db_vectorized_batches_total").Increment();
      for (size_t i = 0; i < n; ++i) {
        key.clear();
        for (const VecCol& kc : key_cols) {
          CellSerializeAppend(kc.At(i), &key);
          key.push_back('|');
        }
        bool inserted = false;
        ByteKeyMap::Entry* e = interner.FindOrInsert(key, &inserted);
        if (inserted) {
          e->head = static_cast<uint32_t>(num_groups++);
          reps.push_back(static_cast<uint32_t>(start + i));
        }
        gids[start + i] = e->head;
      }
    }
    if (num_groups == 0) {
      return {};  // GROUP BY over zero rows: no groups, no output
    }
  }

  // 2. Aggregates.
  std::vector<std::vector<Value>> agg_vals = ExecAggregates(plan, sel, gids, num_groups);

  // 3. HAVING + projection per group, in first-seen order.
  std::vector<VecOutRow> outputs;
  outputs.reserve(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    uint32_t rep = reps[g];
    if (stmt.having != nullptr &&
        !EvalGroupScalar(*stmt.having, plan, sel, rep, g, agg_vals).Truthy()) {
      continue;
    }
    VecOutRow out;
    out.row.reserve(plan.items.size());
    for (const VecPlan::OutItem& item : plan.items) {
      if (item.expr == nullptr) {
        out.row.push_back(rep == kNoRow
                              ? Value::Null()  // unreachable (fallback guard)
                              : CellToValue(ReadCombined(plan, sel, item.star_col, rep)));
      } else {
        out.row.push_back(EvalGroupScalar(*item.expr, plan, sel, rep, g, agg_vals));
      }
    }
    for (const VecOrderKey& key : plan.order_keys) {
      if (key.route == VecOrderKey::kCopyColumn) {
        out.keys.push_back(out.row[key.out_col]);
      } else {
        out.keys.push_back(EvalGroupScalar(*key.expr, plan, sel, rep, g, agg_vals));
      }
    }
    outputs.push_back(std::move(out));
  }
  return outputs;
}

std::nullopt_t VecFallback(const char* reason) {
  obs::Registry::Global()
      .GetCounter(std::string("db_vector_fallback_total{reason=\"") + reason + "\"}")
      .Increment();
  return std::nullopt;
}

class KernelTimer {
 public:
  explicit KernelTimer(const char* op) : op_(op), start_(NowNanos()) {}
  ~KernelTimer() {
    obs::Registry::Global()
        .GetHistogram(std::string("db_vector_kernel_nanos{op=\"") + op_ + "\"}")
        .Observe(static_cast<uint64_t>(NowNanos() - start_));
  }

 private:
  const char* op_;
  int64_t start_;
};

}  // namespace

std::optional<Result<QueryResult>> Executor::TryVectorized(const SelectStmt& stmt) {
  VecPlan plan;
  {
    TimeBound bound;
    if (stmt.from.has_value()) {
      bound = ExtractWhereBound(stmt, {});
    }
    VecAnalyzer analyzer(db_, snap_);
    if (!analyzer.Build(stmt, bound, &plan)) {
      return VecFallback(analyzer.reason());
    }
  }

  // Scan: the narrowed base selection feeds everything downstream.
  Selection sel;
  {
    KernelTimer timer("scan");
    sel.rows.resize(1);
    sel.rows[0] = std::move(plan.base_rows);
    sel.count = sel.rows[0].size();
  }
  if (!plan.joins.empty()) {
    KernelTimer timer("join");
    for (const VecJoinStep& step : plan.joins) {
      sel = ExecJoin(plan, step, std::move(sel));
    }
  }
  if (stmt.where != nullptr) {
    KernelTimer timer("filter");
    sel = ExecFilter(plan, *stmt.where, std::move(sel));
  }

  // The interpreter's empty-relation aggregate row reads columns from an
  // empty representative; don't reproduce that — hand the statement back.
  if (plan.grouped && stmt.group_by.empty() && sel.count == 0 && plan.col_outside_agg) {
    return VecFallback("empty_agg_column_ref");
  }

  std::vector<VecOutRow> outputs;
  if (plan.grouped) {
    KernelTimer timer("aggregate");
    outputs = ProjectGroups(plan, stmt, sel);
  } else {
    KernelTimer timer("project");
    outputs = ProjectRows(plan, sel);
  }

  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<VecOutRow> unique;
    for (VecOutRow& out : outputs) {
      if (seen.insert(SerializeRow(out.row)).second) {
        unique.push_back(std::move(out));
      }
    }
    outputs = std::move(unique);
  }
  if (!stmt.order_by.empty()) {
    std::stable_sort(outputs.begin(), outputs.end(),
                     [&](const VecOutRow& a, const VecOutRow& b) {
                       for (size_t i = 0; i < plan.order_keys.size(); ++i) {
                         int c = Value::Compare(a.keys[i], b.keys[i]);
                         if (c != 0) {
                           return plan.order_keys[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  QueryResult result;
  result.columns = plan.out_names;
  size_t offset = static_cast<size_t>(plan.offset);
  size_t limit =
      plan.has_limit && plan.limit >= 0 ? static_cast<size_t>(plan.limit) : outputs.size();
  for (size_t i = offset; i < outputs.size() && result.rows.size() < limit; ++i) {
    result.rows.push_back(std::move(outputs[i].row));
  }
  SEAL_OBS_COUNTER("db_vectorized_queries_total").Increment();
  return result;
}

}  // namespace seal::db
