#include "src/db/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace seal::db {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "GROUP",    "BY",     "HAVING", "ORDER",  "LIMIT",
      "OFFSET", "AS",     "AND",    "OR",       "NOT",    "IN",     "EXISTS", "IS",
      "NULL",   "JOIN",   "ON",     "NATURAL",  "INNER",  "LEFT",   "OUTER",  "CROSS",
      "INSERT", "INTO",   "VALUES", "DELETE",   "UPDATE", "SET",    "CREATE", "TABLE",
      "VIEW",   "DROP",   "IF",     "DISTINCT", "ALL",    "ASC",    "DESC",   "COUNT",
      "LIKE",   "BETWEEN", "CASE",  "WHEN",     "THEN",   "ELSE",   "END",    "UNION",
      "INTEGER", "TEXT",  "REAL",   "PRIMARY",  "KEY",
  };
  return kKeywords;
}

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') {
        ++i;
      }
      continue;
    }
    Token t;
    t.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) {
        ++i;
      }
      std::string word(sql.substr(start, i - start));
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
      if (Keywords().count(upper) > 0) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) || sql[i] == '.')) {
        if (sql[i] == '.') {
          is_real = true;
        }
        ++i;
      }
      std::string num(sql.substr(start, i - start));
      if (is_real) {
        t.type = TokenType::kReal;
        t.real_value = std::strtod(num.c_str(), nullptr);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      t.text = std::move(num);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        s.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return InvalidArgument("unterminated string literal at offset " +
                               std::to_string(t.position));
      }
      t.type = TokenType::kString;
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {  // quoted identifier
      ++i;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        s.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return InvalidArgument("unterminated quoted identifier at offset " +
                               std::to_string(t.position));
      }
      t.type = TokenType::kIdentifier;
      t.text = std::move(s);
      out.push_back(std::move(t));
      continue;
    }
    // Multi-char operators first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string_view();
    if (two == "!=" || two == "<=" || two == ">=" || two == "<>" || two == "||") {
      t.type = TokenType::kOperator;
      t.text = std::string(two == "<>" ? "!=" : two);
      out.push_back(std::move(t));
      i += 2;
      continue;
    }
    if (std::string_view("=<>+-*/(),.;%").find(c) != std::string_view::npos) {
      t.type = TokenType::kOperator;
      t.text = std::string(1, c);
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    return InvalidArgument(std::string("unexpected character '") + c + "' at offset " +
                           std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace seal::db
