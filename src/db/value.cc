#include "src/db/value.h"

#include <cstdio>
#include <cstdlib>

namespace seal::db {

int64_t Value::AsInt() const {
  if (is_int()) {
    return std::get<int64_t>(v_);
  }
  if (is_real()) {
    return static_cast<int64_t>(std::get<double>(v_));
  }
  if (is_text()) {
    return std::strtoll(std::get<std::string>(v_).c_str(), nullptr, 10);
  }
  return 0;
}

double Value::AsReal() const {
  if (is_real()) {
    return std::get<double>(v_);
  }
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  if (is_text()) {
    return std::strtod(std::get<std::string>(v_).c_str(), nullptr);
  }
  return 0.0;
}

std::string Value::AsText() const {
  if (is_text()) {
    return std::get<std::string>(v_);
  }
  if (is_int()) {
    return std::to_string(std::get<int64_t>(v_));
  }
  if (is_real()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
    return buf;
  }
  return "";
}

int Value::Compare(const Value& a, const Value& b) {
  // Type classes: null < numeric < text.
  auto cls = [](const Value& v) { return v.is_null() ? 0 : (v.is_numeric() ? 1 : 2); };
  int ca = cls(a);
  int cb = cls(b);
  if (ca != cb) {
    return ca < cb ? -1 : 1;
  }
  if (ca == 0) {
    return 0;
  }
  if (ca == 1) {
    if (a.is_int() && b.is_int()) {
      int64_t x = a.AsInt();
      int64_t y = b.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.AsReal();
    double y = b.AsReal();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  const std::string& x = a.text();
  const std::string& y = b.text();
  return x < y ? -1 : (x > y ? 1 : 0);
}

bool Value::Truthy() const {
  if (is_null()) {
    return false;
  }
  if (is_int()) {
    return AsInt() != 0;
  }
  if (is_real()) {
    return AsReal() != 0.0;
  }
  return !text().empty();
}

std::string Value::Serialize() const {
  if (is_null()) {
    return "N";
  }
  if (is_int()) {
    return "I" + std::to_string(AsInt());
  }
  if (is_real()) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "R%.17g", AsReal());
    return buf;
  }
  return "T" + std::to_string(text().size()) + ":" + text();
}

}  // namespace seal::db
