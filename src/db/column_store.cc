#include "src/db/column_store.h"

namespace seal::db {

void ColumnStore::Append(const Row& row) {
  const size_t n = size_.load(std::memory_order_relaxed);
  if ((n >> kBatchShift) >= dir_->size()) {
    // Copy-on-grow: readers pinning the old directory keep a consistent
    // prefix; the new directory shares every existing batch.
    auto grown = std::make_shared<Directory>(*dir_);
    grown->push_back(std::make_shared<Batch>(num_cols_));
    dir_ = std::move(grown);
  }
  Batch& batch = *(*dir_)[n >> kBatchShift];
  const size_t off = n & kBatchMask;
  for (size_t c = 0; c < num_cols_; ++c) {
    Column& col = batch.cols[c];
    const Value& v = row[c];
    if (v.is_null()) {
      col.tags[off] = kNull;
      col.data[off] = 0;
    } else if (v.is_int()) {
      col.tags[off] = kInt;
      col.data[off] = static_cast<uint64_t>(v.AsInt());
    } else if (v.is_real()) {
      double d = v.AsReal();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      col.tags[off] = kReal;
      col.data[off] = bits;
    } else {
      const std::string& s = v.text();
      if (s.size() <= kMaxInline) {
        uint64_t bits = 0;
        std::memcpy(&bits, s.data(), s.size());
        col.data[off] = bits;
        col.tags[off] = static_cast<uint8_t>(kInlineText + s.size());
      } else {
        if (col.dict.capacity() < kBatchRows) {
          // First dictionary entry in this batch's column: no published row
          // can reference the dict yet, so this one-time reallocation cannot
          // race a reader.
          col.dict.reserve(kBatchRows);
        }
        col.data[off] = col.dict.size();
        col.dict.push_back(s);
        col.tags[off] = kDictText;
      }
    }
  }
  size_.store(n + 1, std::memory_order_release);
}

}  // namespace seal::db
