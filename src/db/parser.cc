#include "src/db/parser.h"

#include <algorithm>

#include "src/db/tokenizer.h"

namespace seal::db {

namespace {

// Aggregate and scalar function names recognised by the executor.
bool IsKnownFunction(const std::string& upper) {
  return upper == "COUNT" || upper == "MAX" || upper == "MIN" || upper == "SUM" ||
         upper == "AVG" || upper == "LENGTH" || upper == "ABS" || upper == "SUBSTR" ||
         upper == "COALESCE";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    const Token& t = Peek();
    Result<Statement> result = [&]() -> Result<Statement> {
      if (t.IsKeyword("SELECT")) {
        auto sel = ParseSelect();
        if (!sel.ok()) {
          return sel.status();
        }
        return Statement(std::move(*sel));
      }
      if (t.IsKeyword("CREATE")) {
        return ParseCreate();
      }
      if (t.IsKeyword("INSERT")) {
        return ParseInsert();
      }
      if (t.IsKeyword("DELETE")) {
        return ParseDelete();
      }
      if (t.IsKeyword("UPDATE")) {
        return ParseUpdate();
      }
      if (t.IsKeyword("DROP")) {
        return ParseDrop();
      }
      return Err("expected statement keyword");
    }();
    if (!result.ok()) {
      return result;
    }
    if (Peek().IsOperator(";")) {
      Advance();
    }
    if (Peek().type != TokenType::kEnd) {
      return Err("trailing tokens after statement");
    }
    return result;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool Accept(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptOp(std::string_view op) {
    if (Peek().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(std::string_view kw) {
    if (!Accept(kw)) {
      return InvalidArgument("expected " + std::string(kw) + " near offset " +
                             std::to_string(Peek().position));
    }
    return Status::Ok();
  }
  Status ExpectOp(std::string_view op) {
    if (!AcceptOp(op)) {
      return InvalidArgument("expected '" + std::string(op) + "' near offset " +
                             std::to_string(Peek().position));
    }
    return Status::Ok();
  }
  Status Err(std::string msg) const {
    return InvalidArgument(msg + " near offset " + std::to_string(Peek().position));
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return InvalidArgument("expected identifier near offset " +
                             std::to_string(Peek().position));
    }
    return Advance().text;
  }

  // --- statements ---

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    SEAL_RETURN_IF_ERROR(Expect("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    if (Accept("DISTINCT")) {
      stmt->distinct = true;
    } else {
      Accept("ALL");
    }
    // Select list.
    do {
      SelectItem item;
      if (Peek().IsOperator("*")) {
        Advance();
        item.star = true;
      } else if (Peek().type == TokenType::kIdentifier && Peek(1).IsOperator(".") &&
                 Peek(2).IsOperator("*")) {
        item.star = true;
        item.star_table = Advance().text;
        Advance();  // '.'
        Advance();  // '*'
      } else {
        auto e = ParseExpr();
        if (!e.ok()) {
          return e.status();
        }
        item.expr = std::move(*e);
        if (Accept("AS")) {
          auto alias = ExpectIdentifier();
          if (!alias.ok()) {
            return alias.status();
          }
          item.alias = *alias;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;  // implicit alias
        }
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptOp(","));

    if (Accept("FROM")) {
      auto tr = ParseTableRef();
      if (!tr.ok()) {
        return tr.status();
      }
      stmt->from = std::move(*tr);
      // Joins.
      for (;;) {
        JoinClause join;
        if (Accept("NATURAL")) {
          Accept("INNER");
          SEAL_RETURN_IF_ERROR(Expect("JOIN"));
          join.kind = JoinClause::Kind::kNatural;
        } else if (Accept("CROSS")) {
          SEAL_RETURN_IF_ERROR(Expect("JOIN"));
          join.kind = JoinClause::Kind::kCross;
        } else if (Accept("LEFT")) {
          Accept("OUTER");
          SEAL_RETURN_IF_ERROR(Expect("JOIN"));
          join.kind = JoinClause::Kind::kLeft;
        } else if (Accept("INNER")) {
          SEAL_RETURN_IF_ERROR(Expect("JOIN"));
          join.kind = JoinClause::Kind::kInner;
        } else if (Accept("JOIN")) {
          join.kind = JoinClause::Kind::kInner;
        } else if (AcceptOp(",")) {
          join.kind = JoinClause::Kind::kCross;
        } else {
          break;
        }
        auto jt = ParseTableRef();
        if (!jt.ok()) {
          return jt.status();
        }
        join.table = std::move(*jt);
        if (join.kind == JoinClause::Kind::kInner || join.kind == JoinClause::Kind::kLeft) {
          SEAL_RETURN_IF_ERROR(Expect("ON"));
          auto on = ParseExpr();
          if (!on.ok()) {
            return on.status();
          }
          join.on = std::move(*on);
        }
        stmt->joins.push_back(std::move(join));
      }
    }
    if (Accept("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt->where = std::move(*e);
    }
    if (Accept("GROUP")) {
      SEAL_RETURN_IF_ERROR(Expect("BY"));
      do {
        auto e = ParseExpr();
        if (!e.ok()) {
          return e.status();
        }
        stmt->group_by.push_back(std::move(*e));
      } while (AcceptOp(","));
    }
    if (Accept("HAVING")) {
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt->having = std::move(*e);
    }
    if (Accept("ORDER")) {
      SEAL_RETURN_IF_ERROR(Expect("BY"));
      do {
        OrderItem oi;
        auto e = ParseExpr();
        if (!e.ok()) {
          return e.status();
        }
        oi.expr = std::move(*e);
        if (Accept("DESC")) {
          oi.desc = true;
        } else {
          Accept("ASC");
        }
        stmt->order_by.push_back(std::move(oi));
      } while (AcceptOp(","));
    }
    if (Accept("LIMIT")) {
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt->limit = std::move(*e);
      if (Accept("OFFSET")) {
        auto o = ParseExpr();
        if (!o.ok()) {
          return o.status();
        }
        stmt->offset = std::move(*o);
      }
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef tr;
    if (AcceptOp("(")) {
      auto sub = ParseSelect();
      if (!sub.ok()) {
        return sub.status();
      }
      tr.subquery = std::move(*sub);
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
    } else {
      auto name = ExpectIdentifier();
      if (!name.ok()) {
        return name.status();
      }
      tr.table_name = *name;
    }
    if (Accept("AS")) {
      auto alias = ExpectIdentifier();
      if (!alias.ok()) {
        return alias.status();
      }
      tr.alias = *alias;
    } else if (Peek().type == TokenType::kIdentifier) {
      tr.alias = Advance().text;
    }
    return tr;
  }

  Result<Statement> ParseCreate() {
    SEAL_RETURN_IF_ERROR(Expect("CREATE"));
    if (Accept("TABLE")) {
      CreateTableStmt stmt;
      if (Accept("IF")) {
        SEAL_RETURN_IF_ERROR(Expect("NOT"));
        SEAL_RETURN_IF_ERROR(Expect("EXISTS"));
        stmt.if_not_exists = true;
      }
      auto name = ExpectIdentifier();
      if (!name.ok()) {
        return name.status();
      }
      stmt.name = *name;
      SEAL_RETURN_IF_ERROR(ExpectOp("("));
      do {
        auto col = ExpectIdentifier();
        if (!col.ok()) {
          return col.status();
        }
        stmt.columns.push_back(*col);
        // Optional type annotation and PRIMARY KEY are accepted and ignored
        // (seadb values are dynamically typed).
        while (Peek().IsKeyword("INTEGER") || Peek().IsKeyword("TEXT") ||
               Peek().IsKeyword("REAL")) {
          Advance();
        }
        if (Accept("PRIMARY")) {
          SEAL_RETURN_IF_ERROR(Expect("KEY"));
        }
      } while (AcceptOp(","));
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
      return Statement(std::move(stmt));
    }
    if (Accept("VIEW")) {
      CreateViewStmt stmt;
      if (Accept("IF")) {
        SEAL_RETURN_IF_ERROR(Expect("NOT"));
        SEAL_RETURN_IF_ERROR(Expect("EXISTS"));
        stmt.if_not_exists = true;
      }
      auto name = ExpectIdentifier();
      if (!name.ok()) {
        return name.status();
      }
      stmt.name = *name;
      SEAL_RETURN_IF_ERROR(Expect("AS"));
      auto sel = ParseSelect();
      if (!sel.ok()) {
        return sel.status();
      }
      stmt.select = std::shared_ptr<SelectStmt>(std::move(*sel));
      return Statement(std::move(stmt));
    }
    return Err("expected TABLE or VIEW after CREATE");
  }

  Result<Statement> ParseInsert() {
    SEAL_RETURN_IF_ERROR(Expect("INSERT"));
    SEAL_RETURN_IF_ERROR(Expect("INTO"));
    InsertStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) {
      return name.status();
    }
    stmt.table = *name;
    if (Peek().IsOperator("(")) {
      Advance();
      do {
        auto col = ExpectIdentifier();
        if (!col.ok()) {
          return col.status();
        }
        stmt.columns.push_back(*col);
      } while (AcceptOp(","));
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
    }
    SEAL_RETURN_IF_ERROR(Expect("VALUES"));
    do {
      SEAL_RETURN_IF_ERROR(ExpectOp("("));
      std::vector<ExprPtr> row;
      do {
        auto e = ParseExpr();
        if (!e.ok()) {
          return e.status();
        }
        row.push_back(std::move(*e));
      } while (AcceptOp(","));
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
      stmt.rows.push_back(std::move(row));
    } while (AcceptOp(","));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    SEAL_RETURN_IF_ERROR(Expect("DELETE"));
    SEAL_RETURN_IF_ERROR(Expect("FROM"));
    DeleteStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) {
      return name.status();
    }
    stmt.table = *name;
    if (Accept("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt.where = std::move(*e);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    SEAL_RETURN_IF_ERROR(Expect("UPDATE"));
    UpdateStmt stmt;
    auto name = ExpectIdentifier();
    if (!name.ok()) {
      return name.status();
    }
    stmt.table = *name;
    SEAL_RETURN_IF_ERROR(Expect("SET"));
    do {
      auto col = ExpectIdentifier();
      if (!col.ok()) {
        return col.status();
      }
      SEAL_RETURN_IF_ERROR(ExpectOp("="));
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt.assignments.emplace_back(*col, std::move(*e));
    } while (AcceptOp(","));
    if (Accept("WHERE")) {
      auto e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      stmt.where = std::move(*e);
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    SEAL_RETURN_IF_ERROR(Expect("DROP"));
    DropStmt stmt;
    if (Accept("VIEW")) {
      stmt.is_view = true;
    } else {
      SEAL_RETURN_IF_ERROR(Expect("TABLE"));
    }
    if (Accept("IF")) {
      SEAL_RETURN_IF_ERROR(Expect("EXISTS"));
      stmt.if_exists = true;
    }
    auto name = ExpectIdentifier();
    if (!name.ok()) {
      return name.status();
    }
    stmt.name = *name;
    return Statement(std::move(stmt));
  }

  // --- expressions, precedence climbing ---
  // OR < AND < NOT < comparison/IN/LIKE/BETWEEN/IS < add < mul < unary.

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr e = std::move(*lhs);
    while (Accept("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      auto node = std::make_unique<Expr>(ExprKind::kBinary);
      node->op = "OR";
      node->args.push_back(std::move(e));
      node->args.push_back(std::move(*rhs));
      e = std::move(node);
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr e = std::move(*lhs);
    while (Accept("AND")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) {
        return rhs;
      }
      auto node = std::make_unique<Expr>(ExprKind::kBinary);
      node->op = "AND";
      node->args.push_back(std::move(e));
      node->args.push_back(std::move(*rhs));
      e = std::move(node);
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (Accept("NOT")) {
      // NOT EXISTS (...) folds into the kExists node.
      if (Peek().IsKeyword("EXISTS")) {
        auto e = ParseComparison();
        if (!e.ok()) {
          return e;
        }
        (*e)->negated = !(*e)->negated;
        return e;
      }
      auto operand = ParseNot();
      if (!operand.ok()) {
        return operand;
      }
      auto node = std::make_unique<Expr>(ExprKind::kUnary);
      node->op = "NOT";
      node->args.push_back(std::move(*operand));
      return ExprPtr(std::move(node));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    if (Peek().IsKeyword("EXISTS")) {
      Advance();
      SEAL_RETURN_IF_ERROR(ExpectOp("("));
      auto sub = ParseSelect();
      if (!sub.ok()) {
        return sub.status();
      }
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
      auto node = std::make_unique<Expr>(ExprKind::kExists);
      node->subquery = std::move(*sub);
      return ExprPtr(std::move(node));
    }
    auto lhs = ParseAdditive();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr e = std::move(*lhs);
    for (;;) {
      bool negated = false;
      if (Peek().IsKeyword("NOT") &&
          (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE") || Peek(1).IsKeyword("BETWEEN"))) {
        Advance();
        negated = true;
      }
      if (Accept("IN")) {
        SEAL_RETURN_IF_ERROR(ExpectOp("("));
        auto node = std::make_unique<Expr>(ExprKind::kInList);
        node->negated = negated;
        node->args.push_back(std::move(e));
        if (Peek().IsKeyword("SELECT")) {
          auto sub = ParseSelect();
          if (!sub.ok()) {
            return sub.status();
          }
          node->subquery = std::move(*sub);
        } else {
          do {
            auto item = ParseExpr();
            if (!item.ok()) {
              return item;
            }
            node->args.push_back(std::move(*item));
          } while (AcceptOp(","));
        }
        SEAL_RETURN_IF_ERROR(ExpectOp(")"));
        e = std::move(node);
        continue;
      }
      if (Accept("LIKE")) {
        auto rhs = ParseAdditive();
        if (!rhs.ok()) {
          return rhs;
        }
        auto node = std::make_unique<Expr>(ExprKind::kBinary);
        node->op = "LIKE";
        node->negated = negated;
        node->args.push_back(std::move(e));
        node->args.push_back(std::move(*rhs));
        e = std::move(node);
        continue;
      }
      if (Accept("BETWEEN")) {
        auto lo = ParseAdditive();
        if (!lo.ok()) {
          return lo;
        }
        SEAL_RETURN_IF_ERROR(Expect("AND"));
        auto hi = ParseAdditive();
        if (!hi.ok()) {
          return hi;
        }
        // Desugar: e BETWEEN lo AND hi -> (e >= lo AND e <= hi).
        auto node = std::make_unique<Expr>(ExprKind::kBinary);
        node->op = "BETWEEN";
        node->negated = negated;
        node->args.push_back(std::move(e));
        node->args.push_back(std::move(*lo));
        node->args.push_back(std::move(*hi));
        e = std::move(node);
        continue;
      }
      if (Accept("IS")) {
        bool not_null = Accept("NOT");
        SEAL_RETURN_IF_ERROR(Expect("NULL"));
        auto node = std::make_unique<Expr>(ExprKind::kIsNull);
        node->negated = not_null;
        node->args.push_back(std::move(e));
        e = std::move(node);
        continue;
      }
      const Token& t = Peek();
      if (t.type == TokenType::kOperator &&
          (t.text == "=" || t.text == "!=" || t.text == "<" || t.text == "<=" || t.text == ">" ||
           t.text == ">=")) {
        std::string op = Advance().text;
        auto rhs = ParseAdditive();
        if (!rhs.ok()) {
          return rhs;
        }
        auto node = std::make_unique<Expr>(ExprKind::kBinary);
        node->op = op;
        node->args.push_back(std::move(e));
        node->args.push_back(std::move(*rhs));
        e = std::move(node);
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr e = std::move(*lhs);
    for (;;) {
      const Token& t = Peek();
      if (t.type == TokenType::kOperator &&
          (t.text == "+" || t.text == "-" || t.text == "||")) {
        std::string op = Advance().text;
        auto rhs = ParseMultiplicative();
        if (!rhs.ok()) {
          return rhs;
        }
        auto node = std::make_unique<Expr>(ExprKind::kBinary);
        node->op = op;
        node->args.push_back(std::move(e));
        node->args.push_back(std::move(*rhs));
        e = std::move(node);
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    ExprPtr e = std::move(*lhs);
    for (;;) {
      const Token& t = Peek();
      if (t.type == TokenType::kOperator && (t.text == "*" || t.text == "/" || t.text == "%")) {
        std::string op = Advance().text;
        auto rhs = ParseUnary();
        if (!rhs.ok()) {
          return rhs;
        }
        auto node = std::make_unique<Expr>(ExprKind::kBinary);
        node->op = op;
        node->args.push_back(std::move(e));
        node->args.push_back(std::move(*rhs));
        e = std::move(node);
        continue;
      }
      break;
    }
    return e;
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptOp("-")) {
      auto operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      auto node = std::make_unique<Expr>(ExprKind::kUnary);
      node->op = "-";
      node->args.push_back(std::move(*operand));
      return ExprPtr(std::move(node));
    }
    AcceptOp("+");
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kInteger) {
      auto node = std::make_unique<Expr>(ExprKind::kLiteral);
      node->literal = Value(Advance().int_value);
      return ExprPtr(std::move(node));
    }
    if (t.type == TokenType::kReal) {
      auto node = std::make_unique<Expr>(ExprKind::kLiteral);
      node->literal = Value(Advance().real_value);
      return ExprPtr(std::move(node));
    }
    if (t.type == TokenType::kString) {
      auto node = std::make_unique<Expr>(ExprKind::kLiteral);
      node->literal = Value(Advance().text);
      return ExprPtr(std::move(node));
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      auto node = std::make_unique<Expr>(ExprKind::kLiteral);
      return ExprPtr(std::move(node));
    }
    if (t.IsOperator("(")) {
      Advance();
      if (Peek().IsKeyword("SELECT")) {
        auto sub = ParseSelect();
        if (!sub.ok()) {
          return sub.status();
        }
        SEAL_RETURN_IF_ERROR(ExpectOp(")"));
        auto node = std::make_unique<Expr>(ExprKind::kSubquery);
        node->subquery = std::move(*sub);
        return ExprPtr(std::move(node));
      }
      auto inner = ParseExpr();
      if (!inner.ok()) {
        return inner;
      }
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
      return inner;
    }
    // COUNT is tokenized as a keyword; treat it like a function name.
    if (t.IsKeyword("COUNT") ||
        (t.type == TokenType::kIdentifier && Peek(1).IsOperator("("))) {
      std::string fname = Advance().text;
      std::transform(fname.begin(), fname.end(), fname.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      if (!IsKnownFunction(fname)) {
        return Err("unknown function " + fname);
      }
      SEAL_RETURN_IF_ERROR(ExpectOp("("));
      auto node = std::make_unique<Expr>(ExprKind::kFunction);
      node->name = fname;
      if (AcceptOp("*")) {
        node->star = true;
      } else if (!Peek().IsOperator(")")) {
        if (Accept("DISTINCT")) {
          node->distinct = true;
        }
        do {
          auto arg = ParseExpr();
          if (!arg.ok()) {
            return arg;
          }
          node->args.push_back(std::move(*arg));
        } while (AcceptOp(","));
      }
      SEAL_RETURN_IF_ERROR(ExpectOp(")"));
      return ExprPtr(std::move(node));
    }
    if (t.type == TokenType::kIdentifier) {
      auto node = std::make_unique<Expr>(ExprKind::kColumn);
      node->name = Advance().text;
      if (Peek().IsOperator(".")) {
        Advance();
        node->table = node->name;
        auto col = ExpectIdentifier();
        if (!col.ok()) {
          return col.status();
        }
        node->name = *col;
      }
      return ExprPtr(std::move(node));
    }
    return Err("unexpected token '" + t.text + "' in expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace seal::db
