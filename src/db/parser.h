// Recursive-descent SQL parser for seadb.
#ifndef SRC_DB_PARSER_H_
#define SRC_DB_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/db/ast.h"

namespace seal::db {

// Parses a single SQL statement (a trailing ';' is permitted).
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace seal::db

#endif  // SRC_DB_PARSER_H_
