#include "src/db/executor.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

namespace seal::db {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool NameEq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsAggregateName(const std::string& name) {
  return name == "COUNT" || name == "MAX" || name == "MIN" || name == "SUM" || name == "AVG";
}

std::string SerializeRow(const Row& row) {
  std::string s;
  for (const Value& v : row) {
    s += v.Serialize();
    s.push_back('|');
  }
  return s;
}

// SQL LIKE with % and _ wildcards (case-insensitive, SQLite default).
bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Simple backtracking matcher.
  size_t ti = 0;
  size_t pi = 0;
  size_t star_ti = std::string_view::npos;
  size_t star_pi = std::string_view::npos;
  auto lc = [](char c) { return std::tolower(static_cast<unsigned char>(c)); };
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || lc(pattern[pi]) == lc(text[ti]))) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_pi = pi++;
      star_ti = ti;
    } else if (star_pi != std::string_view::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') {
    ++pi;
  }
  return pi == pattern.size();
}

Value CompareOp(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  int c = Value::Compare(a, b);
  bool r = false;
  if (op == "=") {
    r = c == 0;
  } else if (op == "!=") {
    r = c != 0;
  } else if (op == "<") {
    r = c < 0;
  } else if (op == "<=") {
    r = c <= 0;
  } else if (op == ">") {
    r = c > 0;
  } else if (op == ">=") {
    r = c >= 0;
  }
  return Value(static_cast<int64_t>(r ? 1 : 0));
}

Value Arith(const std::string& op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Value::Null();
  }
  if (op == "||") {
    return Value(a.AsText() + b.AsText());
  }
  bool ints = a.is_int() && b.is_int();
  if (ints) {
    int64_t x = a.AsInt();
    int64_t y = b.AsInt();
    if (op == "+") {
      return Value(x + y);
    }
    if (op == "-") {
      return Value(x - y);
    }
    if (op == "*") {
      return Value(x * y);
    }
    if (op == "/") {
      return y == 0 ? Value::Null() : Value(x / y);
    }
    if (op == "%") {
      return y == 0 ? Value::Null() : Value(x % y);
    }
  } else {
    double x = a.AsReal();
    double y = b.AsReal();
    if (op == "+") {
      return Value(x + y);
    }
    if (op == "-") {
      return Value(x - y);
    }
    if (op == "*") {
      return Value(x * y);
    }
    if (op == "/") {
      return y == 0.0 ? Value::Null() : Value(x / y);
    }
    if (op == "%") {
      return Value::Null();
    }
  }
  return Value::Null();
}

}  // namespace

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunction && IsAggregateName(expr.name)) {
    return true;
  }
  for (const ExprPtr& a : expr.args) {
    if (ContainsAggregate(*a)) {
      return true;
    }
  }
  return false;
}

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.AsText();
    case ExprKind::kColumn:
      return expr.table.empty() ? expr.name : expr.table + "." + expr.name;
    case ExprKind::kFunction: {
      std::string s = expr.name + "(";
      if (expr.star) {
        s += "*";
      }
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) {
          s += ",";
        }
        s += ExprToString(*expr.args[i]);
      }
      return s + ")";
    }
    case ExprKind::kBinary:
      return ExprToString(*expr.args[0]) + expr.op + ExprToString(*expr.args[1]);
    case ExprKind::kUnary:
      return expr.op + ExprToString(*expr.args[0]);
    default:
      return "expr";
  }
}

Result<Value> Executor::LookupColumn(const Expr& expr, const std::vector<RowScope>& scopes) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    const Relation* rel = it->relation;
    if (rel == nullptr || it->row == nullptr) {
      continue;
    }
    for (size_t i = 0; i < rel->columns.size(); ++i) {
      if (!NameEq(rel->columns[i], expr.name)) {
        continue;
      }
      if (!expr.table.empty() && !NameEq(rel->aliases[i], expr.table)) {
        continue;
      }
      return (*it->row)[i];
    }
  }
  return InvalidArgument("unknown column " +
                         (expr.table.empty() ? expr.name : expr.table + "." + expr.name));
}

Result<Value> Executor::EvalAggregate(const Expr& expr, const std::vector<RowScope>& scopes,
                                      const GroupContext& group) {
  // Evaluate the argument for each row of the group with the group's
  // relation as the innermost scope.
  std::vector<Value> samples;
  samples.reserve(group.row_indices->size());
  for (size_t idx : *group.row_indices) {
    if (expr.star) {
      samples.push_back(Value(static_cast<int64_t>(1)));
      continue;
    }
    std::vector<RowScope> row_scopes = scopes;
    // Replace the innermost scope's row with this group member.
    row_scopes.back() = RowScope{group.relation, &group.relation->Rows()[idx]};
    auto v = EvalInternal(*expr.args[0], row_scopes, nullptr);
    if (!v.ok()) {
      return v;
    }
    samples.push_back(std::move(*v));
  }
  const std::string& f = expr.name;
  if (f == "COUNT") {
    if (expr.star) {
      return Value(static_cast<int64_t>(samples.size()));
    }
    if (expr.distinct) {
      std::set<std::string> seen;
      for (const Value& v : samples) {
        if (!v.is_null()) {
          seen.insert(v.Serialize());
        }
      }
      return Value(static_cast<int64_t>(seen.size()));
    }
    int64_t n = 0;
    for (const Value& v : samples) {
      if (!v.is_null()) {
        ++n;
      }
    }
    return Value(n);
  }
  if (f == "MAX" || f == "MIN") {
    Value best;
    for (const Value& v : samples) {
      if (v.is_null()) {
        continue;
      }
      if (best.is_null() || (f == "MAX" ? Value::Compare(v, best) > 0
                                        : Value::Compare(v, best) < 0)) {
        best = v;
      }
    }
    return best;
  }
  if (f == "SUM" || f == "AVG") {
    bool any = false;
    bool all_int = true;
    int64_t isum = 0;
    double rsum = 0;
    for (const Value& v : samples) {
      if (v.is_null()) {
        continue;
      }
      any = true;
      if (!v.is_int()) {
        all_int = false;
      }
      isum += v.AsInt();
      rsum += v.AsReal();
    }
    if (!any) {
      return Value::Null();
    }
    if (f == "SUM") {
      return all_int ? Value(isum) : Value(rsum);
    }
    int64_t n = 0;
    for (const Value& v : samples) {
      if (!v.is_null()) {
        ++n;
      }
    }
    return Value(rsum / static_cast<double>(n));
  }
  return InvalidArgument("unknown aggregate " + f);
}

Result<Value> Executor::EvalFunction(const Expr& expr, const std::vector<RowScope>& scopes,
                                     const GroupContext* group) {
  if (IsAggregateName(expr.name)) {
    if (group == nullptr) {
      return InvalidArgument("aggregate " + expr.name + " used outside GROUP BY context");
    }
    return EvalAggregate(expr, scopes, *group);
  }
  std::vector<Value> args;
  for (const ExprPtr& a : expr.args) {
    auto v = EvalInternal(*a, scopes, group);
    if (!v.ok()) {
      return v;
    }
    args.push_back(std::move(*v));
  }
  const std::string& f = expr.name;
  if (f == "LENGTH") {
    if (args.size() != 1 || args[0].is_null()) {
      return Value::Null();
    }
    return Value(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (f == "ABS") {
    if (args.size() != 1 || args[0].is_null()) {
      return Value::Null();
    }
    if (args[0].is_int()) {
      int64_t v = args[0].AsInt();
      return Value(v < 0 ? -v : v);
    }
    double v = args[0].AsReal();
    return Value(v < 0 ? -v : v);
  }
  if (f == "SUBSTR") {
    if (args.size() < 2 || args[0].is_null()) {
      return Value::Null();
    }
    std::string s = args[0].AsText();
    int64_t start = args[1].AsInt();  // 1-based
    int64_t len = args.size() > 2 ? args[2].AsInt() : static_cast<int64_t>(s.size());
    if (start < 1) {
      start = 1;
    }
    if (start > static_cast<int64_t>(s.size())) {
      return Value(std::string());
    }
    return Value(s.substr(static_cast<size_t>(start - 1), static_cast<size_t>(len)));
  }
  if (f == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) {
        return v;
      }
    }
    return Value::Null();
  }
  return InvalidArgument("unknown function " + f);
}

Result<Value> Executor::EvalInternal(const Expr& expr, const std::vector<RowScope>& scopes,
                                     const GroupContext* group) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumn:
      return LookupColumn(expr, scopes);
    case ExprKind::kUnary: {
      auto v = EvalInternal(*expr.args[0], scopes, group);
      if (!v.ok()) {
        return v;
      }
      if (expr.op == "NOT") {
        if (v->is_null()) {
          return Value::Null();
        }
        return Value(static_cast<int64_t>(v->Truthy() ? 0 : 1));
      }
      if (expr.op == "-") {
        if (v->is_null()) {
          return Value::Null();
        }
        if (v->is_int()) {
          return Value(-v->AsInt());
        }
        return Value(-v->AsReal());
      }
      return InvalidArgument("unknown unary operator " + expr.op);
    }
    case ExprKind::kBinary: {
      if (expr.op == "AND" || expr.op == "OR") {
        auto l = EvalInternal(*expr.args[0], scopes, group);
        if (!l.ok()) {
          return l;
        }
        bool lt = l->Truthy();
        if (expr.op == "AND" && !lt && !l->is_null()) {
          return Value(static_cast<int64_t>(0));
        }
        if (expr.op == "OR" && lt) {
          return Value(static_cast<int64_t>(1));
        }
        auto r = EvalInternal(*expr.args[1], scopes, group);
        if (!r.ok()) {
          return r;
        }
        bool rt = r->Truthy();
        if (expr.op == "AND") {
          return Value(static_cast<int64_t>(lt && rt ? 1 : 0));
        }
        return Value(static_cast<int64_t>(lt || rt ? 1 : 0));
      }
      if (expr.op == "BETWEEN") {
        auto v = EvalInternal(*expr.args[0], scopes, group);
        auto lo = EvalInternal(*expr.args[1], scopes, group);
        auto hi = EvalInternal(*expr.args[2], scopes, group);
        if (!v.ok()) {
          return v;
        }
        if (!lo.ok()) {
          return lo;
        }
        if (!hi.ok()) {
          return hi;
        }
        Value ge = CompareOp(">=", *v, *lo);
        Value le = CompareOp("<=", *v, *hi);
        bool in = ge.Truthy() && le.Truthy();
        if (expr.negated) {
          in = !in;
        }
        return Value(static_cast<int64_t>(in ? 1 : 0));
      }
      auto l = EvalInternal(*expr.args[0], scopes, group);
      if (!l.ok()) {
        return l;
      }
      auto r = EvalInternal(*expr.args[1], scopes, group);
      if (!r.ok()) {
        return r;
      }
      if (expr.op == "LIKE") {
        if (l->is_null() || r->is_null()) {
          return Value::Null();
        }
        bool m = LikeMatch(l->AsText(), r->AsText());
        if (expr.negated) {
          m = !m;
        }
        return Value(static_cast<int64_t>(m ? 1 : 0));
      }
      if (expr.op == "=" || expr.op == "!=" || expr.op == "<" || expr.op == "<=" ||
          expr.op == ">" || expr.op == ">=") {
        return CompareOp(expr.op, *l, *r);
      }
      return Arith(expr.op, *l, *r);
    }
    case ExprKind::kFunction:
      return EvalFunction(expr, scopes, group);
    case ExprKind::kSubquery: {
      auto sub = ExecuteSelect(*expr.subquery, scopes);
      if (!sub.ok()) {
        return sub.status();
      }
      if (sub->rows.empty() || sub->columns.empty()) {
        return Value::Null();
      }
      return sub->rows[0][0];
    }
    case ExprKind::kExists: {
      auto sub = ExecuteSelect(*expr.subquery, scopes);
      if (!sub.ok()) {
        return sub.status();
      }
      bool exists = !sub->rows.empty();
      if (expr.negated) {
        exists = !exists;
      }
      return Value(static_cast<int64_t>(exists ? 1 : 0));
    }
    case ExprKind::kInList: {
      auto needle = EvalInternal(*expr.args[0], scopes, group);
      if (!needle.ok()) {
        return needle;
      }
      if (needle->is_null()) {
        return Value::Null();
      }
      bool found = false;
      if (expr.subquery != nullptr) {
        auto sub = ExecuteSelect(*expr.subquery, scopes);
        if (!sub.ok()) {
          return sub.status();
        }
        for (const Row& row : sub->rows) {
          if (!row.empty() && !row[0].is_null() && Value::Compare(row[0], *needle) == 0) {
            found = true;
            break;
          }
        }
      } else {
        for (size_t i = 1; i < expr.args.size(); ++i) {
          auto v = EvalInternal(*expr.args[i], scopes, group);
          if (!v.ok()) {
            return v;
          }
          if (!v->is_null() && Value::Compare(*v, *needle) == 0) {
            found = true;
            break;
          }
        }
      }
      if (expr.negated) {
        found = !found;
      }
      return Value(static_cast<int64_t>(found ? 1 : 0));
    }
    case ExprKind::kIsNull: {
      auto v = EvalInternal(*expr.args[0], scopes, group);
      if (!v.ok()) {
        return v;
      }
      bool is_null = v->is_null();
      if (expr.negated) {
        is_null = !is_null;
      }
      return Value(static_cast<int64_t>(is_null ? 1 : 0));
    }
  }
  return Internal("unhandled expression kind");
}

Result<Value> Executor::Eval(const Expr& expr, const std::vector<RowScope>& scopes) {
  return EvalInternal(expr, scopes, nullptr);
}

Result<Relation> Executor::MaterialiseSource(const TableRef& ref,
                                             const std::vector<RowScope>& outer) {
  Relation rel;
  std::string alias = ref.alias;
  if (ref.subquery != nullptr) {
    auto sub = ExecuteSelect(*ref.subquery, outer);
    if (!sub.ok()) {
      return sub.status();
    }
    rel.columns = sub->columns;
    rel.SetOwnedRows(std::move(sub->rows));
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  // Named table or view.
  auto table_it = db_.tables_.find(ref.table_name);
  if (table_it != db_.tables_.end()) {
    rel.columns = table_it->second.columns;
    rel.BorrowRows(&table_it->second.rows);
    if (alias.empty()) {
      alias = ref.table_name;
    }
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  auto view_it = db_.views_.find(ref.table_name);
  if (view_it != db_.views_.end()) {
    auto sub = ExecuteSelect(*view_it->second.select, {});
    if (!sub.ok()) {
      return sub.status();
    }
    rel.columns = sub->columns;
    rel.SetOwnedRows(std::move(sub->rows));
    if (alias.empty()) {
      alias = ref.table_name;
    }
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  return NotFound("no such table or view: " + ref.table_name);
}

Result<QueryResult> Executor::ExecuteSelect(const SelectStmt& stmt,
                                            const std::vector<RowScope>& outer) {
  // 1. FROM: materialise and join.
  Relation rel;
  if (stmt.from.has_value()) {
    auto base = MaterialiseSource(*stmt.from, outer);
    if (!base.ok()) {
      return base.status();
    }
    rel = std::move(*base);
    for (const JoinClause& join : stmt.joins) {
      auto right = MaterialiseSource(join.table, outer);
      if (!right.ok()) {
        return right.status();
      }
      Relation combined;
      combined.aliases = rel.aliases;
      combined.columns = rel.columns;
      std::vector<Row> combined_rows;

      std::vector<std::pair<size_t, size_t>> natural_pairs;  // (left idx, right idx)
      std::vector<bool> right_kept(right->columns.size(), true);
      if (join.kind == JoinClause::Kind::kNatural) {
        for (size_t rc = 0; rc < right->columns.size(); ++rc) {
          for (size_t lc = 0; lc < rel.columns.size(); ++lc) {
            if (NameEq(rel.columns[lc], right->columns[rc])) {
              natural_pairs.emplace_back(lc, rc);
              right_kept[rc] = false;
              break;
            }
          }
        }
      }
      for (size_t rc = 0; rc < right->columns.size(); ++rc) {
        if (right_kept[rc]) {
          combined.aliases.push_back(right->aliases[rc]);
          combined.columns.push_back(right->columns[rc]);
        }
      }

      for (const Row& lrow : rel.Rows()) {
        bool matched = false;
        for (const Row& rrow : right->Rows()) {
          bool keep = true;
          if (join.kind == JoinClause::Kind::kNatural) {
            for (const auto& [lc, rc] : natural_pairs) {
              if (lrow[lc].is_null() || rrow[rc].is_null() ||
                  Value::Compare(lrow[lc], rrow[rc]) != 0) {
                keep = false;
                break;
              }
            }
          }
          Row joined = lrow;
          for (size_t rc = 0; rc < rrow.size(); ++rc) {
            if (right_kept[rc]) {
              joined.push_back(rrow[rc]);
            }
          }
          if (keep && join.on != nullptr) {
            // Evaluate ON against a temporary combined relation scope.
            std::vector<RowScope> scopes = outer;
            scopes.push_back(RowScope{&combined, &joined});
            auto cond = Eval(*join.on, scopes);
            if (!cond.ok()) {
              return cond.status();
            }
            keep = cond->Truthy();
          }
          if (keep) {
            combined_rows.push_back(std::move(joined));
            matched = true;
          }
        }
        if (!matched && join.kind == JoinClause::Kind::kLeft) {
          Row joined = lrow;
          size_t kept = 0;
          for (bool k : right_kept) {
            if (k) {
              ++kept;
            }
          }
          for (size_t i = 0; i < kept; ++i) {
            joined.push_back(Value::Null());
          }
          combined_rows.push_back(std::move(joined));
        }
      }
      combined.SetOwnedRows(std::move(combined_rows));
      rel = std::move(combined);
    }
  } else {
    rel.SetOwnedRows(std::vector<Row>{Row{}});  // SELECT without FROM: one empty row
  }

  // 2. WHERE.
  if (stmt.where != nullptr) {
    std::vector<Row> kept;
    for (const Row& row : rel.Rows()) {
      std::vector<RowScope> scopes = outer;
      scopes.push_back(RowScope{&rel, &row});
      auto cond = Eval(*stmt.where, scopes);
      if (!cond.ok()) {
        return cond.status();
      }
      if (cond->Truthy()) {
        kept.push_back(row);
      }
    }
    rel.SetOwnedRows(std::move(kept));
  }

  // 3. Determine grouping.
  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      has_aggregates = true;
    }
  }
  if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
    has_aggregates = true;
  }
  const bool grouped = has_aggregates || !stmt.group_by.empty();

  // 4. Build output column names.
  QueryResult result;
  std::vector<const Expr*> item_exprs;  // null for star expansions
  std::vector<size_t> star_columns;     // relation indices for stars
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < rel.columns.size(); ++i) {
        if (!item.star_table.empty() && !NameEq(rel.aliases[i], item.star_table)) {
          continue;
        }
        result.columns.push_back(rel.columns[i]);
        item_exprs.push_back(nullptr);
        star_columns.push_back(i);
      }
    } else {
      if (!item.alias.empty()) {
        result.columns.push_back(item.alias);
      } else if (item.expr->kind == ExprKind::kColumn) {
        result.columns.push_back(item.expr->name);
      } else {
        result.columns.push_back(ExprToString(*item.expr));
      }
      item_exprs.push_back(item.expr.get());
      star_columns.push_back(0);  // unused
    }
  }

  // Emit a projected row for the scope (row or group representative).
  struct OutputRow {
    Row row;
    Row order_keys;
  };
  std::vector<OutputRow> outputs;

  auto project = [&](const Row& representative, const GroupContext* group) -> Status {
    std::vector<RowScope> scopes = outer;
    scopes.push_back(RowScope{&rel, &representative});
    OutputRow out;
    size_t star_i = 0;
    for (size_t i = 0; i < item_exprs.size(); ++i) {
      if (item_exprs[i] == nullptr) {
        out.row.push_back(representative[star_columns[i]]);
        ++star_i;
        continue;
      }
      auto v = EvalInternal(*item_exprs[i], scopes, group);
      if (!v.ok()) {
        return v.status();
      }
      out.row.push_back(std::move(*v));
    }
    for (const OrderItem& oi : stmt.order_by) {
      // ORDER BY <n> refers to the n-th output column.
      if (oi.expr->kind == ExprKind::kLiteral && oi.expr->literal.is_int()) {
        int64_t pos = oi.expr->literal.AsInt();
        if (pos >= 1 && pos <= static_cast<int64_t>(out.row.size())) {
          out.order_keys.push_back(out.row[static_cast<size_t>(pos - 1)]);
          continue;
        }
      }
      // ORDER BY <output alias>.
      bool matched_alias = false;
      if (oi.expr->kind == ExprKind::kColumn && oi.expr->table.empty()) {
        for (size_t i = 0; i < result.columns.size(); ++i) {
          if (NameEq(result.columns[i], oi.expr->name) && item_exprs[i] != nullptr &&
              !NameEq(ExprToString(*item_exprs[i]), oi.expr->name)) {
            out.order_keys.push_back(out.row[i]);
            matched_alias = true;
            break;
          }
        }
      }
      if (matched_alias) {
        continue;
      }
      auto v = EvalInternal(*oi.expr, scopes, group);
      if (!v.ok()) {
        return v.status();
      }
      out.order_keys.push_back(std::move(*v));
    }
    outputs.push_back(std::move(out));
    return Status::Ok();
  };

  if (grouped) {
    // 5a. Group rows.
    std::map<std::string, std::vector<size_t>> groups;
    std::vector<std::string> group_order;
    for (size_t r = 0; r < rel.Rows().size(); ++r) {
      std::string key;
      std::vector<RowScope> scopes = outer;
      scopes.push_back(RowScope{&rel, &rel.Rows()[r]});
      for (const ExprPtr& g : stmt.group_by) {
        auto v = Eval(*g, scopes);
        if (!v.ok()) {
          return v.status();
        }
        key += v->Serialize();
        key.push_back('|');
      }
      auto [it, inserted] = groups.emplace(key, std::vector<size_t>{});
      if (inserted) {
        group_order.push_back(key);
      }
      it->second.push_back(r);
    }
    if (stmt.group_by.empty() && groups.empty()) {
      // Aggregates over an empty relation still produce one row.
      groups.emplace("", std::vector<size_t>{});
      group_order.push_back("");
    }
    for (const std::string& key : group_order) {
      const std::vector<size_t>& indices = groups[key];
      static const Row kEmptyRow;
      const Row& representative = indices.empty() ? kEmptyRow : rel.Rows()[indices[0]];
      GroupContext group{&rel, &indices};
      if (stmt.having != nullptr) {
        std::vector<RowScope> scopes = outer;
        scopes.push_back(RowScope{&rel, &representative});
        auto cond = EvalInternal(*stmt.having, scopes, &group);
        if (!cond.ok()) {
          return cond.status();
        }
        if (!cond->Truthy()) {
          continue;
        }
      }
      SEAL_RETURN_IF_ERROR(project(representative, &group));
    }
  } else {
    for (const Row& row : rel.Rows()) {
      SEAL_RETURN_IF_ERROR(project(row, nullptr));
    }
  }

  // 6. DISTINCT.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<OutputRow> unique;
    for (OutputRow& out : outputs) {
      std::string key = SerializeRow(out.row);
      if (seen.insert(key).second) {
        unique.push_back(std::move(out));
      }
    }
    outputs = std::move(unique);
  }

  // 7. ORDER BY.
  if (!stmt.order_by.empty()) {
    std::stable_sort(outputs.begin(), outputs.end(),
                     [&](const OutputRow& a, const OutputRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int c = Value::Compare(a.order_keys[i], b.order_keys[i]);
                         if (c != 0) {
                           return stmt.order_by[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  // 8. LIMIT / OFFSET.
  size_t offset = 0;
  size_t limit = outputs.size();
  if (stmt.offset != nullptr) {
    auto v = Eval(*stmt.offset, outer);
    if (!v.ok()) {
      return v.status();
    }
    offset = static_cast<size_t>(std::max<int64_t>(0, v->AsInt()));
  }
  if (stmt.limit != nullptr) {
    auto v = Eval(*stmt.limit, outer);
    if (!v.ok()) {
      return v.status();
    }
    int64_t l = v->AsInt();
    limit = l < 0 ? outputs.size() : static_cast<size_t>(l);
  }
  for (size_t i = offset; i < outputs.size() && result.rows.size() < limit; ++i) {
    result.rows.push_back(std::move(outputs[i].row));
  }
  return result;
}

}  // namespace seal::db
