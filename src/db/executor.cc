#include "src/db/executor.h"

#include <algorithm>
#include <cctype>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "src/db/exec_internal.h"
#include "src/obs/obs.h"

namespace seal::db {

using exec_internal::Arith;
using exec_internal::CompareOp;
using exec_internal::IsAggregateName;
using exec_internal::JoinKeyOf;
using exec_internal::LikeMatch;
using exec_internal::NameEq;
using exec_internal::SerializeRow;
using exec_internal::SplitAnd;

namespace {

// True when evaluating `e` cannot touch any relation of the current
// statement (whose sources' aliases are `local_aliases`): it only reads
// literals and columns qualified with some non-local (outer) alias.
bool OuterOnlyExpr(const Expr& e, const std::vector<std::string>& local_aliases) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumn: {
      if (e.table.empty()) {
        return false;  // bare names may resolve locally
      }
      for (const std::string& a : local_aliases) {
        if (NameEq(e.table, a)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kUnary:
    case ExprKind::kBinary: {
      for (const ExprPtr& a : e.args) {
        if (!OuterOnlyExpr(*a, local_aliases)) {
          return false;
        }
      }
      return true;
    }
    case ExprKind::kFunction: {
      if (IsAggregateName(e.name) || e.star) {
        return false;
      }
      for (const ExprPtr& a : e.args) {
        if (!OuterOnlyExpr(*a, local_aliases)) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;  // subqueries and friends: never hoisted
  }
}

}  // namespace

void TimeBound::TightenLo(int64_t v, bool strict) {
  if (!lo.has_value() || v > *lo || (v == *lo && strict)) {
    lo = v;
    lo_strict = strict;
  }
}

void TimeBound::TightenHi(int64_t v, bool strict) {
  if (!hi.has_value() || v < *hi || (v == *hi && strict)) {
    hi = v;
    hi_strict = strict;
  }
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunction && IsAggregateName(expr.name)) {
    return true;
  }
  for (const ExprPtr& a : expr.args) {
    if (ContainsAggregate(*a)) {
      return true;
    }
  }
  return false;
}

std::string ExprToString(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal.AsText();
    case ExprKind::kColumn:
      return expr.table.empty() ? expr.name : expr.table + "." + expr.name;
    case ExprKind::kFunction: {
      std::string s = expr.name + "(";
      if (expr.star) {
        s += "*";
      }
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) {
          s += ",";
        }
        s += ExprToString(*expr.args[i]);
      }
      return s + ")";
    }
    case ExprKind::kBinary:
      return ExprToString(*expr.args[0]) + expr.op + ExprToString(*expr.args[1]);
    case ExprKind::kUnary:
      return expr.op + ExprToString(*expr.args[0]);
    default:
      return "expr";
  }
}

Result<Value> Executor::LookupColumn(const Expr& expr, const std::vector<RowScope>& scopes) {
  for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
    const Relation* rel = it->relation;
    if (rel == nullptr || it->row == nullptr) {
      continue;
    }
    for (size_t i = 0; i < rel->columns.size(); ++i) {
      if (!NameEq(rel->columns[i], expr.name)) {
        continue;
      }
      if (!expr.table.empty() && !NameEq(rel->aliases[i], expr.table)) {
        continue;
      }
      return (*it->row)[i];
    }
  }
  return InvalidArgument("unknown column " +
                         (expr.table.empty() ? expr.name : expr.table + "." + expr.name));
}

Result<Value> Executor::EvalAggregate(const Expr& expr, const std::vector<RowScope>& scopes,
                                      const GroupContext& group) {
  // Evaluate the argument for each row of the group with the group's
  // relation as the innermost scope.
  std::vector<Value> samples;
  samples.reserve(group.row_indices->size());
  for (size_t idx : *group.row_indices) {
    if (expr.star) {
      samples.push_back(Value(static_cast<int64_t>(1)));
      continue;
    }
    std::vector<RowScope> row_scopes = scopes;
    // Replace the innermost scope's row with this group member.
    row_scopes.back() = RowScope{group.relation, &group.relation->Rows()[idx]};
    auto v = EvalInternal(*expr.args[0], row_scopes, nullptr);
    if (!v.ok()) {
      return v;
    }
    samples.push_back(std::move(*v));
  }
  const std::string& f = expr.name;
  if (f == "COUNT") {
    if (expr.star) {
      return Value(static_cast<int64_t>(samples.size()));
    }
    if (expr.distinct) {
      std::set<std::string> seen;
      for (const Value& v : samples) {
        if (!v.is_null()) {
          seen.insert(v.Serialize());
        }
      }
      return Value(static_cast<int64_t>(seen.size()));
    }
    int64_t n = 0;
    for (const Value& v : samples) {
      if (!v.is_null()) {
        ++n;
      }
    }
    return Value(n);
  }
  if (f == "MAX" || f == "MIN") {
    Value best;
    for (const Value& v : samples) {
      if (v.is_null()) {
        continue;
      }
      if (best.is_null() || (f == "MAX" ? Value::Compare(v, best) > 0
                                        : Value::Compare(v, best) < 0)) {
        best = v;
      }
    }
    return best;
  }
  if (f == "SUM" || f == "AVG") {
    bool any = false;
    bool all_int = true;
    int64_t isum = 0;
    double rsum = 0;
    for (const Value& v : samples) {
      if (v.is_null()) {
        continue;
      }
      any = true;
      if (!v.is_int()) {
        all_int = false;
      }
      isum += v.AsInt();
      rsum += v.AsReal();
    }
    if (!any) {
      return Value::Null();
    }
    if (f == "SUM") {
      return all_int ? Value(isum) : Value(rsum);
    }
    int64_t n = 0;
    for (const Value& v : samples) {
      if (!v.is_null()) {
        ++n;
      }
    }
    return Value(rsum / static_cast<double>(n));
  }
  return InvalidArgument("unknown aggregate " + f);
}

Result<Value> Executor::EvalFunction(const Expr& expr, const std::vector<RowScope>& scopes,
                                     const GroupContext* group) {
  if (IsAggregateName(expr.name)) {
    if (group == nullptr) {
      return InvalidArgument("aggregate " + expr.name + " used outside GROUP BY context");
    }
    return EvalAggregate(expr, scopes, *group);
  }
  std::vector<Value> args;
  for (const ExprPtr& a : expr.args) {
    auto v = EvalInternal(*a, scopes, group);
    if (!v.ok()) {
      return v;
    }
    args.push_back(std::move(*v));
  }
  const std::string& f = expr.name;
  if (f == "LENGTH") {
    if (args.size() != 1 || args[0].is_null()) {
      return Value::Null();
    }
    return Value(static_cast<int64_t>(args[0].AsText().size()));
  }
  if (f == "ABS") {
    if (args.size() != 1 || args[0].is_null()) {
      return Value::Null();
    }
    if (args[0].is_int()) {
      int64_t v = args[0].AsInt();
      return Value(v < 0 ? -v : v);
    }
    double v = args[0].AsReal();
    return Value(v < 0 ? -v : v);
  }
  if (f == "SUBSTR") {
    if (args.size() < 2 || args[0].is_null()) {
      return Value::Null();
    }
    std::string s = args[0].AsText();
    int64_t start = args[1].AsInt();  // 1-based
    int64_t len = args.size() > 2 ? args[2].AsInt() : static_cast<int64_t>(s.size());
    if (start < 1) {
      start = 1;
    }
    if (start > static_cast<int64_t>(s.size())) {
      return Value(std::string());
    }
    return Value(s.substr(static_cast<size_t>(start - 1), static_cast<size_t>(len)));
  }
  if (f == "COALESCE") {
    for (const Value& v : args) {
      if (!v.is_null()) {
        return v;
      }
    }
    return Value::Null();
  }
  return InvalidArgument("unknown function " + f);
}

Result<Value> Executor::EvalInternal(const Expr& expr, const std::vector<RowScope>& scopes,
                                     const GroupContext* group) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumn:
      return LookupColumn(expr, scopes);
    case ExprKind::kUnary: {
      auto v = EvalInternal(*expr.args[0], scopes, group);
      if (!v.ok()) {
        return v;
      }
      if (expr.op == "NOT") {
        if (v->is_null()) {
          return Value::Null();
        }
        return Value(static_cast<int64_t>(v->Truthy() ? 0 : 1));
      }
      if (expr.op == "-") {
        if (v->is_null()) {
          return Value::Null();
        }
        if (v->is_int()) {
          return Value(-v->AsInt());
        }
        return Value(-v->AsReal());
      }
      return InvalidArgument("unknown unary operator " + expr.op);
    }
    case ExprKind::kBinary: {
      if (expr.op == "AND" || expr.op == "OR") {
        auto l = EvalInternal(*expr.args[0], scopes, group);
        if (!l.ok()) {
          return l;
        }
        bool lt = l->Truthy();
        if (expr.op == "AND" && !lt && !l->is_null()) {
          return Value(static_cast<int64_t>(0));
        }
        if (expr.op == "OR" && lt) {
          return Value(static_cast<int64_t>(1));
        }
        auto r = EvalInternal(*expr.args[1], scopes, group);
        if (!r.ok()) {
          return r;
        }
        bool rt = r->Truthy();
        if (expr.op == "AND") {
          return Value(static_cast<int64_t>(lt && rt ? 1 : 0));
        }
        return Value(static_cast<int64_t>(lt || rt ? 1 : 0));
      }
      if (expr.op == "BETWEEN") {
        auto v = EvalInternal(*expr.args[0], scopes, group);
        auto lo = EvalInternal(*expr.args[1], scopes, group);
        auto hi = EvalInternal(*expr.args[2], scopes, group);
        if (!v.ok()) {
          return v;
        }
        if (!lo.ok()) {
          return lo;
        }
        if (!hi.ok()) {
          return hi;
        }
        Value ge = CompareOp(">=", *v, *lo);
        Value le = CompareOp("<=", *v, *hi);
        bool in = ge.Truthy() && le.Truthy();
        if (expr.negated) {
          in = !in;
        }
        return Value(static_cast<int64_t>(in ? 1 : 0));
      }
      auto l = EvalInternal(*expr.args[0], scopes, group);
      if (!l.ok()) {
        return l;
      }
      auto r = EvalInternal(*expr.args[1], scopes, group);
      if (!r.ok()) {
        return r;
      }
      if (expr.op == "LIKE") {
        if (l->is_null() || r->is_null()) {
          return Value::Null();
        }
        bool m = LikeMatch(l->AsText(), r->AsText());
        if (expr.negated) {
          m = !m;
        }
        return Value(static_cast<int64_t>(m ? 1 : 0));
      }
      if (expr.op == "=" || expr.op == "!=" || expr.op == "<" || expr.op == "<=" ||
          expr.op == ">" || expr.op == ">=") {
        return CompareOp(expr.op, *l, *r);
      }
      return Arith(expr.op, *l, *r);
    }
    case ExprKind::kFunction:
      return EvalFunction(expr, scopes, group);
    case ExprKind::kSubquery: {
      auto sub = ExecuteSelect(*expr.subquery, scopes);
      if (!sub.ok()) {
        return sub.status();
      }
      if (sub->rows.empty() || sub->columns.empty()) {
        return Value::Null();
      }
      return sub->rows[0][0];
    }
    case ExprKind::kExists: {
      auto sub = ExecuteSelect(*expr.subquery, scopes);
      if (!sub.ok()) {
        return sub.status();
      }
      bool exists = !sub->rows.empty();
      if (expr.negated) {
        exists = !exists;
      }
      return Value(static_cast<int64_t>(exists ? 1 : 0));
    }
    case ExprKind::kInList: {
      auto needle = EvalInternal(*expr.args[0], scopes, group);
      if (!needle.ok()) {
        return needle;
      }
      if (needle->is_null()) {
        return Value::Null();
      }
      bool found = false;
      if (expr.subquery != nullptr) {
        auto sub = ExecuteSelect(*expr.subquery, scopes);
        if (!sub.ok()) {
          return sub.status();
        }
        for (const Row& row : sub->rows) {
          if (!row.empty() && !row[0].is_null() && Value::Compare(row[0], *needle) == 0) {
            found = true;
            break;
          }
        }
      } else {
        for (size_t i = 1; i < expr.args.size(); ++i) {
          auto v = EvalInternal(*expr.args[i], scopes, group);
          if (!v.ok()) {
            return v;
          }
          if (!v->is_null() && Value::Compare(*v, *needle) == 0) {
            found = true;
            break;
          }
        }
      }
      if (expr.negated) {
        found = !found;
      }
      return Value(static_cast<int64_t>(found ? 1 : 0));
    }
    case ExprKind::kIsNull: {
      auto v = EvalInternal(*expr.args[0], scopes, group);
      if (!v.ok()) {
        return v;
      }
      bool is_null = v->is_null();
      if (expr.negated) {
        is_null = !is_null;
      }
      return Value(static_cast<int64_t>(is_null ? 1 : 0));
    }
  }
  return Internal("unhandled expression kind");
}

Result<Value> Executor::Eval(const Expr& expr, const std::vector<RowScope>& scopes) {
  return EvalInternal(expr, scopes, nullptr);
}

Result<Relation> Executor::MaterialiseSource(const TableRef& ref,
                                             const std::vector<RowScope>& outer,
                                             const TimeBound* bound) {
  Relation rel;
  std::string alias = ref.alias;
  if (ref.subquery != nullptr) {
    auto sub = ExecuteSelect(*ref.subquery, outer);
    if (!sub.ok()) {
      return sub.status();
    }
    rel.columns = sub->columns;
    rel.SetOwnedRows(std::move(sub->rows));
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  // Named table or view.
  auto table_it = db_.tables_.find(ref.table_name);
  if (table_it != db_.tables_.end()) {
    const Database::TableData& t = table_it->second;
    rel.columns = t.columns;
    if (snap_ != nullptr) {
      // Snapshot scan: read only the pinned prefix; never touch the live
      // time index (mutated concurrently by appenders). When the pinned
      // rows are time-sorted we binary-search the view directly, matching
      // the index path's narrowing; bounds are advisory, so falling back
      // to a full view scan is always safe and result-identical.
      auto snap_it = snap_->tables.find(ref.table_name);
      RowStore::View view;
      int time_col = -1;
      bool time_sorted = false;
      if (snap_it != snap_->tables.end()) {
        view = snap_it->second.view;
        time_col = snap_it->second.time_col;
        time_sorted = snap_it->second.time_sorted;
      }
      size_t lo_idx = 0;
      size_t hi_idx = view.size();
      if (bound != nullptr && bound->constrained() && time_sorted &&
          db_.tuning_.use_time_index) {
        SEAL_OBS_COUNTER("seadb_index_range_scans_total").Increment();
        bool empty_range = false;
        int64_t lo = std::numeric_limits<int64_t>::min();
        if (bound->lo.has_value()) {
          if (bound->lo_strict && *bound->lo == std::numeric_limits<int64_t>::max()) {
            empty_range = true;
          } else {
            lo = bound->lo_strict ? *bound->lo + 1 : *bound->lo;
          }
        }
        int64_t hi = std::numeric_limits<int64_t>::max();
        if (bound->hi.has_value()) {
          if (bound->hi_strict && *bound->hi == std::numeric_limits<int64_t>::min()) {
            empty_range = true;
          } else {
            hi = bound->hi_strict ? *bound->hi - 1 : *bound->hi;
          }
        }
        if (empty_range || lo > hi) {
          lo_idx = hi_idx = 0;
        } else {
          const auto time_at = [&](size_t i) {
            return view[i][static_cast<size_t>(time_col)].AsInt();
          };
          // First row with time >= lo.
          size_t a = 0, b = view.size();
          while (a < b) {
            size_t mid = a + (b - a) / 2;
            if (time_at(mid) < lo) {
              a = mid + 1;
            } else {
              b = mid;
            }
          }
          lo_idx = a;
          // First row with time > hi.
          b = view.size();
          while (a < b) {
            size_t mid = a + (b - a) / 2;
            if (time_at(mid) <= hi) {
              a = mid + 1;
            } else {
              b = mid;
            }
          }
          hi_idx = a;
        }
      } else if (bound == nullptr || !bound->constrained()) {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"unbounded\"}").Increment();
      } else if (!db_.tuning_.use_time_index) {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"tuning_off\"}").Increment();
      } else {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"index_invalid\"}").Increment();
      }
      rel.SetRows(RowsRef(std::move(view), lo_idx, hi_idx));
      if (alias.empty()) {
        alias = ref.table_name;
      }
      rel.aliases.assign(rel.columns.size(), alias);
      return rel;
    }
    if (bound != nullptr && bound->constrained() && t.index_valid &&
        db_.tuning_.use_time_index) {
      SEAL_OBS_COUNTER("seadb_index_range_scans_total").Increment();
      // Index range scan: binary-search the admitted key range, then emit
      // the qualifying rows in their original row order so downstream
      // results stay identical to a full scan + filter.
      bool empty_range = false;
      int64_t lo = std::numeric_limits<int64_t>::min();
      if (bound->lo.has_value()) {
        if (bound->lo_strict && *bound->lo == std::numeric_limits<int64_t>::max()) {
          empty_range = true;
        } else {
          lo = bound->lo_strict ? *bound->lo + 1 : *bound->lo;
        }
      }
      int64_t hi = std::numeric_limits<int64_t>::max();
      if (bound->hi.has_value()) {
        if (bound->hi_strict && *bound->hi == std::numeric_limits<int64_t>::min()) {
          empty_range = true;
        } else {
          hi = bound->hi_strict ? *bound->hi - 1 : *bound->hi;
        }
      }
      std::vector<Row> rows;
      if (!empty_range && lo <= hi) {
        auto begin = std::lower_bound(t.time_index.begin(), t.time_index.end(),
                                      std::make_pair(lo, size_t{0}));
        auto end = std::upper_bound(
            begin, t.time_index.end(),
            std::make_pair(hi, std::numeric_limits<size_t>::max()));
        std::vector<size_t> picked;
        picked.reserve(static_cast<size_t>(end - begin));
        for (auto it = begin; it != end; ++it) {
          picked.push_back(it->second);
        }
        std::sort(picked.begin(), picked.end());
        rows.reserve(picked.size());
        for (size_t idx : picked) {
          rows.push_back(t.rows[idx]);
        }
      }
      rel.SetOwnedRows(std::move(rows));
    } else {
      // Full table scan; record why the index could not narrow it.
      if (bound == nullptr || !bound->constrained()) {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"unbounded\"}").Increment();
      } else if (!db_.tuning_.use_time_index) {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"tuning_off\"}").Increment();
      } else {
        SEAL_OBS_COUNTER("seadb_full_scans_total{reason=\"index_invalid\"}").Increment();
      }
      rel.SetRows(RowsRef(t.rows.Snapshot()));
    }
    if (alias.empty()) {
      alias = ref.table_name;
    }
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  auto view_it = db_.views_.find(ref.table_name);
  if (view_it != db_.views_.end()) {
    auto sub = ExecuteSelect(*view_it->second.select, {}, bound);
    if (!sub.ok()) {
      return sub.status();
    }
    rel.columns = sub->columns;
    rel.SetOwnedRows(std::move(sub->rows));
    if (alias.empty()) {
      alias = ref.table_name;
    }
    rel.aliases.assign(rel.columns.size(), alias);
    return rel;
  }
  return NotFound("no such table or view: " + ref.table_name);
}

TimeBound Executor::ExtractWhereBound(const SelectStmt& stmt,
                                      const std::vector<RowScope>& outer) {
  TimeBound bound;
  if (!db_.tuning_.use_time_index || stmt.where == nullptr || !stmt.from.has_value() ||
      stmt.from->table_name.empty()) {
    return bound;
  }
  auto base_cols = db_.CatalogColumns(stmt.from->table_name);
  if (!base_cols.has_value()) {
    return bound;
  }
  bool base_has_time = false;
  for (const std::string& c : *base_cols) {
    if (NameEq(c, "time")) {
      base_has_time = true;
      break;
    }
  }
  if (!base_has_time) {
    return bound;
  }
  const std::string base_alias =
      stmt.from->alias.empty() ? stmt.from->table_name : stmt.from->alias;
  std::vector<std::string> local_aliases;
  local_aliases.push_back(base_alias);
  for (const JoinClause& join : stmt.joins) {
    local_aliases.push_back(join.table.alias.empty() ? join.table.table_name
                                                     : join.table.alias);
  }
  // The bounded column: the base's `time`. A bare name is only accepted in a
  // join-free statement, where first-match resolution cannot pick another
  // source's column.
  auto is_base_time = [&](const Expr& e) {
    if (e.kind != ExprKind::kColumn || !NameEq(e.name, "time")) {
      return false;
    }
    if (e.table.empty()) {
      return stmt.joins.empty();
    }
    return NameEq(e.table, base_alias);
  };
  auto eval_int = [&](const Expr& e) -> std::optional<int64_t> {
    if (!OuterOnlyExpr(e, local_aliases)) {
      return std::nullopt;
    }
    auto v = Eval(e, outer);
    if (!v.ok() || !v->is_int()) {
      return std::nullopt;
    }
    return v->AsInt();
  };

  std::vector<const Expr*> conjuncts;
  SplitAnd(stmt.where.get(), &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary) {
      continue;
    }
    if (c->op == "BETWEEN" && !c->negated && is_base_time(*c->args[0])) {
      if (auto lo = eval_int(*c->args[1])) {
        bound.TightenLo(*lo, false);
      }
      if (auto hi = eval_int(*c->args[2])) {
        bound.TightenHi(*hi, false);
      }
      continue;
    }
    if (c->op != "=" && c->op != "<" && c->op != "<=" && c->op != ">" && c->op != ">=") {
      continue;
    }
    std::string op = c->op;
    const Expr* rhs = nullptr;
    if (is_base_time(*c->args[0])) {
      rhs = c->args[1].get();
    } else if (is_base_time(*c->args[1])) {
      rhs = c->args[0].get();
      // v OP time  ==  time OP' v with the inequality mirrored.
      if (op == "<") {
        op = ">";
      } else if (op == "<=") {
        op = ">=";
      } else if (op == ">") {
        op = "<";
      } else if (op == ">=") {
        op = "<=";
      }
    } else {
      continue;
    }
    auto v = eval_int(*rhs);
    if (!v.has_value()) {
      continue;
    }
    if (op == "=") {
      bound.TightenLo(*v, false);
      bound.TightenHi(*v, false);
    } else if (op == ">") {
      bound.TightenLo(*v, true);
    } else if (op == ">=") {
      bound.TightenLo(*v, false);
    } else if (op == "<") {
      bound.TightenHi(*v, true);
    } else {
      bound.TightenHi(*v, false);
    }
  }
  return bound;
}

std::optional<Result<QueryResult>> Executor::TryIndexedFastPath(
    const SelectStmt& stmt, const std::vector<RowScope>& outer) {
  if (!db_.tuning_.use_time_index) {
    return std::nullopt;
  }
  if (!stmt.from.has_value() || stmt.from->table_name.empty() || !stmt.joins.empty() ||
      !stmt.group_by.empty() || stmt.having != nullptr || stmt.distinct) {
    return std::nullopt;
  }
  auto table_it = db_.tables_.find(stmt.from->table_name);
  if (table_it == db_.tables_.end()) {
    return std::nullopt;
  }
  const Database::TableData& t = table_it->second;
  // A snapshot execution must not touch the live time index (appenders
  // mutate it concurrently) — but a time-sorted pinned view IS an index:
  // positions are in nondecreasing time order with ties in row order,
  // exactly the walk order the live index provides. Without that ordering
  // (or without the live index) fall back to the general path.
  RowStore::View snap_view;
  const bool from_snapshot = snap_ != nullptr;
  if (from_snapshot) {
    auto snap_it = snap_->tables.find(stmt.from->table_name);
    if (snap_it == snap_->tables.end() || !snap_it->second.time_sorted ||
        snap_it->second.time_col != t.time_col) {
      return std::nullopt;
    }
    snap_view = snap_it->second.view;
  } else if (!t.index_valid) {
    return std::nullopt;
  }
  const std::string alias =
      stmt.from->alias.empty() ? stmt.from->table_name : stmt.from->alias;
  const std::string& time_name = t.columns[static_cast<size_t>(t.time_col)];
  // The indexed column is the first one named `time`, so a bare reference
  // resolves to it under LookupColumn's first-match rule.
  auto is_time_col = [&](const Expr& e) {
    return e.kind == ExprKind::kColumn && NameEq(e.name, time_name) &&
           (e.table.empty() || NameEq(e.table, alias));
  };

  bool max_mode = false;
  if (stmt.order_by.empty() && stmt.limit == nullptr && stmt.offset == nullptr &&
      stmt.items.size() == 1 && !stmt.items[0].star) {
    const Expr& e = *stmt.items[0].expr;
    max_mode = e.kind == ExprKind::kFunction && e.name == "MAX" && !e.star &&
               !e.distinct && e.args.size() == 1 && is_time_col(*e.args[0]);
  }
  int64_t limit = 0;
  int64_t offset = 0;
  if (!max_mode) {
    // ORDER BY time DESC LIMIT k with a literal limit and no aggregation.
    if (stmt.order_by.size() != 1 || !stmt.order_by[0].desc ||
        !is_time_col(*stmt.order_by[0].expr) || stmt.limit == nullptr ||
        stmt.limit->kind != ExprKind::kLiteral || !stmt.limit->literal.is_int()) {
      return std::nullopt;
    }
    limit = stmt.limit->literal.AsInt();
    if (limit < 0) {
      return std::nullopt;  // negative literal means "no limit": no early exit
    }
    if (stmt.offset != nullptr) {
      if (stmt.offset->kind != ExprKind::kLiteral || !stmt.offset->literal.is_int()) {
        return std::nullopt;
      }
      offset = std::max<int64_t>(0, stmt.offset->literal.AsInt());
    }
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        continue;
      }
      if (ContainsAggregate(*item.expr)) {
        return std::nullopt;
      }
      // The general path resolves a bare ORDER BY name against output
      // aliases first; bail out if that rule would redirect the sort key.
      if (stmt.order_by[0].expr->table.empty() && !item.alias.empty() &&
          NameEq(item.alias, stmt.order_by[0].expr->name) &&
          !NameEq(ExprToString(*item.expr), stmt.order_by[0].expr->name)) {
        return std::nullopt;
      }
    }
  }

  Relation rel;
  rel.columns = t.columns;
  rel.SetRows(from_snapshot ? RowsRef(snap_view) : RowsRef(t.rows.Snapshot()));
  rel.aliases.assign(rel.columns.size(), alias);
  const auto& idx = t.time_index;
  const size_t time_col = static_cast<size_t>(t.time_col);
  const size_t idx_size = from_snapshot ? snap_view.size() : idx.size();
  auto key_at = [&](size_t j) -> int64_t {
    return from_snapshot ? snap_view[j][time_col].AsInt() : idx[j].first;
  };
  auto row_at = [&](size_t j) -> const Row& {
    return from_snapshot ? snap_view[j] : t.rows[idx[j].second];
  };

  if (max_mode) {
    QueryResult result;
    const SelectItem& item = stmt.items[0];
    result.columns.push_back(!item.alias.empty() ? item.alias : ExprToString(*item.expr));
    // Walk keys descending; the first row passing WHERE carries the maximum.
    Value best;
    size_t group_end = idx_size;
    bool done = false;
    while (group_end > 0 && !done) {
      size_t group_begin = group_end;
      while (group_begin > 0 && key_at(group_begin - 1) == key_at(group_end - 1)) {
        --group_begin;
      }
      for (size_t j = group_begin; j < group_end && !done; ++j) {
        const Row& row = row_at(j);
        if (stmt.where != nullptr) {
          std::vector<RowScope> scopes = outer;
          scopes.push_back(RowScope{&rel, &row});
          auto cond = Eval(*stmt.where, scopes);
          if (!cond.ok()) {
            return std::optional<Result<QueryResult>>(cond.status());
          }
          if (!cond->Truthy()) {
            continue;
          }
        }
        best = row[time_col];
        done = true;
      }
      group_end = group_begin;
    }
    result.rows.push_back(Row{std::move(best)});
    SEAL_OBS_COUNTER("seadb_fastpath_hits_total{kind=\"max_time\"}").Increment();
    return result;
  }

  // Top-k: project rows in descending time order (ties in row order, exactly
  // as the general path's stable sort leaves them), stopping at the limit.
  QueryResult result;
  std::vector<const Expr*> item_exprs;
  std::vector<size_t> star_columns;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < rel.columns.size(); ++i) {
        if (!item.star_table.empty() && !NameEq(rel.aliases[i], item.star_table)) {
          continue;
        }
        result.columns.push_back(rel.columns[i]);
        item_exprs.push_back(nullptr);
        star_columns.push_back(i);
      }
    } else {
      if (!item.alias.empty()) {
        result.columns.push_back(item.alias);
      } else if (item.expr->kind == ExprKind::kColumn) {
        result.columns.push_back(item.expr->name);
      } else {
        result.columns.push_back(ExprToString(*item.expr));
      }
      item_exprs.push_back(item.expr.get());
      star_columns.push_back(0);  // unused
    }
  }
  int64_t to_skip = offset;
  size_t group_end = idx_size;
  bool done = limit == 0;
  while (group_end > 0 && !done) {
    size_t group_begin = group_end;
    while (group_begin > 0 && key_at(group_begin - 1) == key_at(group_end - 1)) {
      --group_begin;
    }
    for (size_t j = group_begin; j < group_end && !done; ++j) {
      const Row& row = row_at(j);
      std::vector<RowScope> scopes = outer;
      scopes.push_back(RowScope{&rel, &row});
      if (stmt.where != nullptr) {
        auto cond = Eval(*stmt.where, scopes);
        if (!cond.ok()) {
          return std::optional<Result<QueryResult>>(cond.status());
        }
        if (!cond->Truthy()) {
          continue;
        }
      }
      if (to_skip > 0) {
        --to_skip;
        continue;
      }
      Row out;
      for (size_t i = 0; i < item_exprs.size(); ++i) {
        if (item_exprs[i] == nullptr) {
          out.push_back(row[star_columns[i]]);
          continue;
        }
        auto v = EvalInternal(*item_exprs[i], scopes, nullptr);
        if (!v.ok()) {
          return std::optional<Result<QueryResult>>(v.status());
        }
        out.push_back(std::move(*v));
      }
      result.rows.push_back(std::move(out));
      if (static_cast<int64_t>(result.rows.size()) >= limit) {
        done = true;
      }
    }
    group_end = group_begin;
  }
  SEAL_OBS_COUNTER("seadb_fastpath_hits_total{kind=\"order_by_time_limit\"}").Increment();
  return result;
}

Result<QueryResult> Executor::ExecuteSelect(const SelectStmt& stmt,
                                            const std::vector<RowScope>& outer,
                                            const TimeBound* bound) {
  if (bound == nullptr) {
    if (auto fast = TryIndexedFastPath(stmt, outer)) {
      return std::move(*fast);
    }
    if (outer.empty() && db_.tuning_.use_vectorized) {
      if (auto vec = TryVectorized(stmt)) {
        return std::move(*vec);
      }
    }
  }

  // 1. FROM: materialise and join.
  Relation rel;
  TimeBound scan_bound;
  if (stmt.from.has_value()) {
    scan_bound = ExtractWhereBound(stmt, outer);
    if (bound != nullptr && bound->constrained() && db_.tuning_.use_time_index &&
        stmt.limit == nullptr && stmt.offset == nullptr &&
        !stmt.from->table_name.empty()) {
      // This statement is a view body whose output `time` column the caller
      // constrains. The bound may be folded into the base scan only when the
      // output `time` is the base's own `time` column verbatim, and — if the
      // statement aggregates — that column is part of the group key (so
      // dropping a base row can only remove whole groups the caller
      // provably discards).
      const std::string base_alias =
          stmt.from->alias.empty() ? stmt.from->table_name : stmt.from->alias;
      auto base_cols = db_.CatalogColumns(stmt.from->table_name);
      bool base_has_time = false;
      if (base_cols.has_value()) {
        for (const std::string& c : *base_cols) {
          if (NameEq(c, "time")) {
            base_has_time = true;
            break;
          }
        }
      }
      const Expr* time_item = nullptr;
      for (const SelectItem& item : stmt.items) {
        if (item.star || item.expr == nullptr) {
          continue;
        }
        std::string out_name =
            !item.alias.empty()
                ? item.alias
                : (item.expr->kind == ExprKind::kColumn ? item.expr->name
                                                        : ExprToString(*item.expr));
        if (NameEq(out_name, "time")) {
          time_item = item.expr.get();
          break;
        }
      }
      bool ok_shape = base_has_time && time_item != nullptr &&
                      time_item->kind == ExprKind::kColumn &&
                      NameEq(time_item->name, "time") &&
                      (time_item->table.empty() || NameEq(time_item->table, base_alias));
      if (ok_shape) {
        bool has_aggregates = false;
        for (const SelectItem& item : stmt.items) {
          if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
            has_aggregates = true;
          }
        }
        if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
          has_aggregates = true;
        }
        if (has_aggregates || !stmt.group_by.empty()) {
          bool in_key = false;
          for (const ExprPtr& g : stmt.group_by) {
            if (g->kind == ExprKind::kColumn && NameEq(g->name, time_item->name) &&
                NameEq(g->table, time_item->table)) {
              in_key = true;
              break;
            }
          }
          ok_shape = in_key;
        }
      }
      if (ok_shape) {
        if (bound->lo.has_value()) {
          scan_bound.TightenLo(*bound->lo, bound->lo_strict);
        }
        if (bound->hi.has_value()) {
          scan_bound.TightenHi(*bound->hi, bound->hi_strict);
        }
      }
    }
    auto base = MaterialiseSource(*stmt.from, outer,
                                  scan_bound.constrained() ? &scan_bound : nullptr);
    if (!base.ok()) {
      return base.status();
    }
    rel = std::move(*base);
    for (const JoinClause& join : stmt.joins) {
      // A bound on the base `time` transfers to a NATURAL-joined side that
      // shares a `time` column: its rows only pair with equal base times,
      // which the consumer provably discards outside the bound.
      const TimeBound* right_bound = nullptr;
      if (scan_bound.constrained() && join.kind == JoinClause::Kind::kNatural &&
          !join.table.table_name.empty()) {
        auto rcols = db_.CatalogColumns(join.table.table_name);
        bool right_has_time = false;
        if (rcols.has_value()) {
          for (const std::string& c : *rcols) {
            if (NameEq(c, "time")) {
              right_has_time = true;
              break;
            }
          }
        }
        bool left_has_time = false;
        for (const std::string& c : rel.columns) {
          if (NameEq(c, "time")) {
            left_has_time = true;
            break;
          }
        }
        if (right_has_time && left_has_time) {
          right_bound = &scan_bound;
        }
      }
      auto right = MaterialiseSource(join.table, outer, right_bound);
      if (!right.ok()) {
        return right.status();
      }
      Relation combined;
      combined.aliases = rel.aliases;
      combined.columns = rel.columns;
      std::vector<Row> combined_rows;

      const size_t left_width = rel.columns.size();
      std::vector<std::pair<size_t, size_t>> natural_pairs;  // (left idx, right idx)
      std::vector<bool> right_kept(right->columns.size(), true);
      if (join.kind == JoinClause::Kind::kNatural) {
        for (size_t rc = 0; rc < right->columns.size(); ++rc) {
          for (size_t lc = 0; lc < rel.columns.size(); ++lc) {
            if (NameEq(rel.columns[lc], right->columns[rc])) {
              natural_pairs.emplace_back(lc, rc);
              right_kept[rc] = false;
              break;
            }
          }
        }
      }
      std::vector<size_t> kept_to_right;  // combined idx - left_width -> right idx
      for (size_t rc = 0; rc < right->columns.size(); ++rc) {
        if (right_kept[rc]) {
          kept_to_right.push_back(rc);
          combined.aliases.push_back(right->aliases[rc]);
          combined.columns.push_back(right->columns[rc]);
        }
      }

      // Decompose the join predicate into hashable equi-key column pairs
      // plus residual conjuncts (evaluated per candidate pair, in order).
      std::vector<std::pair<size_t, size_t>> key_pairs = natural_pairs;
      std::vector<const Expr*> residuals;
      bool hash_ok = db_.tuning_.use_hash_join &&
                     (join.kind == JoinClause::Kind::kInner ||
                      join.kind == JoinClause::Kind::kNatural ||
                      join.kind == JoinClause::Kind::kLeft);
      if (hash_ok && join.on != nullptr) {
        auto resolve = [&](const Expr& e) -> int {
          // Mirrors LookupColumn's first-match rule over the combined scope.
          if (e.kind != ExprKind::kColumn) {
            return -1;
          }
          for (size_t i = 0; i < combined.columns.size(); ++i) {
            if (!NameEq(combined.columns[i], e.name)) {
              continue;
            }
            if (!e.table.empty() && !NameEq(combined.aliases[i], e.table)) {
              continue;
            }
            return static_cast<int>(i);
          }
          return -1;
        };
        std::vector<const Expr*> conjuncts;
        SplitAnd(join.on.get(), &conjuncts);
        for (const Expr* c : conjuncts) {
          bool is_key = false;
          if (c->kind == ExprKind::kBinary && c->op == "=") {
            int a = resolve(*c->args[0]);
            int b = resolve(*c->args[1]);
            if (a >= 0 && b >= 0) {
              bool a_left = static_cast<size_t>(a) < left_width;
              bool b_left = static_cast<size_t>(b) < left_width;
              if (a_left != b_left) {
                size_t lc = static_cast<size_t>(a_left ? a : b);
                size_t rc =
                    kept_to_right[static_cast<size_t>(a_left ? b : a) - left_width];
                key_pairs.emplace_back(lc, rc);
                is_key = true;
              }
            }
          }
          if (!is_key) {
            residuals.push_back(c);
          }
        }
      }

      if (hash_ok && !key_pairs.empty()) {
        SEAL_OBS_COUNTER("seadb_joins_total{algo=\"hash\"}").Increment();
        // Hash join. Buckets keep right-row insertion order, so the emitted
        // pairs match the nested-loop order exactly; NULL keys never match
        // (SQL equality), so rows carrying one are simply left out.
        std::unordered_map<std::string, std::vector<size_t>> buckets;
        buckets.reserve(right->Rows().size());
        for (size_t r = 0; r < right->Rows().size(); ++r) {
          const Row& rrow = right->Rows()[r];
          std::string key;
          bool null_key = false;
          for (const auto& [lc, rc] : key_pairs) {
            (void)lc;
            if (rrow[rc].is_null()) {
              null_key = true;
              break;
            }
            key += JoinKeyOf(rrow[rc]);
            key.push_back('\x1f');
          }
          if (!null_key) {
            buckets[key].push_back(r);
          }
        }
        static const std::vector<size_t> kNoMatches;
        for (const Row& lrow : rel.Rows()) {
          bool matched = false;
          std::string key;
          bool null_key = false;
          for (const auto& [lc, rc] : key_pairs) {
            (void)rc;
            if (lrow[lc].is_null()) {
              null_key = true;
              break;
            }
            key += JoinKeyOf(lrow[lc]);
            key.push_back('\x1f');
          }
          const std::vector<size_t>* matches = &kNoMatches;
          if (!null_key) {
            auto it = buckets.find(key);
            if (it != buckets.end()) {
              matches = &it->second;
            }
          }
          for (size_t r : *matches) {
            const Row& rrow = right->Rows()[r];
            Row joined = lrow;
            for (size_t rc : kept_to_right) {
              joined.push_back(rrow[rc]);
            }
            bool keep = true;
            if (!residuals.empty()) {
              std::vector<RowScope> scopes = outer;
              scopes.push_back(RowScope{&combined, &joined});
              for (const Expr* res : residuals) {
                auto cond = Eval(*res, scopes);
                if (!cond.ok()) {
                  return cond.status();
                }
                if (!cond->Truthy()) {
                  keep = false;
                  break;
                }
              }
            }
            if (keep) {
              combined_rows.push_back(std::move(joined));
              matched = true;
            }
          }
          if (!matched && join.kind == JoinClause::Kind::kLeft) {
            Row joined = lrow;
            for (size_t i = 0; i < kept_to_right.size(); ++i) {
              joined.push_back(Value::Null());
            }
            combined_rows.push_back(std::move(joined));
          }
        }
      } else {
        SEAL_OBS_COUNTER("seadb_joins_total{algo=\"nested_loop\"}").Increment();
        for (const Row& lrow : rel.Rows()) {
          bool matched = false;
          for (const Row& rrow : right->Rows()) {
            bool keep = true;
            if (join.kind == JoinClause::Kind::kNatural) {
              for (const auto& [lc, rc] : natural_pairs) {
                if (lrow[lc].is_null() || rrow[rc].is_null() ||
                    Value::Compare(lrow[lc], rrow[rc]) != 0) {
                  keep = false;
                  break;
                }
              }
            }
            Row joined = lrow;
            for (size_t rc = 0; rc < rrow.size(); ++rc) {
              if (right_kept[rc]) {
                joined.push_back(rrow[rc]);
              }
            }
            if (keep && join.on != nullptr) {
              // Evaluate ON against a temporary combined relation scope.
              std::vector<RowScope> scopes = outer;
              scopes.push_back(RowScope{&combined, &joined});
              auto cond = Eval(*join.on, scopes);
              if (!cond.ok()) {
                return cond.status();
              }
              keep = cond->Truthy();
            }
            if (keep) {
              combined_rows.push_back(std::move(joined));
              matched = true;
            }
          }
          if (!matched && join.kind == JoinClause::Kind::kLeft) {
            Row joined = lrow;
            size_t kept = 0;
            for (bool k : right_kept) {
              if (k) {
                ++kept;
              }
            }
            for (size_t i = 0; i < kept; ++i) {
              joined.push_back(Value::Null());
            }
            combined_rows.push_back(std::move(joined));
          }
        }
      }
      combined.SetOwnedRows(std::move(combined_rows));
      rel = std::move(combined);
    }
  } else {
    rel.SetOwnedRows(std::vector<Row>{Row{}});  // SELECT without FROM: one empty row
  }

  // 2. WHERE.
  if (stmt.where != nullptr) {
    std::vector<Row> kept;
    for (const Row& row : rel.Rows()) {
      std::vector<RowScope> scopes = outer;
      scopes.push_back(RowScope{&rel, &row});
      auto cond = Eval(*stmt.where, scopes);
      if (!cond.ok()) {
        return cond.status();
      }
      if (cond->Truthy()) {
        kept.push_back(row);
      }
    }
    rel.SetOwnedRows(std::move(kept));
  }

  // 3. Determine grouping.
  bool has_aggregates = false;
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && ContainsAggregate(*item.expr)) {
      has_aggregates = true;
    }
  }
  if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
    has_aggregates = true;
  }
  const bool grouped = has_aggregates || !stmt.group_by.empty();

  // 4. Build output column names.
  QueryResult result;
  std::vector<const Expr*> item_exprs;  // null for star expansions
  std::vector<size_t> star_columns;     // relation indices for stars
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t i = 0; i < rel.columns.size(); ++i) {
        if (!item.star_table.empty() && !NameEq(rel.aliases[i], item.star_table)) {
          continue;
        }
        result.columns.push_back(rel.columns[i]);
        item_exprs.push_back(nullptr);
        star_columns.push_back(i);
      }
    } else {
      if (!item.alias.empty()) {
        result.columns.push_back(item.alias);
      } else if (item.expr->kind == ExprKind::kColumn) {
        result.columns.push_back(item.expr->name);
      } else {
        result.columns.push_back(ExprToString(*item.expr));
      }
      item_exprs.push_back(item.expr.get());
      star_columns.push_back(0);  // unused
    }
  }

  // Emit a projected row for the scope (row or group representative).
  struct OutputRow {
    Row row;
    Row order_keys;
  };
  std::vector<OutputRow> outputs;

  auto project = [&](const Row& representative, const GroupContext* group) -> Status {
    std::vector<RowScope> scopes = outer;
    scopes.push_back(RowScope{&rel, &representative});
    OutputRow out;
    size_t star_i = 0;
    for (size_t i = 0; i < item_exprs.size(); ++i) {
      if (item_exprs[i] == nullptr) {
        out.row.push_back(representative[star_columns[i]]);
        ++star_i;
        continue;
      }
      auto v = EvalInternal(*item_exprs[i], scopes, group);
      if (!v.ok()) {
        return v.status();
      }
      out.row.push_back(std::move(*v));
    }
    for (const OrderItem& oi : stmt.order_by) {
      // ORDER BY <n> refers to the n-th output column.
      if (oi.expr->kind == ExprKind::kLiteral && oi.expr->literal.is_int()) {
        int64_t pos = oi.expr->literal.AsInt();
        if (pos >= 1 && pos <= static_cast<int64_t>(out.row.size())) {
          out.order_keys.push_back(out.row[static_cast<size_t>(pos - 1)]);
          continue;
        }
      }
      // ORDER BY <output alias>.
      bool matched_alias = false;
      if (oi.expr->kind == ExprKind::kColumn && oi.expr->table.empty()) {
        for (size_t i = 0; i < result.columns.size(); ++i) {
          if (NameEq(result.columns[i], oi.expr->name) && item_exprs[i] != nullptr &&
              !NameEq(ExprToString(*item_exprs[i]), oi.expr->name)) {
            out.order_keys.push_back(out.row[i]);
            matched_alias = true;
            break;
          }
        }
      }
      if (matched_alias) {
        continue;
      }
      auto v = EvalInternal(*oi.expr, scopes, group);
      if (!v.ok()) {
        return v.status();
      }
      out.order_keys.push_back(std::move(*v));
    }
    outputs.push_back(std::move(out));
    return Status::Ok();
  };

  if (grouped) {
    // 5a. Group rows.
    std::map<std::string, std::vector<size_t>> groups;
    std::vector<std::string> group_order;
    for (size_t r = 0; r < rel.Rows().size(); ++r) {
      std::string key;
      std::vector<RowScope> scopes = outer;
      scopes.push_back(RowScope{&rel, &rel.Rows()[r]});
      for (const ExprPtr& g : stmt.group_by) {
        auto v = Eval(*g, scopes);
        if (!v.ok()) {
          return v.status();
        }
        key += v->Serialize();
        key.push_back('|');
      }
      auto [it, inserted] = groups.emplace(key, std::vector<size_t>{});
      if (inserted) {
        group_order.push_back(key);
      }
      it->second.push_back(r);
    }
    if (stmt.group_by.empty() && groups.empty()) {
      // Aggregates over an empty relation still produce one row.
      groups.emplace("", std::vector<size_t>{});
      group_order.push_back("");
    }
    for (const std::string& key : group_order) {
      const std::vector<size_t>& indices = groups[key];
      static const Row kEmptyRow;
      const Row& representative = indices.empty() ? kEmptyRow : rel.Rows()[indices[0]];
      GroupContext group{&rel, &indices};
      if (stmt.having != nullptr) {
        std::vector<RowScope> scopes = outer;
        scopes.push_back(RowScope{&rel, &representative});
        auto cond = EvalInternal(*stmt.having, scopes, &group);
        if (!cond.ok()) {
          return cond.status();
        }
        if (!cond->Truthy()) {
          continue;
        }
      }
      SEAL_RETURN_IF_ERROR(project(representative, &group));
    }
  } else {
    for (const Row& row : rel.Rows()) {
      SEAL_RETURN_IF_ERROR(project(row, nullptr));
    }
  }

  // 6. DISTINCT.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<OutputRow> unique;
    for (OutputRow& out : outputs) {
      std::string key = SerializeRow(out.row);
      if (seen.insert(key).second) {
        unique.push_back(std::move(out));
      }
    }
    outputs = std::move(unique);
  }

  // 7. ORDER BY.
  if (!stmt.order_by.empty()) {
    std::stable_sort(outputs.begin(), outputs.end(),
                     [&](const OutputRow& a, const OutputRow& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         int c = Value::Compare(a.order_keys[i], b.order_keys[i]);
                         if (c != 0) {
                           return stmt.order_by[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  // 8. LIMIT / OFFSET.
  size_t offset = 0;
  size_t limit = outputs.size();
  if (stmt.offset != nullptr) {
    auto v = Eval(*stmt.offset, outer);
    if (!v.ok()) {
      return v.status();
    }
    offset = static_cast<size_t>(std::max<int64_t>(0, v->AsInt()));
  }
  if (stmt.limit != nullptr) {
    auto v = Eval(*stmt.limit, outer);
    if (!v.ok()) {
      return v.status();
    }
    int64_t l = v->AsInt();
    limit = l < 0 ? outputs.size() : static_cast<size_t>(l);
  }
  for (size_t i = offset; i < outputs.size() && result.rows.size() < limit; ++i) {
    result.rows.push_back(std::move(outputs[i].row));
  }
  return result;
}

}  // namespace seal::db
