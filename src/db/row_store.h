// Chunked row storage with stable addresses and O(1) logical snapshots.
//
// seadb tables are append-only between trims, which is exactly the access
// pattern the asynchronous invariant checker needs to exploit: the checker
// reads a frozen prefix [0, N) of a table while appenders keep inserting
// past N. A std::vector cannot support that (push_back reallocates under
// the reader); RowStore can, because rows live in fixed-size chunks that
// are never moved once allocated, and the chunk directory is replaced
// copy-on-grow.
//
// Concurrency contract:
//  - All MUTATORS (push_back, Assign, clear) and all captures (Snapshot/
//    SnapshotPrefix) must be externally synchronised with each other — in
//    the audit logger they run under the sequencer's drain mutex.
//  - A captured View may be READ from any thread concurrently with any
//    mutator. The view pins its chunk directory via shared_ptr: appends only
//    write slots >= the view's count, and Assign (the DELETE/UPDATE rebuild)
//    always builds fresh chunks and publishes a new directory, so the rows a
//    view exposes are immutable for its lifetime. The thread handing a view
//    to a reader must establish happens-before (the checker receives views
//    through its trigger-queue mutex).
#ifndef SRC_DB_ROW_STORE_H_
#define SRC_DB_ROW_STORE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "src/db/value.h"

namespace seal::db {

class RowStore {
 public:
  static constexpr size_t kChunkShift = 9;
  static constexpr size_t kChunkRows = size_t{1} << kChunkShift;  // 512
  static constexpr size_t kChunkMask = kChunkRows - 1;

  struct Chunk {
    std::vector<Row> rows = std::vector<Row>(kChunkRows);
  };
  using Directory = std::vector<std::shared_ptr<Chunk>>;

  // A frozen prefix of the store: `count` rows pinned through the chunk
  // directory. Cheap to copy (one shared_ptr); safe to read concurrently
  // with mutation of the underlying store.
  class View {
   public:
    View() = default;

    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    const Row& operator[](size_t i) const {
      return (*dir_)[i >> kChunkShift]->rows[i & kChunkMask];
    }

   private:
    friend class RowStore;
    View(std::shared_ptr<const Directory> dir, size_t count)
        : dir_(std::move(dir)), count_(count) {}

    std::shared_ptr<const Directory> dir_;
    size_t count_ = 0;
  };

  RowStore() : dir_(std::make_shared<const Directory>()) {}
  RowStore(RowStore&& other) noexcept
      : dir_(std::move(other.dir_)), size_(other.size_.load(std::memory_order_relaxed)) {
    other.dir_ = std::make_shared<const Directory>();
    other.size_.store(0, std::memory_order_relaxed);
  }
  RowStore& operator=(RowStore&& other) noexcept {
    if (this != &other) {
      dir_ = std::move(other.dir_);
      size_.store(other.size_.load(std::memory_order_relaxed), std::memory_order_relaxed);
      other.dir_ = std::make_shared<const Directory>();
      other.size_.store(0, std::memory_order_relaxed);
    }
    return *this;
  }
  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const Row& operator[](size_t i) const {
    return (*dir_)[i >> kChunkShift]->rows[i & kChunkMask];
  }

  void push_back(Row row) {
    const size_t n = size_.load(std::memory_order_relaxed);
    if ((n >> kChunkShift) >= dir_->size()) {
      // Copy-on-grow: readers pinning the old directory keep a consistent
      // prefix; the new directory shares every existing chunk.
      auto grown = std::make_shared<Directory>(*dir_);
      grown->push_back(std::make_shared<Chunk>());
      dir_ = std::move(grown);
    }
    (*dir_)[n >> kChunkShift]->rows[n & kChunkMask] = std::move(row);
    size_.store(n + 1, std::memory_order_release);
  }

  // Replaces the contents wholesale (DELETE/UPDATE compaction). Always
  // builds fresh chunks: concurrent readers of previously captured views
  // keep the pre-rebuild rows alive through their pinned directory.
  void Assign(std::vector<Row> rows) {
    auto fresh = std::make_shared<Directory>();
    fresh->reserve((rows.size() + kChunkRows - 1) >> kChunkShift);
    for (size_t i = 0; i < rows.size(); ++i) {
      if ((i & kChunkMask) == 0) {
        fresh->push_back(std::make_shared<Chunk>());
      }
      fresh->back()->rows[i & kChunkMask] = std::move(rows[i]);
    }
    dir_ = std::move(fresh);
    size_.store(rows.size(), std::memory_order_release);
  }

  void clear() { Assign({}); }

  std::vector<Row> CopyRows() const {
    std::vector<Row> out;
    const size_t n = size();
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back((*this)[i]);
    }
    return out;
  }

  View Snapshot() const { return View(dir_, size()); }
  View SnapshotPrefix(size_t count) const {
    const size_t n = size();
    return View(dir_, count < n ? count : n);
  }

 private:
  std::shared_ptr<const Directory> dir_;
  std::atomic<size_t> size_{0};
};

// Row access abstraction flowing through the executor: either an owned
// (materialised) vector of rows or a contiguous index range of a RowStore
// view. Copies share storage.
class RowsRef {
 public:
  RowsRef() = default;
  explicit RowsRef(std::vector<Row> owned)
      : owned_(std::make_shared<const std::vector<Row>>(std::move(owned))) {}
  explicit RowsRef(RowStore::View view) : view_(std::move(view)), use_view_(true) {
    end_ = view_.size();
  }
  RowsRef(RowStore::View view, size_t begin, size_t end)
      : view_(std::move(view)), use_view_(true), begin_(begin), end_(end) {}

  size_t size() const { return use_view_ ? end_ - begin_ : (owned_ ? owned_->size() : 0); }
  bool empty() const { return size() == 0; }
  const Row& operator[](size_t i) const {
    return use_view_ ? view_[begin_ + i] : (*owned_)[i];
  }

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Row;
    using difference_type = std::ptrdiff_t;
    using pointer = const Row*;
    using reference = const Row&;

    const_iterator(const RowsRef* ref, size_t i) : ref_(ref), i_(i) {}
    reference operator*() const { return (*ref_)[i_]; }
    pointer operator->() const { return &(*ref_)[i_]; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }

   private:
    const RowsRef* ref_;
    size_t i_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size()); }

 private:
  std::shared_ptr<const std::vector<Row>> owned_;
  RowStore::View view_;
  bool use_view_ = false;
  size_t begin_ = 0;
  size_t end_ = 0;
};

}  // namespace seal::db

#endif  // SRC_DB_ROW_STORE_H_
