// Dynamically-typed SQL values (SQLite-style type affinity).
#ifndef SRC_DB_VALUE_H_
#define SRC_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace seal::db {

// A SQL value: NULL, 64-bit integer, double, or text.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }
  bool is_numeric() const { return is_int() || is_real(); }

  int64_t AsInt() const;     // best-effort coercion (NULL -> 0)
  double AsReal() const;     // best-effort coercion
  std::string AsText() const;

  const std::string& text() const { return std::get<std::string>(v_); }

  // SQL three-valued comparison is handled by the evaluator; this is a total
  // order used for ORDER BY / GROUP BY / DISTINCT, with NULL first, then
  // numerics, then text.
  static int Compare(const Value& a, const Value& b);

  // Strict equality of type + content (used for grouping keys).
  bool operator==(const Value& o) const { return Compare(*this, o) == 0; }

  // Truthiness for WHERE clauses: NULL and 0 are false.
  bool Truthy() const;

  // Stable serialisation used by the audit-log hash chain.
  std::string Serialize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

using Row = std::vector<Value>;

}  // namespace seal::db

#endif  // SRC_DB_VALUE_H_
