// Abstract syntax tree for the seadb SQL dialect.
//
// Supported statements: SELECT (joins incl. NATURAL, WHERE, GROUP BY,
// HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT, scalar/IN/EXISTS subqueries
// with correlation), INSERT, DELETE, UPDATE, CREATE TABLE, CREATE VIEW,
// DROP TABLE/VIEW.
#ifndef SRC_DB_AST_H_
#define SRC_DB_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/db/value.h"

namespace seal::db {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

enum class ExprKind {
  kLiteral,   // literal Value
  kColumn,    // [table.]column reference
  kUnary,     // op in {"-", "NOT"}; operand in args[0]
  kBinary,    // op in {=, !=, <, <=, >, >=, +, -, *, /, %, AND, OR, ||, LIKE}
  kFunction,  // name in `name`, arguments in args; COUNT(*) has star=true
  kSubquery,  // scalar subquery
  kInList,    // args[0] IN (args[1..]) -- or IN subquery when `subquery` set
  kExists,    // EXISTS (subquery)
  kIsNull,    // args[0] IS [NOT] NULL (negated => IS NOT NULL)
};

struct Expr {
  ExprKind kind;
  Value literal;                         // kLiteral
  std::string table;                     // kColumn qualifier, may be empty
  std::string name;                      // kColumn column name / kFunction name (upper)
  std::string op;                        // kUnary / kBinary operator (upper-cased keywords)
  std::vector<ExprPtr> args;
  std::unique_ptr<SelectStmt> subquery;  // kSubquery / kExists / kInList (subquery form)
  bool negated = false;                  // NOT IN / NOT EXISTS / IS NOT NULL
  bool star = false;                     // COUNT(*)
  bool distinct = false;                 // COUNT(DISTINCT expr)

  explicit Expr(ExprKind k) : kind(k) {}
};

struct SelectItem {
  ExprPtr expr;            // null when star == true
  std::string alias;       // AS alias, may be empty
  bool star = false;       // '*' or 'alias.*'
  std::string star_table;  // qualifier for 'alias.*', empty for bare '*'
};

// A table source in FROM: a named table/view or a parenthesised subquery.
struct TableRef {
  std::string table_name;                // empty when subquery is set
  std::string alias;                     // may be empty
  std::unique_ptr<SelectStmt> subquery;  // derived table
};

struct JoinClause {
  enum class Kind { kInner, kCross, kNatural, kLeft };
  Kind kind = Kind::kInner;
  TableRef table;
  ExprPtr on;  // null for CROSS / NATURAL
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::optional<TableRef> from;
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  ExprPtr limit;
  ExprPtr offset;
};

struct CreateTableStmt {
  std::string name;
  std::vector<std::string> columns;
  bool if_not_exists = false;
};

struct CreateViewStmt {
  std::string name;
  std::shared_ptr<SelectStmt> select;  // shared: the catalog keeps it alive
  bool if_not_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;         // empty = positional
  std::vector<std::vector<ExprPtr>> rows;   // VALUES (...), (...)
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // null = delete all
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DropStmt {
  std::string name;
  bool is_view = false;
  bool if_exists = false;
};

using Statement = std::variant<std::unique_ptr<SelectStmt>, CreateTableStmt, CreateViewStmt,
                               InsertStmt, DeleteStmt, UpdateStmt, DropStmt>;

}  // namespace seal::db

#endif  // SRC_DB_AST_H_
