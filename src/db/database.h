// seadb: an embedded in-memory relational database with a SQL front end.
//
// This plays the role SQLite plays in the LibSEAL paper: it executes the
// audit-log schema DDL, the logger's INSERTs, the invariant SELECT queries
// and the trimming DELETEs, entirely inside the (simulated) enclave.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/db/ast.h"
#include "src/db/value.h"

namespace seal::db {

// Result of Execute(): column names and rows for SELECT; `affected` for DML.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  bool empty() const { return rows.empty(); }
};

class Database {
 public:
  Database() = default;
  // Movable, not copyable (views hold parsed ASTs).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Parses and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  // Programmatic fast paths used by the audit logger (no SQL parsing).
  Status CreateTable(const std::string& name, std::vector<std::string> columns);
  Status InsertRow(const std::string& name, Row row);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  // Number of rows in `name`, or 0 if absent.
  size_t TableSize(const std::string& name) const;
  // Direct read access for the audit log's hash-chain maintenance.
  const std::vector<Row>* TableRows(const std::string& name) const;
  const std::vector<std::string>* TableColumns(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Whole-database serialisation (used for enclave sealing). Views are
  // persisted as their original CREATE VIEW SQL and re-executed on load.
  Bytes Serialize() const;
  static Result<Database> Deserialize(BytesView in);

 private:
  friend class Executor;

  struct TableData {
    std::vector<std::string> columns;
    std::vector<Row> rows;
  };

  struct ViewData {
    std::shared_ptr<SelectStmt> select;
    std::string sql;  // original CREATE VIEW statement, for serialisation
  };

  std::map<std::string, TableData> tables_;
  std::map<std::string, ViewData> views_;
};

}  // namespace seal::db

#endif  // SRC_DB_DATABASE_H_
