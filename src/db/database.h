// seadb: an embedded in-memory relational database with a SQL front end.
//
// This plays the role SQLite plays in the LibSEAL paper: it executes the
// audit-log schema DDL, the logger's INSERTs, the invariant SELECT queries
// and the trimming DELETEs, entirely inside the (simulated) enclave.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/db/ast.h"
#include "src/db/value.h"

namespace seal::db {

// Result of Execute(): column names and rows for SELECT; `affected` for DML.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  bool empty() const { return rows.empty(); }
};

// Executor knobs, settable per database. Both default on; benchmarks flip
// them off to compare against the unindexed nested-loop engine.
struct Tuning {
  bool use_time_index = true;  // index scans + ORDER BY/MAX fast paths
  bool use_hash_join = true;   // hash joins for equi-join keys
};

class Database {
 public:
  Database() = default;
  // Movable, not copyable (views hold parsed ASTs).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  // Parses and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  // Parses and executes one statement; when it is a SELECT over a named
  // base table (or view) that exposes a `time` column, AND-injects the
  // conjunct `<base>.time > floor` into WHERE so the scan is narrowed to
  // rows appended after `floor`. Used by incremental invariant checking:
  // for a monotone invariant query this returns exactly the violations
  // involving outer rows newer than the watermark.
  Result<QueryResult> ExecuteWithTimeFloor(std::string_view sql, int64_t floor);

  // Programmatic fast paths used by the audit logger (no SQL parsing).
  Status CreateTable(const std::string& name, std::vector<std::string> columns);
  Status InsertRow(const std::string& name, Row row);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  // Number of rows in `name`, or 0 if absent.
  size_t TableSize(const std::string& name) const;
  // Direct read access for the audit log's hash-chain maintenance.
  const std::vector<Row>* TableRows(const std::string& name) const;
  const std::vector<std::string>* TableColumns(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Output column names of a table or view without executing it, or nullopt
  // when they cannot be derived statically (unknown name, or a view whose
  // select list contains a star). Used for join-key/bound planning.
  std::optional<std::vector<std::string>> CatalogColumns(const std::string& name) const;

  void set_tuning(Tuning tuning) { tuning_ = tuning; }
  const Tuning& tuning() const { return tuning_; }

  // The ordered (time, row position) index of `name`, sorted ascending, or
  // nullptr when the table has no valid time index. Exposed for tests.
  const std::vector<std::pair<int64_t, size_t>>* TimeIndexForTesting(
      const std::string& name) const;

  // Whole-database serialisation (used for enclave sealing). Views are
  // persisted as their original CREATE VIEW SQL and re-executed on load.
  Bytes Serialize() const;
  static Result<Database> Deserialize(BytesView in);

 private:
  friend class Executor;

  struct TableData {
    std::vector<std::string> columns;
    std::vector<Row> rows;
    // Primary-key index on the `time` column: (time, row position), sorted.
    // Valid only while every row's time value is a non-null integer;
    // maintained on INSERT, rebuilt after DELETE/UPDATE compaction.
    int time_col = -1;
    bool index_valid = false;
    std::vector<std::pair<int64_t, size_t>> time_index;
  };

  struct ViewData {
    std::shared_ptr<SelectStmt> select;
    std::string sql;  // original CREATE VIEW statement, for serialisation
  };

  static void InitTimeIndex(TableData& table);
  static void IndexInsertedRow(TableData& table, size_t row_idx);
  static void RebuildTimeIndex(TableData& table);

  std::map<std::string, TableData> tables_;
  std::map<std::string, ViewData> views_;
  Tuning tuning_;
};

}  // namespace seal::db

#endif  // SRC_DB_DATABASE_H_
