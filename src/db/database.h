// seadb: an embedded in-memory relational database with a SQL front end.
//
// This plays the role SQLite plays in the LibSEAL paper: it executes the
// audit-log schema DDL, the logger's INSERTs, the invariant SELECT queries
// and the trimming DELETEs, entirely inside the (simulated) enclave.
#ifndef SRC_DB_DATABASE_H_
#define SRC_DB_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/db/ast.h"
#include "src/db/column_store.h"
#include "src/db/row_store.h"
#include "src/db/value.h"

namespace seal::db {

// Result of Execute(): column names and rows for SELECT; `affected` for DML.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  size_t affected = 0;

  bool empty() const { return rows.empty(); }
};

// Executor knobs, settable per database. All default on; benchmarks flip
// them off to compare against the unindexed nested-loop engine.
struct Tuning {
  bool use_time_index = true;  // index scans + ORDER BY/MAX fast paths
  bool use_hash_join = true;   // hash joins for equi-join keys
  // Batch-at-a-time columnar kernels (vector_exec.cc) for uncorrelated
  // SELECTs in the supported shape subset; unsupported shapes fall back to
  // the interpreter. Results are byte-identical either way.
  bool use_vectorized = true;
};

// A logical snapshot of one table: a pinned prefix of its row store plus
// the facts the executor needs to narrow scans without touching live
// (concurrently mutated) index state.
struct TableSnapshot {
  RowStore::View view;
  // The same prefix transposed column-major (always view.size() rows: the
  // row and column stores are mutated in lockstep under the writer lock).
  ColumnStore::View col_view;
  int time_col = -1;
  // Rows ascending by integer time (the sequencer drains in ticket order,
  // so this is the steady state). Enables binary-search TimeBound
  // narrowing directly on the view.
  bool time_sorted = false;
};

// A cheap whole-database snapshot: per-table pinned row prefixes plus the
// epochs at capture time. Capture must be externally synchronised with
// writers (the sequencer captures under the drain mutex, at a pair
// boundary); executing against the snapshot is then safe from any thread,
// concurrently with appends and even trims — the views keep pre-trim rows
// alive until the last reader drops them.
struct Snapshot {
  uint64_t schema_epoch = 0;
  uint64_t trim_epoch = 0;
  std::map<std::string, TableSnapshot> tables;
};

// A SELECT parsed and planned once, re-executed many times. When built with
// a time-floor slot, the injected conjunct `<base>.time > ?` is rebound per
// execution (incremental invariant checking re-plans nothing per round).
// A prepared statement may be executed by one thread at a time (rebinding
// mutates the stored AST); distinct queries are distinct plans.
class PreparedSelect {
 public:
  PreparedSelect() = default;

  const std::string& sql() const { return sql_; }
  bool has_floor_slot() const { return floor_slot_ != nullptr; }

 private:
  friend class Database;
  friend class PlanCache;

  std::string sql_;
  std::shared_ptr<SelectStmt> stmt_;
  Expr* floor_slot_ = nullptr;  // literal of the injected conjunct, owned by stmt_
  uint64_t schema_epoch_ = 0;
  uint64_t trim_epoch_ = 0;
};

class Database {
 public:
  Database() = default;
  // Movable, not copyable (views hold parsed ASTs). Manual because the
  // epochs are atomics (read by the checker without the writer's lock).
  Database(Database&& other) noexcept
      : tables_(std::move(other.tables_)),
        views_(std::move(other.views_)),
        tuning_(other.tuning_),
        schema_epoch_(other.schema_epoch_.load(std::memory_order_relaxed)),
        trim_epoch_(other.trim_epoch_.load(std::memory_order_relaxed)) {}
  Database& operator=(Database&& other) noexcept {
    if (this != &other) {
      tables_ = std::move(other.tables_);
      views_ = std::move(other.views_);
      tuning_ = other.tuning_;
      schema_epoch_.store(other.schema_epoch_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      trim_epoch_.store(other.trim_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    return *this;
  }

  // Parses and executes one SQL statement.
  Result<QueryResult> Execute(std::string_view sql);

  // Parses and executes one statement; when it is a SELECT over a named
  // base table (or view) that exposes a `time` column, AND-injects the
  // conjunct `<base>.time > floor` into WHERE so the scan is narrowed to
  // rows appended after `floor`. Used by incremental invariant checking:
  // for a monotone invariant query this returns exactly the violations
  // involving outer rows newer than the watermark.
  Result<QueryResult> ExecuteWithTimeFloor(std::string_view sql, int64_t floor);

  // --- snapshots + prepared plans (asynchronous checking) ---

  // Captures a logical snapshot of every table. Caller must hold whatever
  // lock serialises writers (see Snapshot docs).
  Snapshot CaptureSnapshot() const;

  // True when no DDL / trim has happened since the snapshot was captured.
  bool SnapshotCurrent(const Snapshot& snapshot) const {
    return snapshot.schema_epoch == schema_epoch() && snapshot.trim_epoch == trim_epoch();
  }

  // Bumped on CREATE/DROP (schema) and on any DELETE/UPDATE that changed
  // rows (trim). Relaxed atomics: used for plan/watermark invalidation.
  uint64_t schema_epoch() const { return schema_epoch_.load(std::memory_order_relaxed); }
  uint64_t trim_epoch() const { return trim_epoch_.load(std::memory_order_relaxed); }

  // Parses + plans a SELECT once. With `with_time_floor`, injects the
  // rebindable `<base>.time > ?` conjunct when the base exposes `time`
  // (otherwise the plan simply has no floor slot and executes in full,
  // mirroring ExecuteWithTimeFloor's fallback).
  Result<PreparedSelect> Prepare(std::string_view sql, bool with_time_floor) const;

  // Executes a prepared SELECT. `floor` rebinds the time-floor slot (must
  // be nullopt when the plan has none, except that a slotless plan ignores
  // it). With `snapshot`, the scan reads only the snapshot's pinned row
  // prefixes — safe concurrently with writers.
  Result<QueryResult> ExecutePrepared(const PreparedSelect& plan,
                                      std::optional<int64_t> floor = std::nullopt,
                                      const Snapshot* snapshot = nullptr) const;

  // Convenience: parse + execute one SELECT against a snapshot.
  Result<QueryResult> ExecuteSnapshot(std::string_view sql, const Snapshot& snapshot) const;

  // Programmatic fast paths used by the audit logger (no SQL parsing).
  Status CreateTable(const std::string& name, std::vector<std::string> columns);
  Status InsertRow(const std::string& name, Row row);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }
  // Number of rows in `name`, or 0 if absent.
  size_t TableSize(const std::string& name) const;
  // Direct read access for the audit log's hash-chain maintenance.
  const RowStore* TableRows(const std::string& name) const;
  const std::vector<std::string>* TableColumns(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  // Output column names of a table or view without executing it, or nullopt
  // when they cannot be derived statically (unknown name, or a view whose
  // select list contains a star). Used for join-key/bound planning.
  std::optional<std::vector<std::string>> CatalogColumns(const std::string& name) const;

  void set_tuning(Tuning tuning) { tuning_ = tuning; }
  const Tuning& tuning() const { return tuning_; }

  // The ordered (time, row position) index of `name`, sorted ascending, or
  // nullptr when the table has no valid time index. Exposed for tests.
  const std::vector<std::pair<int64_t, size_t>>* TimeIndexForTesting(
      const std::string& name) const;

  // Whole-database serialisation (used for enclave sealing). Views are
  // persisted as their original CREATE VIEW SQL and re-executed on load.
  Bytes Serialize() const;
  static Result<Database> Deserialize(BytesView in);

 private:
  friend class Executor;
  friend class VecAnalyzer;  // vector_exec.cc: plan/scan analysis

  struct TableData {
    std::vector<std::string> columns;
    RowStore rows;
    // Column-major shadow of `rows`, mutated in lockstep (appends on
    // INSERT, rebuilt on DELETE/UPDATE compaction). The vectorized engine
    // reads it; the interpreter never touches it.
    ColumnStore cols;
    // Primary-key index on the `time` column: (time, row position), sorted.
    // Valid only while every row's time value is a non-null integer;
    // maintained on INSERT, remapped incrementally after DELETE compaction
    // and rebuilt after UPDATE touches the time column.
    int time_col = -1;
    bool index_valid = false;
    std::vector<std::pair<int64_t, size_t>> time_index;
    // Row positions ascending by integer time: snapshots binary-search the
    // pinned prefix directly instead of touching the live index.
    bool rows_time_ordered = false;
    int64_t last_row_time = 0;  // meaningful only while rows_time_ordered
  };

  struct ViewData {
    std::shared_ptr<SelectStmt> select;
    std::string sql;  // original CREATE VIEW statement, for serialisation
  };

  static void InitTimeIndex(TableData& table);
  static void IndexInsertedRow(TableData& table, size_t row_idx);
  static void RebuildTimeIndex(TableData& table);
  // Incremental index maintenance after a DELETE compaction: surviving
  // index entries are remapped to their post-compaction positions in one
  // O(n) pass (no re-sort — the remap is monotone). Falls back to a full
  // rebuild when the index was already invalid. `doomed` is the pre-delete
  // per-row deletion mask.
  static void RemapTimeIndexAfterDelete(TableData& table, const std::vector<bool>& doomed);
  // Rebuilds the columnar shadow from the row store (DELETE/UPDATE
  // compaction and deserialisation; appends use ColumnStore::Append).
  static void RebuildColumns(TableData& table);

  // AND-injects `<base>.time > 0` into `s` when its base source exposes a
  // `time` column; returns the literal Expr to rebind, or nullptr.
  Expr* InjectTimeFloorConjunct(SelectStmt& s) const;

  void BumpSchemaEpoch() { schema_epoch_.fetch_add(1, std::memory_order_relaxed); }
  void BumpTrimEpoch() { trim_epoch_.fetch_add(1, std::memory_order_relaxed); }

  std::map<std::string, TableData> tables_;
  std::map<std::string, ViewData> views_;
  Tuning tuning_;
  std::atomic<uint64_t> schema_epoch_{0};
  std::atomic<uint64_t> trim_epoch_{0};
};

// A keyed cache of PreparedSelect plans, invalidated by epoch change.
// Lookup is mutex-guarded (cheap: one map probe per invariant per round);
// execution happens outside the lock. A given (sql, floored) plan must not
// be executed by two threads at once — check rounds are serialised, and
// parallel workers within a round evaluate distinct invariants.
class PlanCache {
 public:
  // Looks up (preparing/refreshing on miss or epoch staleness) and
  // executes. `floor` selects the floored plan variant; `snapshot` routes
  // execution to pinned views.
  Result<QueryResult> Execute(const Database& db, const std::string& sql,
                              std::optional<int64_t> floor = std::nullopt,
                              const Snapshot* snapshot = nullptr);

  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, bool>, std::shared_ptr<PreparedSelect>> plans_;
};

}  // namespace seal::db

#endif  // SRC_DB_DATABASE_H_
