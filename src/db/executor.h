// SELECT execution engine for seadb (internal to the db module).
#ifndef SRC_DB_EXECUTOR_H_
#define SRC_DB_EXECUTOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/db/ast.h"
#include "src/db/database.h"
#include "src/db/row_store.h"
#include "src/db/value.h"

namespace seal::db {

// A materialised relation flowing through the executor: per-column source
// alias (for qualified-name resolution) plus column names and rows. Row
// storage is shared so that scanning a base table (especially inside a
// correlated subquery evaluated once per outer row) pins the table's row
// store instead of copying it; RowsRef also carries snapshot-view ranges.
struct Relation {
  std::vector<std::string> aliases;  // parallel to columns
  std::vector<std::string> columns;

  const RowsRef& Rows() const { return rows_; }

  void SetOwnedRows(std::vector<Row> rows) { rows_ = RowsRef(std::move(rows)); }
  void SetRows(RowsRef rows) { rows_ = std::move(rows); }

 private:
  RowsRef rows_;
};

// One level of name-resolution scope: a relation and the current row in it.
struct RowScope {
  const Relation* relation = nullptr;
  const Row* row = nullptr;
};

// An interval constraint on a relation's integer `time` column, produced by
// predicate pushdown. Bounds are advisory: every row they exclude is one the
// consuming query provably discards anyway, so applying them is a pure
// optimisation and dropping them is always safe.
struct TimeBound {
  std::optional<int64_t> lo;
  bool lo_strict = false;  // time > lo rather than time >= lo
  std::optional<int64_t> hi;
  bool hi_strict = false;

  bool constrained() const { return lo.has_value() || hi.has_value(); }
  bool Admits(int64_t t) const {
    if (lo.has_value() && (lo_strict ? t <= *lo : t < *lo)) {
      return false;
    }
    if (hi.has_value() && (hi_strict ? t >= *hi : t > *hi)) {
      return false;
    }
    return true;
  }
  void TightenLo(int64_t v, bool strict);
  void TightenHi(int64_t v, bool strict);
};

// Executes SELECT statements against a Database. `outer` is the scope chain
// of enclosing queries (innermost last) for correlated subqueries.
class Executor {
 public:
  // With `snap`, base-table scans read the snapshot's pinned row prefixes
  // instead of live table state — safe concurrently with writers. Advisory
  // fast paths that would touch the live time index are disabled.
  explicit Executor(const Database& db, const Snapshot* snap = nullptr)
      : db_(db), snap_(snap) {}

  // `bound` (optional) constrains the statement's `time` output column; it
  // is pushed into the base-table scan when provably safe (see the view
  // rules in ExecuteSelect) and ignored otherwise.
  Result<QueryResult> ExecuteSelect(const SelectStmt& stmt,
                                    const std::vector<RowScope>& outer = {},
                                    const TimeBound* bound = nullptr);

  // Evaluates an expression given a scope chain (innermost last). Exposed
  // for DELETE/UPDATE predicate evaluation.
  Result<Value> Eval(const Expr& expr, const std::vector<RowScope>& scopes);

 private:
  // Group context used while evaluating aggregate expressions.
  struct GroupContext {
    const Relation* relation = nullptr;
    const std::vector<size_t>* row_indices = nullptr;
  };

  Result<Value> EvalInternal(const Expr& expr, const std::vector<RowScope>& scopes,
                             const GroupContext* group);
  Result<Value> EvalFunction(const Expr& expr, const std::vector<RowScope>& scopes,
                             const GroupContext* group);
  Result<Value> EvalAggregate(const Expr& expr, const std::vector<RowScope>& scopes,
                              const GroupContext& group);
  Result<Value> LookupColumn(const Expr& expr, const std::vector<RowScope>& scopes);

  // Materialises a FROM source (table, view, or derived table). `bound`, if
  // set, restricts a base table's scan via the time index and is forwarded
  // into view execution; it is ignored for derived tables.
  Result<Relation> MaterialiseSource(const TableRef& ref, const std::vector<RowScope>& outer,
                                     const TimeBound* bound = nullptr);

  // Derives a TimeBound on the base source of `stmt` from the top-level AND
  // conjuncts of WHERE (point/range predicates on the indexed time column
  // whose other side depends only on literals and outer scopes).
  TimeBound ExtractWhereBound(const SelectStmt& stmt, const std::vector<RowScope>& outer);

  // Single-table fast paths walking the time index descending with early
  // exit: `... ORDER BY time DESC LIMIT k` and `SELECT MAX(time) ...`.
  // Returns nullopt when the statement shape doesn't qualify; otherwise the
  // result is identical to the general path.
  std::optional<Result<QueryResult>> TryIndexedFastPath(const SelectStmt& stmt,
                                                        const std::vector<RowScope>& outer);

  // Vectorized columnar execution (vector_exec.cc): batch-at-a-time
  // filter/join/aggregate kernels over ColumnStore views. Returns nullopt
  // when the statement's shape is outside the supported subset (recorded in
  // db_vector_fallback_total); otherwise the result is byte-identical to
  // the interpreter. Only attempted for uncorrelated top-level statements
  // (no outer scopes, no caller-imposed bound).
  std::optional<Result<QueryResult>> TryVectorized(const SelectStmt& stmt);

  const Database& db_;
  const Snapshot* snap_ = nullptr;
};

// True if the expression (recursively, not descending into subqueries)
// contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

// Human-readable rendition of an expression, used to synthesise output
// column names ("COUNT(branch)").
std::string ExprToString(const Expr& expr);

}  // namespace seal::db

#endif  // SRC_DB_EXECUTOR_H_
