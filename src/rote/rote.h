// Distributed monotonic counter in the style of ROTE (Matetic et al., 2017),
// which the paper adopts for rollback protection of the persisted audit log
// (§5.1): "for each log entry, LibSEAL contacts n nodes, including itself,
// to retrieve and update a monotonic counter, where n = 3f + 1".
//
// Nodes are simulated in-process; each counter round pays one fan-out
// round-trip of network latency (requests are issued in parallel) and
// requires acknowledgements from a quorum of 2f + 1 nodes.
#ifndef SRC_ROTE_ROTE_H_
#define SRC_ROTE_ROTE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/status.h"

namespace seal::rote {

// One counter replica. Thread-safe.
class RoteNode {
 public:
  enum class Mode {
    kHealthy,
    kDown,       // does not answer
    kMalicious,  // answers with a stale value and refuses to advance
  };

  explicit RoteNode(int64_t processing_latency_nanos = 50'000)
      : processing_latency_nanos_(processing_latency_nanos) {}

  // Proposes a new counter value; the node accepts (and persists) it iff it
  // is strictly greater than what the node has seen. Returns the node's
  // current value after the exchange, or an error when down.
  Result<uint64_t> ProposeAndAck(uint64_t proposed);

  Result<uint64_t> Read() const;

  void set_mode(Mode mode) { mode_.store(mode, std::memory_order_release); }
  Mode mode() const { return mode_.load(std::memory_order_acquire); }

 private:
  std::atomic<Mode> mode_{Mode::kHealthy};
  mutable std::mutex mutex_;
  uint64_t value_ = 0;
  int64_t processing_latency_nanos_;
};

// The client-side protocol driver: one per LibSEAL instance.
class RoteCounter {
 public:
  struct Options {
    int f = 1;                               // tolerated malicious/failed nodes
    int64_t network_rtt_nanos = 200'000;     // same-cluster round trip (~0.2 ms)
    bool inject_latency = true;
  };

  // Creates a self-contained cluster of n = 3f + 1 nodes.
  explicit RoteCounter(Options options);

  // Increments the distributed counter: proposes value+1 to all nodes in
  // parallel and succeeds once a quorum of 2f + 1 acknowledges. Returns the
  // new counter value.
  Result<uint64_t> Increment();

  // Reads the counter with quorum agreement (used on recovery to detect a
  // rolled-back log).
  Result<uint64_t> Read() const;

  // Failure injection for tests.
  RoteNode* node(size_t i) { return nodes_[i].get(); }
  size_t cluster_size() const { return nodes_.size(); }
  int quorum() const { return 2 * options_.f + 1; }

 private:
  Options options_;
  std::vector<std::unique_ptr<RoteNode>> nodes_;
  mutable std::mutex mutex_;
  uint64_t local_value_ = 0;
};

}  // namespace seal::rote

#endif  // SRC_ROTE_ROTE_H_
