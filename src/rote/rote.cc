#include "src/rote/rote.h"

#include "src/common/clock.h"

namespace seal::rote {

Result<uint64_t> RoteNode::ProposeAndAck(uint64_t proposed) {
  Mode m = mode();
  if (m == Mode::kDown) {
    return Unavailable("node down");
  }
  SpinNanos(processing_latency_nanos_);
  std::lock_guard<std::mutex> lock(mutex_);
  if (m == Mode::kMalicious) {
    // Answers, but refuses to advance and reports a stale value.
    return value_ > 0 ? value_ - 1 : 0;
  }
  if (proposed > value_) {
    value_ = proposed;
  }
  return value_;
}

Result<uint64_t> RoteNode::Read() const {
  Mode m = mode();
  if (m == Mode::kDown) {
    return Unavailable("node down");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (m == Mode::kMalicious) {
    return value_ > 0 ? value_ - 1 : 0;
  }
  return value_;
}

RoteCounter::RoteCounter(Options options) : options_(options) {
  int n = 3 * options_.f + 1;
  for (int i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<RoteNode>());
  }
}

Result<uint64_t> RoteCounter::Increment() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t proposed = local_value_ + 1;
  // One parallel fan-out: a single round trip of latency regardless of n.
  if (options_.inject_latency) {
    SleepNanos(options_.network_rtt_nanos);
  }
  int acks = 0;
  for (const std::unique_ptr<RoteNode>& node : nodes_) {
    auto reply = node->ProposeAndAck(proposed);
    if (reply.ok() && *reply >= proposed) {
      ++acks;
    }
  }
  if (acks < quorum()) {
    return Unavailable("quorum not reached: " + std::to_string(acks) + "/" +
                       std::to_string(quorum()) + " acks");
  }
  local_value_ = proposed;
  return proposed;
}

Result<uint64_t> RoteCounter::Read() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.inject_latency) {
    SleepNanos(options_.network_rtt_nanos);
  }
  // Take the highest value reported by any quorum-sized set: with at most f
  // faulty nodes, the maximum over 2f+1 answers from distinct nodes is at
  // least the last committed value.
  std::vector<uint64_t> answers;
  for (const std::unique_ptr<RoteNode>& node : nodes_) {
    auto reply = node->Read();
    if (reply.ok()) {
      answers.push_back(*reply);
    }
  }
  if (static_cast<int>(answers.size()) < quorum()) {
    return Unavailable("quorum not reached on read");
  }
  uint64_t best = 0;
  for (uint64_t v : answers) {
    best = std::max(best, v);
  }
  return best;
}

}  // namespace seal::rote
