#include "src/sgx/counter.h"

#include "src/common/clock.h"

namespace seal::sgx {

Result<uint64_t> HardwareMonotonicCounter::Increment() {
  uint64_t writes = writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (writes > options_.max_increments) {
    return Unavailable("monotonic counter wear budget exhausted");
  }
  if (options_.inject_latency) {
    SleepNanos(options_.increment_latency_nanos);
  }
  return value_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

}  // namespace seal::sgx
