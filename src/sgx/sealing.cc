#include "src/sgx/sealing.h"

#include "src/crypto/drbg.h"
#include "src/crypto/gcm.h"
#include "src/crypto/hmac.h"

namespace seal::sgx {

namespace {

// Simulated fused CPU secret. Constant within a process ("platform").
const Bytes& RootKey() {
  static const Bytes kRoot = ToBytes("sgx-simulated-platform-root-key-v1");
  return kRoot;
}

Bytes DeriveSealKey(const Enclave& enclave, SealPolicy policy) {
  crypto::HmacSha256 h(RootKey());
  if (policy == SealPolicy::kMrEnclave) {
    h.Update(ToBytes("MRENCLAVE"));
    h.Update(BytesView(enclave.measurement().data(), enclave.measurement().size()));
  } else {
    h.Update(ToBytes("MRSIGNER"));
    h.Update(ToBytes(enclave.signer()));
  }
  crypto::Sha256Digest d = h.Finish();
  return Bytes(d.begin(), d.begin() + 16);  // AES-128 key
}

}  // namespace

Bytes SealData(const Enclave& enclave, SealPolicy policy, BytesView plaintext, BytesView aad) {
  Bytes key = DeriveSealKey(enclave, policy);
  crypto::Aes128Gcm gcm(key);
  Bytes nonce = crypto::ProcessDrbg().Generate(crypto::kGcmNonceSize);
  Bytes out = nonce;
  Bytes sealed = gcm.Seal(nonce, aad, plaintext);
  Append(out, sealed);
  return out;
}

Result<Bytes> UnsealData(const Enclave& enclave, SealPolicy policy, BytesView sealed,
                         BytesView aad) {
  if (sealed.size() < crypto::kGcmNonceSize + crypto::kGcmTagSize) {
    return DataLoss("sealed blob too short");
  }
  Bytes key = DeriveSealKey(enclave, policy);
  crypto::Aes128Gcm gcm(key);
  BytesView nonce = sealed.subspan(0, crypto::kGcmNonceSize);
  BytesView body = sealed.subspan(crypto::kGcmNonceSize);
  auto opened = gcm.Open(nonce, aad, body);
  if (!opened.has_value()) {
    return PermissionDenied("unseal failed: wrong enclave identity or tampered data");
  }
  return *opened;
}

BytesView PlatformRootKeyForTesting() { return RootKey(); }

}  // namespace seal::sgx
