// SGX hardware monotonic counter simulation.
//
// Real SGX counters are backed by flash with high write latency and a
// limited write budget (the paper cites "poor performance and limited
// lifespans" and therefore replaces them with the distributed ROTE
// protocol, src/rote/). This model reproduces both defects so the
// ROTE-vs-hardware tradeoff is measurable.
#ifndef SRC_SGX_COUNTER_H_
#define SRC_SGX_COUNTER_H_

#include <atomic>
#include <cstdint>

#include "src/common/status.h"

namespace seal::sgx {

class HardwareMonotonicCounter {
 public:
  struct Options {
    // Flash-backed write latency (SGX PSE counters take ~80-250 ms).
    int64_t increment_latency_nanos = 100 * 1000 * 1000;
    // Wear-out budget; increments beyond this fail.
    uint64_t max_increments = 1'000'000;
    // Disable latency injection in unit tests.
    bool inject_latency = true;
  };

  explicit HardwareMonotonicCounter(Options options) : options_(options) {}
  HardwareMonotonicCounter() : HardwareMonotonicCounter(Options{}) {}

  // Reads are cheap.
  uint64_t Read() const { return value_.load(std::memory_order_acquire); }

  // Increments and returns the new value; fails once the wear budget is
  // exhausted.
  Result<uint64_t> Increment();

  uint64_t increments_performed() const { return writes_.load(std::memory_order_relaxed); }

 private:
  Options options_;
  std::atomic<uint64_t> value_{0};
  std::atomic<uint64_t> writes_{0};
};

}  // namespace seal::sgx

#endif  // SRC_SGX_COUNTER_H_
