#include "src/sgx/attestation.h"

namespace seal::sgx {

Bytes Quote::SignedPayload() const {
  Bytes payload;
  Append(payload, BytesView(measurement.data(), measurement.size()));
  AppendBe32(payload, static_cast<uint32_t>(signer.size()));
  Append(payload, signer);
  AppendBe32(payload, static_cast<uint32_t>(report_data.size()));
  Append(payload, report_data);
  return payload;
}

Bytes Quote::Encode() const {
  Bytes out = SignedPayload();
  Append(out, signature.Encode());
  return out;
}

Result<Quote> Quote::Decode(BytesView in) {
  Quote q;
  size_t off = 0;
  if (in.size() < q.measurement.size() + 4) {
    return DataLoss("quote too short");
  }
  std::copy(in.begin(), in.begin() + static_cast<ptrdiff_t>(q.measurement.size()),
            q.measurement.begin());
  off += q.measurement.size();
  uint32_t signer_len = LoadBe32(in.data() + off);
  off += 4;
  if (off + signer_len + 4 > in.size()) {
    return DataLoss("quote truncated in signer");
  }
  q.signer.assign(reinterpret_cast<const char*>(in.data() + off), signer_len);
  off += signer_len;
  uint32_t data_len = LoadBe32(in.data() + off);
  off += 4;
  if (off + data_len + 64 > in.size()) {
    return DataLoss("quote truncated in report data");
  }
  q.report_data.assign(in.begin() + static_cast<ptrdiff_t>(off),
                       in.begin() + static_cast<ptrdiff_t>(off + data_len));
  off += data_len;
  auto sig = crypto::EcdsaSignature::Decode(in.subspan(off, 64));
  if (!sig.has_value()) {
    return DataLoss("quote signature malformed");
  }
  q.signature = *sig;
  return q;
}

QuotingEnclave::QuotingEnclave()
    : key_(crypto::EcdsaPrivateKey::FromSeed(ToBytes("sgx-simulated-quoting-key"))) {}

Quote QuotingEnclave::GenerateQuote(const Enclave& enclave, BytesView report_data) const {
  Quote q;
  q.measurement = enclave.measurement();
  q.signer = enclave.signer();
  q.report_data.assign(report_data.begin(), report_data.end());
  q.signature = key_.Sign(q.SignedPayload());
  return q;
}

Status AttestationService::VerifyQuote(const Quote& quote,
                                       const crypto::Sha256Digest* expected_measurement) const {
  Bytes payload = quote.SignedPayload();
  bool signature_ok = false;
  for (const crypto::EcdsaPublicKey& key : keys_) {
    if (key.Verify(payload, quote.signature)) {
      signature_ok = true;
      break;
    }
  }
  if (!signature_ok) {
    return PermissionDenied("quote not signed by a trusted platform");
  }
  if (expected_measurement != nullptr && !(quote.measurement == *expected_measurement)) {
    return PermissionDenied("enclave measurement mismatch");
  }
  return Status::Ok();
}

}  // namespace seal::sgx
