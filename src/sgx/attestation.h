// SGX remote attestation simulation: quoting enclave + attestation service.
//
// A quote binds REPORT_DATA (e.g. the hash of a TLS certificate LibSEAL
// provisions, §6.3 "Bypassing logging") to the enclave measurement, signed
// by the platform's quoting key. The attestation service validates quotes
// against known platform keys, playing the role of Intel's IAS.
#ifndef SRC_SGX_ATTESTATION_H_
#define SRC_SGX_ATTESTATION_H_

#include <string>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/ecdsa.h"
#include "src/sgx/enclave.h"

namespace seal::sgx {

struct Quote {
  crypto::Sha256Digest measurement;
  std::string signer;
  Bytes report_data;  // up to 64 bytes, chosen by the enclave
  crypto::EcdsaSignature signature;

  Bytes SignedPayload() const;  // the bytes covered by the signature
  Bytes Encode() const;
  static Result<Quote> Decode(BytesView in);
};

// Produces quotes for enclaves on "this platform".
class QuotingEnclave {
 public:
  QuotingEnclave();

  Quote GenerateQuote(const Enclave& enclave, BytesView report_data) const;
  const crypto::EcdsaPublicKey& platform_key() const { return key_.public_key(); }

 private:
  crypto::EcdsaPrivateKey key_;
};

// Verifies quotes (the IAS stand-in). Trusts a set of platform keys.
class AttestationService {
 public:
  void TrustPlatform(const crypto::EcdsaPublicKey& key) { keys_.push_back(key); }

  // Checks the quote signature against the trusted platforms and, when
  // `expected_measurement` is non-null, the enclave identity too.
  Status VerifyQuote(const Quote& quote,
                     const crypto::Sha256Digest* expected_measurement = nullptr) const;

 private:
  std::vector<crypto::EcdsaPublicKey> keys_;
};

}  // namespace seal::sgx

#endif  // SRC_SGX_ATTESTATION_H_
