// SGX sealing simulation: authenticated encryption of enclave data for
// untrusted persistent storage, keyed by the enclave identity.
//
// As in real SGX, sealing can bind to the enclave measurement (MRENCLAVE)
// or to the signing authority (MRSIGNER). The paper relies on the MRSIGNER
// policy so that sealed logs can be shared across machines (§6.3 "the
// sealing mechanism is not tied to a specific CPU but to a signing
// authority").
#ifndef SRC_SGX_SEALING_H_
#define SRC_SGX_SEALING_H_

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sgx/enclave.h"

namespace seal::sgx {

enum class SealPolicy {
  kMrEnclave,  // key bound to the exact enclave measurement
  kMrSigner,   // key bound to the signing authority
};

// Seals `plaintext` with optional authenticated-but-clear `aad`.
// Output layout: 12-byte nonce || ciphertext || 16-byte tag.
Bytes SealData(const Enclave& enclave, SealPolicy policy, BytesView plaintext, BytesView aad);

// Unseals; fails if the blob was produced under a different identity/policy
// or has been tampered with.
Result<Bytes> UnsealData(const Enclave& enclave, SealPolicy policy, BytesView sealed,
                         BytesView aad);

// The (simulated) per-platform root sealing secret. Exposed so tests can
// check cross-enclave behaviour; a real CPU never reveals it.
BytesView PlatformRootKeyForTesting();

}  // namespace seal::sgx

#endif  // SRC_SGX_SEALING_H_
