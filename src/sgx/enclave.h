// Software simulation of an Intel SGX enclave.
//
// Hardware SGX is unavailable in this environment, so this runtime
// reproduces the two properties LibSEAL depends on:
//
//  1. *Cost model.* Every ecall/ocall crosses a call gate that injects a
//     calibrated busy-wait. The paper (§4.2, §6.8) reports 8,400 cycles per
//     transition with one thread, rising to 170,000 cycles with 48 threads
//     inside the enclave (a 20x increase); the gate reproduces that curve.
//     In-enclave memory beyond the EPC limit pays a paging penalty.
//
//  2. *Isolation structure.* Trusted state lives behind the Enclave object
//     and is reachable only through registered ecalls; trusted code reaches
//     untrusted functionality only through registered ocalls. The
//     measurement/sealing/attestation facilities bind secrets to the
//     enclave identity exactly as the SDK's do.
#ifndef SRC_SGX_ENCLAVE_H_
#define SRC_SGX_ENCLAVE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/crypto/sha256.h"
#include "src/obs/obs.h"

namespace seal::sgx {

// Cost model parameters. Defaults follow the numbers reported in the paper
// for the Xeon E3-1280 v5 testbed.
struct EnclaveConfig {
  // When false, no busy-waits are injected (functional tests run fast);
  // transition counters are still maintained.
  bool inject_costs = true;

  // Cycles for one enclave transition with a single thread inside (§4.2:
  // "each enclave transition imposes a cost of 8,400 CPU cycles").
  uint64_t transition_base_cycles = 8400;

  // Per-extra-thread multiplier: cost = base * (1 + growth * (threads - 1)).
  // Calibrated so 48 threads inside cost ~20x the single-thread figure
  // (§6.8: 8,500 -> 170,000 cycles).
  double transition_thread_growth = 0.404;

  // EPC size limit; allocations beyond it pay `epc_paging_cycles` per 4 KiB
  // page on allocation (models EPC swapping).
  size_t epc_limit_bytes = 96 * 1024 * 1024;  // usable EPC of a 128 MiB EPC
  uint64_t epc_paging_cycles = 14000;

  // Relative slowdown of code EXECUTING inside the enclave (§2.5: "enclave
  // code pays a higher penalty for cache misses because the hardware must
  // encrypt and decrypt cache lines"). 0.25 = in-enclave work takes 25%
  // longer, in line with published SGX measurements for crypto-heavy
  // workloads.
  double execution_slowdown = 0.25;
};

// Aggregate transition statistics (monotonic; reset via ResetStats).
struct TransitionStats {
  uint64_t ecalls = 0;
  uint64_t ocalls = 0;
  uint64_t simulated_cycles = 0;
  uint64_t epc_pages_swapped = 0;
};

// A simulated enclave. Thread-safe: multiple untrusted threads may issue
// ecalls concurrently (as SGX permits, up to the TCS limit).
class Enclave {
 public:
  using CallFn = std::function<void(void* data)>;

  // `code_identity` stands in for the enclave binary: its SHA-256 becomes
  // MRENCLAVE. `signer` identifies the sealing authority (MRSIGNER).
  Enclave(EnclaveConfig config, BytesView code_identity, std::string signer);
  ~Enclave();

  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // --- interface definition (done once, before calls flow) ---

  // Registers a named entry point; returns its ecall id. Set
  // `charge_execution` to false for long-running dispatcher entry points
  // (the async-call worker loop) whose useful work is charged per handler
  // instead.
  int RegisterEcall(std::string name, CallFn fn, bool charge_execution = true);
  // Registers a named outside call; returns its ocall id.
  int RegisterOcall(std::string name, CallFn fn);

  // --- calls ---

  // Invokes ecall `id` with `data`. Injects the transition cost, runs the
  // handler on the calling thread, and injects the exit cost.
  Status Ecall(int id, void* data);

  // Invokes ocall `id` from inside an ecall handler. It is an error to call
  // this from a thread that is not inside the enclave.
  Status Ocall(int id, void* data);

  // True while the calling thread is executing inside an ecall handler.
  static bool InsideEnclave();

  // Runs `fn(data)` as in-enclave execution, charging the configured
  // execution slowdown proportionally to the thread CPU time consumed.
  // Ecall() uses this internally; the asynchronous-call runtime invokes it
  // directly for handlers running on persistent worker threads.
  void RunInside(const CallFn& fn, void* data);

  // Charges the execution slowdown for `consumed_cpu_nanos` of in-enclave
  // work measured externally (the async runtime attributes CPU per lthread
  // task, since thread CPU time spans interleaved tasks).
  void ChargeExecution(int64_t consumed_cpu_nanos);

  // --- identity ---

  const crypto::Sha256Digest& measurement() const { return measurement_; }
  const std::string& signer() const { return signer_; }

  // --- EPC accounting ---

  // Records `bytes` of in-enclave allocation; charges paging cost beyond
  // the EPC limit. Call TrackFree when the memory is released.
  void TrackAlloc(size_t bytes);
  void TrackFree(size_t bytes);
  size_t epc_in_use() const { return epc_in_use_.load(std::memory_order_relaxed); }

  // --- stats ---

  TransitionStats stats() const;
  void ResetStats();
  int threads_inside() const { return threads_inside_.load(std::memory_order_relaxed); }

  const EnclaveConfig& config() const { return config_; }
  // Number of registered ecalls/ocalls (Table 1 reports the interface size).
  size_t ecall_count() const { return ecalls_.size(); }
  size_t ocall_count() const { return ocalls_.size(); }

  // Direct handler access for the asynchronous-call runtime, which executes
  // handlers from worker threads that are already inside the enclave and
  // must therefore not pay another transition. Returns nullptr for bad ids.
  const CallFn* ecall_handler(int id) const {
    if (id < 0 || static_cast<size_t>(id) >= ecalls_.size()) {
      return nullptr;
    }
    return &ecalls_[static_cast<size_t>(id)].fn;
  }
  const CallFn* ocall_handler(int id) const {
    if (id < 0 || static_cast<size_t>(id) >= ocalls_.size()) {
      return nullptr;
    }
    return &ocalls_[static_cast<size_t>(id)].second;
  }

 private:
  void ChargeTransition();

  EnclaveConfig config_;
  crypto::Sha256Digest measurement_;
  std::string signer_;

  struct EcallEntry {
    std::string name;
    CallFn fn;
    bool charge_execution = true;
    obs::Counter* transitions = nullptr;  // sgx_ecall_transitions_total{ecall=...}
  };
  std::vector<EcallEntry> ecalls_;
  std::vector<std::pair<std::string, CallFn>> ocalls_;

  std::atomic<int> threads_inside_{0};
  std::atomic<uint64_t> stat_ecalls_{0};
  std::atomic<uint64_t> stat_ocalls_{0};
  std::atomic<uint64_t> stat_cycles_{0};
  std::atomic<uint64_t> stat_pages_{0};
  std::atomic<size_t> epc_in_use_{0};
  std::atomic<size_t> epc_peak_{0};
};

// RAII execution accounting for persistent in-enclave worker threads (the
// asyncall workers, the logger's checker thread): measures the thread CPU
// time spent in scope and charges the enclave's execution slowdown for it,
// like RunInside does for a single call. A null enclave charges nothing.
class ScopedExecutionCharge {
 public:
  explicit ScopedExecutionCharge(Enclave* enclave)
      : enclave_(enclave), start_(enclave != nullptr ? ThreadCpuNanos() : 0) {}
  ~ScopedExecutionCharge() {
    if (enclave_ != nullptr) {
      enclave_->ChargeExecution(ThreadCpuNanos() - start_);
    }
  }
  ScopedExecutionCharge(const ScopedExecutionCharge&) = delete;
  ScopedExecutionCharge& operator=(const ScopedExecutionCharge&) = delete;

 private:
  Enclave* enclave_;
  int64_t start_;
};

}  // namespace seal::sgx

#endif  // SRC_SGX_ENCLAVE_H_
