#include "src/sgx/enclave.h"

#include "src/common/clock.h"

namespace seal::sgx {

namespace {
// Tracks, per thread, whether execution is currently inside an ecall
// handler (and therefore allowed to issue ocalls).
thread_local int t_enclave_depth = 0;
}  // namespace

Enclave::Enclave(EnclaveConfig config, BytesView code_identity, std::string signer)
    : config_(config),
      measurement_(crypto::Sha256::Hash(code_identity)),
      signer_(std::move(signer)) {}

Enclave::~Enclave() = default;

int Enclave::RegisterEcall(std::string name, CallFn fn, bool charge_execution) {
  obs::Counter* transitions =
      &obs::Registry::Global().GetCounter("sgx_ecall_transitions_total{ecall=\"" + name + "\"}");
  ecalls_.push_back(
      EcallEntry{std::move(name), std::move(fn), charge_execution, transitions});
  return static_cast<int>(ecalls_.size()) - 1;
}

int Enclave::RegisterOcall(std::string name, CallFn fn) {
  ocalls_.emplace_back(std::move(name), std::move(fn));
  return static_cast<int>(ocalls_.size()) - 1;
}

void Enclave::ChargeTransition() {
  int threads = std::max(1, threads_inside_.load(std::memory_order_relaxed));
  double factor = 1.0 + config_.transition_thread_growth * static_cast<double>(threads - 1);
  auto cycles =
      static_cast<uint64_t>(static_cast<double>(config_.transition_base_cycles) * factor);
  stat_cycles_.fetch_add(cycles, std::memory_order_relaxed);
  SEAL_OBS_COUNTER("sgx_transitions_total").Increment();
  SEAL_OBS_COUNTER("sgx_injected_spin_cycles_total").Add(cycles);
  if (config_.inject_costs) {
    CycleSpinner::Spin(cycles);
  }
}

Status Enclave::Ecall(int id, void* data) {
  if (id < 0 || static_cast<size_t>(id) >= ecalls_.size()) {
    return InvalidArgument("unknown ecall id " + std::to_string(id));
  }
  stat_ecalls_.fetch_add(1, std::memory_order_relaxed);
  const EcallEntry& entry = ecalls_[static_cast<size_t>(id)];
  SEAL_OBS_COUNTER("sgx_ecalls_total").Increment();
  entry.transitions->Increment();
  threads_inside_.fetch_add(1, std::memory_order_relaxed);
  ChargeTransition();  // entry: CPU checks + TLB flush
  ++t_enclave_depth;
  if (entry.charge_execution) {
    RunInside(entry.fn, data);
  } else {
    entry.fn(data);
  }
  --t_enclave_depth;
  ChargeTransition();  // exit
  threads_inside_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

void Enclave::RunInside(const CallFn& fn, void* data) {
  if (!config_.inject_costs || config_.execution_slowdown <= 0) {
    fn(data);
    return;
  }
  int64_t cpu0 = ThreadCpuNanos();
  fn(data);
  ChargeExecution(ThreadCpuNanos() - cpu0);
}

void Enclave::ChargeExecution(int64_t consumed_cpu_nanos) {
  if (!config_.inject_costs || config_.execution_slowdown <= 0 || consumed_cpu_nanos <= 0) {
    return;
  }
  SpinCpuNanos(static_cast<int64_t>(static_cast<double>(consumed_cpu_nanos) *
                                    config_.execution_slowdown));
}

Status Enclave::Ocall(int id, void* data) {
  if (t_enclave_depth == 0) {
    return FailedPrecondition("ocall issued from outside the enclave");
  }
  if (id < 0 || static_cast<size_t>(id) >= ocalls_.size()) {
    return InvalidArgument("unknown ocall id " + std::to_string(id));
  }
  stat_ocalls_.fetch_add(1, std::memory_order_relaxed);
  SEAL_OBS_COUNTER("sgx_ocalls_total").Increment();
  // Leaving the enclave for the ocall and re-entering afterwards are both
  // transitions.
  ChargeTransition();
  int saved_depth = t_enclave_depth;
  t_enclave_depth = 0;
  threads_inside_.fetch_sub(1, std::memory_order_relaxed);
  ocalls_[static_cast<size_t>(id)].second(data);
  threads_inside_.fetch_add(1, std::memory_order_relaxed);
  t_enclave_depth = saved_depth;
  ChargeTransition();
  return Status::Ok();
}

bool Enclave::InsideEnclave() { return t_enclave_depth > 0; }

void Enclave::TrackAlloc(size_t bytes) {
  size_t now = epc_in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = epc_peak_.load(std::memory_order_relaxed);
  while (now > peak && !epc_peak_.compare_exchange_weak(peak, now)) {
  }
  SEAL_OBS_GAUGE("sgx_epc_in_use_bytes").Set(static_cast<int64_t>(now));
  SEAL_OBS_GAUGE("sgx_epc_high_water_bytes").SetMax(static_cast<int64_t>(now));
  if (now > config_.epc_limit_bytes) {
    size_t over = now - config_.epc_limit_bytes;
    size_t pages = std::min(over, bytes) / 4096 + 1;
    stat_pages_.fetch_add(pages, std::memory_order_relaxed);
    SEAL_OBS_COUNTER("sgx_epc_pages_swapped_total").Add(pages);
    uint64_t cycles = config_.epc_paging_cycles * pages;
    stat_cycles_.fetch_add(cycles, std::memory_order_relaxed);
    if (config_.inject_costs) {
      CycleSpinner::Spin(cycles);
    }
  }
}

void Enclave::TrackFree(size_t bytes) {
  size_t now = epc_in_use_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  SEAL_OBS_GAUGE("sgx_epc_in_use_bytes").Set(static_cast<int64_t>(now));
}

TransitionStats Enclave::stats() const {
  TransitionStats s;
  s.ecalls = stat_ecalls_.load(std::memory_order_relaxed);
  s.ocalls = stat_ocalls_.load(std::memory_order_relaxed);
  s.simulated_cycles = stat_cycles_.load(std::memory_order_relaxed);
  s.epc_pages_swapped = stat_pages_.load(std::memory_order_relaxed);
  return s;
}

void Enclave::ResetStats() {
  stat_ecalls_.store(0, std::memory_order_relaxed);
  stat_ocalls_.store(0, std::memory_order_relaxed);
  stat_cycles_.store(0, std::memory_order_relaxed);
  stat_pages_.store(0, std::memory_order_relaxed);
}

}  // namespace seal::sgx
