// Table 4: asynchronous enclave calls while varying the number of lthread
// tasks per enclave thread (S = 3 SGX threads).
//
// Paper result: throughput is flat (~1,700 req/s) across 12/24/36/48
// tasks, but too few tasks increase the latency seen by clients because an
// async-ecall must wait for a free user-level thread.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

void RunConfig(int lthread_tasks) {
  net::Network network;
  core::LibSealOptions options = LibSealBenchOptions(Variant::kLibSealProcess, "");
  options.async.enclave_threads = 3;
  options.async.tasks_per_thread = lthread_tasks;
  core::LibSealRuntime runtime(options, nullptr);
  if (!runtime.Init().ok()) {
    return;
  }
  services::LibSealTransport transport(&runtime);
  services::HttpServer server(&network, {.address = "web:443"}, &transport,
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return;
  }
  tls::TlsConfig client_tls = ClientTls();
  LoadOptions load;
  load.clients = 8;
  load.seconds = 1.2;
  load.keep_alive = false;
  LoadResult result = RunClosedLoop(
      &network, "web:443", client_tls,
      [](int, uint64_t) { return services::MakeContentRequest(1024); }, load);
  std::printf("%14d %14.0f %12.2f %12.2f\n", lthread_tasks, result.throughput_rps,
              result.mean_latency_ms, result.p95_latency_ms);
  server.Stop();
  runtime.Shutdown();
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Table 4: varying lthread tasks per thread (S = 3 SGX threads) ===\n");
  std::printf("%14s %14s %12s %12s\n", "lthread tasks", "req/s", "mean ms", "p95 ms");
  for (int t : {12, 24, 36, 48}) {
    RunConfig(t);
  }
  std::printf("\npaper: throughput flat (~1700 req/s); too few tasks raise client latency\n");
  return 0;
}
