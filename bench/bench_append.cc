// Encrypted audit-append fast path: record-level crypto cost (cached GCM
// context + deterministic nonces + SealInto vs the per-record rebuild the
// seed shipped with) and the end-to-end sharded/batched logger append at
// 1-4 threads. Emits BENCH_append.json for the perf trajectory; --quick
// shrinks iteration counts for the CI smoke step.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/crypto/drbg.h"
#include "src/crypto/gcm.h"
#include "src/services/git_service.h"
#include "src/ssm/git_ssm.h"

namespace seal::bench {
namespace {

// Representative serialised LogEntry size (a git `updates` tuple).
constexpr size_t kRecordSize = 120;

// The seed's per-record composition: fresh context, DRBG nonce, allocating
// Seal. Kept here as the before-measurement the ≥3x acceptance criterion
// compares against.
double LegacyRecordNanos(const Bytes& key, const Bytes& record, int iters) {
  Bytes sink;
  int64_t start = NowNanos();
  for (int i = 0; i < iters; ++i) {
    crypto::Aes128Gcm gcm(key);
    Bytes nonce = crypto::ProcessDrbg().Generate(crypto::kGcmNonceSize);
    Bytes out = nonce;
    seal::Append(out, gcm.Seal(nonce, {}, record));
    sink = std::move(out);
  }
  int64_t elapsed = NowNanos() - start;
  if (sink.empty()) {
    std::printf("unreachable\n");
  }
  return static_cast<double>(elapsed) / iters;
}

// The current path: one cached context + lock-free nonce sequence + SealInto
// into a reusable frame buffer (what AuditLog::EncodeRecord does).
double CachedRecordNanos(const Bytes& key, const Bytes& record, int iters) {
  crypto::Aes128Gcm gcm(key);
  crypto::GcmNonceSequence nonces;
  Bytes out(crypto::kGcmNonceSize + record.size() + crypto::kGcmTagSize);
  int64_t start = NowNanos();
  for (int i = 0; i < iters; ++i) {
    nonces.Next(out.data());
    gcm.SealInto(BytesView(out.data(), crypto::kGcmNonceSize), {}, record,
                 out.data() + crypto::kGcmNonceSize);
  }
  int64_t elapsed = NowNanos() - start;
  return static_cast<double>(elapsed) / iters;
}

struct LoggerRunResult {
  double ns_per_pair = 0;
  double pairs_per_sec = 0;
};

// End-to-end OnPair cost on the encrypted disk path, `threads` connections
// racing the sequencer.
LoggerRunResult LoggerAppendRun(int threads, int pairs_per_thread) {
  core::AuditLogOptions log_options;
  log_options.mode = core::PersistenceMode::kDisk;
  log_options.path = TempPath("bench_append_" + std::to_string(threads) + ".log");
  log_options.encryption_key = FromHex("000102030405060708090a0b0c0d0e0f");
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 0;
  core::AuditLogger logger(std::make_unique<ssm::GitModule>(), log_options, logger_options,
                           crypto::EcdsaPrivateKey::FromSeed(ToBytes("bench-append")));
  if (!logger.Init().ok()) {
    return {};
  }

  // Pre-serialise the traffic so the run measures the logger, not the
  // backend.
  std::vector<std::string> requests(static_cast<size_t>(threads));
  std::vector<std::string> responses(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    services::GitBackend backend;
    auto req = services::MakeGitPush("r", {{"b" + std::to_string(t), "c1"}});
    auto rsp = backend.Handle(req);
    requests[static_cast<size_t>(t)] = req.Serialize();
    responses[static_cast<size_t>(t)] = rsp.Serialize();
  }

  int64_t start = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < pairs_per_thread; ++i) {
        (void)logger.OnPair(static_cast<uint64_t>(t), requests[static_cast<size_t>(t)],
                            responses[static_cast<size_t>(t)], false);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  int64_t elapsed = NowNanos() - start;
  uint64_t total = static_cast<uint64_t>(threads) * static_cast<uint64_t>(pairs_per_thread);
  LoggerRunResult result;
  result.ns_per_pair = static_cast<double>(elapsed) / static_cast<double>(total);
  result.pairs_per_sec = static_cast<double>(total) / (static_cast<double>(elapsed) / 1e9);
  return result;
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;
  using namespace seal;

  bool quick = false;
  std::string out_path = "BENCH_append.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int record_iters = quick ? 20000 : 200000;
  const int pairs_per_thread = quick ? 2000 : 10000;

  std::printf("=== encrypted audit-append fast path ===\n");
  Bytes key = FromHex("000102030405060708090a0b0c0d0e0f");
  Bytes record(kRecordSize);
  for (size_t i = 0; i < record.size(); ++i) {
    record[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  // Warm up (DRBG instantiation, GHASH reduce table).
  (void)LegacyRecordNanos(key, record, 1000);
  (void)CachedRecordNanos(key, record, 1000);

  double legacy_ns = LegacyRecordNanos(key, record, record_iters);
  double cached_ns = CachedRecordNanos(key, record, record_iters);
  double speedup = legacy_ns / cached_ns;
  std::printf("record encrypt (%zu B): legacy (fresh ctx + DRBG nonce) %8.0f ns/record\n",
              kRecordSize, legacy_ns);
  std::printf("record encrypt (%zu B): cached ctx + nonce seq          %8.0f ns/record\n",
              kRecordSize, cached_ns);
  std::printf("speedup: %.1fx (acceptance floor: 3x)\n\n", speedup);

  std::printf("logger OnPair, encrypted disk, no counter latency (%d pairs/thread):\n",
              pairs_per_thread);
  std::vector<LoggerRunResult> runs;
  for (int threads = 1; threads <= 4; ++threads) {
    runs.push_back(LoggerAppendRun(threads, pairs_per_thread));
    std::printf("  %d thread%s: %8.0f ns/pair, %9.0f pairs/s\n", threads,
                threads == 1 ? " " : "s", runs.back().ns_per_pair, runs.back().pairs_per_sec);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"append\",\n"
                 "  \"record_bytes\": %zu,\n"
                 "  \"ns_per_record_legacy\": %.1f,\n"
                 "  \"ns_per_record_cached\": %.1f,\n"
                 "  \"record_speedup\": %.2f,\n"
                 "  \"logger_ns_per_pair\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"logger_pairs_per_sec\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 kRecordSize, legacy_ns, cached_ns, speedup, runs[0].ns_per_pair,
                 runs[1].ns_per_pair, runs[2].ns_per_pair, runs[3].ns_per_pair,
                 runs[0].pairs_per_sec, runs[1].pairs_per_sec, runs[2].pairs_per_sec,
                 runs[3].pairs_per_sec, quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_append");
  return speedup >= 3.0 ? 0 : 1;
}
