// Figure 5a: Git throughput and latency with and without LibSEAL.
//
// Paper setup: Apache in reverse-proxy mode linked against LibSEAL, Git
// backends behind it; the first few hundred commits of real repositories
// are replayed while client count increases. Here the Apache stand-in
// (HttpServer) fronts an in-process GitBackend and a synthetic commit
// replay drives it. Four configurations: native (LibreSSL), LibSEAL
// without logging (process), in-memory log (mem), persisted log (disk).
//
// Paper result: max throughput 491 req/s native; -4% process, -8% mem,
// -14% disk; latency rises sharply at saturation.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/git_service.h"
#include "src/services/http_server.h"
#include "src/ssm/git_ssm.h"

namespace seal::bench {
namespace {

double RunVariant(Variant variant) {
  net::Network network;
  services::GitBackend backend;

  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig server_tls = ServerTls();
  if (variant == Variant::kNative) {
    transport = std::make_unique<services::PlainTransport>(server_tls);
  } else {
    std::unique_ptr<core::ServiceModule> module;
    if (variant != Variant::kLibSealProcess) {
      module = std::make_unique<ssm::GitModule>();
    }
    runtime = std::make_unique<core::LibSealRuntime>(
        LibSealBenchOptions(variant, TempPath("fig5a.log"), /*check_interval=*/25),
        std::move(module));
    if (!runtime->Init().ok()) {
      std::printf("  init failed\n");
      return 0;
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }

  // The real Git backends do ~milliseconds of work per request (the paper
  // saturates at 491 req/s on 4 cores); model that with a fixed
  // per-request compute cost so relative overheads are meaningful.
  services::HttpServer server(
      &network, {.address = "git:443", .per_request_compute_nanos = 2'000'000},
      transport.get(), [&](const http::HttpRequest& r) { return backend.Handle(r); });
  if (!server.Start().ok()) {
    return 0;
  }

  // Pre-seed the repository so fetches always have refs to advertise.
  backend.Handle(services::MakeGitPush("repo", {{"branch-0", "c-seed"}}));

  tls::TlsConfig client_tls = ClientTls();
  std::printf("%-16s %8s %10s %10s %10s\n", VariantName(variant), "clients", "req/s",
              "mean ms", "p95 ms");
  double best = 0;
  for (int clients : {1, 2, 4, 8, 16}) {
    // One workload (deterministic commit replay) per client.
    std::vector<std::unique_ptr<services::GitWorkload>> workloads;
    for (int c = 0; c < clients; ++c) {
      workloads.push_back(std::make_unique<services::GitWorkload>(
          "repo", /*branches=*/6, /*seed=*/static_cast<uint64_t>(c) + 1));
    }
    std::mutex workload_mutex;
    LoadOptions load;
    load.clients = clients;
    load.seconds = 1.2;
    LoadResult result = RunClosedLoop(
        &network, "git:443", client_tls,
        [&](int c, uint64_t) {
          std::lock_guard<std::mutex> lock(workload_mutex);
          return workloads[static_cast<size_t>(c)]->Next();
        },
        load);
    best = std::max(best, result.throughput_rps);
    std::printf("%-16s %8d %10.0f %10.2f %10.2f\n", "", clients, result.throughput_rps,
                result.mean_latency_ms, result.p95_latency_ms);
  }
  server.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
  return best;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 5a: Git throughput/latency (native vs LibSEAL) ===\n");
  double native = RunVariant(Variant::kNative);
  double process = RunVariant(Variant::kLibSealProcess);
  double mem = RunVariant(Variant::kLibSealMem);
  double disk = RunVariant(Variant::kLibSealDisk);
  std::printf("\nmax throughput: native=%.0f process=%.0f (%.0f%%) mem=%.0f (%.0f%%) "
              "disk=%.0f (%.0f%%)\n",
              native, process, 100 * (1 - process / native), mem, 100 * (1 - mem / native), disk,
              100 * (1 - disk / native));
  std::printf("paper: 491 req/s native; overheads 4%% (process), 8%% (mem), 14%% (disk)\n");
  return 0;
}
