// Figure 5c: Dropbox request latency through the Squid proxy.
//
// Paper setup: all Dropbox traffic is routed through a Squid proxy linked
// against LibSEAL; the WAN link to Dropbox has ~76 ms average latency, so
// the enclave and logging overheads (µs-ms) are invisible: medians move
// from 363 ms (native) to 370 ms (mem) and 377 ms (disk).
//
// Here the origin is the simulated Dropbox service behind a 76 ms one-way
// link; the proxy terminates client TLS with each variant.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/services/dropbox_service.h"
#include "src/services/http_server.h"
#include "src/services/proxy.h"
#include "src/ssm/dropbox_ssm.h"

namespace seal::bench {
namespace {

constexpr int64_t kWanLatencyNanos = 38'000'000;  // 38 ms one way = 76 ms RTT

struct LatencyStats {
  double median_ms = 0;
  double q1_ms = 0;
  double q3_ms = 0;
};

LatencyStats Summarise(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  LatencyStats stats;
  if (!samples.empty()) {
    stats.median_ms = samples[samples.size() / 2];
    stats.q1_ms = samples[samples.size() / 4];
    stats.q3_ms = samples[samples.size() * 3 / 4];
  }
  return stats;
}

void RunVariant(Variant variant) {
  net::Network network;
  services::DropboxService dropbox;
  tls::TlsConfig origin_tls = ServerTls();
  services::PlainTransport origin_transport(origin_tls);
  services::HttpServer origin(&network, {.address = "dropbox:443"}, &origin_transport,
                              [&](const http::HttpRequest& r) { return dropbox.Handle(r); });
  if (!origin.Start().ok()) {
    return;
  }

  std::unique_ptr<core::LibSealRuntime> runtime;
  std::unique_ptr<services::ServerTransport> transport;
  tls::TlsConfig proxy_tls = ServerTls();
  if (variant == Variant::kNative) {
    transport = std::make_unique<services::PlainTransport>(proxy_tls);
  } else {
    runtime = std::make_unique<core::LibSealRuntime>(
        LibSealBenchOptions(variant, TempPath("fig5c.log"), /*check_interval=*/100),
        std::make_unique<ssm::DropboxModule>());
    if (!runtime->Init().ok()) {
      return;
    }
    transport = std::make_unique<services::LibSealTransport>(runtime.get());
  }
  services::ProxyServer::Options proxy_options;
  proxy_options.listen_address = "proxy:3128";
  proxy_options.upstream_address = "dropbox:443";
  proxy_options.upstream_latency_nanos = kWanLatencyNanos;
  proxy_options.upstream_tls.verify_peer = false;  // §6.4: cert checks disabled
  services::ProxyServer proxy(&network, proxy_options, transport.get());
  if (!proxy.Start().ok()) {
    return;
  }

  tls::TlsConfig client_tls = ClientTls();
  auto client = services::HttpsClient::Connect(&network, "proxy:3128", client_tls);
  if (!client.ok()) {
    return;
  }
  services::DropboxWorkload workload("acct", 5);

  constexpr int kSamples = 24;
  std::vector<double> commit_latencies;
  std::vector<double> list_latencies;
  for (int i = 0; i < kSamples * 2; ++i) {
    // Alternate commit_batch and list so both message kinds are measured.
    http::HttpRequest req =
        (i % 2 == 0)
            ? services::MakeCommitBatch(
                  "acct", "h", {services::DropboxCommit{"f" + std::to_string(i), "bl", 100}})
            : services::MakeListRequest("acct");
    int64_t t0 = NowNanos();
    auto rsp = (*client)->RoundTrip(req);
    int64_t t1 = NowNanos();
    if (rsp.ok()) {
      (i % 2 == 0 ? commit_latencies : list_latencies)
          .push_back(static_cast<double>(t1 - t0) / 1e6);
    }
  }
  (*client)->Close();
  LatencyStats commit = Summarise(commit_latencies);
  LatencyStats list = Summarise(list_latencies);
  std::printf("%-16s commit_batch median %6.1f ms [q1 %6.1f, q3 %6.1f]   "
              "list median %6.1f ms [q1 %6.1f, q3 %6.1f]\n",
              VariantName(variant), commit.median_ms, commit.q1_ms, commit.q3_ms, list.median_ms,
              list.q1_ms, list.q3_ms);
  proxy.Stop();
  origin.Stop();
  if (runtime != nullptr) {
    runtime->Shutdown();
  }
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Figure 5c: Dropbox latency through the proxy (76 ms WAN RTT) ===\n");
  RunVariant(Variant::kNative);
  RunVariant(Variant::kLibSealMem);
  RunVariant(Variant::kLibSealDisk);
  std::printf("\npaper: commit_batch medians 363 / 370 / 377 ms -- marginal increases, the\n"
              "WAN RTT dominates and LibSEAL does not impact Dropbox latency\n");
  return 0;
}
