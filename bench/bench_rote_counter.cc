// §5.1 ablation: why LibSEAL replaces the SGX hardware monotonic counter
// with the distributed ROTE protocol for rollback protection.
//
// The paper: hardware counters "have poor performance and limited
// lifespans"; ROTE trades them for one cluster round trip per log commit.
// This ablation measures the commit rate an audit log can sustain with
// each rollback-protection backend, and the effect of the ROTE cluster's
// parameters (f, RTT).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/rote/rote.h"
#include "src/sgx/counter.h"

namespace seal::bench {
namespace {

constexpr int kIncrements = 40;

double MeasureHardware(int64_t latency_ms) {
  sgx::HardwareMonotonicCounter::Options options;
  options.increment_latency_nanos = latency_ms * 1'000'000;
  sgx::HardwareMonotonicCounter counter(options);
  int64_t t0 = NowNanos();
  for (int i = 0; i < kIncrements; ++i) {
    (void)counter.Increment();
  }
  return kIncrements / (static_cast<double>(NowNanos() - t0) / 1e9);
}

double MeasureRote(int f, int64_t rtt_us) {
  rote::RoteCounter::Options options;
  options.f = f;
  options.network_rtt_nanos = rtt_us * 1000;
  rote::RoteCounter counter(options);
  int64_t t0 = NowNanos();
  for (int i = 0; i < kIncrements * 20; ++i) {
    (void)counter.Increment();
  }
  return (kIncrements * 20) / (static_cast<double>(NowNanos() - t0) / 1e9);
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== §5.1 ablation: rollback-protection backends (counter increments/s) ===\n");
  std::printf("%-44s %14s\n", "backend", "increments/s");
  // SGX PSE counters take ~80-250 ms per write.
  for (int64_t ms : {80, 150, 250}) {
    std::printf("hardware monotonic counter (%3lld ms/write) %14.1f\n",
                static_cast<long long>(ms), MeasureHardware(ms));
  }
  for (int f : {1, 2}) {
    for (int64_t rtt : {200, 500, 1000}) {
      std::printf("ROTE f=%d, n=%d, rtt=%4lld us               %14.1f\n", f, 3 * f + 1,
                  static_cast<long long>(rtt), MeasureRote(f, rtt));
    }
  }
  std::printf("\none counter round runs per request/response pair in LibSEAL-disk mode:\n"
              "hardware counters cap the service at ~4-12 req/s and wear out after ~1M\n"
              "writes; a same-cluster ROTE round sustains thousands of commits/s.\n");
  return 0;
}
