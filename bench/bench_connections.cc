// Connection scaling: blocking worker pool vs the event-driven reactor.
//
// Opens a fleet of mostly-idle keep-alive HTTPS connections and drives a
// small set of active clients through the same server, sweeping the fleet
// size. The blocking pool caps live connections at its worker count (idle
// connections each pin a thread); the reactor multiplexes every connection
// onto a fixed set of lthread-scheduler threads, so the fleet can grow by
// orders of magnitude while req/s stays flat and tail latency bounded.
//
// Emits BENCH_connections.json. --quick shrinks the sweep for CI.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

struct SweepPoint {
  size_t conns = 0;       // idle keep-alive fleet size actually established
  size_t requested = 0;   // fleet size asked for
  double rps = 0;         // active-client throughput with the fleet idling
  double p99_ms = 0;      // active-client tail latency
  bool idle_alive = true; // sampled idle connections still serviceable
};

// Opens `count` keep-alive connections (parallelised: the handshakes are
// the expensive part) and returns the connected clients.
std::vector<std::unique_ptr<services::HttpsClient>> OpenFleet(net::Network* network,
                                                              const tls::TlsConfig& client_tls,
                                                              size_t count) {
  constexpr size_t kOpeners = 8;
  std::vector<std::unique_ptr<services::HttpsClient>> fleet(count);
  std::vector<std::thread> openers;
  for (size_t t = 0; t < kOpeners; ++t) {
    openers.emplace_back([&, t] {
      for (size_t i = t; i < count; i += kOpeners) {
        auto client = services::HttpsClient::Connect(network, "web:443", client_tls);
        if (client.ok()) {
          fleet[i] = std::move(*client);
        }
      }
    });
  }
  for (auto& o : openers) {
    o.join();
  }
  // Compact out the failures (the blocking pool refuses nothing at dial
  // time, but a full accept queue can starve handshakes past the worker
  // count; those clients time out of this fleet entirely).
  std::vector<std::unique_ptr<services::HttpsClient>> connected;
  for (auto& c : fleet) {
    if (c != nullptr) {
      connected.push_back(std::move(c));
    }
  }
  return connected;
}

SweepPoint MeasureWithIdleFleet(net::Network* network, const tls::TlsConfig& client_tls,
                                size_t fleet_size, double seconds) {
  SweepPoint point;
  point.requested = fleet_size;
  auto fleet = OpenFleet(network, client_tls, fleet_size);
  point.conns = fleet.size();

  // Drive 4 separate active connections while the fleet idles.
  LoadOptions load;
  load.clients = 4;
  load.seconds = seconds;
  load.keep_alive = true;
  LoadResult result = RunClosedLoop(
      network, "web:443", client_tls,
      [](int, uint64_t) { return services::MakeContentRequest(1024, true); }, load);
  point.rps = result.throughput_rps;
  point.p99_ms = result.p95_latency_ms;  // p95 from the driver...

  // ...but the acceptance criterion is p99; recompute it from a dedicated
  // calibrated run on one connection (cheap, stable on one core).
  {
    auto client = services::HttpsClient::Connect(network, "web:443", client_tls);
    if (client.ok()) {
      std::vector<double> lat;
      constexpr int kProbes = 200;
      for (int i = 0; i < kProbes; ++i) {
        int64_t t0 = NowNanos();
        if (!(*client)->RoundTrip(services::MakeContentRequest(1024, true)).ok()) {
          break;
        }
        lat.push_back(static_cast<double>(NowNanos() - t0) / 1e6);
      }
      (*client)->Close();
      if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        point.p99_ms = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
      }
    }
  }

  // The idle fleet must still be live: sample a few connections spread
  // across it (first, last, and strides between) with a fresh request.
  if (!fleet.empty()) {
    for (size_t s = 0; s < 8; ++s) {
      size_t idx = s * (fleet.size() - 1) / 7;
      if (!fleet[idx]->RoundTrip(services::MakeContentRequest(64, true)).ok()) {
        point.idle_alive = false;
        break;
      }
    }
  }
  for (auto& c : fleet) {
    c->Close();
  }
  return point;
}

std::vector<SweepPoint> RunMode(bool event_driven, const std::vector<size_t>& sweep,
                                double seconds) {
  net::Network network;
  tls::TlsConfig server_tls = ServerTls();
  services::PlainTransport transport(server_tls);
  services::HttpServer::Options options;
  options.address = "web:443";
  options.event_driven = event_driven;
  options.worker_threads = 16;
  options.reactor_threads = 2;
  options.reactor_task_stack_size = 64 * 1024;
  services::HttpServer server(&network, options, &transport, services::ServeStaticContent);
  std::vector<SweepPoint> points;
  if (!server.Start().ok()) {
    return points;
  }
  tls::TlsConfig client_tls = ClientTls();
  std::printf("%-10s %10s %10s %12s %10s %6s\n", event_driven ? "reactor" : "blocking",
              "requested", "conns", "rps", "p99_ms", "idle");
  for (size_t fleet_size : sweep) {
    SweepPoint p = MeasureWithIdleFleet(&network, client_tls, fleet_size, seconds);
    std::printf("%-10s %10zu %10zu %12.0f %10.3f %6s\n", "", p.requested, p.conns, p.rps,
                p.p99_ms, p.idle_alive ? "ok" : "DEAD");
    points.push_back(p);
  }
  server.Stop();
  return points;
}

void EmitSeries(std::FILE* f, const char* name, const std::vector<SweepPoint>& points) {
  std::fprintf(f, "  \"%s\": [", name);
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "%s\n    {\"requested\": %zu, \"conns\": %zu, \"rps\": %.1f, "
                 "\"p99_ms\": %.3f, \"idle_alive\": %s}",
                 i == 0 ? "" : ",", p.requested, p.conns, p.rps, p.p99_ms,
                 p.idle_alive ? "true" : "false");
  }
  std::fprintf(f, "\n  ]");
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;

  bool quick = false;
  std::string out_path = "BENCH_connections.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const double seconds = quick ? 0.5 : 1.5;
  // The blocking pool (16 workers) cannot hold more than 16 live
  // connections: every idle keep-alive connection pins a worker, and a
  // fleet of 16 starves the active clients outright (their handshakes
  // queue forever). Stop at 12 so the measurement itself can run. The
  // reactor sweep goes orders of magnitude past the pool's ceiling on the
  // same two shard threads.
  const std::vector<size_t> blocking_sweep = {4, 12};
  const std::vector<size_t> reactor_sweep =
      quick ? std::vector<size_t>{64, 512, 2048}
            : std::vector<size_t>{1024, 4096, 20480};

  std::printf("=== connection scaling: blocking pool (16 workers) vs reactor (2 threads) ===\n");
  std::printf("host hardware concurrency: %u core(s)\n\n",
              std::thread::hardware_concurrency());

  auto blocking = RunMode(false, blocking_sweep, seconds);
  std::printf("\n");
  auto reactor = RunMode(true, reactor_sweep, seconds);

  // Acceptance: the reactor holds >= 10x the blocking pool's idle
  // connections with every sampled idle connection still serviceable, and
  // req/s stays flat (largest fleet >= half the smallest fleet's rate).
  bool pass = !blocking.empty() && !reactor.empty();
  if (pass) {
    size_t blocking_max = 0;
    for (const auto& p : blocking) {
      if (p.idle_alive && p.conns > blocking_max) {
        blocking_max = p.conns;
      }
    }
    const SweepPoint& small = reactor.front();
    const SweepPoint& big = reactor.back();
    pass = big.idle_alive && big.conns >= 10 * blocking_max &&
           big.conns + 8 >= big.requested && big.rps >= 0.5 * small.rps;
    std::printf("\nreactor held %zu idle conns (blocking pool: %zu), rps %0.f -> %.0f\n",
                big.conns, blocking_max, small.rps, big.rps);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"connections\",\n");
    EmitSeries(f, "blocking", blocking);
    std::fprintf(f, ",\n");
    EmitSeries(f, "reactor", reactor);
    std::fprintf(f, ",\n  \"quick\": %s,\n  \"pass\": %s\n}\n", quick ? "true" : "false",
                 pass ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_connections");
  return pass ? 0 : 1;
}
