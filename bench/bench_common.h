// Shared infrastructure for the paper-reproduction benchmarks: a PKI, the
// LibSEAL configuration variants used in §6, and a closed-loop load driver
// that reports throughput and latency like the paper's figures.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/libseal.h"
#include "src/obs/obs.h"
#include "src/net/net.h"
#include "src/services/https_client.h"
#include "src/tls/x509.h"

namespace seal::bench {

struct BenchPki {
  BenchPki() {
    ca = tls::MakeSelfSignedCa("Bench CA", crypto::EcdsaPrivateKey::FromSeed(ToBytes("bench-ca")));
    server_key = crypto::EcdsaPrivateKey::FromSeed(ToBytes("bench-server"));
    server_cert = tls::IssueCertificate(ca, "bench.service", server_key.public_key(), 2);
  }
  tls::CertifiedKey ca;
  crypto::EcdsaPrivateKey server_key;
  tls::Certificate server_cert;
};

inline BenchPki& Pki() {
  static BenchPki pki;
  return pki;
}

inline tls::TlsConfig ServerTls() {
  tls::TlsConfig config;
  config.certificate = Pki().server_cert;
  config.private_key = Pki().server_key;
  return config;
}

inline tls::TlsConfig ClientTls() {
  tls::TlsConfig config;
  config.trusted_roots = {Pki().ca.cert};
  return config;
}

// The evaluation configurations of §6.4. Enclave cost injection is ON so
// the overhead shapes match the paper's.
enum class Variant {
  kNative,         // plain TLS ("LibreSSL")
  kLibSealProcess, // TLS in the enclave, no logging
  kLibSealMem,     // + audit log in the in-enclave database
  kLibSealDisk,    // + synchronous persistence and counter rounds
};

inline const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kNative:
      return "native";
    case Variant::kLibSealProcess:
      return "LibSEAL-process";
    case Variant::kLibSealMem:
      return "LibSEAL-mem";
    case Variant::kLibSealDisk:
      return "LibSEAL-disk";
  }
  return "?";
}

inline core::LibSealOptions LibSealBenchOptions(Variant variant, const std::string& disk_path,
                                                size_t check_interval = 25) {
  core::LibSealOptions options;
  options.enclave.inject_costs = true;
  options.use_async_calls = true;
  options.async.enclave_threads = 3;
  options.async.tasks_per_thread = 48;
  options.logger.check_interval = check_interval;
  options.audit_log.counter_options.inject_latency = true;
  options.audit_log.counter_options.network_rtt_nanos = 200'000;
  if (variant == Variant::kLibSealDisk) {
    options.audit_log.mode = core::PersistenceMode::kDisk;
    options.audit_log.path = disk_path;
  }
  options.tls = ServerTls();
  return options;
}

// Closed-loop load result.
struct LoadResult {
  double throughput_rps = 0;
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p95_latency_ms = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
};

// Per-client request factory: called with (client_index, request_index).
using RequestFactory = std::function<http::HttpRequest(int, uint64_t)>;

struct LoadOptions {
  int clients = 4;
  double seconds = 1.5;
  bool keep_alive = true;  // false = fresh TLS connection per request
  int64_t link_latency_nanos = 0;
  int64_t link_bandwidth_bytes_per_sec = 0;  // 0 = unlimited
  // Optional fixed request count per client (overrides `seconds`).
  uint64_t requests_per_client = 0;
  // Non-keep-alive mode only: when set, fresh connections offer the
  // endpoint's remembered TLS session on `resumption_percent` of requests
  // (abbreviated handshake when the server still caches it).
  services::ClientSessionStore* session_store = nullptr;
  int resumption_percent = 100;
};

inline LoadResult RunClosedLoop(net::Network* network, const std::string& address,
                                const tls::TlsConfig& client_tls, const RequestFactory& factory,
                                const LoadOptions& options) {
  std::atomic<uint64_t> total_requests{0};
  std::atomic<uint64_t> total_errors{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(options.clients));
  int64_t start = NowNanos();
  int64_t deadline = start + static_cast<int64_t>(options.seconds * 1e9);

  std::vector<std::thread> threads;
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      std::unique_ptr<services::HttpsClient> client;
      uint64_t i = 0;
      for (;;) {
        if (options.requests_per_client > 0) {
          if (i >= options.requests_per_client) {
            break;
          }
        } else if (NowNanos() >= deadline) {
          break;
        }
        int64_t t0 = NowNanos();
        bool ok = false;
        if (options.keep_alive) {
          if (client == nullptr) {
            auto conn = services::HttpsClient::Connect(network, address, client_tls,
                                                       options.link_latency_nanos,
                                                       options.link_bandwidth_bytes_per_sec);
            if (!conn.ok()) {
              total_errors.fetch_add(1);
              break;
            }
            client = std::move(*conn);
          }
          auto rsp = client->RoundTrip(factory(c, i));
          ok = rsp.ok();
          if (!ok) {
            client.reset();
          }
        } else {
          services::ClientSessionStore* sessions =
              (options.session_store != nullptr &&
               static_cast<int>(i % 100) < options.resumption_percent)
                  ? options.session_store
                  : nullptr;
          auto rsp = services::OneShotRequest(network, address, client_tls, factory(c, i),
                                              options.link_latency_nanos,
                                              options.link_bandwidth_bytes_per_sec, sessions);
          ok = rsp.ok();
        }
        int64_t t1 = NowNanos();
        if (ok) {
          total_requests.fetch_add(1);
          latencies[static_cast<size_t>(c)].push_back(static_cast<double>(t1 - t0) / 1e6);
        } else {
          total_errors.fetch_add(1);
        }
        ++i;
      }
      if (client != nullptr) {
        client->Close();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  int64_t elapsed = NowNanos() - start;

  LoadResult result;
  result.requests = total_requests.load();
  result.errors = total_errors.load();
  result.throughput_rps = static_cast<double>(result.requests) /
                          (static_cast<double>(elapsed) / 1e9);
  std::vector<double> all;
  for (const auto& v : latencies) {
    all.insert(all.end(), v.begin(), v.end());
  }
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    double sum = 0;
    for (double l : all) {
      sum += l;
    }
    result.mean_latency_ms = sum / static_cast<double>(all.size());
    result.p50_latency_ms = all[all.size() / 2];
    result.p95_latency_ms = all[std::min(all.size() - 1, all.size() * 95 / 100)];
  }
  return result;
}

inline std::string TempPath(const std::string& name) { return "/tmp/libseal_bench_" + name; }

// Dumps the process-wide seal::obs registry in Prometheus text format.
// Counters are cumulative across the whole binary, so benches that need
// per-run numbers should diff Registry::Global().TakeSnapshot() around the
// run instead of reading the dump.
inline void PrintMetricsSnapshot(const char* heading) {
  std::printf("\n--- metrics snapshot: %s ---\n%s", heading,
              obs::Registry::Global().ExportText().c_str());
}

}  // namespace seal::bench

#endif  // BENCH_BENCH_COMMON_H_
