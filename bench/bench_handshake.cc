// TLS handshake fast path: full ECDHE-ECDSA handshake vs the abbreviated
// (session-resumption) handshake, plus a resumption-ratio sweep showing how
// connection-setup cost falls as the client fleet re-offers cached sessions.
// Emits BENCH_handshake.json for the perf trajectory; --quick shrinks
// iteration counts for the CI smoke step.
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/tls/session_cache.h"

namespace seal::bench {
namespace {

// A persistent server-side handshake loop: stream pairs are handed over one
// at a time so the timed loop never pays per-iteration thread spawns.
class HandshakeServer {
 public:
  explicit HandshakeServer(const tls::TlsConfig* config)
      : config_(config), thread_([this] { Loop(); }) {}

  ~HandshakeServer() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void Submit(net::StreamPtr stream) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stream_ = std::move(stream);
      has_work_ = true;
    }
    cv_.notify_all();
  }

  // Blocks until the submitted handshake has fully completed server-side.
  void WaitIdle() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !has_work_; });
  }

 private:
  void Loop() {
    for (;;) {
      net::StreamPtr stream;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || has_work_; });
        if (stopping_ && !has_work_) {
          return;
        }
        stream = std::move(stream_);
      }
      tls::StreamBio bio(stream.get());
      tls::TlsConnection conn(&bio, config_, tls::Role::kServer);
      (void)conn.Handshake();
      conn.Close();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        has_work_ = false;
      }
      cv_.notify_all();
    }
  }

  const tls::TlsConfig* config_;
  std::mutex mutex_;
  std::condition_variable cv_;
  net::StreamPtr stream_;
  bool has_work_ = false;
  bool stopping_ = false;
  std::thread thread_;
};

struct SweepPoint {
  int resumption_percent = 0;
  double ns_per_handshake = 0;
  double handshakes_per_sec = 0;
};

// Runs `iters` handshakes against `server`, offering the cached session on
// `resumption_percent` of them. Returns mean wall-clock ns per completed
// handshake (both sides done).
double HandshakeRunNanos(net::Network* network, HandshakeServer* server,
                         const tls::TlsConfig& client_config, const tls::TlsSession& session,
                         int resumption_percent, int iters) {
  (void)network;
  int64_t start = NowNanos();
  for (int i = 0; i < iters; ++i) {
    auto [client_stream, server_stream] = net::CreateStreamPair();
    server->Submit(std::move(server_stream));
    tls::StreamBio bio(client_stream.get());
    tls::TlsConnection client(&bio, &client_config, tls::Role::kClient);
    if (i % 100 < resumption_percent) {
      client.OfferSession(session);
    }
    (void)client.Handshake();
    client.Close();
    server->WaitIdle();
  }
  int64_t elapsed = NowNanos() - start;
  return static_cast<double>(elapsed) / iters;
}

}  // namespace
}  // namespace seal::bench

int main(int argc, char** argv) {
  using namespace seal::bench;
  using namespace seal;

  bool quick = false;
  std::string out_path = "BENCH_handshake.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  const int full_iters = quick ? 30 : 120;
  const int abbrev_iters = quick ? 300 : 1500;
  const int sweep_iters = quick ? 100 : 400;

  std::printf("=== TLS connection setup: full vs abbreviated handshake ===\n");
  net::Network network;
  tls::TlsSessionCache cache;
  tls::TlsConfig server_tls = ServerTls();
  server_tls.session_cache = &cache;
  tls::TlsConfig client_tls = ClientTls();
  HandshakeServer server(&server_tls);

  // Seed the cache with one full handshake and export the session the
  // abbreviated runs will offer.
  tls::TlsSession session;
  {
    auto [client_stream, server_stream] = net::CreateStreamPair();
    server.Submit(std::move(server_stream));
    tls::StreamBio bio(client_stream.get());
    tls::TlsConnection client(&bio, &client_tls, tls::Role::kClient);
    Status hs = client.Handshake();
    server.WaitIdle();
    if (!hs.ok()) {
      std::printf("seed handshake failed: %s\n", hs.ToString().c_str());
      return 1;
    }
    session = client.ExportSession();
    client.Close();
  }

  // Warm up both paths (DRBG children, GHASH tables, wNAF allocations).
  (void)HandshakeRunNanos(&network, &server, client_tls, session, 0, 3);
  (void)HandshakeRunNanos(&network, &server, client_tls, session, 100, 20);

  double full_ns = HandshakeRunNanos(&network, &server, client_tls, session, 0, full_iters);
  double abbrev_ns = HandshakeRunNanos(&network, &server, client_tls, session, 100, abbrev_iters);
  double speedup = full_ns / abbrev_ns;
  std::printf("full handshake (ECDHE + ECDSA + cert chain): %10.0f ns\n", full_ns);
  std::printf("abbreviated handshake (session resumption):  %10.0f ns\n", abbrev_ns);
  std::printf("speedup: %.1fx (acceptance floor: 5x)\n\n", speedup);

  std::printf("resumption-ratio sweep (%d handshakes each):\n", sweep_iters);
  std::vector<SweepPoint> sweep;
  for (int percent : {0, 50, 90, 99}) {
    SweepPoint point;
    point.resumption_percent = percent;
    point.ns_per_handshake =
        HandshakeRunNanos(&network, &server, client_tls, session, percent, sweep_iters);
    point.handshakes_per_sec = 1e9 / point.ns_per_handshake;
    sweep.push_back(point);
    std::printf("  %3d%% resumed: %10.0f ns/handshake, %8.0f handshakes/s\n", percent,
                point.ns_per_handshake, point.handshakes_per_sec);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"handshake\",\n"
                 "  \"ns_full\": %.1f,\n"
                 "  \"ns_abbreviated\": %.1f,\n"
                 "  \"speedup\": %.2f,\n"
                 "  \"sweep_resumption_percent\": [%d, %d, %d, %d],\n"
                 "  \"sweep_ns_per_handshake\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"sweep_handshakes_per_sec\": [%.1f, %.1f, %.1f, %.1f],\n"
                 "  \"quick\": %s\n"
                 "}\n",
                 full_ns, abbrev_ns, speedup, sweep[0].resumption_percent,
                 sweep[1].resumption_percent, sweep[2].resumption_percent,
                 sweep[3].resumption_percent, sweep[0].ns_per_handshake, sweep[1].ns_per_handshake,
                 sweep[2].ns_per_handshake, sweep[3].ns_per_handshake,
                 sweep[0].handshakes_per_sec, sweep[1].handshakes_per_sec,
                 sweep[2].handshakes_per_sec, sweep[3].handshakes_per_sec,
                 quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  PrintMetricsSnapshot("bench_handshake");
  return speedup >= 5.0 ? 0 : 1;
}
