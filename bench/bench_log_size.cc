// §6.5 log size: bytes of persisted audit log per retained item, compared
// against the paper's accounting (Git: 530 B per branch/tag pointer;
// ownCloud: 124 B constant overhead + payload per update; Dropbox: 64 B
// hash per file blocklist -- plus framing in all cases).
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/dropbox_service.h"
#include "src/services/git_service.h"
#include "src/services/owncloud_service.h"
#include "src/ssm/dropbox_ssm.h"
#include "src/ssm/git_ssm.h"
#include "src/ssm/owncloud_ssm.h"

namespace seal::bench {
namespace {

std::unique_ptr<core::AuditLogger> MakeDiskLogger(std::unique_ptr<core::ServiceModule> module,
                                                  const std::string& path) {
  core::AuditLogOptions log_options;
  log_options.mode = core::PersistenceMode::kDisk;
  log_options.path = path;
  log_options.counter_options.inject_latency = false;
  core::LoggerOptions logger_options;
  logger_options.check_interval = 0;
  auto logger = std::make_unique<core::AuditLogger>(
      std::move(module), log_options, logger_options,
      crypto::EcdsaPrivateKey::FromSeed(ToBytes("logsize")));
  (void)logger->Init();
  return logger;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  using namespace seal;
  std::printf("=== §6.5: audit log size after trimming ===\n");

  {
    // Git: push 200 commits across 10 branches, fetch, trim; the retained
    // log is one update per live pointer.
    auto logger = MakeDiskLogger(std::make_unique<ssm::GitModule>(), TempPath("size_git.log"));
    services::GitBackend backend;
    services::GitWorkload workload("repo", 10, 3);
    for (int i = 0; i < 250; ++i) {
      auto req = workload.Next();
      auto rsp = backend.Handle(req);
      (void)logger->OnPair(req.Serialize(), rsp.Serialize(), false);
    }
    (void)logger->Trim();
    size_t pointers = logger->log().database().TableSize("updates");
    std::printf("git:      %4zu live pointers, %6lu bytes persisted (%5.0f B/pointer; "
                "paper: 530 B)\n",
                pointers, static_cast<unsigned long>(logger->log().persisted_bytes()),
                static_cast<double>(logger->log().persisted_bytes()) /
                    static_cast<double>(pointers));
  }
  {
    // ownCloud: one document, single-character updates in the live session.
    auto logger =
        MakeDiskLogger(std::make_unique<ssm::OwnCloudModule>(), TempPath("size_oc.log"));
    services::OwnCloudService service;
    constexpr int kUpdates = 200;
    for (int i = 0; i < kUpdates; ++i) {
      auto req = services::MakeOwnCloudSync("doc", 0, "alice", i + 1, "x");
      auto rsp = service.Handle(req);
      (void)logger->OnPair(req.Serialize(), rsp.Serialize(), false);
    }
    (void)logger->Trim();
    size_t updates = logger->log().database().TableSize("oc_updates");
    std::printf("owncloud: %4zu updates kept,  %6lu bytes persisted (%5.0f B/update;  "
                "paper: 124+7 B)\n",
                updates, static_cast<unsigned long>(logger->log().persisted_bytes()),
                static_cast<double>(logger->log().persisted_bytes()) /
                    static_cast<double>(updates));
  }
  {
    // Dropbox: commit 100 files, list, trim; the retained log is the
    // newest commit_batch entry (blocklist hash) per file.
    auto logger =
        MakeDiskLogger(std::make_unique<ssm::DropboxModule>(), TempPath("size_dbx.log"));
    services::DropboxService service;
    constexpr int kFiles = 100;
    for (int i = 0; i < kFiles; ++i) {
      // One 64-hex-char blocklist hash per file, like the paper's 64 B.
      std::string blocklist(64, 'a' + static_cast<char>(i % 26));
      auto req = services::MakeCommitBatch(
          "acct", "h", {services::DropboxCommit{"f" + std::to_string(i), blocklist, 4 << 20}});
      auto rsp = service.Handle(req);
      (void)logger->OnPair(req.Serialize(), rsp.Serialize(), false);
    }
    (void)logger->Trim();
    size_t files = logger->log().database().TableSize("commit_batch");
    std::printf("dropbox:  %4zu files kept,    %6lu bytes persisted (%5.0f B/file;    "
                "paper: 64 B blocklist + metadata)\n",
                files, static_cast<unsigned long>(logger->log().persisted_bytes()),
                static_cast<double>(logger->log().persisted_bytes()) /
                    static_cast<double>(files));
  }
  std::printf("\nlog sizes are proportional to live pointers / session updates / files,\n"
              "not to total traffic -- the paper's scaling argument holds\n");
  return 0;
}
