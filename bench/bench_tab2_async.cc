// Table 2: throughput of Apache-LibSEAL with and without asynchronous
// enclave calls, for different content sizes.
//
// Paper result (req/s):
//   content      0B    1KB   10KB   64KB
//   no async   1126   1095    882    644
//   async      1771   1722   1693   1375   (+57% .. +114%)
//
// The gain grows with content size because larger transfers issue more
// BIO ocalls per request, each of which the asynchronous mechanism spares
// a hardware transition.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

double RunConfig(bool async_calls, size_t content_size) {
  net::Network network;
  core::LibSealOptions options = LibSealBenchOptions(Variant::kLibSealProcess, "");
  options.use_async_calls = async_calls;
  core::LibSealRuntime runtime(options, nullptr);
  if (!runtime.Init().ok()) {
    return 0;
  }
  services::LibSealTransport transport(&runtime);
  services::HttpServer server(&network, {.address = "web:443"}, &transport,
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return 0;
  }
  tls::TlsConfig client_tls = ClientTls();
  LoadOptions load;
  // High concurrency, as in the paper's Apache runs: synchronous calls then
  // pile threads up inside the enclave and each transition pays the crowded
  // rate (§6.8), which is precisely what the async mechanism avoids.
  load.clients = 16;
  load.seconds = 1.5;
  load.keep_alive = false;
  LoadResult result = RunClosedLoop(
      &network, "web:443", client_tls,
      [content_size](int, uint64_t) { return services::MakeContentRequest(content_size); },
      load);
  server.Stop();
  runtime.Shutdown();
  return result.throughput_rps;
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Table 2: asynchronous enclave calls (Apache-LibSEAL, req/s) ===\n");
  std::printf("%-16s %10s %10s %10s %10s\n", "", "0B", "1KB", "10KB", "64KB");
  double no_async[4];
  double with_async[4];
  const size_t kSizes[4] = {0, 1 << 10, 10 << 10, 64 << 10};
  std::printf("%-16s", "no async calls");
  for (int i = 0; i < 4; ++i) {
    no_async[i] = RunConfig(false, kSizes[i]);
    std::printf(" %10.0f", no_async[i]);
  }
  std::printf("\n%-16s", "async calls");
  for (int i = 0; i < 4; ++i) {
    with_async[i] = RunConfig(true, kSizes[i]);
    std::printf(" %10.0f", with_async[i]);
  }
  std::printf("\n%-16s", "improvement");
  for (int i = 0; i < 4; ++i) {
    std::printf(" %9.0f%%", 100.0 * (with_async[i] / no_async[i] - 1.0));
  }
  std::printf("\n\npaper: +57%% (0B, 1KB), +92%% (10KB), +114%% (64KB)\n");
  PrintMetricsSnapshot("bench_tab2_async (cumulative)");
  return 0;
}
