// Table 3: asynchronous enclave calls while varying the number of SGX
// (enclave worker) threads S, with T = 48 lthread tasks per thread.
//
// Paper result: throughput climbs from 593 req/s (S=1) to 1,722 req/s
// (S=3, the CPU saturates at 400% on the 4-core machine), then FALLS to
// 1,516 req/s at S=4 because enclave threads contend with the Apache
// threads for cores.
//
// CPU utilisation is reported as process CPU time / wall time.
#include <sys/resource.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/services/http_server.h"
#include "src/services/static_content.h"

namespace seal::bench {
namespace {

double ProcessCpuSeconds() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) +
         static_cast<double>(usage.ru_utime.tv_usec + usage.ru_stime.tv_usec) / 1e6;
}

void RunConfig(int sgx_threads, int lthread_tasks) {
  net::Network network;
  core::LibSealOptions options = LibSealBenchOptions(Variant::kLibSealProcess, "");
  options.async.enclave_threads = sgx_threads;
  options.async.tasks_per_thread = lthread_tasks;
  core::LibSealRuntime runtime(options, nullptr);
  if (!runtime.Init().ok()) {
    return;
  }
  services::LibSealTransport transport(&runtime);
  services::HttpServer server(&network, {.address = "web:443"}, &transport,
                              services::ServeStaticContent);
  if (!server.Start().ok()) {
    return;
  }
  tls::TlsConfig client_tls = ClientTls();
  double cpu0 = ProcessCpuSeconds();
  int64_t t0 = NowNanos();
  LoadOptions load;
  load.clients = 4;
  load.seconds = 1.2;
  load.keep_alive = false;  // 1 KB content, fresh handshakes (paper setup)
  LoadResult result = RunClosedLoop(
      &network, "web:443", client_tls,
      [](int, uint64_t) { return services::MakeContentRequest(1024); }, load);
  double wall = static_cast<double>(NowNanos() - t0) / 1e9;
  double cpu_pct = 100.0 * (ProcessCpuSeconds() - cpu0) / wall;
  std::printf("%12d %14.0f %12.2f %8.0f%%\n", sgx_threads, result.throughput_rps,
              result.mean_latency_ms, cpu_pct);
  server.Stop();
  runtime.Shutdown();
}

}  // namespace
}  // namespace seal::bench

int main() {
  using namespace seal::bench;
  std::printf("=== Table 3: varying SGX threads (T = 48 lthread tasks per thread) ===\n");
  std::printf("%12s %14s %12s %9s\n", "SGX threads", "req/s", "latency ms", "CPU");
  for (int s : {1, 2, 3, 4}) {
    RunConfig(s, 48);
  }
  std::printf("\npaper (4 cores): 593 / 1172 / 1722 / 1516 req/s -- rises until the CPU\n"
              "saturates, then contention with application threads costs throughput\n");
  return 0;
}
