// Micro-benchmarks for the seal::obs observability layer.
//
// The design target: an enabled counter increment on the hot path (the call
// gate charges one per transition) must cost single-digit nanoseconds, and a
// disabled one must be a load-and-branch. Contended increments stay cheap
// because each thread lands on its own cache-line-aligned shard.
#include <benchmark/benchmark.h>

#include "src/obs/obs.h"

namespace seal::obs {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  Counter& c = Registry::Global().GetCounter("bench_obs_increment_total");
  for (auto _ : state) {
    c.Increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_CounterIncrementViaMacro(benchmark::State& state) {
  // What instrumented call sites actually pay: the function-local static
  // adds a guard-variable load on top of the increment.
  for (auto _ : state) {
    SEAL_OBS_COUNTER("bench_obs_macro_total").Increment();
  }
}
BENCHMARK(BM_CounterIncrementViaMacro);

void BM_CounterIncrementDisabled(benchmark::State& state) {
  Counter& c = Registry::Global().GetCounter("bench_obs_disabled_total");
  SetEnabled(false);
  for (auto _ : state) {
    c.Increment();
  }
  SetEnabled(true);
}
BENCHMARK(BM_CounterIncrementDisabled);

void BM_CounterIncrementContended(benchmark::State& state) {
  // Sharding means threads rarely touch the same cache line; compare with
  // BM_CounterIncrement to see the residual cost of sharing.
  Counter& c = Registry::Global().GetCounter("bench_obs_contended_total");
  for (auto _ : state) {
    c.Increment();
  }
}
BENCHMARK(BM_CounterIncrementContended)->Threads(4)->Threads(8);

void BM_GaugeSet(benchmark::State& state) {
  Gauge& g = Registry::Global().GetGauge("bench_obs_gauge");
  int64_t v = 0;
  for (auto _ : state) {
    g.Set(++v);
  }
}
BENCHMARK(BM_GaugeSet);

void BM_GaugeSetMax(benchmark::State& state) {
  Gauge& g = Registry::Global().GetGauge("bench_obs_gauge_max");
  int64_t v = 0;
  for (auto _ : state) {
    g.SetMax(++v);
  }
}
BENCHMARK(BM_GaugeSetMax);

void BM_HistogramObserve(benchmark::State& state) {
  Histogram& h = Registry::Global().GetHistogram("bench_obs_hist");
  uint64_t v = 1;
  for (auto _ : state) {
    h.Observe(v);
    v = (v << 1) | 1;  // walk the buckets
    if (v > (uint64_t{1} << 40)) {
      v = 1;
    }
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistryTakeSnapshot(benchmark::State& state) {
  // Snapshotting is the slow path (one mutex + full copy); it should stay
  // in the microsecond range so benches can bracket runs with it freely.
  Registry& r = Registry::Global();
  for (int i = 0; i < 64; ++i) {
    r.GetCounter("bench_obs_snap_total{i=\"" + std::to_string(i) + "\"}").Increment();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.TakeSnapshot());
  }
}
BENCHMARK(BM_RegistryTakeSnapshot);

}  // namespace
}  // namespace seal::obs

BENCHMARK_MAIN();
